#!/usr/bin/env sh
# The CI `sim` gate: deterministic-simulation checks plus two
# self-tests proving the gate can actually fail.
#
#   1. full spi-sim suite (determinism, replay, flush edges, virtual
#      time, golden snapshots, PR 3 rediscovery),
#   2. the golden snapshot tests in a second fresh process — the
#      ISSUE's acceptance gate that the same seed yields a
#      byte-identical event log across consecutive runs,
#   3. a seed sweep widened to SPI_SIM_RUNS seeds,
#   4. deliberate-regression self-test A: the simulator must rediscover
#      the PR 3 lost-wakeup deadlock in the mechanically reverted ring
#      (runs as part of the suite, re-run here standalone for a clear
#      log line),
#   5. deliberate-regression self-test B: flip one byte of a committed
#      golden log and require the snapshot test to FAIL, then restore.
#
# Usage: scripts/sim_gate.sh            (defaults: 25-seed sweep)
#        SPI_SIM_RUNS=500 scripts/sim_gate.sh   (nightly width)
set -eu
cd "$(dirname "$0")/.."

RUNS="${SPI_SIM_RUNS:-25}"
GOLDEN=crates/sim/tests/golden/fir_clean.log

echo "== sim gate: full deterministic-simulation suite"
scripts/with_timeout.sh 900 cargo test -p spi-sim -q

echo "== sim gate: golden snapshots, second fresh process (byte-identical across runs)"
scripts/with_timeout.sh 300 cargo test -p spi-sim --test golden -q

echo "== sim gate: ${RUNS}-seed sweep"
SPI_SIM_SWEEP="$RUNS" scripts/with_timeout.sh 1800 cargo test -p spi-sim --test whole_system -q

echo "== sim gate: self-test A — rediscover the PR 3 lost wakeup in the reverted ring"
scripts/with_timeout.sh 600 cargo test -p spi-sim --test lost_wakeup -q -- --nocapture

echo "== sim gate: self-test B — snapshot harness must detect a corrupted golden log"
cp "$GOLDEN" "$GOLDEN.orig"
restore() { mv -f "$GOLDEN.orig" "$GOLDEN" 2>/dev/null || true; }
trap restore EXIT INT TERM
printf 'X' | dd of="$GOLDEN" bs=1 seek=64 conv=notrunc 2>/dev/null
if cargo test -p spi-sim --test golden -q golden_fir_clean >/dev/null 2>&1; then
  echo "FATAL: snapshot test passed against a corrupted golden log" >&2
  exit 1
fi
restore
trap - EXIT INT TERM
cargo test -p spi-sim --test golden -q golden_fir_clean

echo "sim gate OK (sweep width $RUNS)"

#!/usr/bin/env bash
# Runs the transport-layer and fault-injection concurrency tests under
# ThreadSanitizer when a nightly toolchain is available, and falls back
# to a high-volume stress loop otherwise (e.g. offline containers with
# only stable installed).
#
# Coverage spans all three transports: the `-p spi-platform --tests`
# pass includes the pointer-exchange pool tests (slot handoff, lease
# drop as release ack, cross-thread token streaming), and the
# equivalence + fault passes drive TransportKind::Pointer through the
# runner and the FaultyTransport decorator (incl. the pool_leak suite).
#
# TSan needs `-Z sanitizer=thread`, which implies nightly plus a
# rebuilt-std (`-Z build-std`) so the standard library is instrumented
# too — without it, races through std primitives go unreported.
#
# Usage: scripts/tsan.sh [extra cargo test args]
set -euo pipefail
cd "$(dirname "$0")/.."

TARGET="$(rustc -vV | sed -n 's/^host: //p')"

if rustup toolchain list 2>/dev/null | grep -q nightly && \
   rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src (installed)'; then
  echo "== ThreadSanitizer: cargo +nightly test (target ${TARGET}) =="
  RUSTFLAGS="-Z sanitizer=thread" \
  RUSTDOCFLAGS="-Z sanitizer=thread" \
  TSAN_OPTIONS="halt_on_error=1" \
  SPI_STRESS_ITERS="${SPI_STRESS_ITERS:-50000}" \
    cargo +nightly test -Z build-std --target "${TARGET}" \
      -p spi-platform --tests "$@" -- --test-threads=1
  RUSTFLAGS="-Z sanitizer=thread" \
  TSAN_OPTIONS="halt_on_error=1" \
    cargo +nightly test -Z build-std --target "${TARGET}" \
      --test engine_equivalence "$@"
  # FaultyTransport + supervised recovery under TSan: the decorator and
  # the retry/backoff machinery race against PE threads by design. A
  # reduced chaos case count keeps the instrumented run tractable.
  RUSTFLAGS="-Z sanitizer=thread" \
  TSAN_OPTIONS="halt_on_error=1" \
  CHAOS_CASES="${CHAOS_CASES:-10}" \
    cargo +nightly test -Z build-std --target "${TARGET}" \
      -p spi-fault --tests "$@" -- --test-threads=1
  # The model-checking session machinery itself (worker pool, targeted
  # condvar handshakes, abort broadcast) is concurrent code; run the
  # explorations under TSan too so the verifier is verified.
  RUSTFLAGS="-Z sanitizer=thread" \
  TSAN_OPTIONS="halt_on_error=1" \
    cargo +nightly test -Z build-std --target "${TARGET}" \
      -p spi-verify --tests "$@" -- --test-threads=1
else
  echo "== nightly + rust-src unavailable: falling back to stress loop =="
  echo "   (raising SPI_STRESS_ITERS and repeating to widen interleavings)"
  export SPI_STRESS_ITERS="${SPI_STRESS_ITERS:-100000}"
  for round in 1 2 3; do
    echo "-- stress round ${round}/3 (SPI_STRESS_ITERS=${SPI_STRESS_ITERS})"
    cargo test --release -p spi-platform --test transport_stress "$@"
  done
  cargo test --release --test engine_equivalence "$@"
  echo "-- chaos stress (randomized fault plans, CHAOS_CASES=${CHAOS_CASES:-40})"
  CHAOS_CASES="${CHAOS_CASES:-40}" cargo test --release -p spi-fault "$@"
  echo "-- bounded model checking (exhaustive tier-1 + regression oracle)"
  cargo test --release -p spi-verify "$@"
fi
echo "== transport concurrency checks passed =="

#!/usr/bin/env bash
# Runs the transport and supervision unit tests under Miri, with the
# model-checking shim seams compiled in (`--features verify-shim`) so
# the interpreter sees exactly the code paths the bounded model checker
# instruments.
#
# Miri catches what neither the SC-only model checker nor TSan can:
# undefined behavior, invalid aliasing, and (with its own weak-memory
# emulation) some relaxed-ordering misuse — at ~1000x interpretation
# overhead, which is why the scope is unit tests only. The pool module
# matters here specifically: TokenBuf hands out `&mut [u8]` views into
# a shared slab through raw pointers, exactly the kind of aliasing
# claim only Miri checks.
#
# Degrades gracefully: offline containers without a nightly toolchain
# or the miri component skip with a notice instead of failing, mirroring
# scripts/tsan.sh (the stress fallback there covers the same code).
#
# Usage: scripts/miri.sh [extra cargo test args]
set -euo pipefail
cd "$(dirname "$0")/.."

if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
  echo "== miri: nightly toolchain unavailable — skipping (tsan.sh stress fallback covers this) =="
  exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null | grep -q 'miri (installed)'; then
  if ! rustup component add --toolchain nightly miri 2>/dev/null; then
    echo "== miri: component not installable (offline?) — skipping =="
    exit 0
  fi
fi

echo "== miri: transport + pool + supervision unit tests (verify-shim enabled) =="
# -Zmiri-disable-isolation: the transport park path and the supervision
# retry/backoff machinery read the monotonic clock and env vars.
# SPI_STRESS_ITERS is floored low: interpreted execution is ~1000x
# slower, and Miri's value is per-access UB detection, not volume.
MIRIFLAGS="${MIRIFLAGS:--Zmiri-disable-isolation}" \
SPI_STRESS_ITERS="${SPI_STRESS_ITERS:-50}" \
  cargo +nightly miri test -p spi-platform --lib --features verify-shim "$@" \
    -- transport:: pool:: supervise::
echo "== miri checks passed =="

#!/usr/bin/env sh
# Regenerates the committed spi-sim golden event logs after an
# *intentional* behavior change. Review the diff before committing:
# every changed line is a schedule-visible behavior change in the
# runner, the transports, the shims, or the simulator itself.
set -eu
cd "$(dirname "$0")/.."
SPI_SIM_REGEN=1 cargo test -p spi-sim --test golden
git --no-pager diff --stat -- crates/sim/tests/golden || true
echo "golden logs regenerated; inspect 'git diff crates/sim/tests/golden' before committing"

#!/usr/bin/env bash
# Bench-regression gate: runs `bench_transport` fresh and compares its
# throughput numbers against the committed baselines
# (`BENCH_transport.json`, `BENCH_trace.json`), failing when any
# scenario regressed by more than the tolerance (default 15%).
#
# Usage:
#   scripts/bench_gate.sh [--tolerance PCT]
#   scripts/bench_gate.sh --synthetic-regression
#
# `--synthetic-regression` self-tests the gate three ways: it scales
# the fresh numbers down 20% and verifies the comparison trips; strips
# a section from a baseline copy and verifies the gate warns without
# failing; and strips a metric from a candidate copy (baseline still
# has it) and verifies the gate fails hard — a benchmark that silently
# stops reporting a number must not read as "no regression". CI runs
# all three right after the real gate so a silently broken comparison
# cannot go green.
#
# A metric present in the fresh run but absent from the baseline — a
# newly added scenario, e.g. `net_loopback` before its baseline lands —
# is WARNED and recorded, not failed: a new measurement has no history
# to regress against. The reverse (baseline has it, fresh run lost it)
# still fails hard.
#
# Set BENCH_DIR to a directory that already holds fresh JSONs to skip
# the (minutes-long) benchmark run — CI reuses one run for both modes.
# The fresh files stay in BENCH_DIR for artifact upload.
set -euo pipefail
cd "$(dirname "$0")/.."
REPO="$PWD"

TOL=15
MODE=gate
while [ $# -gt 0 ]; do
  case "$1" in
    --tolerance) TOL="$2"; shift 2 ;;
    --synthetic-regression) MODE=synthetic; shift ;;
    -h|--help)
      echo "usage: $0 [--tolerance PCT] [--synthetic-regression]"; exit 2 ;;
    *) echo "bench_gate: unknown argument: $1" >&2; exit 2 ;;
  esac
done

# ---- Fresh numbers ---------------------------------------------------
BENCH_DIR="${BENCH_DIR:-$(mktemp -d)}"
if [ ! -f "$BENCH_DIR/BENCH_transport.json" ] || [ ! -f "$BENCH_DIR/BENCH_trace.json" ]; then
  mkdir -p "$BENCH_DIR"
  echo "== bench_gate: running bench_transport (fresh numbers in $BENCH_DIR)"
  # The bench writes into its working directory; run it in BENCH_DIR so
  # the committed baselines in the repo root stay untouched.
  (cd "$BENCH_DIR" && cargo run --quiet --release \
     --manifest-path "$REPO/Cargo.toml" -p spi-bench --bin bench_transport)
fi
echo "== bench_gate: fresh numbers from $BENCH_DIR (tolerance ${TOL}%)"

# Prints the numeric value of `key` on the first line of `file`
# containing `needle` (the hand-rolled JSON is one object per line).
metric() { # file needle key
  awk -v needle="$2" -v key="$3" '
    index($0, needle) {
      if (match($0, "\"" key "\": [0-9.]+")) {
        v = substr($0, RSTART, RLENGTH)
        sub(/.*: /, "", v)
        print v
        exit
      }
    }
  ' "$1"
}

FAILURES=0
WARNINGS=0
DELTA_ROWS=""
# Appends one row to the delta report (written as JSON after the gate
# so CI can upload it as an artifact).
delta_row() { # file needle key cand base delta_pct status
  local sect="${2//\"/\\\"}"
  DELTA_ROWS="$DELTA_ROWS    {\"file\": \"$1\", \"section\": \"$sect\", \"key\": \"$3\", \
\"candidate\": \"$4\", \"baseline\": \"$5\", \"delta_pct\": \"$6\", \"status\": \"$7\"},\n"
}

# Compares one metric: candidate must be >= baseline * (1 - TOL/100).
# A metric the candidate reports but the baseline lacks is recorded as
# a warning (new scenario, no history yet); a metric the baseline has
# but the candidate lost is a hard failure.
gate_one() { # file needle key candidate_dir baseline_dir
  local file="$1" needle="$2" key="$3" cand_dir="$4" base_dir="$5"
  local cand base
  cand="$(metric "$cand_dir/$file" "$needle" "$key")"
  base="$(metric "$base_dir/$file" "$needle" "$key")"
  if [ -n "$cand" ] && [ -z "$base" ]; then
    printf 'WARN  %-24s %-24s %14s — new metric, no baseline; record it on the next baseline refresh\n' \
      "$needle" "$key" "$cand"
    WARNINGS=$((WARNINGS + 1))
    delta_row "$file" "$needle" "$key" "$cand" "" "" "warn-new-metric"
    return
  fi
  if [ -z "$cand" ] || [ -z "$base" ]; then
    echo "FAIL  $file $needle $key: metric missing (candidate='$cand' baseline='$base')"
    FAILURES=$((FAILURES + 1))
    delta_row "$file" "$needle" "$key" "$cand" "$base" "" "fail-missing-metric"
    return
  fi
  local verdict
  verdict="$(awk -v c="$cand" -v b="$base" -v tol="$TOL" 'BEGIN {
    floor = b * (1 - tol / 100)
    printf "%s %.1f", (c >= floor) ? "ok" : "FAIL", (c / b - 1) * 100
  }')"
  local status="${verdict%% *}" delta="${verdict##* }"
  printf '%-4s  %-24s %-24s %14s vs %-14s (%+s%%)\n' \
    "$status" "$needle" "$key" "$cand" "$base" "$delta"
  delta_row "$file" "$needle" "$key" "$cand" "$base" "$delta" \
    "$([ "$status" = FAIL ] && echo fail-regressed || echo ok)"
  [ "$status" = "FAIL" ] && FAILURES=$((FAILURES + 1))
  return 0
}

# Writes the accumulated delta rows as a JSON artifact.
write_delta() { # out_path
  {
    printf '{\n  "tolerance_pct": %s,\n  "metrics": [\n' "$TOL"
    printf '%b' "$DELTA_ROWS" | sed '$ s/,$//'
    printf '  ],\n  "failures": %s,\n  "warnings": %s\n}\n' "$FAILURES" "$WARNINGS"
  } > "$1"
  echo "== bench_gate: delta report written to $1"
}

run_gate() { # candidate_dir baseline_dir
  local cand="$1" base="$2"
  DELTA_ROWS=""
  gate_one BENCH_transport.json '"name": "raw_spsc_8B"' locked_msgs_per_sec "$cand" "$base"
  gate_one BENCH_transport.json '"name": "raw_spsc_8B"' ring_msgs_per_sec "$cand" "$base"
  gate_one BENCH_transport.json '"name": "pipeline_3pe"' locked_msgs_per_sec "$cand" "$base"
  gate_one BENCH_transport.json '"name": "pipeline_3pe"' ring_msgs_per_sec "$cand" "$base"
  gate_one BENCH_transport.json '"name": "filterbank_app"' locked_msgs_per_sec "$cand" "$base"
  gate_one BENCH_transport.json '"name": "filterbank_app"' ring_msgs_per_sec "$cand" "$base"
  gate_one BENCH_transport.json '"pointer_exchange"' locked_msgs_per_sec "$cand" "$base"
  gate_one BENCH_transport.json '"pointer_exchange"' ring_msgs_per_sec "$cand" "$base"
  gate_one BENCH_transport.json '"pointer_exchange"' pointer_msgs_per_sec "$cand" "$base"
  gate_one BENCH_transport.json '"net_loopback"' net_msgs_per_sec "$cand" "$base"
  gate_one BENCH_transport.json '"net_loopback"' net_unbatched_msgs_per_sec "$cand" "$base"
  gate_one BENCH_transport.json '"supervision"' bare_msgs_per_sec "$cand" "$base"
  gate_one BENCH_transport.json '"supervision"' supervised_msgs_per_sec "$cand" "$base"
  gate_one BENCH_trace.json '"name": "pipeline_3pe_fir"' nop_msgs_per_sec "$cand" "$base"
  gate_one BENCH_trace.json '"name": "pipeline_3pe_fir"' traced_msgs_per_sec "$cand" "$base"
  gate_one BENCH_trace.json '"name": "pipeline_3pe_forward"' nop_msgs_per_sec "$cand" "$base"
  gate_one BENCH_trace.json '"name": "pipeline_3pe_forward"' traced_msgs_per_sec "$cand" "$base"
}

if [ "$MODE" = "synthetic" ]; then
  # Self-test: scale every throughput metric of the fresh run down 20%
  # and gate the scaled copy against the fresh run itself. Using the
  # fresh numbers as their own baseline makes the self-test
  # deterministic on any machine.
  SYN_DIR="$(mktemp -d)"
  for f in BENCH_transport.json BENCH_trace.json; do
    awk '{
      out = ""; rest = $0
      while (match(rest, /_msgs_per_sec": [0-9.]+/)) {
        pre = substr(rest, 1, RSTART - 1)
        m = substr(rest, RSTART, RLENGTH)
        rest = substr(rest, RSTART + RLENGTH)
        val = m; sub(/.*: /, "", val)
        sub(/: [0-9.]+$/, "", m)
        out = out pre m ": " sprintf("%.0f", val * 0.8)
      }
      print out rest
    }' "$BENCH_DIR/$f" > "$SYN_DIR/$f"
  done
  echo "== bench_gate self-test: 20% synthetic regression must trip the ${TOL}% gate"
  run_gate "$SYN_DIR" "$BENCH_DIR"
  if [ "$FAILURES" -eq 0 ]; then
    echo "== bench_gate self-test FAILED: a 20% regression sailed through the gate" >&2
    exit 1
  fi
  echo "== bench_gate self-test passed: synthetic regression rejected ($FAILURES metric(s) tripped)"

  # Second self-test: a baseline that predates a section must warn, not
  # fail. Strip `net_loopback` from a baseline copy and gate the fresh
  # run (identical numbers everywhere else) against it.
  OLD_DIR="$(mktemp -d)"
  grep -v '"net_loopback"' "$BENCH_DIR/BENCH_transport.json" > "$OLD_DIR/BENCH_transport.json"
  cp "$BENCH_DIR/BENCH_trace.json" "$OLD_DIR/BENCH_trace.json"
  FAILURES=0
  WARNINGS=0
  echo "== bench_gate self-test: a section missing from the baseline must warn, not fail"
  run_gate "$BENCH_DIR" "$OLD_DIR"
  if [ "$FAILURES" -gt 0 ] || [ "$WARNINGS" -eq 0 ]; then
    echo "== bench_gate self-test FAILED: missing baseline section produced $FAILURES failure(s), $WARNINGS warning(s)" >&2
    exit 1
  fi
  echo "== bench_gate self-test passed: new section warned ($WARNINGS) without failing"

  # Third self-test: the reverse direction. A metric the baseline has
  # but the candidate lost — a benchmark that silently stopped
  # reporting a number — must FAIL hard, never read as "no regression".
  LOST_DIR="$(mktemp -d)"
  sed 's/"net_msgs_per_sec": [0-9.]*, //' \
    "$BENCH_DIR/BENCH_transport.json" > "$LOST_DIR/BENCH_transport.json"
  cp "$BENCH_DIR/BENCH_trace.json" "$LOST_DIR/BENCH_trace.json"
  if grep -q '"net_msgs_per_sec"' "$LOST_DIR/BENCH_transport.json"; then
    echo "== bench_gate self-test FAILED: could not strip net_msgs_per_sec from the candidate copy" >&2
    exit 1
  fi
  FAILURES=0
  WARNINGS=0
  echo "== bench_gate self-test: a metric missing from the candidate must fail hard"
  run_gate "$LOST_DIR" "$BENCH_DIR"
  if [ "$FAILURES" -eq 0 ]; then
    echo "== bench_gate self-test FAILED: a metric lost from the run sailed through the gate" >&2
    exit 1
  fi
  echo "== bench_gate self-test passed: removed metric rejected ($FAILURES failure(s))"
  exit 0
fi

run_gate "$BENCH_DIR" "$REPO"
write_delta "$BENCH_DIR/BENCH_delta.json"
if [ "$FAILURES" -gt 0 ]; then
  echo "== bench_gate: $FAILURES metric(s) regressed beyond ${TOL}% vs the committed baseline" >&2
  exit 1
fi
if [ "$WARNINGS" -gt 0 ]; then
  echo "== bench_gate: $WARNINGS new metric(s) have no committed baseline yet — refresh the baseline JSONs to start gating them"
fi
echo "== bench_gate: all metrics within ${TOL}% of the committed baseline"

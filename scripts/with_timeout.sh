#!/usr/bin/env bash
# Wall-clock guard for CI steps: runs a command under coreutils
# `timeout` so a hung test (the exact failure mode the chaos suite
# guards against regressing) kills the job with a diagnosis instead of
# idling until the runner's global limit.
#
# Usage: scripts/with_timeout.sh SECONDS command [args...]
#
# Exit status: the command's own, or 124 on timeout (plus a SIGKILL
# escalation 30 s later if the process ignores SIGTERM).
set -euo pipefail

if [ "$#" -lt 2 ]; then
  echo "usage: $0 SECONDS command [args...]" >&2
  exit 2
fi

limit="$1"
shift

if ! command -v timeout >/dev/null 2>&1; then
  echo "with_timeout: coreutils 'timeout' unavailable; running unguarded" >&2
  exec "$@"
fi

rc=0
timeout --kill-after=30 "$limit" "$@" || rc=$?
if [ "$rc" -eq 124 ]; then
  echo "with_timeout: command exceeded ${limit}s wall clock: $*" >&2
fi
exit "$rc"

//! The discrete-event engine and the OS-thread runner must agree
//! functionally on identical programs: same stores, same per-channel
//! message order — protocol logic that only works under the event
//! queue's serialization would be a bug.
//!
//! The randomized case also runs every engine under a `RingTracer` and
//! cross-checks the captured traces: identical per-channel send/receive
//! digest sequences on all three engines, and a clean FIFO/conservation
//! replay by the conformance checker.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use spi_repro::platform::{
    run_threaded, ChannelId, ChannelSpec, Machine, Op, Program, ThreadedRunner, TransportKind,
};
use spi_repro::trace::{check, ClockKind, ProbeEvent, ProbeKind, RingTracer, TraceMeta};

/// Builds the same 3-PE pipeline twice (programs contain closures and
/// cannot be cloned).
fn pipeline_programs() -> (Vec<ChannelSpec>, Vec<Program>) {
    let specs = vec![ChannelSpec::default(), ChannelSpec::default()];
    let c1 = ChannelId(0);
    let c2 = ChannelId(1);
    let producer = Program::new(
        vec![Op::Send {
            channel: c1,
            payload: Box::new(|l| vec![(l.iter * 3 % 251) as u8]),
        }],
        25,
    );
    let transformer = Program::new(
        vec![
            Op::Recv { channel: c1 },
            Op::Compute {
                label: "xform".into(),
                work: Box::new(move |l| {
                    let v = l.take_from(c1).expect("input");
                    l.store.insert("fwd".into(), vec![v[0].wrapping_mul(2)]);
                    7
                }),
            },
            Op::Send {
                channel: c2,
                payload: Box::new(|l| l.store.get("fwd").cloned().expect("staged")),
            },
        ],
        25,
    );
    let collector = Program::new(
        vec![
            Op::Recv { channel: c2 },
            Op::Compute {
                label: "collect".into(),
                work: Box::new(move |l| {
                    let v = l.take_from(c2).expect("input");
                    let mut acc = l.store.remove("acc").unwrap_or_default();
                    acc.push(v[0]);
                    l.store.insert("acc".into(), acc);
                    3
                }),
            },
        ],
        25,
    );
    (specs, vec![producer, transformer, collector])
}

#[test]
fn des_and_threads_produce_identical_stores() {
    // DES run.
    let (specs, programs) = pipeline_programs();
    let mut machine = Machine::new();
    for s in &specs {
        machine.add_channel(*s);
    }
    for p in programs {
        machine.add_pe(p);
    }
    let des = machine.run().expect("DES run");

    // Threaded run of freshly built identical programs.
    let (specs, programs) = pipeline_programs();
    let threaded = run_threaded(&specs, programs, Duration::from_secs(10)).expect("threaded run");

    for (i, t) in threaded.iter().enumerate() {
        assert_eq!(des.locals[i].store, t.store, "store mismatch on PE {i}");
        assert_eq!(des.locals[i].leftover_inbox, t.leftover_inbox);
    }
    // The collector saw the full transformed sequence, in order.
    let acc = &threaded[2].store["acc"];
    assert_eq!(acc.len(), 25);
    for (iter, &v) in acc.iter().enumerate() {
        assert_eq!(v, ((iter as u64 * 3 % 251) as u8).wrapping_mul(2));
    }
}

#[test]
fn engines_agree_with_prologues_and_backpressure() {
    let build = || {
        let specs = vec![ChannelSpec {
            capacity_bytes: 8, // tight: forces back-pressure
            ..ChannelSpec::default()
        }];
        let ch = ChannelId(0);
        let mut producer = Program::new(
            vec![Op::Send {
                channel: ch,
                payload: Box::new(|l| vec![l.iter as u8; 4]),
            }],
            10,
        );
        // Prologue primes one extra message.
        producer.prologue = vec![Op::Send {
            channel: ch,
            payload: Box::new(|_| vec![0xFF; 4]),
        }];
        let consumer = Program::new(
            vec![
                Op::Recv { channel: ch },
                Op::Compute {
                    label: "fold".into(),
                    work: Box::new(move |l| {
                        let v = l.take_from(ch).expect("msg");
                        let mut acc = l.store.remove("acc").unwrap_or_default();
                        acc.push(v[0]);
                        l.store.insert("acc".into(), acc);
                        11
                    }),
                },
            ],
            11, // 10 + the primed message
        );
        (specs, vec![producer, consumer])
    };

    let (specs, programs) = build();
    let mut machine = Machine::new();
    for s in &specs {
        machine.add_channel(*s);
    }
    for p in programs {
        machine.add_pe(p);
    }
    let des = machine.run().expect("DES run");

    let (specs, programs) = build();
    let threaded = run_threaded(&specs, programs, Duration::from_secs(10)).expect("threads");

    assert_eq!(des.locals[1].store, threaded[1].store);
    let acc = &threaded[1].store["acc"];
    assert_eq!(acc[0], 0xFF, "primed message arrives first");
    assert_eq!(acc.len(), 11);
}

/// Parameters of one randomized linear pipeline.
#[derive(Debug, Clone, Copy)]
struct PipelineParams {
    n_pes: u64,
    payload: u64,
    cap_msgs: u64,
    iterations: u64,
    seed: u64,
}

/// Builds a random linear pipeline: PE 0 produces `payload`-byte
/// messages derived from (iteration, seed); every later PE folds the
/// first byte of each arrival into its "acc" store key (recording the
/// per-channel message order) and, except the last, forwards a
/// deterministically transformed message. Channels are `cap_msgs`
/// messages deep with the per-message bound declared, so the ring sizes
/// its slots exactly.
fn random_pipeline(p: PipelineParams) -> (Vec<ChannelSpec>, Vec<Program>) {
    let n = p.n_pes as usize;
    let payload = p.payload as usize;
    let specs: Vec<ChannelSpec> = (0..n - 1)
        .map(|_| ChannelSpec {
            capacity_bytes: (p.cap_msgs as usize) * payload,
            max_message_bytes: payload,
            ..ChannelSpec::default()
        })
        .collect();
    let mut programs = Vec::with_capacity(n);
    let seed = p.seed;
    programs.push(Program::new(
        vec![Op::Send {
            channel: ChannelId(0),
            payload: Box::new(move |l| {
                (0..payload)
                    .map(|b| (l.iter.wrapping_mul(31).wrapping_add(seed + b as u64) % 251) as u8)
                    .collect()
            }),
        }],
        p.iterations,
    ));
    for pe in 1..n {
        let input = ChannelId(pe - 1);
        let mul = (2 * pe + 1) as u8; // odd → invertible mod 256
        let add = (seed % 256) as u8;
        let mut ops = vec![
            Op::Recv { channel: input },
            Op::Compute {
                label: format!("stage{pe}"),
                work: Box::new(move |l| {
                    let v = l.take_from(input).expect("message");
                    let out: Vec<u8> = v
                        .iter()
                        .map(|&b| b.wrapping_mul(mul).wrapping_add(add))
                        .collect();
                    let mut acc = l.store.remove("acc").unwrap_or_default();
                    acc.push(out[0]);
                    l.store.insert("acc".into(), acc);
                    l.store.insert("fwd".into(), out);
                    1
                }),
            },
        ];
        if pe != n - 1 {
            ops.push(Op::Send {
                channel: ChannelId(pe),
                payload: Box::new(|l| l.store.get("fwd").cloned().expect("staged")),
            });
        }
        programs.push(Program::new(ops, p.iterations));
    }
    (specs, programs)
}

/// Per-channel send and receive digest sequences of a captured event
/// stream — the trace-level fingerprint two engines must share.
fn channel_digests(events: &[ProbeEvent]) -> (HashMap<usize, Vec<u64>>, HashMap<usize, Vec<u64>>) {
    let mut sends: HashMap<usize, Vec<u64>> = HashMap::new();
    let mut recvs: HashMap<usize, Vec<u64>> = HashMap::new();
    for ev in events {
        match ev.kind {
            ProbeKind::Send {
                channel, digest, ..
            } => sends.entry(channel.0).or_default().push(digest),
            ProbeKind::Recv {
                channel, digest, ..
            } => recvs.entry(channel.0).or_default().push(digest),
            _ => {}
        }
    }
    (sends, recvs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DES, LockedTransport, and RingTransport must produce identical
    /// stores, per-channel message orders, and — under trace capture —
    /// identical per-channel digest sequences with a clean conformance
    /// replay.
    #[test]
    fn all_three_engines_agree_on_random_pipelines(
        n_pes in 2u64..5,
        payload in 1u64..9,
        cap_msgs in 1u64..5,
        iterations in 1u64..21,
        seed in 0u64..256,
    ) {
        let p = PipelineParams { n_pes, payload, cap_msgs, iterations, seed };

        // Reference: the discrete-event engine, traced.
        let (specs, programs) = random_pipeline(p);
        let mut machine = Machine::new();
        for s in &specs {
            machine.add_channel(*s);
        }
        for prog in programs {
            machine.add_pe(prog);
        }
        let ring = Arc::new(RingTracer::new(n_pes as usize, 4096));
        machine.set_tracer(ring.clone());
        let des = machine.run().expect("DES run");
        let des_trace = ring.finish(TraceMeta::new(ClockKind::Cycles));
        prop_assert_eq!(des_trace.meta.dropped, 0);
        let des_report = check(&des_trace);
        prop_assert!(
            des_report.diagnostics.is_empty(),
            "DES trace must replay clean:\n{}", des_report.render_human()
        );
        let (des_sends, des_recvs) = channel_digests(&des_trace.events);
        // Every message the pipeline carries is accounted for: channel 0
        // sees one send per iteration.
        prop_assert_eq!(des_sends[&0].len() as u64, iterations);

        for kind in [
            TransportKind::Locked,
            TransportKind::Ring,
            TransportKind::Pointer,
        ] {
            let (specs, programs) = random_pipeline(p);
            let ring = Arc::new(RingTracer::new(n_pes as usize, 4096));
            let threaded = ThreadedRunner::new()
                .transport(kind)
                .timeout(Duration::from_secs(20))
                .tracer(ring.clone())
                .run(&specs, programs)
                .expect("threaded run");
            for (i, t) in threaded.iter().enumerate() {
                prop_assert_eq!(
                    &des.locals[i].store, &t.store,
                    "store mismatch on PE {} under {:?} with {:?}", i, kind, p
                );
                prop_assert_eq!(
                    des.locals[i].leftover_inbox, t.leftover_inbox,
                    "inbox mismatch on PE {} under {:?} with {:?}", i, kind, p
                );
            }
            let trace = ring.finish(TraceMeta::new(ClockKind::Nanos));
            prop_assert_eq!(trace.meta.dropped, 0);
            let report = check(&trace);
            prop_assert!(
                report.diagnostics.is_empty(),
                "{:?} trace must replay clean:\n{}", kind, report.render_human()
            );
            let (sends, recvs) = channel_digests(&trace.events);
            prop_assert_eq!(
                &sends, &des_sends,
                "send digests diverge under {:?} with {:?}", kind, p
            );
            prop_assert_eq!(
                &recvs, &des_recvs,
                "recv digests diverge under {:?} with {:?}", kind, p
            );
        }
    }
}

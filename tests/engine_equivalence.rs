//! The discrete-event engine and the OS-thread runner must agree
//! functionally on identical programs: same stores, same per-channel
//! message order — protocol logic that only works under the event
//! queue's serialization would be a bug.

use std::time::Duration;

use spi_repro::platform::{run_threaded, ChannelId, ChannelSpec, Machine, Op, Program};

/// Builds the same 3-PE pipeline twice (programs contain closures and
/// cannot be cloned).
fn pipeline_programs() -> (Vec<ChannelSpec>, Vec<Program>) {
    let specs = vec![ChannelSpec::default(), ChannelSpec::default()];
    let c1 = ChannelId(0);
    let c2 = ChannelId(1);
    let producer = Program::new(
        vec![Op::Send {
            channel: c1,
            payload: Box::new(|l| vec![(l.iter * 3 % 251) as u8]),
        }],
        25,
    );
    let transformer = Program::new(
        vec![
            Op::Recv { channel: c1 },
            Op::Compute {
                label: "xform".into(),
                work: Box::new(move |l| {
                    let v = l.take_from(c1).expect("input");
                    l.store.insert("fwd".into(), vec![v[0].wrapping_mul(2)]);
                    7
                }),
            },
            Op::Send {
                channel: c2,
                payload: Box::new(|l| l.store.get("fwd").cloned().expect("staged")),
            },
        ],
        25,
    );
    let collector = Program::new(
        vec![
            Op::Recv { channel: c2 },
            Op::Compute {
                label: "collect".into(),
                work: Box::new(move |l| {
                    let v = l.take_from(c2).expect("input");
                    let mut acc = l.store.remove("acc").unwrap_or_default();
                    acc.push(v[0]);
                    l.store.insert("acc".into(), acc);
                    3
                }),
            },
        ],
        25,
    );
    (specs, vec![producer, transformer, collector])
}

#[test]
fn des_and_threads_produce_identical_stores() {
    // DES run.
    let (specs, programs) = pipeline_programs();
    let mut machine = Machine::new();
    for s in &specs {
        machine.add_channel(*s);
    }
    for p in programs {
        machine.add_pe(p);
    }
    let des = machine.run().expect("DES run");

    // Threaded run of freshly built identical programs.
    let (specs, programs) = pipeline_programs();
    let threaded = run_threaded(&specs, programs, Duration::from_secs(10)).expect("threaded run");

    for (i, t) in threaded.iter().enumerate() {
        assert_eq!(des.locals[i].store, t.store, "store mismatch on PE {i}");
        assert_eq!(des.locals[i].leftover_inbox, t.leftover_inbox);
    }
    // The collector saw the full transformed sequence, in order.
    let acc = &threaded[2].store["acc"];
    assert_eq!(acc.len(), 25);
    for (iter, &v) in acc.iter().enumerate() {
        assert_eq!(v, ((iter as u64 * 3 % 251) as u8).wrapping_mul(2));
    }
}

#[test]
fn engines_agree_with_prologues_and_backpressure() {
    let build = || {
        let specs = vec![ChannelSpec {
            capacity_bytes: 8, // tight: forces back-pressure
            ..ChannelSpec::default()
        }];
        let ch = ChannelId(0);
        let mut producer = Program::new(
            vec![Op::Send {
                channel: ch,
                payload: Box::new(|l| vec![l.iter as u8; 4]),
            }],
            10,
        );
        // Prologue primes one extra message.
        producer.prologue = vec![Op::Send {
            channel: ch,
            payload: Box::new(|_| vec![0xFF; 4]),
        }];
        let consumer = Program::new(
            vec![
                Op::Recv { channel: ch },
                Op::Compute {
                    label: "fold".into(),
                    work: Box::new(move |l| {
                        let v = l.take_from(ch).expect("msg");
                        let mut acc = l.store.remove("acc").unwrap_or_default();
                        acc.push(v[0]);
                        l.store.insert("acc".into(), acc);
                        11
                    }),
                },
            ],
            11, // 10 + the primed message
        );
        (specs, vec![producer, consumer])
    };

    let (specs, programs) = build();
    let mut machine = Machine::new();
    for s in &specs {
        machine.add_channel(*s);
    }
    for p in programs {
        machine.add_pe(p);
    }
    let des = machine.run().expect("DES run");

    let (specs, programs) = build();
    let threaded = run_threaded(&specs, programs, Duration::from_secs(10)).expect("threads");

    assert_eq!(des.locals[1].store, threaded[1].store);
    let acc = &threaded[1].store["acc"];
    assert_eq!(acc[0], 0xFF, "primed message arrives first");
    assert_eq!(acc.len(), 11);
}

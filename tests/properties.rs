//! Property-based tests over cross-crate invariants.

use proptest::prelude::*;

use spi_repro::dataflow::{
    FirePolicy, LengthSignal, PrecedenceGraph, SdfGraph, TokenPacker, VtsConversion,
};
use spi_repro::dsp::huffman::HuffmanCode;
use spi_repro::dsp::particle::{allocate_counts, plan_exchanges};
use spi_repro::sched::{Assignment, IpcGraph, ProcId, Protocol, SelfTimedSchedule, SyncGraph};

// Random two-actor graphs: the balance equation q_a·p = q_b·c must hold
// and the repetition vector must be minimal (gcd 1).
proptest! {
    #[test]
    fn repetition_vector_satisfies_balance(p in 1u32..40, c in 1u32..40) {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1);
        let b = g.add_actor("b", 1);
        g.add_edge(a, b, p, c, 0, 4).expect("edge");
        let q = g.repetition_vector().expect("consistent");
        prop_assert_eq!(q[a] * u64::from(p), q[b] * u64::from(c));
        prop_assert_eq!(spi_repro::dataflow::gcd(q[a], q[b]), 1);
    }

    #[test]
    fn chain_schedules_return_edges_to_delay_count(
        rates in prop::collection::vec((1u32..6, 1u32..6, 0u64..4), 1..5)
    ) {
        let mut g = SdfGraph::new();
        let mut prev = g.add_actor("a0", 1);
        let mut edges = Vec::new();
        for (i, &(p, c, d)) in rates.iter().enumerate() {
            let next = g.add_actor(format!("a{}", i + 1), 1);
            edges.push(g.add_edge(prev, next, p, c, d, 4).expect("edge"));
            prev = next;
        }
        let report = g.class_s_schedule(FirePolicy::FewestFirings).expect("live chain");
        // Replay and check conservation.
        let mut tokens: Vec<i64> = g.edges().map(|(_, e)| e.delay as i64).collect();
        for &f in report.schedule.firings() {
            for e in g.in_edges(f) {
                tokens[e.0] -= i64::from(g.edge(e).consume.bound());
                prop_assert!(tokens[e.0] >= 0);
            }
            for e in g.out_edges(f) {
                tokens[e.0] += i64::from(g.edge(e).produce.bound());
            }
        }
        for ((_, e), t) in g.edges().zip(tokens) {
            prop_assert_eq!(t, e.delay as i64);
        }
    }

    #[test]
    fn vts_conversion_always_yields_pure_sdf(
        bounds in prop::collection::vec((1u32..64, 1u32..64), 1..6)
    ) {
        let mut g = SdfGraph::new();
        let mut prev = g.add_actor("a0", 1);
        for (i, &(pb, cb)) in bounds.iter().enumerate() {
            let next = g.add_actor(format!("a{}", i + 1), 1);
            g.add_dynamic_edge(prev, next, pb, cb, 0, 4).expect("edge");
            prev = next;
        }
        let vts = VtsConversion::convert(&g).expect("bounded");
        prop_assert!(vts.graph().is_pure_sdf());
        let q = vts.graph().repetition_vector().expect("rate-1 chain");
        prop_assert!(q.iter().all(|(_, n)| n == 1));
        for info in vts.converted_edges() {
            prop_assert_eq!(
                info.b_max,
                u64::from(info.produce_bound.max(info.consume_bound)) * 4
            );
        }
    }

    #[test]
    fn token_packer_roundtrips(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        header in any::<bool>(),
    ) {
        // Pad to whole 4-byte tokens.
        let mut raw = payload;
        raw.truncate(raw.len() / 4 * 4);
        let signal = if header { LengthSignal::Header } else { LengthSignal::Delimiter };
        let packer = TokenPacker::new(4, 64, signal);
        let framed = packer.pack(&raw).expect("within bound");
        prop_assert!(framed.len() <= packer.max_packed_bytes());
        let (back, used) = packer.unpack(&framed).expect("roundtrip");
        prop_assert_eq!(back, raw);
        prop_assert_eq!(used, framed.len());
    }

    #[test]
    fn redundancy_removal_preserves_constraints(seed in 0u64..500) {
        // Random 3-processor pipeline-ish graphs: after removal, every
        // removed edge's ordering must still be enforced by some path
        // with no greater delay.
        let n_actors = 3 + (seed % 4) as usize;
        let mut g = SdfGraph::new();
        let actors: Vec<_> = (0..n_actors).map(|i| g.add_actor(format!("v{i}"), 5)).collect();
        for w in actors.windows(2) {
            g.add_edge(w[0], w[1], 1, 1, 0, 4).expect("edge");
        }
        // A feedback edge with enough delay to stay live.
        g.add_edge(actors[n_actors - 1], actors[0], 1, 1, 2, 4).expect("feedback");
        let pg = PrecedenceGraph::expand(&g).expect("consistent");
        let assign = Assignment::by_actor(&pg, 3, |a| ProcId(a.0 % 3)).expect("assigned");
        let st = SelfTimedSchedule::from_assignment(&pg, assign).expect("scheduled");
        let ipc = IpcGraph::build(&g, &pg, &st).expect("built");
        let ack = 1 + seed % 3;
        let original = SyncGraph::from_ipc(&ipc, |_| Protocol::Ubs { ack_window: ack })
            .expect("live");
        let mut reduced = original.clone();
        reduced.remove_redundant();
        prop_assert!(!reduced.has_zero_delay_cycle());
        // Every original edge's constraint is still enforced: a path in
        // the reduced graph with delay ≤ the edge's delay.
        let n = reduced.tasks().len();
        let mut dist = vec![vec![u64::MAX; n]; n];
        for (i, row) in dist.iter_mut().enumerate() { row[i] = 0; }
        for e in reduced.edges() {
            let d = &mut dist[e.from.0][e.to.0];
            *d = (*d).min(e.delay);
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if dist[i][k] != u64::MAX && dist[k][j] != u64::MAX {
                        dist[i][j] = dist[i][j].min(dist[i][k] + dist[k][j]);
                    }
                }
            }
        }
        for e in original.edges() {
            prop_assert!(
                dist[e.from.0][e.to.0] <= e.delay,
                "constraint {} -> {} (d={}) lost", e.from.0, e.to.0, e.delay
            );
        }
    }

    #[test]
    fn huffman_roundtrips_arbitrary_symbol_streams(
        symbols in prop::collection::vec(0u16..32, 1..300)
    ) {
        let code = HuffmanCode::from_symbols(&symbols).expect("nonempty");
        let (bits, bitlen) = code.encode(&symbols).expect("known symbols");
        let back = code.decode(&bits, bitlen, symbols.len()).expect("roundtrip");
        prop_assert_eq!(back, symbols);
    }

    #[test]
    fn allocation_and_exchange_always_balance(
        weights in prop::collection::vec(0.0f64..100.0, 1..8),
        per_pe in 1usize..50,
    ) {
        let n = weights.len();
        let total = per_pe * n;
        let counts = allocate_counts(&weights, total);
        prop_assert_eq!(counts.iter().sum::<usize>(), total);
        let plan = plan_exchanges(&counts, per_pe);
        let mut after = counts.clone();
        for x in &plan {
            prop_assert!(x.count > 0);
            after[x.from] -= x.count;
            after[x.to] += x.count;
        }
        prop_assert!(after.iter().all(|&c| c == per_pe));
    }

    #[test]
    fn spi_message_codecs_roundtrip(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        edge in 0usize..1000,
    ) {
        use spi_repro::spi::{decode_dynamic, decode_static, encode_dynamic, encode_static};
        use spi_repro::dataflow::EdgeId;
        let e = EdgeId(edge);
        let s = encode_static(e, &payload).expect("edge id fits the header");
        prop_assert_eq!(decode_static(&s, e, payload.len()).expect("static"), payload.clone());
        let d = encode_dynamic(e, &payload).expect("edge id fits the header");
        prop_assert_eq!(decode_dynamic(&d, e, payload.len()).expect("dynamic"), payload);
    }
}

//! Integration tests for the beyond-the-paper extensions: CSDF, the
//! filter bank, fully-static scheduling, the shared bus, DIF round-trips
//! and trace rendering.

use spi_repro::apps::{FilterBankApp, FilterBankConfig, PrognosisApp, PrognosisConfig};
use spi_repro::dataflow::{dif, CsdfGraph, PhaseRates};
use spi_repro::platform::BusSpec;
use spi_repro::sched::ProcId;
use spi_repro::spi::{SchedulingMode, SpiSystemBuilder};

#[test]
fn filter_bank_output_is_band_limited() {
    // The low band (cutoff 0.2) must carry more energy than the high
    // band (cutoff 0.05) for a mixed-tone input.
    let cfg = FilterBankConfig {
        frame: 256,
        taps: 31,
        ..Default::default()
    };
    let app = FilterBankApp::new(cfg).expect("valid config");
    let sys = app.system(8).expect("buildable");
    sys.run().expect("clean run");
    let out = app.output.lock().expect("output");
    let split = cfg.frame / cfg.low_decimation;
    let (mut low_e, mut high_e) = (0.0, 0.0);
    for frame in out.iter().skip(2) {
        low_e += frame[..split].iter().map(|x| x * x).sum::<f64>();
        high_e += frame[split..].iter().map(|x| x * x).sum::<f64>();
    }
    assert!(
        low_e > high_e,
        "wider-band branch keeps more energy: low {low_e} vs high {high_e}"
    );
}

#[test]
fn four_pe_prognosis_extension_runs() {
    // The paper could only fit 2 PEs on its FPGA; the simulator scales.
    let app = PrognosisApp::new(PrognosisConfig {
        n_pes: 4,
        particles: 240,
        steps: 30,
        ..Default::default()
    })
    .expect("valid config");
    let sys = app.system(30).expect("buildable");
    sys.run().expect("clean run");
    let rmse = app.tracking_rmse(8);
    assert!(rmse < 0.4, "4-PE filter still tracks: {rmse}");
}

#[test]
fn app_graphs_roundtrip_through_dif() {
    let app = PrognosisApp::new(PrognosisConfig::default()).expect("valid config");
    let text = dif::to_dif(&app.graph, "prognosis");
    let back = dif::from_dif(&text).expect("self-produced text parses");
    assert_eq!(app.graph, back);
}

#[test]
fn csdf_reduction_feeds_spi_directly() {
    // Reduce a CSDF distributor and lower the reduction through SPI.
    let mut csdf = CsdfGraph::new();
    let src = csdf.add_actor("src", 10);
    let snk = csdf.add_actor("snk", 10);
    csdf.add_edge(
        src,
        snk,
        PhaseRates::new(vec![2, 1]).expect("valid"),
        PhaseRates::constant(1).expect("valid"),
        0,
        4,
    )
    .expect("edge");
    let reduction = csdf.to_sdf().expect("reducible");
    let g = reduction.graph().clone();
    let e = g.edges().next().expect("one edge").0;
    let mut b = SpiSystemBuilder::new(g);
    b.actor(src, move |ctx: &mut spi_repro::spi::Firing| {
        // One SDF firing = the 2-phase cycle = 3 raw tokens.
        ctx.set_output(e, vec![ctx.iter as u8; 3 * 4]);
        20
    });
    b.actor(snk, move |ctx: &mut spi_repro::spi::Firing| {
        assert_eq!(ctx.input(e).len(), 4, "per firing: 1 token of 4 B");
        10
    });
    b.iterations(6);
    let sys = b.build(2, |a| ProcId(a.0)).expect("buildable");
    sys.run().expect("clean run");
}

#[test]
fn fully_static_and_bus_compose() {
    // Worst-case platform: static releases over a shared bus — must
    // still complete and be slower than the self-timed p2p baseline.
    let build = |static_mode: bool, bus: bool| {
        let mut g = spi_repro::dataflow::SdfGraph::new();
        let a = g.add_actor("a", 50);
        let b_ = g.add_actor("b", 50);
        let e = g.add_edge(a, b_, 1, 1, 0, 64).expect("edge");
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, move |ctx: &mut spi_repro::spi::Firing| {
            ctx.set_output(e, vec![0; 64]);
            50
        });
        b.actor(b_, |_: &mut spi_repro::spi::Firing| 50);
        b.iterations(20);
        if static_mode {
            b.scheduling_mode(SchedulingMode::FullyStatic { slack_percent: 25 });
        }
        if bus {
            b.shared_bus(BusSpec {
                arbitration_cycles: 8,
            });
        }
        let sys = b.build(2, |x| ProcId(x.0)).expect("buildable");
        sys.run().expect("clean run").sim.makespan_cycles
    };
    let baseline = build(false, false);
    let worst = build(true, true);
    assert!(
        worst >= baseline,
        "baseline {baseline} vs static+bus {worst}"
    );
}

#[test]
fn spi_systems_run_identically_on_real_threads() {
    use spi_repro::apps::{ErrorStageApp, ErrorStageConfig};
    use spi_repro::platform::{ThreadedRunner, TransportKind};

    let build = || {
        let app = ErrorStageApp::new(ErrorStageConfig {
            n_pes: 3,
            frame: 120,
            order: 5,
            vary_rates: true,
            seed: 31,
        })
        .expect("valid config");
        let sys = app.system(4).expect("buildable");
        (app, sys)
    };
    // DES run.
    let (app_des, sys) = build();
    sys.run().expect("DES run");
    let des_residuals = app_des.residual_energy.lock().expect("res").clone();
    // Threaded runs of identical, freshly built systems — once per
    // transport implementation.
    for kind in [TransportKind::Locked, TransportKind::Ring] {
        let (app_thr, sys) = build();
        sys.run_threaded_with(&ThreadedRunner::new().transport(kind))
            .expect("threaded run");
        let thr_residuals = app_thr.residual_energy.lock().expect("res").clone();
        assert_eq!(des_residuals.len(), 4);
        assert_eq!(
            des_residuals, thr_residuals,
            "engines must agree bit-for-bit ({kind:?})"
        );
    }
}

#[test]
fn trace_gantt_covers_all_pes() {
    let mut g = spi_repro::dataflow::SdfGraph::new();
    let a = g.add_actor("producer", 10);
    let b_ = g.add_actor("consumer", 10);
    let e = g.add_edge(a, b_, 1, 1, 0, 4).expect("edge");
    let mut b = SpiSystemBuilder::new(g);
    b.actor(a, move |ctx: &mut spi_repro::spi::Firing| {
        ctx.set_output(e, vec![0; 4]);
        10
    });
    b.actor(b_, |_: &mut spi_repro::spi::Firing| 10);
    b.iterations(3);
    b.trace(true);
    let sys = b.build(2, |x| ProcId(x.0)).expect("buildable");
    let report = sys.run().expect("clean run");
    let gantt = report.sim.render_gantt();
    assert!(gantt.contains("pe0:") && gantt.contains("pe1:"));
    assert!(gantt.contains("fire:producer"));
}

//! Cross-crate integration tests: the full stack from dataflow model to
//! timed simulation, exercised through realistic configurations.

use spi_repro::apps::{
    ErrorStageApp, ErrorStageConfig, PrognosisApp, PrognosisConfig, SpeechApp, SpeechConfig,
};
use spi_repro::dataflow::SdfGraph;
use spi_repro::sched::ProcId;
use spi_repro::spi::{Firing, SpiSystemBuilder};

#[test]
fn speech_pipeline_scales_and_stays_correct() {
    // Period decreases with PE count while every configuration produces
    // identical residual energies (vary_rates off for exact comparison).
    let run = |n: usize| {
        let app = SpeechApp::new(SpeechConfig {
            n_pes: n,
            max_frame: 240,
            max_order: 6,
            vary_rates: false,
            seed: 5,
        })
        .expect("valid config");
        let sys = app.system(6).expect("buildable");
        let report = sys.run().expect("clean run");
        let residuals: Vec<f64> = app
            .output
            .lock()
            .expect("output")
            .iter()
            .map(|f| f.residual_energy)
            .collect();
        (report.period_us(), residuals)
    };
    let (_, r1) = run(1);
    let (t2, r2) = run(2);
    let (t4, r4) = run(4);
    assert!(t4 < t2, "more PEs must not be slower: t2={t2} t4={t4}");
    for ((a, b), c) in r1.iter().zip(&r2).zip(&r4) {
        assert!((a - b).abs() / a.max(1e-12) < 0.05);
        assert!((a - c).abs() / a.max(1e-12) < 0.05);
    }
}

#[test]
fn prognosis_estimates_insensitive_to_distribution() {
    // 1-PE and 2-PE filters track the same trajectory to similar error.
    let rmse = |n: usize| {
        let app = PrognosisApp::new(PrognosisConfig {
            n_pes: n,
            particles: 240,
            steps: 50,
            ..Default::default()
        })
        .expect("valid config");
        let sys = app.system(50).expect("buildable");
        sys.run().expect("clean run");
        app.tracking_rmse(10)
    };
    let e1 = rmse(1);
    let e2 = rmse(2);
    assert!(e1 < 0.3, "serial filter tracks: {e1}");
    assert!(e2 < 0.3, "distributed filter tracks: {e2}");
}

#[test]
fn error_stage_handles_every_pe_count() {
    for n in 1..=4 {
        let app = ErrorStageApp::new(ErrorStageConfig {
            n_pes: n,
            ..Default::default()
        })
        .expect("valid config");
        let sys = app.system(3).expect("buildable");
        let report = sys.run().expect("clean run");
        assert_eq!(app.residual_energy.lock().expect("res").len(), 3);
        assert!(report.sim.total_messages() >= 3 * 3 * n as u64);
    }
}

#[test]
fn stateful_actor_accumulates_across_iterations() {
    // Actor state (the `self` of ActorFire) persists between firings.
    let mut g = SdfGraph::new();
    let a = g.add_actor("counter", 10);
    let b = g.add_actor("sink", 10);
    let e = g.add_edge(a, b, 1, 1, 0, 8).expect("edge");
    let mut builder = SpiSystemBuilder::new(g);
    let mut total = 0u64;
    builder.actor(a, move |ctx: &mut Firing| {
        total += ctx.iter + 1;
        ctx.set_output(e, total.to_le_bytes().to_vec());
        10
    });
    builder.actor(b, move |ctx: &mut Firing| {
        let got = u64::from_le_bytes(ctx.input(e).try_into().expect("8B"));
        let n = ctx.iter + 1;
        assert_eq!(got, n * (n + 1) / 2, "running triangular sum");
        10
    });
    builder.iterations(20);
    let sys = builder.build(2, |x| ProcId(x.0)).expect("buildable");
    sys.run().expect("clean run");
}

#[test]
fn three_stage_pipeline_with_feedback_runs_sustained() {
    // src → work → sink with sink feeding a gain back to src one
    // iteration later: exercises BBS feedback + pipeline fill together.
    let mut g = SdfGraph::new();
    let src = g.add_actor("src", 20);
    let work = g.add_actor("work", 40);
    let sink = g.add_actor("sink", 20);
    let e1 = g.add_edge(src, work, 1, 1, 0, 8).expect("edge");
    let e2 = g.add_edge(work, sink, 1, 1, 0, 8).expect("edge");
    let fb = g.add_edge(sink, src, 1, 1, 1, 8).expect("feedback");
    let mut builder = SpiSystemBuilder::new(g);
    builder.actor(src, move |ctx: &mut Firing| {
        let gain = f64::from_le_bytes(ctx.input(fb).try_into().expect("8B"));
        let x = (ctx.iter as f64 + 1.0) * (1.0 + gain);
        ctx.set_output(e1, x.to_le_bytes().to_vec());
        20
    });
    builder.actor(work, move |ctx: &mut Firing| {
        let x = f64::from_le_bytes(ctx.input(e1).try_into().expect("8B"));
        ctx.set_output(e2, (x * 2.0).to_le_bytes().to_vec());
        40
    });
    builder.actor(sink, move |ctx: &mut Firing| {
        let x = f64::from_le_bytes(ctx.input(e2).try_into().expect("8B"));
        // Send back a bounded gain.
        ctx.set_output(fb, (0.1 * x.tanh()).to_le_bytes().to_vec());
        20
    });
    builder.iterations(30);
    let sys = builder.build(3, |x| ProcId(x.0)).expect("buildable");
    let report = sys.run().expect("clean run");
    // 30 iterations × 3 cross edges + 1 pipeline fill on the feedback.
    assert_eq!(report.sim.total_messages(), 30 * 3 + 1);
}

#[test]
fn resync_preserves_functional_results() {
    // Residuals must be bit-identical with and without resynchronization
    // (the optimization touches synchronization only, never data).
    let run = |resync: bool| {
        let app = ErrorStageApp::new(ErrorStageConfig {
            n_pes: 3,
            frame: 180,
            order: 6,
            vary_rates: true,
            seed: 9,
        })
        .expect("valid config");
        let mut builder = SpiSystemBuilder::new(app.graph.clone());
        app.configure(&mut builder);
        builder.iterations(5);
        builder.resynchronization(resync);
        builder.force_ubs(true);
        let sys = app.build_with(builder).expect("buildable");
        sys.run().expect("clean run");
        let r = app.residual_energy.lock().expect("res").clone();
        r
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn delimiter_signalling_is_functionally_identical() {
    use spi_repro::dataflow::LengthSignal;
    let run = |signal: LengthSignal| {
        let app = ErrorStageApp::new(ErrorStageConfig {
            n_pes: 2,
            frame: 120,
            order: 4,
            vary_rates: true,
            seed: 13,
        })
        .expect("valid config");
        let mut builder = SpiSystemBuilder::new(app.graph.clone());
        app.configure(&mut builder);
        builder.iterations(4);
        builder.length_signal(signal);
        let sys = app.build_with(builder).expect("buildable");
        sys.run().expect("clean run");
        let r = app.residual_energy.lock().expect("res").clone();
        r
    };
    assert_eq!(run(LengthSignal::Header), run(LengthSignal::Delimiter));
}

//! Fault-recovery integration: every fault kind injected into the
//! filter-bank application, with fixed seeds, must be absorbed by the
//! supervised runner **byte-identically** under the strict retry
//! policy.
//!
//! This is the application-level face of the tentpole robustness claim:
//! the chaos proptest (`crates/fault/tests/chaos.rs`) sweeps randomized
//! plans over synthetic pipelines; here each [`FaultKind`] is pinned,
//! one at a time, against the paper's evaluation application, and the
//! decimated band outputs are compared against a fault-free reference
//! run. The degrade policy is `Fail`, so success *means* exactness —
//! there is no substitution path that could mask corruption.

use std::sync::Arc;
use std::time::Duration;

use spi_repro::apps::{FilterBankApp, FilterBankConfig};
use spi_repro::fault::{FaultKind, FaultPlan};
use spi_repro::platform::{ChannelId, SupervisionPolicy, ThreadedRunner, TransportKind};
use spi_repro::spi::SpiSystem;
use spi_repro::trace::ClockKind;

const ITERATIONS: u64 = 6;

/// Fresh app + system (programs hold closures and cannot be reused
/// across runs; the fixed seed makes every build identical).
fn build() -> (Arc<std::sync::Mutex<Vec<Vec<f64>>>>, SpiSystem) {
    let app = FilterBankApp::new(FilterBankConfig::default()).expect("filter bank builds");
    let output = app.output.clone();
    let system = app.system(ITERATIONS).expect("system builds");
    (output, system)
}

/// Fault-free reference: the discrete-event engine's band outputs.
fn reference() -> Vec<Vec<f64>> {
    let (output, system) = build();
    system.run().expect("fault-free DES run");
    let out = output.lock().unwrap().clone();
    assert!(!out.is_empty(), "combiner produced output");
    out
}

/// The strict policy every recovery test runs under: generous per-op
/// deadline (faults are injected, not timing-related), bounded retries,
/// no degradation allowed.
fn strict() -> SupervisionPolicy {
    SupervisionPolicy::retry(3).with_deadline(Duration::from_secs(2))
}

/// Runs the filter bank supervised with `kind` injected at a fixed
/// `(channel, message_index)` slot on the source→low data channel, and
/// asserts byte-identical convergence plus a non-vacuous injection.
fn recovers_byte_identically(kind: FaultKind, transport: TransportKind) {
    let want = reference();
    let (output, system) = build();
    // Edge 0 is source→low; its data channel carries one frame per
    // iteration, so message index 1 is the second frame.
    let data_ch = system.edge_plans()[&system.edge_plans().keys().min().copied().unwrap()].data_ch;
    let plan = FaultPlan::new().inject(data_ch, 1, kind);
    let (decorator, log) = plan.into_decorator().expect("valid plan");
    let results = system
        .run_threaded_with(
            &ThreadedRunner::new()
                .transport(transport)
                .supervise(strict())
                .decorate_transports(decorator),
        )
        .unwrap_or_else(|e| panic!("{kind} under {transport:?} must recover: {e}"));
    assert!(!results.is_empty());
    let fired = log.lock().unwrap();
    assert_eq!(fired.len(), 1, "the planned {kind} fired exactly once");
    assert_eq!(fired[0].channel, data_ch);
    let got = output.lock().unwrap().clone();
    assert_eq!(
        want, got,
        "band outputs must match the fault-free reference bit-for-bit \
         after a recovered {kind} ({transport:?})"
    );
}

#[test]
fn fault_free_supervised_run_matches_reference() {
    let want = reference();
    for transport in [TransportKind::Locked, TransportKind::Ring] {
        let (output, system) = build();
        let results = system
            .run_threaded_with(
                &ThreadedRunner::new()
                    .transport(transport)
                    .supervise(strict()),
            )
            .expect("fault-free supervised run");
        assert!(!results.is_empty());
        assert_eq!(want, output.lock().unwrap().clone(), "{transport:?}");
    }
}

#[test]
fn delay_fault_recovers_byte_identically() {
    recovers_byte_identically(FaultKind::Delay { micros: 500 }, TransportKind::Locked);
    recovers_byte_identically(FaultKind::Delay { micros: 500 }, TransportKind::Ring);
}

#[test]
fn stall_fault_recovers_byte_identically() {
    // 30 ms is a real scheduling perturbation but far under the 2 s
    // per-attempt deadline.
    recovers_byte_identically(FaultKind::Stall { millis: 30 }, TransportKind::Locked);
    recovers_byte_identically(FaultKind::Stall { millis: 30 }, TransportKind::Ring);
}

#[test]
fn drop_fault_recovers_byte_identically() {
    recovers_byte_identically(FaultKind::Drop, TransportKind::Locked);
    recovers_byte_identically(FaultKind::Drop, TransportKind::Ring);
}

#[test]
fn duplicate_fault_recovers_byte_identically() {
    recovers_byte_identically(FaultKind::Duplicate, TransportKind::Locked);
    recovers_byte_identically(FaultKind::Duplicate, TransportKind::Ring);
}

#[test]
fn corrupt_fault_recovers_byte_identically() {
    recovers_byte_identically(FaultKind::Corrupt, TransportKind::Locked);
    recovers_byte_identically(FaultKind::Corrupt, TransportKind::Ring);
}

#[test]
fn faults_on_every_data_channel_recover_together() {
    // One benign fault per inter-processor data edge, all in one run.
    let want = reference();
    let (output, system) = build();
    let mut channels: Vec<ChannelId> = system.edge_plans().values().map(|p| p.data_ch).collect();
    channels.sort();
    let kinds = [
        FaultKind::Drop,
        FaultKind::Corrupt,
        FaultKind::Duplicate,
        FaultKind::Delay { micros: 200 },
    ];
    let mut plan = FaultPlan::new();
    for (i, &ch) in channels.iter().enumerate() {
        plan = plan.inject(ch, (i as u64) % ITERATIONS, kinds[i % kinds.len()]);
    }
    let (decorator, log) = plan.into_decorator().expect("valid plan");
    system
        .run_threaded_with(
            &ThreadedRunner::new()
                .supervise(strict())
                .decorate_transports(decorator),
        )
        .expect("multi-edge fault run recovers");
    assert_eq!(log.lock().unwrap().len(), channels.len());
    assert_eq!(want, output.lock().unwrap().clone());
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One randomized-but-seeded chaos run: up to three faults drawn from
/// `seed` land on random data edges, and the supervised run must still
/// match the fault-free reference bit-for-bit.
fn randomized_plan_recovers(seed: u64) {
    let want = reference();
    let (output, system) = build();
    let mut channels: Vec<ChannelId> = system.edge_plans().values().map(|p| p.data_ch).collect();
    channels.sort();
    let kinds = [
        FaultKind::Drop,
        FaultKind::Corrupt,
        FaultKind::Duplicate,
        FaultKind::Delay { micros: 200 },
        FaultKind::Stall { millis: 10 },
    ];
    let mut s = seed ^ 0xA076_1D64_78BD_642F;
    let mut used = std::collections::HashSet::new();
    let mut plan = FaultPlan::new();
    for _ in 0..3 {
        let ch = channels[splitmix(&mut s) as usize % channels.len()];
        let idx = splitmix(&mut s) % ITERATIONS;
        if !used.insert((ch, idx)) {
            continue; // same slot drawn twice: keep the first fault
        }
        plan = plan.inject(ch, idx, kinds[splitmix(&mut s) as usize % kinds.len()]);
    }
    let planned = plan.len();
    let (decorator, log) = plan.into_decorator().expect("valid plan");
    system
        .run_threaded_with(
            &ThreadedRunner::new()
                .supervise(strict())
                .decorate_transports(decorator),
        )
        .unwrap_or_else(|e| panic!("seed {seed} must recover: {e}"));
    assert_eq!(log.lock().unwrap().len(), planned, "seed {seed}");
    assert_eq!(
        want,
        output.lock().unwrap().clone(),
        "band outputs must match the fault-free reference bit-for-bit (seed {seed})"
    );
}

#[test]
fn randomized_plans_recover_and_failures_name_their_seed() {
    // `SPI_CHAOS_SEED=<n>` pins the sweep to one seed — the exact
    // command a failure report prints.
    let seeds: Vec<u64> = match std::env::var("SPI_CHAOS_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
    {
        Some(s) => vec![s],
        None => (0..3).collect(),
    };
    for seed in seeds {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            randomized_plan_recovers(seed)
        }));
        if let Err(cause) = outcome {
            eprintln!(
                "chaos seed {seed} failed\n\
                 replay: SPI_CHAOS_SEED={seed} cargo test --test fault_recovery \
                 randomized_plans_recover -- --nocapture"
            );
            std::panic::resume_unwind(cause);
        }
    }
}

#[test]
fn predicted_makespan_derives_a_sane_supervision_deadline() {
    let (_, system) = build();
    // 100 MHz default clock; the analytic deadline must exist for the
    // baseline configuration and respect the 1 ms OS-jitter floor.
    let d = system
        .supervision_deadline(10.0)
        .expect("baseline config is analyzable");
    assert!(d >= Duration::from_millis(1), "{d:?}");
    assert!(d <= Duration::from_secs(60), "deadline stays sane: {d:?}");
    // More safety factor, no tighter deadline.
    let d2 = system.supervision_deadline(20.0).expect("same config");
    assert!(d2 >= d);
}

#[test]
fn trace_meta_supervised_declares_policy_budgets() {
    let (_, system) = build();
    let policy = strict();
    let meta = system.trace_meta_supervised(ClockKind::Nanos, &policy);
    let bounds = meta.supervision.expect("supervised meta declares bounds");
    assert_eq!(bounds.max_retries, 3);
    assert_eq!(bounds.max_degraded, 0, "Fail policy tolerates no deviation");
    assert_eq!(bounds.max_restarts, u64::from(policy.max_restarts));
    // The bounds survive the native-format roundtrip the CI gate uses.
    let parsed = spi_repro::trace::Trace::from_native(
        &spi_repro::trace::Trace {
            meta: meta.clone(),
            events: vec![],
        }
        .to_native(),
    )
    .expect("native roundtrip");
    assert_eq!(parsed.meta.supervision, Some(bounds));
}

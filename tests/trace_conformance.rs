//! Runtime conformance of a real application: a traced filterbank run
//! must stay inside every bound the static layers derived — eq. (2)
//! occupancy, eq. (1) message size, per-channel FIFO order and the
//! predicted self-timed makespan — and each `SPI08x` check must
//! actually fire when the trace is corrupted the way it guards against.

use std::sync::Arc;

use spi_repro::apps::{FilterBankApp, FilterBankConfig};
use spi_repro::trace::{check, ClockKind, RingTracer, Trace};

/// Runs the 3-PE filterbank on the DES with a RingTracer attached and
/// returns the finished cycle-clocked trace.
fn traced_filterbank(iterations: u64) -> Trace {
    let app = FilterBankApp::new(FilterBankConfig::default()).expect("filterbank builds");
    let ring = Arc::new(RingTracer::with_default_capacity(3));
    let system = app
        .system_with(iterations, |b| {
            b.tracer(ring.clone());
        })
        .expect("system builds");
    let meta = system.trace_meta(ClockKind::Cycles);
    system.run().expect("filterbank runs");
    assert_eq!(ring.dropped(), 0, "capture ring must not overflow");
    ring.finish(meta)
}

#[test]
fn filterbank_trace_conforms_to_static_bounds() {
    let trace = traced_filterbank(8);
    assert!(!trace.events.is_empty());
    assert_eq!(trace.meta.iterations, 8);
    // The filterbank has four cross-processor data edges.
    assert_eq!(trace.meta.edges.len(), 4);
    assert!(
        trace.meta.predicted_makespan_cycles.is_some(),
        "baseline self-timed config must carry a predicted bound"
    );

    let report = check(&trace);
    assert!(
        report.diagnostics.is_empty(),
        "clean run must produce no findings:\n{}",
        report.render_human()
    );
    assert!(report.channels_checked >= 4);
    assert!(
        report.messages_checked >= 8 * 4,
        "q=1 per edge per iteration"
    );
    let slack = report.slack.expect("cycle trace with bound has slack");
    assert!(
        report.observed_makespan + slack == report.predicted_makespan.unwrap(),
        "slack is the headroom under the predicted bound"
    );
    assert!(report.render_human().contains(": ok"));
}

#[test]
fn conformance_survives_native_roundtrip() {
    let trace = traced_filterbank(4);
    let text = trace.to_native();
    let back = Trace::from_native(&text).expect("roundtrip parses");
    assert_eq!(back, trace);
    let report = check(&back);
    assert!(report.diagnostics.is_empty(), "{}", report.render_human());
}

/// Applies a line-level mutation to the native text and returns the
/// checker's diagnostic codes on the corrupted trace.
fn codes_after(mutate: impl Fn(&str) -> String) -> Vec<&'static str> {
    let text = traced_filterbank(4).to_native();
    let mutated = mutate(&text);
    assert_ne!(mutated, text, "mutation must change the trace");
    let trace = Trace::from_native(&mutated).expect("mutated trace still parses");
    check(&trace).diagnostics.iter().map(|d| d.code).collect()
}

/// Rewrites one whitespace-separated field of the first line matching
/// `select`.
fn rewrite_field(text: &str, select: impl Fn(&str) -> bool, idx: usize, to: &str) -> String {
    let mut done = false;
    text.lines()
        .map(|l| {
            if !done && select(l) {
                done = true;
                let mut f: Vec<String> = l.split_whitespace().map(String::from).collect();
                f[idx] = to.to_string();
                f.join(" ")
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[test]
fn mutation_shrunk_capacity_fires_spi080() {
    // "# edge <id> ch <n> cap <B> max <m> tokens <t>": cap -> 1 byte.
    let codes = codes_after(|t| rewrite_field(t, |l| l.starts_with("# edge "), 6, "1"));
    assert!(codes.contains(&"SPI080"), "got {codes:?}");
}

#[test]
fn mutation_shrunk_message_bound_fires_spi081() {
    let codes = codes_after(|t| rewrite_field(t, |l| l.starts_with("# edge "), 8, "1"));
    assert!(codes.contains(&"SPI081"), "got {codes:?}");
}

#[test]
fn mutation_corrupted_receive_digest_fires_spi082() {
    // "E <ts> <pe> R <ch> <bytes> <digest> ...": digest -> wrong value.
    let codes =
        codes_after(|t| rewrite_field(t, |l| l.split_whitespace().nth(3) == Some("R"), 6, "12345"));
    assert!(codes.contains(&"SPI082"), "got {codes:?}");
}

#[test]
fn mutation_tiny_predicted_makespan_fires_spi083() {
    let codes =
        codes_after(|t| rewrite_field(t, |l| l.starts_with("# predicted_makespan"), 2, "1"));
    assert!(codes.contains(&"SPI083"), "got {codes:?}");
}

#[test]
fn mutation_dropped_events_fire_spi084() {
    let codes = codes_after(|t| rewrite_field(t, |l| l.starts_with("# dropped"), 2, "3"));
    assert_eq!(codes, vec!["SPI084"], "a partial stream alone only warns");
}

#[test]
fn mutation_duplicated_receive_fires_spi085() {
    // Duplicating the last receive makes receives outnumber sends on
    // its channel.
    let codes = codes_after(|t| {
        let last_recv = t
            .lines()
            .rev()
            .find(|l| l.split_whitespace().nth(3) == Some("R"))
            .expect("trace has receives")
            .to_string();
        format!("{}{}\n", t, last_recv)
    });
    assert!(codes.contains(&"SPI085"), "got {codes:?}");
}

#[test]
fn threaded_run_trace_is_fifo_clean() {
    // The threaded runner exercises the real lock-free transports; its
    // wall-clock trace must still pass FIFO, conservation and occupancy
    // replay (the cycle-denominated makespan bound does not apply).
    let app = FilterBankApp::new(FilterBankConfig::default()).expect("filterbank builds");
    let ring = Arc::new(RingTracer::with_default_capacity(3));
    let system = app
        .system_with(4, |b| {
            b.tracer(ring.clone());
        })
        .expect("system builds");
    let meta = system.trace_meta(ClockKind::Nanos);
    system.run_threaded().expect("threaded run succeeds");
    let trace = ring.finish(meta);
    assert!(!trace.events.is_empty());
    let report = check(&trace);
    assert!(
        report.diagnostics.is_empty(),
        "threaded run must conform:\n{}",
        report.render_human()
    );
    assert_eq!(
        report.predicted_makespan, None,
        "ns clock has no cycle bound"
    );
}

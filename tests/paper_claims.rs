//! Integration tests pinning the paper's qualitative claims — the
//! "shape" assertions EXPERIMENTS.md reports. Each test regenerates a
//! (reduced-size) experiment and checks the direction and rough
//! magnitude of the published result.

use spi_bench::{
    ablation_header_vs_delimiter, ablation_resync, ablation_spi_vs_mpi, ablation_vts_vs_worst_case,
    fig3_resync, fig5_resync, fig6_scaling, fig7_scaling, table1_resources, table2_resources,
};

#[test]
fn fig6_execution_time_shape() {
    let rows = fig6_scaling(&[128, 256, 384], &[1, 2, 4], 5);
    let t = |n: usize, x: usize| {
        rows.iter()
            .find(|r| r.n_pes == n && r.x == x)
            .unwrap()
            .time_us
    };
    // Monotone in sample size for every n.
    for n in [1, 2, 4] {
        assert!(t(n, 128) < t(n, 256));
        assert!(t(n, 256) < t(n, 384));
    }
    // Monotone (decreasing) in n for every size, with diminishing returns.
    for x in [128, 256, 384] {
        assert!(t(1, x) > t(2, x));
        assert!(t(2, x) > t(4, x));
        let s2 = t(1, x) / t(2, x);
        let s4 = t(1, x) / t(4, x);
        assert!(s2 < 2.0, "communication overhead keeps speedup sub-linear");
        assert!(s4 < 4.0);
        assert!(s4 > s2, "more PEs still help");
    }
}

#[test]
fn fig7_execution_time_shape() {
    let rows = fig7_scaling(&[50, 150, 300], &[1, 2], 10);
    let t = |n: usize, x: usize| {
        rows.iter()
            .find(|r| r.n_pes == n && r.x == x)
            .unwrap()
            .time_us
    };
    for n in [1, 2] {
        assert!(t(n, 50) < t(n, 150) && t(n, 150) < t(n, 300));
    }
    for x in [50, 150, 300] {
        let speedup = t(1, x) / t(2, x);
        assert!(speedup > 1.0, "2 PEs help at {x} particles");
        assert!(
            speedup < 2.0,
            "resampling communication keeps it sub-linear"
        );
    }
}

#[test]
fn table1_and_table2_shapes() {
    let t1 = table1_resources(4);
    let t2 = table2_resources(2);
    // SPI is a minor part of both systems.
    assert!(t1.spi_share.slices < 35.0, "{}", t1.spi_share);
    assert!(t2.spi_share.slices < 10.0, "{}", t2.spi_share);
    // The big application dwarfs SPI far more (paper: 11.88 % vs 0.2 %).
    assert!(t2.spi_share.slices < t1.spi_share.slices / 2.0);
    // SPI's BRAM share is its largest share in the small system
    // (paper: 50 % — the IPC FIFOs).
    assert!(t1.spi_share.bram >= t1.spi_share.slices);
    // The PF system is the heavier design (paper: 65 % of LUTs).
    assert!(t2.full_system.lut4 > t1.full_system.lut4);
}

#[test]
fn resynchronization_reduces_sync_cost_on_both_apps() {
    let f3 = fig3_resync(3);
    assert!(f3.sync_after < f3.sync_before, "{f3:?}");
    let f5 = fig5_resync(2);
    assert!(f5.sync_after < f5.sync_before, "{f5:?}");
    // And it eliminates real acknowledgement messages under UBS.
    let rows = ablation_resync(3, 5);
    assert!(rows[1].baseline > rows[1].optimized, "{}", rows[1]);
}

#[test]
fn spi_outperforms_generic_mpi() {
    for (bytes, msgs) in [(16usize, 60u64), (512, 30)] {
        let row = ablation_spi_vs_mpi(bytes, msgs);
        assert!(
            row.improvement() > 1.0,
            "SPI must beat the MPI baseline at {bytes} B: {row}"
        );
    }
}

#[test]
fn header_signalling_beats_delimiters() {
    let row = ablation_header_vs_delimiter(2, 4);
    assert!(row.improvement() >= 1.0, "{row}");
}

#[test]
fn vts_saves_wire_traffic() {
    let row = ablation_vts_vs_worst_case(64, 30);
    assert!(row.improvement() > 1.5, "{row}");
}

//! # spi-repro — umbrella crate for the DATE 2008 SPI reproduction
//!
//! Re-exports every layer of the reproduction of *"An Optimized Message
//! Passing Framework for Parallel Implementation of Signal Processing
//! Applications"* so examples and integration tests can reach the whole
//! stack through one dependency:
//!
//! * [`dataflow`] — SDF + VTS modeling ([`spi_dataflow`]);
//! * [`sched`] — self-timed scheduling, IPC/sync graphs,
//!   resynchronization ([`spi_sched`]);
//! * [`platform`] — the simulated multi-PE FPGA platform and the MPI
//!   baseline ([`spi_platform`]);
//! * [`dsp`] — FFT / LPC / Huffman / particle-filter kernels
//!   ([`spi_dsp`]);
//! * [`spi`] — the Signal Passing Interface itself;
//! * [`trace`] — runtime observability: lock-free capture, Chrome
//!   trace export and the bound-conformance checker ([`spi_trace`]);
//! * [`fault`] — deterministic fault injection: seeded fault plans and
//!   the faulty-transport decorator for chaos testing ([`spi_fault`]);
//! * [`verify`] — bounded model checking of the transport protocols,
//!   the vector-clock race checker behind `spi-lint race-check`, and
//!   the supervision-framing fault explorer ([`spi_verify`]);
//! * [`apps`] — the paper's two evaluation applications
//!   ([`spi_apps`]).
//!
//! Start with `examples/quickstart.rs`, then the per-application
//! examples; `DESIGN.md` maps every paper artifact to the module and
//! binary that reproduces it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use spi;
pub use spi_apps as apps;
pub use spi_dataflow as dataflow;
pub use spi_dsp as dsp;
pub use spi_fault as fault;
pub use spi_platform as platform;
pub use spi_sched as sched;
pub use spi_sim as sim;
pub use spi_trace as trace;
pub use spi_verify as verify;

//! Bounded model checking walkthrough: exhaustively explore the
//! `RingTransport` protocol, rediscover a real historical bug, and
//! stress the supervision framing codecs against an adversarial
//! channel.
//!
//! Three acts:
//!
//! 1. **Exhaustive SPSC exploration.** Two real OS threads push two
//!    messages through a one-slot ring while the model-checking shim
//!    serializes them and enumerates every interleaving (up to
//!    happens-before equivalence, via sleep-set pruning). No cap is
//!    hit, so the "no deadlock / no FIFO violation / no panic" verdict
//!    holds for *every* schedule at this bound.
//! 2. **The regression oracle.** The PR 3 lost-wakeup fix is
//!    mechanically reverted (wake-all *with* dequeue) and the explorer
//!    is pointed at the shared-consumer scenario that motivated it.
//!    It must rediscover the bug — a deadlock where a consumer parks
//!    forever — and print a minimized interleaving witness.
//! 3. **Framing under fire.** The supervision seq/crc framing runs
//!    against an exhaustive adversary (drop / corrupt / duplicate
//!    within a fault budget) for each degrade policy.
//!
//! Run with: `cargo run --release --example verify_ring`
//! (debug works too; release explores ~3x faster).

use spi_repro::verify::{
    explore_framing, explore_ring_shared_consumers, explore_ring_spsc, FailureKind, FramingOptions,
    ModelOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Act 1: exhaustive SPSC exploration -------------------------
    println!("[1/3] exhaustive SPSC exploration (2 messages, 1-slot ring)...");
    let opts = ModelOptions::default();
    let ex = explore_ring_spsc(2, 1, &opts);
    println!(
        "      {} distinct schedules, {} sleep-set pruned, capped: {}",
        ex.schedules, ex.pruned, ex.capped
    );
    match (&ex.failure, ex.capped) {
        (Some(f), _) => return Err(format!("SPSC protocol failed:\n{f}").into()),
        (None, true) => return Err("exploration capped — verdict is not exhaustive".into()),
        (None, false) => println!("      verdict: deadlock-free and FIFO at this bound.\n"),
    }

    // ---- Act 2: rediscover the PR 3 lost wakeup ---------------------
    println!("[2/3] reverting the PR 3 lost-wakeup fix and re-exploring...");
    let ex = explore_ring_shared_consumers(true, &opts);
    let failure = ex
        .failure
        .ok_or("explorer failed to rediscover the reverted lost-wakeup bug")?;
    println!(
        "      rediscovered after {} schedules ({} pruned):",
        ex.schedules, ex.pruned
    );
    match &failure.kind {
        FailureKind::Deadlock { blocked } => {
            println!("      deadlock, blocked threads: {}", blocked.join(", "))
        }
        other => return Err(format!("expected a deadlock, found {other:?}").into()),
    }
    println!("      minimized witness:\n{failure}");

    // Sanity: the shipped wait-list survives the same scenario within
    // the same schedule budget the bug was found under.
    let budget = ModelOptions {
        max_schedules: 10_000,
        ..ModelOptions::default()
    };
    let clean = explore_ring_shared_consumers(false, &budget);
    if let Some(f) = &clean.failure {
        return Err(format!("shipped wait-list failed:\n{f}").into());
    }
    println!(
        "      shipped wait-list: clean across {} schedules at the same depth.\n",
        clean.schedules
    );

    // ---- Act 3: framing vs. adversarial channel ---------------------
    println!("[3/3] supervision framing vs. adversarial channel...");
    for policy in [
        spi_repro::platform::DegradePolicy::Fail,
        spi_repro::platform::DegradePolicy::Skip,
        spi_repro::platform::DegradePolicy::Substitute,
    ] {
        let opts = FramingOptions {
            policy,
            ..FramingOptions::default()
        };
        let ex = explore_framing(&opts);
        println!(
            "      {policy:?}: {} adversary scripts, {} violations",
            ex.states_explored,
            ex.violations.len()
        );
        if let Some(v) = ex.violations.first() {
            return Err(format!("framing violated {}: {}", v.kind, v.detail).into());
        }
    }
    println!("\nall three engines agree: the protocols hold at their bounds.");
    Ok(())
}

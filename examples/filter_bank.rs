//! Cyclo-static dataflow through SPI: a two-channel multirate filter
//! bank whose distributor is a CSDF actor (phase rates `[1,0]`/`[0,1]`).
//!
//! Run with: `cargo run --example filter_bank`

use spi_apps::{FilterBankApp, FilterBankConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = FilterBankConfig {
        frame: 256,
        taps: 21,
        low_decimation: 2,
        high_decimation: 4,
        seed: 99,
    };
    println!("two-channel multirate filter bank (CSDF → SDF → SPI)\n");

    let app = FilterBankApp::new(config)?;
    println!("CSDF phase schedule of one iteration:");
    for (actor, phase) in app.csdf.phase_schedule()? {
        print!("  {actor}@{phase}");
    }
    println!("\n\nlowered SDF graph:\n{}", app.graph);

    let system = app.system(8)?;
    for (edge, plan) in system.edge_plans() {
        println!("  edge {edge}: {:?} via {:?}", plan.phase, plan.protocol);
    }
    let report = system.run()?;

    println!(
        "\nprocessed 8 frame pairs in {:.1} µs ({:.1} µs/pair)",
        report.makespan_us(),
        report.period_us()
    );
    let out = app.output.lock().expect("output");
    let expected = config.frame / config.low_decimation + config.frame / config.high_decimation;
    println!(
        "each output frame interleaves {expected} samples ({} low-band + {} high-band)",
        config.frame / config.low_decimation,
        config.frame / config.high_decimation
    );
    println!("collected {} output frames", out.len());
    Ok(())
}

//! Quickstart: build a two-processor SPI system from scratch.
//!
//! Models a tiny sample-rate converter (a 2:3 multirate edge), registers
//! actor implementations, lets SPI schedule it self-timed across two
//! processors, and runs the cycle-timed simulation.
//!
//! Run with: `cargo run --example quickstart`

use spi::{Firing, SpiSystemBuilder};
use spi_dataflow::SdfGraph;
use spi_sched::ProcId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Model: producer emits 2 tokens per firing, consumer takes 3.
    //    The repetition vector is therefore q = [3, 2].
    let mut graph = SdfGraph::new();
    let producer = graph.add_actor("producer", 40);
    let consumer = graph.add_actor("consumer", 60);
    let edge = graph.add_edge(producer, consumer, 2, 3, 0, 4)?;

    println!("{graph}");
    let q = graph.repetition_vector()?;
    println!(
        "repetition vector: producer ×{}, consumer ×{}\n",
        q[producer], q[consumer]
    );

    // 2. Implement the actors. Each firing reads its exact inputs and
    //    stages its exact outputs; SPI handles everything in between.
    let mut builder = SpiSystemBuilder::new(graph);
    builder.actor(producer, move |ctx: &mut Firing| {
        // Two 4-byte tokens per firing: consecutive sample indices.
        let base = (ctx.iter * 3 + ctx.k) * 2;
        let mut payload = Vec::with_capacity(8);
        payload.extend((base as u32).to_le_bytes());
        payload.extend((base as u32 + 1).to_le_bytes());
        ctx.set_output(edge, payload);
        40
    });
    builder.actor(consumer, move |ctx: &mut Firing| {
        let tokens: Vec<u32> = ctx
            .input(edge)
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte token")))
            .collect();
        assert_eq!(tokens.len(), 3, "consumer receives exactly 3 tokens");
        60
    });
    builder.iterations(100);

    // 3. Lower onto two processors and run.
    let system = builder.build(2, |actor| ProcId(actor.0))?;
    println!(
        "edge protocol: {:?}",
        system
            .edge_plans()
            .values()
            .map(|p| p.protocol)
            .collect::<Vec<_>>()
    );
    let report = system.run()?;

    println!("simulated {} iterations", report.iterations);
    println!(
        "makespan: {:.1} µs at {} MHz",
        report.makespan_us(),
        report.clock_mhz
    );
    println!("period:   {:.2} µs per iteration", report.period_us());
    println!(
        "traffic:  {} messages, {} payload bytes",
        report.sim.total_messages(),
        report.sim.total_bytes()
    );
    Ok(())
}

//! Application 2 end to end: distributed particle-filter failure
//! prognosis with the paper's three-step resampling.
//!
//! Run with: `cargo run --example particle_filter`

use spi_apps::{PrognosisApp, PrognosisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = PrognosisConfig {
        n_pes: 2,
        particles: 200,
        steps: 60,
        ..Default::default()
    };
    println!(
        "particle-filter crack prognosis (paper §5.3): {} particles on {} PEs",
        config.particles, config.n_pes
    );

    let app = PrognosisApp::new(config)?;
    let system = app.system(60)?;
    for (edge, plan) in system.edge_plans() {
        println!("  edge {edge}: {:?} via {:?}", plan.phase, plan.protocol);
    }
    let report = system.run()?;

    println!(
        "\ntracked {} steps in {:.1} µs ({:.1} µs/step)",
        report.iterations,
        report.makespan_us(),
        report.period_us()
    );
    {
        let estimates = app.estimates.lock().expect("estimates");
        println!("\n  step   truth   estimate");
        for (t, (est, truth)) in estimates.iter().zip(&app.truth).enumerate().step_by(10) {
            println!("  {t:>4}   {truth:>5.3}   {est:>7.3}");
        }
        // The guard must drop before tracking_rmse re-locks the mutex.
    }
    println!(
        "\ntracking RMSE (after burn-in): {:.4}",
        app.tracking_rmse(10)
    );
    if let Some((mean, p10, p90)) = app.remaining_useful_life(3.0, 100_000) {
        println!("prognosis: crack reaches 3.0 in ~{mean:.0} steps (p10 {p10}, p90 {p90})");
    }
    Ok(())
}

//! Graphs as files: parse a DIF document, inspect it, auto-map it with
//! HLFET and run it — the tool-chain workflow (graphs in version
//! control, implementations bound at build time).
//!
//! Run with: `cargo run --example dif_workflow`

use spi_repro::dataflow::dif;
use spi_repro::spi::{Firing, SpiSystemBuilder};

const PIPELINE: &str = r#"
# A three-stage sample-rate converter, written by hand (or a tool).
graph src_pipeline {
  actor reader   exec 40;
  actor upsample exec 120;
  actor writer   exec 60;
  edge reader -> upsample produce 2 consume 1 bytes 8;
  edge upsample -> writer produce 3 consume 6 bytes 8;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = dif::from_dif(PIPELINE)?;
    println!("parsed from DIF:\n{graph}");
    let q = graph.repetition_vector()?;
    for (id, actor) in graph.actors() {
        println!("  {:<10} fires {}× per iteration", actor.name, q[id]);
    }

    // Round-trip: the graph re-serializes losslessly.
    let text = dif::to_dif(&graph, "src_pipeline");
    assert_eq!(dif::from_dif(&text)?, graph);
    println!("\nround-trips losslessly through DIF\n");

    // Bind implementations and let HLFET map it onto 2 processors.
    let reader = graph.actor_by_name("reader").expect("declared");
    let upsample = graph.actor_by_name("upsample").expect("declared");
    let writer = graph.actor_by_name("writer").expect("declared");
    let e_in = graph.out_edges(reader)[0];
    let e_out = graph.out_edges(upsample)[0];

    let mut builder = SpiSystemBuilder::new(graph);
    builder.actor(reader, move |ctx: &mut Firing| {
        let s = (ctx.iter * 2 + ctx.k) as f64;
        let samples = [s.sin(), (s + 0.5).sin()];
        ctx.set_output(e_in, samples.iter().flat_map(|x| x.to_le_bytes()).collect());
        40
    });
    builder.actor(upsample, move |ctx: &mut Firing| {
        let x = f64::from_le_bytes(ctx.input(e_in).try_into().expect("one sample"));
        // 1 → 3 zero-order hold.
        ctx.set_output(e_out, [x; 3].iter().flat_map(|v| v.to_le_bytes()).collect());
        120
    });
    builder.actor(writer, move |ctx: &mut Firing| {
        assert_eq!(ctx.input(e_out).len(), 6 * 8);
        60
    });
    builder.iterations(50);
    let system = builder.build_auto(2)?;
    let report = system.run()?;
    println!(
        "ran 50 iterations on 2 auto-mapped processors: {:.1} µs ({:.2} µs/iteration)",
        report.makespan_us(),
        report.period_us()
    );
    Ok(())
}

//! Parameterized dataflow meets VTS: model application 1's "frame length
//! and model order are not known before run-time" situation as a PSDF
//! graph, verify it over its whole domain, then run the VTS envelope
//! through SPI with the parameters actually changing every iteration.
//!
//! Run with: `cargo run --example parameterized_rates`

use spi_repro::dataflow::psdf::{param_table, PsdfGraph, RateExpr};
use spi_repro::sched::ProcId;
use spi_repro::spi::{Firing, SpiSystemBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The model: a reader emits N samples; a solver turns them into M
    // coefficients; a consumer takes both N and M worth of data.
    let mut psdf = PsdfGraph::new();
    let n = psdf.add_param("N (frame length)", 16, 64);
    let m = psdf.add_param("M (model order)", 2, 8);
    let reader = psdf.add_actor("reader", 30);
    let solver = psdf.add_actor("solver", 80);
    let sink = psdf.add_actor("sink", 20);
    let var = |p| RateExpr::Param { param: p, mul: 1 };
    psdf.add_edge(reader, solver, var(n), var(n), 0, 8)?;
    psdf.add_edge(solver, sink, var(m), var(m), 0, 8)?;

    println!("parameters:");
    for (name, lo, hi) in param_table(&psdf) {
        println!("  {name}: [{lo}, {hi}]");
    }

    // Quasi-static check: every (N, M) point is a consistent SDF graph.
    psdf.check_consistency()?;
    println!(
        "\nall {}×{} domain points are consistent and live",
        64 - 16 + 1,
        8 - 2 + 1
    );

    // A specific configuration instantiates to plain SDF…
    let fixed = psdf.instantiate(&[32, 4])?;
    println!("\ninstantiated at N=32, M=4:\n{fixed}");

    // …while the VTS envelope admits the whole family at once.
    let envelope = psdf.vts_envelope()?;
    println!("VTS envelope (bounds = domain maxima):\n{envelope}");

    let e_data = envelope.out_edges(reader)[0];
    let e_coef = envelope.out_edges(solver)[0];
    let mut builder = SpiSystemBuilder::new(envelope);
    // Per-iteration parameter schedule: N and M wander their domains.
    let n_at = |iter: u64| 16 + (iter * 7) % 49; // 16..=64
    let m_at = |iter: u64| 2 + (iter * 3) % 7; // 2..=8
    builder.actor(reader, move |ctx: &mut Firing| {
        let n_now = n_at(ctx.iter) as usize;
        ctx.set_output(e_data, vec![0x11; n_now * 8]);
        30
    });
    builder.actor(solver, move |ctx: &mut Firing| {
        let got = ctx.input(e_data).len() / 8;
        assert_eq!(
            got as u64,
            n_at(ctx.iter),
            "frame length follows the schedule"
        );
        let m_now = m_at(ctx.iter) as usize;
        ctx.set_output(e_coef, vec![0x22; m_now * 8]);
        80
    });
    builder.actor(sink, move |ctx: &mut Firing| {
        assert_eq!((ctx.input(e_coef).len() / 8) as u64, m_at(ctx.iter));
        20
    });
    builder.iterations(40);
    let system = builder.build(3, |a| ProcId(a.0))?;
    let report = system.run()?;
    println!(
        "ran 40 reconfigured iterations on 3 processors: {:.1} µs total, {} bytes moved",
        report.makespan_us(),
        report.sim.total_bytes()
    );
    Ok(())
}

//! Lint a dataflow graph before (and instead of) building it.
//!
//! The `spi-analyze` crate runs the same diagnostics pipeline the
//! builder uses as its pre-flight gate. Running it directly is useful
//! while iterating on a graph: the report explains *why* a model is
//! broken — naming the offending cycle, edge, or actor — rather than
//! failing deep inside scheduling.
//!
//! Run with: `cargo run --example lint_graph`

use spi_analyze::{analyze_graph, AnalysisInput, Analyzer};
use spi_dataflow::SdfGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A healthy 2:3 sample-rate converter.
    let mut good = SdfGraph::new();
    let src = good.add_actor("src", 40);
    let dst = good.add_actor("dst", 60);
    good.add_edge(src, dst, 2, 3, 0, 4)?;

    let report = analyze_graph(&good);
    println!("--- healthy graph ---");
    println!("{}", report.render_human());

    // The same graph with a contradictory shortcut edge: 2:3 on one
    // path and 1:1 on the other admits no integer repetition vector.
    let mut bad = good.clone();
    bad.add_edge(src, dst, 1, 1, 0, 4)?;

    let report = analyze_graph(&bad);
    println!("--- inconsistent rates ---");
    println!("{}", report.render_human());
    assert!(report.has_errors(), "the lint must catch this");

    // A zero-delay feedback loop: neither actor can fire first.
    let mut deadlocked = good.clone();
    deadlocked.add_edge(dst, src, 3, 2, 0, 4)?;

    let report = analyze_graph(&deadlocked);
    println!("--- deadlocked feedback ---");
    println!("{}", report.render_human());

    // Machine-readable output for tooling: the same report as JSON.
    // (`spi-lint --format json` wraps exactly this for .dif files.)
    let report = Analyzer::default_pipeline().run(&AnalysisInput::new(&deadlocked));
    println!("--- as JSON ---");
    println!("{}", report.render_json());
    Ok(())
}

//! Observability end to end: run the filter bank under a `RingTracer`,
//! check the captured trace against the paper's static bounds, and
//! export it for visualization.
//!
//! Produces three artifacts under `target/`:
//!
//! * `target/filterbank.trace` — native `spi-trace` format; feed it to
//!   `spi-lint trace-check target/filterbank.trace`;
//! * `target/filterbank_trace.json` — Chrome `trace_event` JSON; open
//!   it in `chrome://tracing` or <https://ui.perfetto.dev>;
//! * a terminal Gantt chart, metrics table, and conformance report.
//!
//! Run with: `cargo run --example trace_filterbank`

use std::sync::Arc;

use spi_repro::apps::{FilterBankApp, FilterBankConfig};
use spi_repro::trace::{aggregate, check, render_gantt, to_chrome_json, ClockKind, RingTracer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const ITERATIONS: u64 = 16;

    let app = FilterBankApp::new(FilterBankConfig::default())?;
    let ring = Arc::new(RingTracer::with_default_capacity(3));
    let system = app.system_with(ITERATIONS, |b| {
        b.tracer(ring.clone());
    })?;
    let meta = system.trace_meta(ClockKind::Cycles);
    println!(
        "filter bank, {ITERATIONS} iterations on 3 PEs; predicted makespan bound: {} cycles\n",
        meta.predicted_makespan_cycles
            .map_or_else(|| "-".into(), |p| p.to_string())
    );
    system.run()?;
    let trace = ring.finish(meta);
    println!(
        "captured {} events ({} dropped)\n",
        trace.events.len(),
        trace.meta.dropped
    );

    // Gantt + metrics.
    println!("{}", render_gantt(&trace, 72));
    let metrics = aggregate(&trace);
    println!("{}", metrics.render());

    // Conformance: eq. (1)/(2), FIFO, conservation, makespan.
    let report = check(&trace);
    print!("{}", report.render_human());

    // Artifacts — under target/ so they never pollute the source tree.
    std::fs::create_dir_all("target")?;
    std::fs::write("target/filterbank.trace", trace.to_native())?;
    std::fs::write("target/filterbank_trace.json", to_chrome_json(&trace))?;
    println!("\nwrote target/filterbank.trace and target/filterbank_trace.json");
    println!("  check again with: spi-lint trace-check target/filterbank.trace");
    println!(
        "  visualize: load target/filterbank_trace.json in chrome://tracing or ui.perfetto.dev"
    );

    if report.has_errors() {
        return Err("trace violates static bounds".into());
    }
    Ok(())
}

//! Application 1 end to end: LPC speech compression with the
//! prediction-error stage parallelized over SPI_dynamic edges.
//!
//! Run with: `cargo run --example speech_compression`

use spi_apps::{SpeechApp, SpeechConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SpeechConfig {
        n_pes: 3,
        max_frame: 256,
        max_order: 8,
        vary_rates: true, // frame length & order vary per frame
        seed: 2026,
    };
    println!(
        "LPC acoustic data compression (paper §5.2), D parallelized {}×",
        config.n_pes
    );

    let app = SpeechApp::new(config)?;
    println!("\n{}", app.graph);

    let frames = 12;
    let system = app.system(frames)?;
    if let Some(resync) = system.resync_report() {
        println!(
            "resynchronization: {} → {} sync edges",
            resync.sync_cost_before, resync.sync_cost_after
        );
    }
    let report = system.run()?;

    println!(
        "\ncompressed {frames} frames in {:.1} µs ({:.1} µs/frame)",
        report.makespan_us(),
        report.period_us()
    );
    let output = app.output.lock().expect("output");
    for f in output.iter().take(5) {
        let ratio = (f.frame_len * 64) as f64 / f.bitlen.max(1) as f64;
        let snr = f
            .decompress()
            .map(|decoded| {
                let original = spi_apps::speech::synth_frame(config.seed, f.iter, f.frame_len);
                let err: f64 = decoded
                    .iter()
                    .zip(&original)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                let sig: f64 = original.iter().map(|v| v * v).sum();
                10.0 * (sig / err.max(1e-12)).log10()
            })
            .unwrap_or(f64::NAN);
        println!(
            "  frame {:>2}: {:>3} samples, order {}, {:>5} bits ({ratio:.1}× vs raw f64, {snr:.0} dB)",
            f.iter, f.frame_len, f.order, f.bitlen
        );
    }
    println!("  …");
    Ok(())
}

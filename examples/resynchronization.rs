//! Resynchronization demo: watch redundant synchronization disappear on
//! the paper's figure-3 scenario (the 3-PE error-generation stage).
//!
//! Run with: `cargo run --example resynchronization`

use spi::SpiSystemBuilder;
use spi_apps::{ErrorStageApp, ErrorStageConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ErrorStageConfig {
        n_pes: 3,
        ..Default::default()
    };
    println!("3-PE error-generation stage (paper figure 3)\n");

    let app = ErrorStageApp::new(config)?;
    println!("{}", app.graph);

    // Force UBS so acknowledgement messages exist, then compare a run
    // without and with resynchronization.
    let run = |resync: bool| -> Result<(u64, f64, usize), Box<dyn std::error::Error>> {
        let app = ErrorStageApp::new(config)?;
        let mut builder = SpiSystemBuilder::new(app.graph.clone());
        app.configure(&mut builder);
        builder.iterations(10);
        builder.force_ubs(true);
        builder.resynchronization(resync);
        let system = app.build_with(builder)?;
        let sync_cost = system.sync_cost();
        let report = system.run()?;
        Ok((report.sim.total_messages(), report.period_us(), sync_cost))
    };

    let (msgs_off, period_off, sync_off) = run(false)?;
    let (msgs_on, period_on, sync_on) = run(true)?;

    println!("without resynchronization: {sync_off:>3} sync edges, {msgs_off:>4} messages, {period_off:.2} µs/frame");
    println!("with    resynchronization: {sync_on:>3} sync edges, {msgs_on:>4} messages, {period_on:.2} µs/frame");
    println!(
        "\nresynchronization removed {} acknowledgement messages per run",
        msgs_off - msgs_on
    );
    Ok(())
}

//! Chaos end to end: the filter bank under a seeded fault plan, a
//! supervised threaded run, and a trace the conformance checker can
//! hold against the declared supervision budgets.
//!
//! One benign fault per inter-processor data edge — a dropped frame, a
//! corrupted frame, a duplicated frame, a delayed frame — is injected
//! through the `FaultyTransport` decorator while the run is supervised
//! under the strict `Fail` degradation policy: convergence therefore
//! means the recovery was **byte-exact**. Every fault, retry and CRC
//! rejection is emitted through the tracer, and the metadata carries
//! the policy budgets, so `spi-lint trace-check` verifies the recovery
//! stayed inside them (diagnostics SPI090–SPI095) on top of the usual
//! eq. (1)/(2), FIFO and conservation replay.
//!
//! Produces `target/faulted_filterbank.trace`; the CI
//! chaos job re-checks it with
//! `spi-lint trace-check target/faulted_filterbank.trace`.
//!
//! Run with: `cargo run --example chaos_filterbank`

use std::sync::Arc;
use std::time::Duration;

use spi_repro::apps::{FilterBankApp, FilterBankConfig};
use spi_repro::fault::{FaultKind, FaultPlan};
use spi_repro::platform::{ChannelId, SupervisionPolicy, ThreadedRunner};
use spi_repro::trace::{check, ClockKind, RingTracer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const ITERATIONS: u64 = 12;

    // Two identical builds: a fault-free reference and the victim.
    let reference_app = FilterBankApp::new(FilterBankConfig::default())?;
    let reference_out = reference_app.output.clone();
    reference_app.system(ITERATIONS)?.run()?;
    let want = reference_out.lock().unwrap().clone();

    let app = FilterBankApp::new(FilterBankConfig::default())?;
    let output = app.output.clone();
    let ring = Arc::new(RingTracer::with_default_capacity(3));
    let system = app.system_with(ITERATIONS, |b| {
        b.tracer(ring.clone());
    })?;

    // Supervision: per-op deadline derived from the predicted makespan
    // when the configuration is analyzable, a generous default when
    // not. Floored at 25 ms: CI runners get descheduled for longer
    // than this 100 MHz system's analytic iteration cost, and a missed
    // deadline burns a retry.
    let deadline = system
        .supervision_deadline(50.0)
        .unwrap_or(Duration::from_secs(2))
        .max(Duration::from_millis(25));
    let policy = SupervisionPolicy::retry(3).with_deadline(deadline);
    println!(
        "supervision: deadline {deadline:?} (analytic ×50 safety), {} retries, degrade=Fail",
        policy.max_retries
    );

    // One benign fault per data edge, deterministic.
    let mut channels: Vec<ChannelId> = system.edge_plans().values().map(|p| p.data_ch).collect();
    channels.sort();
    let kinds = [
        FaultKind::Drop,
        FaultKind::Corrupt,
        FaultKind::Duplicate,
        FaultKind::Delay { micros: 300 },
    ];
    let mut plan = FaultPlan::new();
    for (i, &ch) in channels.iter().enumerate() {
        let kind = kinds[i % kinds.len()];
        println!("  inject {kind} on {ch} at message {i}");
        plan = plan.inject(ch, i as u64, kind);
    }
    let (decorator, log) = plan.into_decorator()?;

    let meta = system.trace_meta_supervised(ClockKind::Nanos, &policy);
    system.run_threaded_with(
        &ThreadedRunner::new()
            .supervise(policy)
            .decorate_transports(decorator),
    )?;

    // The injections actually fired, and the output is still exact.
    let fired = log.lock().unwrap();
    println!("\n{} injection(s) fired:", fired.len());
    for rec in fired.iter() {
        println!(
            "  {} message {}: {}",
            rec.channel, rec.message_index, rec.kind
        );
    }
    let got = output.lock().unwrap().clone();
    if got != want {
        return Err("band outputs deviate from the fault-free reference".into());
    }
    println!("band outputs byte-identical to the fault-free reference");

    // Replay the capture against bounds AND supervision budgets.
    let trace = ring.finish(meta);
    println!(
        "\ncaptured {} events ({} dropped)",
        trace.events.len(),
        trace.meta.dropped
    );
    let report = check(&trace);
    print!("{}", report.render_human());

    std::fs::create_dir_all("target")?;
    std::fs::write("target/faulted_filterbank.trace", trace.to_native())?;
    println!("\nwrote target/faulted_filterbank.trace");
    println!("  check again with: spi-lint trace-check target/faulted_filterbank.trace");

    if report.has_errors() {
        return Err("faulted trace violates supervision budgets or static bounds".into());
    }
    Ok(())
}

//! Variable Token Size (VTS) in action: a dynamic-rate edge analyzed
//! with static SDF machinery and executed with variable payloads.
//!
//! Reproduces the paper's figure-1 example, then runs a live system over
//! the converted edge to show the run-time size header at work.
//!
//! Run with: `cargo run --example vts_dynamic_rates`

use spi::{Firing, SpiSystemBuilder};
use spi_dataflow::{SdfGraph, VtsConversion};
use spi_sched::ProcId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The figure-1 edge: production rate ≤ 10 tokens, consumption ≤ 8.
    let mut graph = SdfGraph::new();
    let a = graph.add_actor("A", 30);
    let b = graph.add_actor("B", 30);
    let edge = graph.add_dynamic_edge(a, b, 10, 8, 0, 4)?;

    println!("before VTS conversion:\n{graph}");
    println!(
        "plain SDF analysis: {}\n",
        graph.repetition_vector().unwrap_err()
    );

    let vts = VtsConversion::convert(&graph)?;
    println!("after VTS conversion:\n{}", vts.graph());
    let info = vts.edge_info(edge).expect("converted edge");
    println!("packed-token bound b_max = {} bytes", info.b_max);
    println!(
        "eq. (1) capacity c(e) = {} bytes\n",
        vts.packed_capacity_bytes(edge)?
    );

    // Run it: A sends a varying number of 4-byte tokens per firing.
    let mut builder = SpiSystemBuilder::new(graph);
    builder.actor(a, move |ctx: &mut Firing| {
        let tokens = (ctx.iter % 11) as usize; // 0..=10 raw tokens
        let payload: Vec<u8> = (0..tokens).flat_map(|t| (t as u32).to_le_bytes()).collect();
        ctx.set_output(edge, payload);
        30
    });
    builder.actor(b, move |ctx: &mut Firing| {
        let tokens = ctx.input(edge).len() / 4;
        assert_eq!(tokens, (ctx.iter % 11) as usize);
        30
    });
    builder.iterations(50);
    let system = builder.build(2, |x| ProcId(x.0))?;
    let plan = &system.edge_plans()[&edge];
    println!(
        "lowered edge: {:?} phase, protocol {:?}, data channel {}",
        plan.phase, plan.protocol, plan.data_ch
    );
    let report = system.run()?;
    println!(
        "ran 50 variable-size firings: {} messages, {} bytes on the wire",
        report.sim.total_messages(),
        report.sim.total_bytes()
    );
    println!(
        "(worst-case-static would have moved {} payload bytes)",
        50 * 10 * 4
    );
    Ok(())
}

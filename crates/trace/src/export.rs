//! Trace exporters: Chrome `trace_event` JSON and a plain-text Gantt.
//!
//! The Chrome format is the JSON array flavor of the trace-event spec
//! (load with `chrome://tracing` or <https://ui.perfetto.dev>): one
//! `"X"` complete event per firing, an `"i"` instant per send/receive
//! with payload details in `args`, and a `"C"` counter track per
//! channel showing occupancy in bytes over time. Timestamps in the
//! format are microseconds; we map one clock unit (cycle or ns) to one
//! microsecond so the viewer's zoom numbers read directly as the
//! trace's native unit.
//!
//! JSON is emitted by hand — the workspace builds offline and the serde
//! shim has no serializer; the same approach as the bench writers.

use std::fmt::Write as _;

use spi_platform::ProbeKind;

use crate::model::Trace;

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes `trace` to Chrome `trace_event` JSON (array format).
///
/// Firing begin/end pairs become `"X"` duration slices on the PE's
/// track; unpaired begins (possible after ring overflow) are dropped.
/// All events sit in one process (`pid` 0) with one thread per PE, so
/// the viewer lays the PEs out as parallel swimlanes.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut push = |s: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(&s);
    };

    // Name the PE tracks.
    let max_pe = trace.events.iter().map(|e| e.pe.0).max();
    if let Some(max_pe) = max_pe {
        for pe in 0..=max_pe {
            push(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{pe},\
                     \"args\":{{\"name\":{}}}}}",
                    json_str(&format!("pe{pe}"))
                ),
                &mut out,
            );
        }
    }

    // Open firing begins per (pe, label), matched LIFO like the metrics
    // aggregation.
    let mut open: std::collections::HashMap<(usize, u32), Vec<u64>> =
        std::collections::HashMap::new();
    for ev in &trace.events {
        match ev.kind {
            ProbeKind::FiringBegin { label } => {
                open.entry((ev.pe.0, label)).or_default().push(ev.ts);
            }
            ProbeKind::FiringEnd { label } => {
                if let Some(begin) = open.entry((ev.pe.0, label)).or_default().pop() {
                    push(
                        format!(
                            "{{\"name\":{},\"ph\":\"X\",\"pid\":0,\"tid\":{},\
                             \"ts\":{},\"dur\":{}}}",
                            json_str(trace.meta.label(label)),
                            ev.pe.0,
                            begin,
                            ev.ts.saturating_sub(begin)
                        ),
                        &mut out,
                    );
                }
            }
            ProbeKind::Send {
                channel,
                bytes,
                digest,
                occ_bytes,
                ..
            } => {
                push(
                    format!(
                        "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\
                         \"ts\":{},\"args\":{{\"bytes\":{bytes},\"digest\":{}}}}}",
                        json_str(&format!("send {channel}")),
                        ev.pe.0,
                        ev.ts,
                        json_str(&format!("{digest:#018x}"))
                    ),
                    &mut out,
                );
                push(
                    format!(
                        "{{\"name\":{},\"ph\":\"C\",\"pid\":0,\"ts\":{},\
                         \"args\":{{\"bytes\":{occ_bytes}}}}}",
                        json_str(&format!("occupancy {channel}")),
                        ev.ts
                    ),
                    &mut out,
                );
            }
            ProbeKind::Recv {
                channel,
                bytes,
                occ_bytes,
                ..
            } => {
                push(
                    format!(
                        "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\
                         \"ts\":{},\"args\":{{\"bytes\":{bytes}}}}}",
                        json_str(&format!("recv {channel}")),
                        ev.pe.0,
                        ev.ts
                    ),
                    &mut out,
                );
                push(
                    format!(
                        "{{\"name\":{},\"ph\":\"C\",\"pid\":0,\"ts\":{},\
                         \"args\":{{\"bytes\":{occ_bytes}}}}}",
                        json_str(&format!("occupancy {channel}")),
                        ev.ts
                    ),
                    &mut out,
                );
            }
            _ => {}
        }
    }
    out.push_str("\n]\n");
    out
}

/// Renders a plain-text Gantt chart: one row per PE, `#` where the PE
/// is inside a firing, `.` where it is idle, over a timeline scaled to
/// `width` columns. Returns an empty string for an empty trace.
pub fn render_gantt(trace: &Trace, width: usize) -> String {
    if trace.events.is_empty() || width == 0 {
        return String::new();
    }
    let t0 = trace.events.iter().map(|e| e.ts).min().unwrap_or(0);
    let span = trace.observed_end().saturating_sub(t0).max(1);
    let max_pe = trace.events.iter().map(|e| e.pe.0).max().unwrap_or(0);
    let col = |ts: u64| -> usize {
        let c = ((ts - t0) as u128 * width as u128 / span as u128) as usize;
        c.min(width - 1)
    };

    let mut rows = vec![vec![b'.'; width]; max_pe + 1];
    let mut open: std::collections::HashMap<(usize, u32), Vec<u64>> =
        std::collections::HashMap::new();
    for ev in &trace.events {
        match ev.kind {
            ProbeKind::FiringBegin { label } => {
                open.entry((ev.pe.0, label)).or_default().push(ev.ts);
            }
            ProbeKind::FiringEnd { label } => {
                if let Some(begin) = open.entry((ev.pe.0, label)).or_default().pop() {
                    rows[ev.pe.0][col(begin)..=col(ev.ts)].fill(b'#');
                }
            }
            _ => {}
        }
    }

    let mut out = String::new();
    let unit = match trace.meta.clock {
        crate::model::ClockKind::Cycles => "cycles",
        crate::model::ClockKind::Nanos => "ns",
    };
    out.push_str(&format!("t = {t0}..{} {unit}\n", trace.observed_end()));
    for (pe, row) in rows.iter().enumerate() {
        out.push_str(&format!("pe{pe} |{}|\n", String::from_utf8_lossy(row)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ClockKind, TraceMeta};
    use spi_platform::{ChannelId, PeId, ProbeEvent};

    fn sample() -> Trace {
        let mut meta = TraceMeta::new(ClockKind::Cycles);
        meta.labels = vec!["fire:src#0".into()];
        Trace {
            meta,
            events: vec![
                ProbeEvent {
                    ts: 0,
                    pe: PeId(0),
                    kind: ProbeKind::FiringBegin { label: 0 },
                },
                ProbeEvent {
                    ts: 10,
                    pe: PeId(0),
                    kind: ProbeKind::FiringEnd { label: 0 },
                },
                ProbeEvent {
                    ts: 10,
                    pe: PeId(0),
                    kind: ProbeKind::Send {
                        channel: ChannelId(1),
                        bytes: 16,
                        digest: 0xab,
                        occ_bytes: 16,
                        occ_msgs: 1,
                    },
                },
                ProbeEvent {
                    ts: 20,
                    pe: PeId(1),
                    kind: ProbeKind::Recv {
                        channel: ChannelId(1),
                        bytes: 16,
                        digest: 0xab,
                        occ_bytes: 0,
                        occ_msgs: 0,
                    },
                },
            ],
        }
    }

    #[test]
    fn chrome_json_has_slices_instants_and_counters() {
        let j = to_chrome_json(&sample());
        assert!(j.starts_with("[\n"));
        assert!(j.trim_end().ends_with(']'));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"name\":\"fire:src#0\""));
        assert!(j.contains("\"dur\":10"));
        assert!(j.contains("\"name\":\"send ch1\""));
        assert!(j.contains("\"name\":\"recv ch1\""));
        assert!(j.contains("\"name\":\"occupancy ch1\""));
        assert!(j.contains("\"ph\":\"C\""));
        assert!(j.contains("\"name\":\"pe1\""));
        // Well-formed array: every object line ends with } or },
        for line in j.lines().skip(1) {
            let t = line.trim_end();
            assert!(
                t == "]" || t.ends_with('}') || t.ends_with("},"),
                "bad line: {line:?}"
            );
        }
    }

    #[test]
    fn chrome_json_empty_trace_is_empty_array() {
        let t = Trace {
            meta: TraceMeta::new(ClockKind::Nanos),
            events: vec![],
        };
        assert_eq!(to_chrome_json(&t), "[\n\n]\n");
    }

    #[test]
    fn gantt_marks_busy_columns() {
        let g = render_gantt(&sample(), 20);
        assert!(g.contains("t = 0..20 cycles"));
        let pe0 = g.lines().find(|l| l.starts_with("pe0")).unwrap();
        let pe1 = g.lines().find(|l| l.starts_with("pe1")).unwrap();
        // pe0 fires over the first half of the window.
        assert!(pe0.contains('#'));
        // pe1 never fires (only a recv instant).
        assert!(!pe1.contains('#'));
    }

    #[test]
    fn gantt_empty_trace_is_empty() {
        let t = Trace {
            meta: TraceMeta::new(ClockKind::Cycles),
            events: vec![],
        };
        assert_eq!(render_gantt(&t, 40), "");
        assert_eq!(render_gantt(&sample(), 0), "");
    }
}

//! Post-run aggregation: from a raw event stream to the numbers a
//! performance investigation starts with.
//!
//! Everything here is derived purely from a [`Trace`], so the same
//! aggregation works for DES traces (cycle-exact) and threaded traces
//! (wall-clock nanoseconds); the [`crate::ClockKind`] in the metadata
//! says which unit the numbers carry.

use std::collections::HashMap;

use spi_platform::{ChannelId, PeId, ProbeKind};

use crate::model::Trace;

/// Aggregated view of one actor label (`fire:<name>#<k>` as interned by
/// the engines; SPI protocol ops like `spi:credit:e0` aggregate too).
#[derive(Debug, Clone, PartialEq)]
pub struct ActorMetrics {
    /// The firing label, resolved through the trace's intern table.
    pub label: String,
    /// PE the firings ran on.
    pub pe: PeId,
    /// Completed firings observed.
    pub firings: u64,
    /// Total clock units spent inside begin/end pairs.
    pub busy: u64,
}

/// Aggregated view of one PE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeMetrics {
    /// The PE.
    pub pe: PeId,
    /// Clock units inside firing begin/end pairs.
    pub busy: u64,
    /// Clock units blocked on full channels (send side).
    pub send_stall: u64,
    /// Clock units blocked on empty channels (receive side).
    pub recv_stall: u64,
    /// `busy / span` over the observed window (0.0–1.0).
    pub utilization: f64,
}

/// Aggregated view of one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelMetrics {
    /// The channel.
    pub channel: ChannelId,
    /// Messages observed entering the channel.
    pub sends: u64,
    /// Messages observed leaving the channel.
    pub recvs: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Occupancy high-water mark in bytes (post-send snapshots).
    pub peak_bytes: u64,
    /// Occupancy high-water mark in messages.
    pub peak_msgs: u64,
}

/// Everything [`aggregate`] computes.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMetrics {
    /// Timestamp of the last event (the observed makespan for a
    /// cycle-clocked trace).
    pub observed_end: u64,
    /// Width of the observed window (`max ts − min ts`).
    pub span: u64,
    /// `span / iterations` when the metadata records an iteration
    /// count — the observed steady-state iteration period.
    pub observed_period: Option<f64>,
    /// Per-actor-label aggregates, sorted by PE then label.
    pub actors: Vec<ActorMetrics>,
    /// Per-PE aggregates, indexed by PE id.
    pub pes: Vec<PeMetrics>,
    /// Per-channel aggregates, sorted by channel id.
    pub channels: Vec<ChannelMetrics>,
}

impl TraceMetrics {
    /// Channel metrics by id, if the channel appears in the trace.
    pub fn channel(&self, ch: ChannelId) -> Option<&ChannelMetrics> {
        self.channels.iter().find(|c| c.channel == ch)
    }

    /// A compact human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "observed end {}  span {}  period {}\n",
            self.observed_end,
            self.span,
            self.observed_period
                .map_or_else(|| "-".into(), |p| format!("{p:.1}")),
        ));
        for p in &self.pes {
            out.push_str(&format!(
                "{}: busy {} ({:.1}%)  send-stall {}  recv-stall {}\n",
                p.pe,
                p.busy,
                p.utilization * 100.0,
                p.send_stall,
                p.recv_stall
            ));
        }
        for c in &self.channels {
            out.push_str(&format!(
                "{}: {} sent / {} recvd, {} B, peak {} B / {} msg\n",
                c.channel, c.sends, c.recvs, c.bytes, c.peak_bytes, c.peak_msgs
            ));
        }
        out
    }
}

/// Folds a trace into [`TraceMetrics`].
///
/// Unpaired events degrade gracefully: a `FiringEnd` without a matching
/// begin (possible after ring overflow) is ignored, an unclosed block
/// interval contributes nothing. That keeps the aggregation total even
/// on partial streams; the conformance checker, not this module, is
/// responsible for complaining about them.
pub fn aggregate(trace: &Trace) -> TraceMetrics {
    let mut actors: HashMap<(usize, u32), ActorMetrics> = HashMap::new();
    // Open firing begins per (pe, label) — a stack, since MPI-lowered
    // programs can nest distinct labels but repeat the same one only
    // sequentially.
    let mut open_fire: HashMap<(usize, u32), Vec<u64>> = HashMap::new();
    let mut open_send_block: HashMap<usize, u64> = HashMap::new();
    let mut open_recv_block: HashMap<usize, u64> = HashMap::new();
    let mut max_pe = 0usize;
    let mut pe_busy: HashMap<usize, u64> = HashMap::new();
    let mut pe_send_stall: HashMap<usize, u64> = HashMap::new();
    let mut pe_recv_stall: HashMap<usize, u64> = HashMap::new();
    let mut channels: HashMap<usize, ChannelMetrics> = HashMap::new();

    fn chan(channels: &mut HashMap<usize, ChannelMetrics>, ch: ChannelId) -> &mut ChannelMetrics {
        channels.entry(ch.0).or_insert(ChannelMetrics {
            channel: ch,
            sends: 0,
            recvs: 0,
            bytes: 0,
            peak_bytes: 0,
            peak_msgs: 0,
        })
    }

    for ev in &trace.events {
        max_pe = max_pe.max(ev.pe.0);
        match ev.kind {
            ProbeKind::FiringBegin { label } => {
                open_fire.entry((ev.pe.0, label)).or_default().push(ev.ts);
            }
            ProbeKind::FiringEnd { label } => {
                if let Some(begin) = open_fire.entry((ev.pe.0, label)).or_default().pop() {
                    let dt = ev.ts.saturating_sub(begin);
                    let a = actors
                        .entry((ev.pe.0, label))
                        .or_insert_with(|| ActorMetrics {
                            label: trace.meta.label(label).to_string(),
                            pe: ev.pe,
                            firings: 0,
                            busy: 0,
                        });
                    a.firings += 1;
                    a.busy += dt;
                    *pe_busy.entry(ev.pe.0).or_default() += dt;
                }
            }
            ProbeKind::Send {
                channel,
                bytes,
                occ_bytes,
                occ_msgs,
                ..
            } => {
                let c = chan(&mut channels, channel);
                c.sends += 1;
                c.bytes += u64::from(bytes);
                c.peak_bytes = c.peak_bytes.max(u64::from(occ_bytes));
                c.peak_msgs = c.peak_msgs.max(u64::from(occ_msgs));
            }
            ProbeKind::Recv {
                channel,
                occ_bytes,
                occ_msgs,
                ..
            } => {
                let c = chan(&mut channels, channel);
                c.recvs += 1;
                c.peak_bytes = c.peak_bytes.max(u64::from(occ_bytes));
                c.peak_msgs = c.peak_msgs.max(u64::from(occ_msgs));
            }
            ProbeKind::BlockSend { .. } => {
                open_send_block.insert(ev.pe.0, ev.ts);
            }
            ProbeKind::UnblockSend { .. } => {
                if let Some(begin) = open_send_block.remove(&ev.pe.0) {
                    *pe_send_stall.entry(ev.pe.0).or_default() += ev.ts.saturating_sub(begin);
                }
            }
            ProbeKind::BlockRecv { .. } => {
                open_recv_block.insert(ev.pe.0, ev.ts);
            }
            ProbeKind::UnblockRecv { .. } => {
                if let Some(begin) = open_recv_block.remove(&ev.pe.0) {
                    *pe_recv_stall.entry(ev.pe.0).or_default() += ev.ts.saturating_sub(begin);
                }
            }
            _ => {}
        }
    }

    let observed_end = trace.observed_end();
    let span = trace.span();
    let observed_period = if trace.meta.iterations > 0 && span > 0 {
        Some(span as f64 / trace.meta.iterations as f64)
    } else {
        None
    };

    let pe_count = if trace.events.is_empty() {
        0
    } else {
        max_pe + 1
    };
    let pes: Vec<PeMetrics> = (0..pe_count)
        .map(|i| {
            let busy = pe_busy.get(&i).copied().unwrap_or(0);
            PeMetrics {
                pe: PeId(i),
                busy,
                send_stall: pe_send_stall.get(&i).copied().unwrap_or(0),
                recv_stall: pe_recv_stall.get(&i).copied().unwrap_or(0),
                utilization: if span > 0 {
                    busy as f64 / span as f64
                } else {
                    0.0
                },
            }
        })
        .collect();

    let mut actors: Vec<ActorMetrics> = actors.into_values().collect();
    actors.sort_by(|a, b| (a.pe.0, &a.label).cmp(&(b.pe.0, &b.label)));
    let mut channels: Vec<ChannelMetrics> = channels.into_values().collect();
    channels.sort_by_key(|c| c.channel.0);

    TraceMetrics {
        observed_end,
        span,
        observed_period,
        actors,
        pes,
        channels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ClockKind, TraceMeta};
    use spi_platform::ProbeEvent;

    fn ev(ts: u64, pe: usize, kind: ProbeKind) -> ProbeEvent {
        ProbeEvent {
            ts,
            pe: PeId(pe),
            kind,
        }
    }

    fn send(ch: usize, bytes: u32, occ_bytes: u32, occ_msgs: u32) -> ProbeKind {
        ProbeKind::Send {
            channel: ChannelId(ch),
            bytes,
            digest: 0,
            occ_bytes,
            occ_msgs,
        }
    }

    #[test]
    fn busy_stall_and_peaks_aggregate() {
        let mut meta = TraceMeta::new(ClockKind::Cycles);
        meta.labels = vec!["fire:a#0".into()];
        meta.iterations = 2;
        let trace = Trace {
            meta,
            events: vec![
                ev(0, 0, ProbeKind::FiringBegin { label: 0 }),
                ev(10, 0, ProbeKind::FiringEnd { label: 0 }),
                ev(10, 0, send(0, 8, 8, 1)),
                ev(12, 0, send(0, 8, 16, 2)),
                ev(
                    13,
                    1,
                    ProbeKind::BlockRecv {
                        channel: ChannelId(0),
                    },
                ),
                ev(
                    15,
                    1,
                    ProbeKind::UnblockRecv {
                        channel: ChannelId(0),
                    },
                ),
                ev(
                    15,
                    1,
                    ProbeKind::Recv {
                        channel: ChannelId(0),
                        bytes: 8,
                        digest: 0,
                        occ_bytes: 8,
                        occ_msgs: 1,
                    },
                ),
                ev(20, 0, ProbeKind::FiringBegin { label: 0 }),
                ev(30, 0, ProbeKind::FiringEnd { label: 0 }),
            ],
        };
        let m = aggregate(&trace);
        assert_eq!(m.observed_end, 30);
        assert_eq!(m.span, 30);
        assert_eq!(m.observed_period, Some(15.0));
        assert_eq!(m.actors.len(), 1);
        assert_eq!(m.actors[0].firings, 2);
        assert_eq!(m.actors[0].busy, 20);
        assert_eq!(m.pes.len(), 2);
        assert_eq!(m.pes[0].busy, 20);
        assert!((m.pes[0].utilization - 20.0 / 30.0).abs() < 1e-9);
        assert_eq!(m.pes[1].recv_stall, 2);
        let c = m.channel(ChannelId(0)).unwrap();
        assert_eq!((c.sends, c.recvs, c.bytes), (2, 1, 16));
        assert_eq!((c.peak_bytes, c.peak_msgs), (16, 2));
        assert!(m.render().contains("pe0"));
    }

    #[test]
    fn unpaired_events_are_tolerated() {
        let trace = Trace {
            meta: TraceMeta::new(ClockKind::Nanos),
            events: vec![
                ev(5, 0, ProbeKind::FiringEnd { label: 0 }),
                ev(
                    6,
                    0,
                    ProbeKind::UnblockSend {
                        channel: ChannelId(0),
                    },
                ),
            ],
        };
        let m = aggregate(&trace);
        assert_eq!(m.pes[0].busy, 0);
        assert_eq!(m.pes[0].send_stall, 0);
        assert!(m.actors.is_empty());
    }

    #[test]
    fn empty_trace_aggregates_to_zeroes() {
        let trace = Trace {
            meta: TraceMeta::new(ClockKind::Cycles),
            events: vec![],
        };
        let m = aggregate(&trace);
        assert_eq!(m.observed_end, 0);
        assert!(m.pes.is_empty());
        assert!(m.channels.is_empty());
        assert_eq!(m.observed_period, None);
    }
}

//! Trace conformance: replaying an observed run against the paper's
//! static guarantees.
//!
//! The static side of this repo *proves* things about an SPI system:
//! eq. (1) bounds every packed message to `c(e)` bytes, eq. (2) sizes
//! every IPC buffer to `B(e) = (Γ + delay(e)) · c(e)`, the SPSC
//! transports promise per-channel FIFO delivery, and the self-timed
//! analysis predicts a makespan. This module closes the loop: given a
//! captured [`Trace`], it verifies the run actually stayed inside every
//! one of those envelopes, and emits analyzer-style diagnostics
//! (`SPI080`–`SPI095`, same [`spi_analyze::Diagnostic`] machinery as
//! the static passes) when it did not.
//!
//! | code   | severity | meaning |
//! |--------|----------|---------|
//! | SPI080 | error    | observed occupancy exceeded the eq. (2) buffer bound |
//! | SPI081 | error    | a message exceeded the eq. (1) packed-token size |
//! | SPI082 | error    | per-channel FIFO order violated (digest mismatch) |
//! | SPI083 | error    | observed makespan exceeded the predicted bound |
//! | SPI084 | warning  | capture dropped events; checks ran on a partial stream |
//! | SPI085 | error    | conservation violated: more receives than sends |
//! | SPI086 | error    | a batched flush exceeded the channel's declared batching budget |
//! | SPI090 | error    | a retry attempt exceeded the supervision retry budget |
//! | SPI091 | error    | more tokens degraded than the declared budget |
//! | SPI092 | error    | a PE restarted more times than the restart budget |
//! | SPI093 | error    | unresolved corruption: a corrupt frame was never followed by a delivery or degradation |
//! | SPI094 | warning  | corrupt frames observed (recovered by retransmission) |
//! | SPI095 | warning  | degraded tokens present; output may deviate from fault-free |
//!
//! The supervision-budget checks (`SPI090`–`SPI092`) run only when the
//! trace metadata carries [`SupervisionBounds`](crate::SupervisionBounds)
//! — an unsupervised trace
//! has no budgets to conform to. `SPI093`–`SPI095` fire on the fault
//! events alone.
//!
//! The batching-budget check (`SPI086`) runs only for channels listed
//! in the metadata's [`BatchBound`](crate::BatchBound)s — the bounds
//! the schedule lowered into each sending endpoint. Batched channels
//! with no declared bound (ad-hoc test or bench endpoints) are exempt,
//! mirroring how ack channels are exempt from eq. (1)/(2).
//!
//! A clean report on a cycle-clocked DES trace is strong evidence the
//! builder's provisioning math and the engines' flow control agree with
//! the analysis; a clean report on a threaded-runner trace additionally
//! exercises the real lock-free transports.

use std::collections::HashMap;

use spi_analyze::{Diagnostic, Locus, Severity};
use spi_platform::{ChannelId, ProbeKind};

use crate::model::{ClockKind, EdgeBound, Trace, TraceMeta};

/// Outcome of [`check`]: the diagnostics plus the headline numbers a
/// report wants to print even when everything passed.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceReport {
    /// Findings, worst first.
    pub diagnostics: Vec<Diagnostic>,
    /// Channels whose event streams were replayed.
    pub channels_checked: usize,
    /// Send/receive pairs whose digests were compared in FIFO order.
    pub messages_checked: u64,
    /// Observed makespan (last event timestamp).
    pub observed_makespan: u64,
    /// The predicted bound the makespan was held against, when the
    /// trace metadata carried one and the clock is cycle-denominated.
    pub predicted_makespan: Option<u64>,
    /// `predicted − observed` when both exist and the run met the
    /// bound; how much headroom the prediction left.
    pub slack: Option<u64>,
}

impl ConformanceReport {
    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Renders the report in the analyzer's human format, with a
    /// trailing summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_human());
            out.push('\n');
        }
        out.push_str(&format!(
            "trace-check: {} channel(s), {} message(s)",
            self.channels_checked, self.messages_checked
        ));
        match (self.predicted_makespan, self.slack) {
            (Some(p), Some(s)) => out.push_str(&format!(
                ", makespan {} <= {} (slack {})",
                self.observed_makespan, p, s
            )),
            (Some(p), None) => {
                out.push_str(&format!(
                    ", makespan {} vs bound {}",
                    self.observed_makespan, p
                ));
            }
            _ => out.push_str(&format!(", makespan {}", self.observed_makespan)),
        }
        out.push_str(if self.has_errors() {
            ": FAIL\n"
        } else {
            ": ok\n"
        });
        out
    }
}

/// Per-channel replay state.
///
/// Sends and receives are collected separately and matched **by index**
/// at the end, not by stream position: the transports are SPSC, so each
/// side's per-channel order in the merged stream is exact (one writer,
/// monotonic per-PE timestamps), but the *relative* interleaving of the
/// two sides is not trustworthy on a wall-clock trace — a receiver can
/// pop a message and stamp its event before the sender stamps the
/// matching send. Index matching is immune to that race and still exact
/// for the FIFO property.
#[derive(Default)]
struct ChannelReplay {
    /// (digest, bytes) of every send, in emission order.
    sent: Vec<(u64, u32)>,
    /// (digest, bytes, ts) of every receive, in emission order.
    recvd: Vec<(u64, u32, u64)>,
}

/// Replays `trace` against the bounds in its metadata.
///
/// Channels that carry traffic but appear in no [`EdgeBound`] (ack and
/// control channels, whose capacity the builder provisions separately)
/// are exempt from the eq. (1)/(2) checks but still replayed for FIFO
/// and conservation.
pub fn check(trace: &Trace) -> ConformanceReport {
    let meta = &trace.meta;
    let bounds: HashMap<usize, &EdgeBound> = meta.edges.iter().map(|b| (b.channel.0, b)).collect();

    let mut diagnostics = Vec::new();
    let mut replays: HashMap<usize, ChannelReplay> = HashMap::new();
    let mut messages_checked = 0u64;
    // Report each bound violation class once per channel, at its worst
    // observation — a sustained overflow would otherwise flood the
    // report with one diagnostic per event.
    let mut worst_occ: HashMap<usize, (u64, u64, u64)> = HashMap::new(); // ch -> (occ_bytes, occ_msgs, ts)
    let mut worst_msg: HashMap<usize, (u64, u64)> = HashMap::new(); // ch -> (bytes, ts)

    // Supervision replay: fault events accumulated for SPI090–SPI095.
    let mut worst_retry: HashMap<usize, (u32, u64)> = HashMap::new(); // ch -> (attempt, ts)
    let mut corrupt_frames: HashMap<usize, u64> = HashMap::new(); // ch -> count
    let mut unresolved_corrupt: HashMap<usize, u64> = HashMap::new(); // ch -> ts of last corrupt
    let mut restarts: HashMap<usize, (u64, u64)> = HashMap::new(); // pe -> (count, last iter)
    let mut substituted_tokens = 0u64;
    let mut skipped_tokens = 0u64;

    // Batching replay: worst observed flush per declared channel.
    let batch_bounds: HashMap<usize, u64> = meta
        .batch_bounds
        .iter()
        .map(|b| (b.channel.0, b.max_msgs))
        .collect();
    let mut worst_flush: HashMap<usize, (u32, u32, u64)> = HashMap::new(); // ch -> (msgs, bytes, ts)

    for ev in &trace.events {
        match ev.kind {
            ProbeKind::Send {
                channel,
                bytes,
                digest,
                occ_bytes,
                occ_msgs,
            } => {
                if let Some(b) = bounds.get(&channel.0) {
                    if u64::from(bytes) > b.max_message_bytes {
                        let w = worst_msg.entry(channel.0).or_insert((0, ev.ts));
                        if u64::from(bytes) > w.0 {
                            *w = (u64::from(bytes), ev.ts);
                        }
                    }
                    record_occupancy(&mut worst_occ, channel, occ_bytes, occ_msgs, ev.ts, b);
                }
                replays
                    .entry(channel.0)
                    .or_default()
                    .sent
                    .push((digest, bytes));
            }
            ProbeKind::Recv {
                channel,
                bytes,
                digest,
                occ_bytes,
                occ_msgs,
            } => {
                if let Some(b) = bounds.get(&channel.0) {
                    record_occupancy(&mut worst_occ, channel, occ_bytes, occ_msgs, ev.ts, b);
                }
                replays
                    .entry(channel.0)
                    .or_default()
                    .recvd
                    .push((digest, bytes, ev.ts));
                // A successful delivery resolves any earlier corrupt
                // frame on this channel: the retransmission landed.
                unresolved_corrupt.remove(&channel.0);
            }
            ProbeKind::FaultRetry { channel, attempt } => {
                let w = worst_retry.entry(channel.0).or_insert((0, ev.ts));
                if attempt > w.0 {
                    *w = (attempt, ev.ts);
                }
            }
            ProbeKind::FaultCorrupt { channel } => {
                *corrupt_frames.entry(channel.0).or_insert(0) += 1;
                unresolved_corrupt.insert(channel.0, ev.ts);
            }
            ProbeKind::FaultDegraded {
                channel,
                substituted,
            } => {
                if substituted {
                    substituted_tokens += 1;
                } else {
                    skipped_tokens += 1;
                }
                // Degradation also resolves a pending corruption: the
                // supervisor gave up on the frame and declared it, per
                // the UBS substitute/skip semantics.
                unresolved_corrupt.remove(&channel.0);
            }
            ProbeKind::FaultRestart { iter } => {
                let r = restarts.entry(ev.pe.0).or_insert((0, iter));
                r.0 += 1;
                r.1 = iter;
            }
            ProbeKind::BatchFlush {
                channel,
                msgs,
                bytes,
                ..
            } if batch_bounds.contains_key(&channel.0) => {
                let w = worst_flush.entry(channel.0).or_insert((0, 0, ev.ts));
                if msgs > w.0 {
                    *w = (msgs, bytes, ev.ts);
                }
            }
            _ => {}
        }
    }

    // FIFO + conservation: match receives against sends by index. One
    // diagnostic per channel — a single out-of-order message
    // desynchronizes every later comparison on that channel.
    for (&ch, r) in &replays {
        let channel = ChannelId(ch);
        let mut broken = false;
        for (i, &(digest, bytes, ts)) in r.recvd.iter().enumerate() {
            match r.sent.get(i) {
                Some(&(sent_digest, sent_bytes)) => {
                    if sent_digest != digest || sent_bytes != bytes {
                        broken = true;
                        diagnostics.push(
                            Diagnostic::new(
                                "SPI082",
                                Severity::Error,
                                locus_for(&bounds, channel),
                                format!(
                                    "FIFO violation on {} at t={}: receive #{} carries \
                                     digest {:#018x} ({} B) but send #{} was digest \
                                     {:#018x} ({} B)",
                                    channel, ts, i, digest, bytes, i, sent_digest, sent_bytes
                                ),
                            )
                            .with_suggestion(
                                "the SPSC transport contract promises per-channel order; \
                                 a mismatch means payload corruption or interleaved \
                                 writers on one channel",
                            ),
                        );
                    } else {
                        messages_checked += 1;
                    }
                }
                None => {
                    // More receives than sends: conservation broken.
                    broken = true;
                    diagnostics.push(
                        Diagnostic::new(
                            "SPI085",
                            Severity::Error,
                            locus_for(&bounds, channel),
                            format!(
                                "conservation violation on {} at t={}: receive #{} \
                                 observed but only {} send(s) traced",
                                channel,
                                ts,
                                i,
                                r.sent.len()
                            ),
                        )
                        .with_suggestion(
                            "tokens appeared from nowhere — if the capture dropped \
                             events (SPI084) the send may simply be missing from \
                             the stream",
                        ),
                    );
                }
            }
            if broken {
                break;
            }
        }
    }

    for (ch, (occ_bytes, occ_msgs, ts)) in &worst_occ {
        let b = bounds[ch];
        let over_bytes = *occ_bytes > b.capacity_bytes;
        let over_msgs = b.bound_tokens.is_some_and(|t| *occ_msgs > t);
        if over_bytes || over_msgs {
            let bound_desc = match b.bound_tokens {
                Some(t) => format!("{} B / {} msg", b.capacity_bytes, t),
                None => format!("{} B", b.capacity_bytes),
            };
            diagnostics.push(
                Diagnostic::new(
                    "SPI080",
                    Severity::Error,
                    Locus::Edge(b.edge),
                    format!(
                        "occupancy on {} (edge {}) reached {} B / {} msg at t={}, \
                         exceeding the eq. (2) bound B(e) = {}",
                        ChannelId(*ch),
                        b.edge,
                        occ_bytes,
                        occ_msgs,
                        ts,
                        bound_desc
                    ),
                )
                .with_suggestion(
                    "the buffer bound (Γ + delay(e)) · c(e) was violated at runtime; \
                     the provisioned capacity or the flow-control window is wrong",
                ),
            );
        }
    }

    for (ch, (bytes, ts)) in &worst_msg {
        let b = bounds[ch];
        diagnostics.push(
            Diagnostic::new(
                "SPI081",
                Severity::Error,
                Locus::Edge(b.edge),
                format!(
                    "message of {} B on {} (edge {}) at t={} exceeds the eq. (1) \
                     packed-token bound c(e) = {} B",
                    bytes,
                    ChannelId(*ch),
                    b.edge,
                    ts,
                    b.max_message_bytes
                ),
            )
            .with_suggestion(
                "the vectorization degree or the per-token size bound used at build \
                 time does not match what the actor actually sent",
            ),
        );
    }

    // SPI086: every flush of a declared batched channel must respect
    // the batching budget the schedule lowered — one diagnostic per
    // channel, at the worst flush, like the SPI080/081 bound checks.
    for (&ch, &(msgs, bytes, ts)) in &worst_flush {
        let budget = batch_bounds[&ch];
        if u64::from(msgs) > budget {
            diagnostics.push(
                Diagnostic::new(
                    "SPI086",
                    Severity::Error,
                    locus_for(&bounds, ChannelId(ch)),
                    format!(
                        "batched flush of {} record(s) ({} B) on {} at t={} exceeds \
                         the declared batching budget of {} record(s)",
                        msgs,
                        bytes,
                        ChannelId(ch),
                        ts,
                        budget
                    ),
                )
                .with_suggestion(
                    "the sender coalesced more records than the schedule's batch plan \
                     allows; the lowered batch_max and the runtime endpoint disagree",
                ),
            );
        }
    }

    let observed_makespan = trace.observed_end();
    let predicted_makespan = predicted_bound(meta);
    let mut slack = None;
    if let Some(p) = predicted_makespan {
        if observed_makespan > p {
            diagnostics.push(
                Diagnostic::new(
                    "SPI083",
                    Severity::Error,
                    Locus::System,
                    format!(
                        "observed makespan {} cycles exceeds the predicted self-timed \
                         bound {} cycles (overshoot {})",
                        observed_makespan,
                        p,
                        observed_makespan - p
                    ),
                )
                .with_suggestion(
                    "either the analytic model under-counts a communication cost or \
                     the run hit contention the self-timed analysis does not model",
                ),
            );
        } else {
            slack = Some(p - observed_makespan);
        }
    }

    if meta.dropped > 0 {
        diagnostics.push(
            Diagnostic::new(
                "SPI084",
                Severity::Warning,
                Locus::System,
                format!(
                    "capture dropped {} event(s); all checks ran on a partial stream",
                    meta.dropped
                ),
            )
            .with_suggestion("enlarge the per-PE ring (RingTracer::new events_per_pe)"),
        );
    }

    // --- Supervision conformance (SPI090–SPI095) ---------------------
    // Budget checks only make sense against declared budgets; the
    // observational checks (SPI093–SPI095) fire on the events alone.
    if let Some(sup) = meta.supervision {
        for (&ch, &(attempt, ts)) in &worst_retry {
            if u64::from(attempt) > sup.max_retries {
                diagnostics.push(
                    Diagnostic::new(
                        "SPI090",
                        Severity::Error,
                        locus_for(&bounds, ChannelId(ch)),
                        format!(
                            "retry attempt {} on {} at t={} exceeds the supervision \
                             budget of {} retries",
                            attempt,
                            ChannelId(ch),
                            ts,
                            sup.max_retries
                        ),
                    )
                    .with_suggestion(
                        "the supervisor retried past its declared budget; the policy \
                         enforcement and the trace disagree",
                    ),
                );
            }
        }
        let degraded_total = substituted_tokens + skipped_tokens;
        if degraded_total > sup.max_degraded {
            diagnostics.push(
                Diagnostic::new(
                    "SPI091",
                    Severity::Error,
                    Locus::System,
                    format!(
                        "{} token(s) degraded ({} substituted, {} skipped) exceeds the \
                         declared budget of {}",
                        degraded_total, substituted_tokens, skipped_tokens, sup.max_degraded
                    ),
                )
                .with_suggestion(
                    "more tokens deviated from fault-free output than the degradation \
                     budget allows; the run should have failed instead of degrading",
                ),
            );
        }
        for (&pe, &(count, last_iter)) in &restarts {
            if count > sup.max_restarts {
                diagnostics.push(
                    Diagnostic::new(
                        "SPI092",
                        Severity::Error,
                        Locus::System,
                        format!(
                            "PE{} restarted {} time(s) (last at iteration {}), exceeding \
                             the restart budget of {}",
                            pe, count, last_iter, sup.max_restarts
                        ),
                    )
                    .with_suggestion(
                        "a PE rolled back more checkpoints than the supervision policy \
                         permits; the run should have aborted with RestartBudgetExhausted",
                    ),
                );
            }
        }
    }

    for (&ch, &ts) in &unresolved_corrupt {
        diagnostics.push(
            Diagnostic::new(
                "SPI093",
                Severity::Error,
                locus_for(&bounds, ChannelId(ch)),
                format!(
                    "unresolved corruption on {}: corrupt frame at t={} was never \
                     followed by a delivery or a declared degradation on that channel",
                    ChannelId(ch),
                    ts
                ),
            )
            .with_suggestion(
                "every CRC rejection must end in a retransmitted delivery or an \
                 explicit degrade event; a dangling corruption means the supervisor \
                 lost track of a token",
            ),
        );
    }

    let corrupt_total: u64 = corrupt_frames.values().sum();
    if corrupt_total > 0 {
        diagnostics.push(
            Diagnostic::new(
                "SPI094",
                Severity::Warning,
                Locus::System,
                format!(
                    "{} corrupt frame(s) rejected by CRC across {} channel(s)",
                    corrupt_total,
                    corrupt_frames.len()
                ),
            )
            .with_suggestion(
                "corruption was detected and handled; persistent corruption on one \
                 edge suggests a faulty transport or an injection plan left enabled",
            ),
        );
    }

    if substituted_tokens + skipped_tokens > 0 {
        diagnostics.push(
            Diagnostic::new(
                "SPI095",
                Severity::Warning,
                Locus::System,
                format!(
                    "{} substituted and {} skipped token(s): output may deviate from \
                     the fault-free run",
                    substituted_tokens, skipped_tokens
                ),
            )
            .with_suggestion(
                "degradation is declared-and-bounded (UBS semantics), but downstream \
                 consumers of this run's output should know it is not byte-exact",
            ),
        );
    }

    diagnostics.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.code.cmp(b.code))
            .then(a.message.cmp(&b.message))
    });

    ConformanceReport {
        diagnostics,
        channels_checked: replays.len(),
        messages_checked,
        observed_makespan,
        predicted_makespan,
        slack,
    }
}

/// The makespan bound is only comparable when the timestamps are
/// cycle-denominated (DES traces); a wall-clock trace against a cycle
/// bound would be apples to oranges.
fn predicted_bound(meta: &TraceMeta) -> Option<u64> {
    match meta.clock {
        ClockKind::Cycles => meta.predicted_makespan_cycles,
        ClockKind::Nanos => None,
    }
}

fn record_occupancy(
    worst: &mut HashMap<usize, (u64, u64, u64)>,
    channel: ChannelId,
    occ_bytes: u32,
    occ_msgs: u32,
    ts: u64,
    bound: &EdgeBound,
) {
    let over_bytes = u64::from(occ_bytes) > bound.capacity_bytes;
    let over_msgs = bound.bound_tokens.is_some_and(|t| u64::from(occ_msgs) > t);
    if over_bytes || over_msgs {
        let w = worst.entry(channel.0).or_insert((0, 0, ts));
        if u64::from(occ_bytes) >= w.0 {
            *w = (u64::from(occ_bytes), u64::from(occ_msgs), ts);
        }
    }
}

fn locus_for(bounds: &HashMap<usize, &EdgeBound>, channel: ChannelId) -> Locus {
    match bounds.get(&channel.0) {
        Some(b) => Locus::Edge(b.edge),
        None => Locus::System,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_dataflow::EdgeId;
    use spi_platform::{PeId, ProbeEvent};

    fn bounded_meta() -> TraceMeta {
        let mut meta = TraceMeta::new(ClockKind::Cycles);
        meta.edges.push(EdgeBound {
            edge: EdgeId(0),
            channel: ChannelId(0),
            capacity_bytes: 64,
            max_message_bytes: 16,
            bound_tokens: Some(4),
        });
        meta
    }

    fn send(ts: u64, ch: usize, bytes: u32, digest: u64, occ_b: u32, occ_m: u32) -> ProbeEvent {
        ProbeEvent {
            ts,
            pe: PeId(0),
            kind: ProbeKind::Send {
                channel: ChannelId(ch),
                bytes,
                digest,
                occ_bytes: occ_b,
                occ_msgs: occ_m,
            },
        }
    }

    fn recv(ts: u64, ch: usize, bytes: u32, digest: u64, occ_b: u32, occ_m: u32) -> ProbeEvent {
        ProbeEvent {
            ts,
            pe: PeId(1),
            kind: ProbeKind::Recv {
                channel: ChannelId(ch),
                bytes,
                digest,
                occ_bytes: occ_b,
                occ_msgs: occ_m,
            },
        }
    }

    fn codes(r: &ConformanceReport) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    fn supervised_meta() -> TraceMeta {
        let mut meta = bounded_meta();
        meta.supervision = Some(crate::model::SupervisionBounds {
            max_retries: 2,
            max_degraded: 1,
            max_restarts: 1,
        });
        meta
    }

    fn fault(ts: u64, pe: usize, kind: ProbeKind) -> ProbeEvent {
        ProbeEvent {
            ts,
            pe: PeId(pe),
            kind,
        }
    }

    #[test]
    fn clean_trace_reports_no_diagnostics_and_slack() {
        let mut meta = bounded_meta();
        meta.predicted_makespan_cycles = Some(100);
        let trace = Trace {
            meta,
            events: vec![
                send(10, 0, 16, 0xaa, 16, 1),
                send(20, 0, 16, 0xbb, 32, 2),
                recv(30, 0, 16, 0xaa, 16, 1),
                recv(40, 0, 16, 0xbb, 0, 0),
            ],
        };
        let r = check(&trace);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert!(!r.has_errors());
        assert_eq!(r.messages_checked, 2);
        assert_eq!(r.channels_checked, 1);
        assert_eq!(r.slack, Some(60));
        assert!(r.render_human().contains("slack 60"));
        assert!(r.render_human().contains(": ok"));
    }

    #[test]
    fn occupancy_over_bound_fires_spi080_once_at_worst() {
        let trace = Trace {
            meta: bounded_meta(),
            events: vec![
                send(1, 0, 16, 1, 65, 5),
                send(2, 0, 16, 2, 81, 6), // worse
            ],
        };
        let r = check(&trace);
        assert_eq!(codes(&r), vec!["SPI080"]);
        assert!(r.diagnostics[0].message.contains("81 B"));
        assert!(r.diagnostics[0].message.contains("t=2"));
        assert_eq!(r.diagnostics[0].locus, Locus::Edge(EdgeId(0)));
    }

    #[test]
    fn token_count_over_bound_fires_spi080_even_under_byte_capacity() {
        let trace = Trace {
            meta: bounded_meta(),
            // 5 msgs > bound_tokens=4, but 40 B < 64 B capacity.
            events: vec![send(1, 0, 8, 1, 40, 5)],
        };
        let r = check(&trace);
        assert_eq!(codes(&r), vec!["SPI080"]);
        assert!(r.diagnostics[0].message.contains("5 msg"));
    }

    #[test]
    fn oversized_message_fires_spi081() {
        let trace = Trace {
            meta: bounded_meta(),
            events: vec![send(1, 0, 17, 1, 17, 1)],
        };
        let r = check(&trace);
        assert_eq!(codes(&r), vec!["SPI081"]);
        assert!(r.diagnostics[0].message.contains("17 B"));
        assert!(r.diagnostics[0].message.contains("c(e) = 16"));
    }

    #[test]
    fn digest_mismatch_fires_spi082_once() {
        let trace = Trace {
            meta: bounded_meta(),
            events: vec![
                send(1, 0, 16, 0xaa, 16, 1),
                send(2, 0, 16, 0xbb, 32, 2),
                recv(3, 0, 16, 0xbb, 16, 1), // out of order
                recv(4, 0, 16, 0xaa, 0, 0),
            ],
        };
        let r = check(&trace);
        assert_eq!(codes(&r), vec!["SPI082"]);
        assert!(r.diagnostics[0].message.contains("receive #0"));
    }

    #[test]
    fn excess_receives_fire_spi085() {
        let trace = Trace {
            meta: bounded_meta(),
            events: vec![
                send(1, 0, 16, 0xaa, 16, 1),
                recv(2, 0, 16, 0xaa, 0, 0),
                recv(3, 0, 16, 0xcc, 0, 0),
            ],
        };
        let r = check(&trace);
        assert_eq!(codes(&r), vec!["SPI085"]);
        assert!(r.diagnostics[0].message.contains("receive #1"));
    }

    #[test]
    fn makespan_overshoot_fires_spi083_cycles_only() {
        let mut meta = bounded_meta();
        meta.predicted_makespan_cycles = Some(10);
        let events = vec![send(50, 0, 16, 1, 16, 1)];
        let r = check(&Trace {
            meta: meta.clone(),
            events: events.clone(),
        });
        assert_eq!(codes(&r), vec!["SPI083"]);
        assert!(r.diagnostics[0].message.contains("overshoot 40"));

        // Same numbers on a nanosecond clock: not comparable, no finding.
        meta.clock = ClockKind::Nanos;
        let r = check(&Trace { meta, events });
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.predicted_makespan, None);
    }

    #[test]
    fn dropped_events_fire_spi084_warning() {
        let mut meta = bounded_meta();
        meta.dropped = 7;
        let r = check(&Trace {
            meta,
            events: vec![],
        });
        assert_eq!(codes(&r), vec!["SPI084"]);
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
        assert!(!r.has_errors());
    }

    #[test]
    fn unbounded_channels_skip_bound_checks_but_keep_fifo() {
        // Channel 9 has no EdgeBound: huge message + occupancy are fine,
        // but a digest mismatch still fires.
        let trace = Trace {
            meta: bounded_meta(),
            events: vec![
                send(1, 9, 4096, 0xaa, 4096, 1),
                recv(2, 9, 4096, 0xdd, 0, 0),
            ],
        };
        let r = check(&trace);
        assert_eq!(codes(&r), vec!["SPI082"]);
        assert_eq!(r.diagnostics[0].locus, Locus::System);
    }

    #[test]
    fn flush_over_budget_fires_spi086_once_at_worst() {
        use spi_platform::FlushReason;
        let mut meta = bounded_meta();
        meta.batch_bounds.push(crate::model::BatchBound {
            channel: ChannelId(0),
            max_msgs: 4,
        });
        let flush = |ts, msgs, bytes| ProbeEvent {
            ts,
            pe: PeId(0),
            kind: ProbeKind::BatchFlush {
                channel: ChannelId(0),
                msgs,
                bytes,
                reason: FlushReason::Full,
            },
        };
        let trace = Trace {
            meta,
            events: vec![flush(1, 4, 64), flush(2, 5, 80), flush(3, 6, 96)],
        };
        let r = check(&trace);
        assert_eq!(codes(&r), vec!["SPI086"]);
        assert!(r.diagnostics[0].message.contains("6 record(s)"));
        assert!(r.diagnostics[0].message.contains("t=3"));
        assert!(r.diagnostics[0].message.contains("budget of 4"));
        assert_eq!(r.diagnostics[0].locus, Locus::Edge(EdgeId(0)));
    }

    #[test]
    fn undeclared_batched_channels_are_exempt_from_spi086() {
        use spi_platform::FlushReason;
        // Channel 7 flushes huge batches but declares no bound — an
        // ad-hoc batched endpoint owes the checker nothing. Channel 0
        // declares a bound and stays inside it.
        let mut meta = bounded_meta();
        meta.batch_bounds.push(crate::model::BatchBound {
            channel: ChannelId(0),
            max_msgs: 4,
        });
        let flush = |ts, ch, msgs| ProbeEvent {
            ts,
            pe: PeId(0),
            kind: ProbeKind::BatchFlush {
                channel: ChannelId(ch),
                msgs,
                bytes: msgs * 16,
                reason: FlushReason::Deadline,
            },
        };
        let trace = Trace {
            meta,
            events: vec![flush(1, 7, 1000), flush(2, 0, 4)],
        };
        let r = check(&trace);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn retry_over_budget_fires_spi090_only_under_supervision_meta() {
        let events = vec![
            fault(
                1,
                1,
                ProbeKind::FaultRetry {
                    channel: ChannelId(0),
                    attempt: 2, // within budget
                },
            ),
            fault(
                2,
                1,
                ProbeKind::FaultRetry {
                    channel: ChannelId(0),
                    attempt: 3, // over budget (max_retries = 2)
                },
            ),
        ];
        let r = check(&Trace {
            meta: supervised_meta(),
            events: events.clone(),
        });
        assert_eq!(codes(&r), vec!["SPI090"]);
        assert!(r.diagnostics[0].message.contains("attempt 3"));
        assert!(r.diagnostics[0].message.contains("budget of 2"));
        assert_eq!(r.diagnostics[0].locus, Locus::Edge(EdgeId(0)));

        // Same events with no declared budgets: nothing to conform to.
        let r = check(&Trace {
            meta: bounded_meta(),
            events,
        });
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn degradation_over_budget_fires_spi091_and_always_warns_spi095() {
        let events = vec![
            fault(
                1,
                1,
                ProbeKind::FaultDegraded {
                    channel: ChannelId(0),
                    substituted: true,
                },
            ),
            fault(
                2,
                1,
                ProbeKind::FaultDegraded {
                    channel: ChannelId(0),
                    substituted: false,
                },
            ),
        ];
        // 2 degraded > max_degraded = 1: error + advisory warning.
        let r = check(&Trace {
            meta: supervised_meta(),
            events: events.clone(),
        });
        assert_eq!(codes(&r), vec!["SPI091", "SPI095"]);
        assert!(r.diagnostics[0]
            .message
            .contains("1 substituted, 1 skipped"));

        // Unsupervised: the deviation is still worth a warning.
        let r = check(&Trace {
            meta: bounded_meta(),
            events,
        });
        assert_eq!(codes(&r), vec!["SPI095"]);
        assert!(!r.has_errors());
    }

    #[test]
    fn restarts_over_budget_fire_spi092_per_pe() {
        let events = vec![
            fault(1, 2, ProbeKind::FaultRestart { iter: 3 }),
            fault(2, 2, ProbeKind::FaultRestart { iter: 5 }),
            fault(3, 1, ProbeKind::FaultRestart { iter: 4 }), // within budget
        ];
        let r = check(&Trace {
            meta: supervised_meta(),
            events,
        });
        assert_eq!(codes(&r), vec!["SPI092"]);
        assert!(r.diagnostics[0].message.contains("PE2"));
        assert!(r.diagnostics[0].message.contains("iteration 5"));
    }

    #[test]
    fn recovered_corruption_warns_spi094_unresolved_escalates_spi093() {
        // Corrupt frame followed by a delivery on the same channel:
        // retransmission landed, only the advisory warning remains.
        let recovered = vec![
            send(1, 0, 16, 0xaa, 16, 1),
            fault(
                2,
                1,
                ProbeKind::FaultCorrupt {
                    channel: ChannelId(0),
                },
            ),
            send(3, 0, 16, 0xaa, 16, 1),
            recv(4, 0, 16, 0xaa, 0, 0),
        ];
        let r = check(&Trace {
            meta: supervised_meta(),
            events: recovered,
        });
        // Two sends for one receive is fine — the retransmission *is*
        // the second send; conservation only fires on excess receives.
        assert_eq!(codes(&r), vec!["SPI094"]);

        // Corrupt frame with no later delivery or degradation: the
        // supervisor lost a token.
        let dangling = vec![
            recv(1, 0, 16, 0xaa, 0, 0),
            fault(
                2,
                1,
                ProbeKind::FaultCorrupt {
                    channel: ChannelId(0),
                },
            ),
        ];
        let r = check(&Trace {
            meta: bounded_meta(),
            events: dangling,
        });
        assert!(codes(&r).contains(&"SPI093"));
        assert!(codes(&r).contains(&"SPI094"));
        assert!(r.has_errors());
    }

    #[test]
    fn degradation_resolves_pending_corruption() {
        // Corrupt then degrade on the same channel: the loss was
        // declared, so no SPI093 — just the two advisories.
        let events = vec![
            fault(
                1,
                1,
                ProbeKind::FaultCorrupt {
                    channel: ChannelId(0),
                },
            ),
            fault(
                2,
                1,
                ProbeKind::FaultDegraded {
                    channel: ChannelId(0),
                    substituted: true,
                },
            ),
        ];
        let r = check(&Trace {
            meta: supervised_meta(),
            events,
        });
        assert_eq!(codes(&r), vec!["SPI094", "SPI095"]);
        assert!(!r.has_errors());
    }

    #[test]
    fn errors_sort_before_warnings() {
        let mut meta = bounded_meta();
        meta.dropped = 1;
        let trace = Trace {
            meta,
            events: vec![send(1, 0, 17, 1, 65, 5)],
        };
        let r = check(&trace);
        let cs = codes(&r);
        assert_eq!(cs, vec!["SPI080", "SPI081", "SPI084"]);
        assert!(r.render_human().contains("FAIL"));
    }
}

//! The owned trace model and its native on-disk format.
//!
//! A [`Trace`] is what a capture run leaves behind: the merged,
//! timestamp-ordered probe events plus the metadata a consumer needs to
//! interpret and *check* them — which clock the timestamps follow, the
//! interned label table, and the static per-edge bounds (eq. 1 packed
//! message size, eq. 2 IPC buffer capacity) the conformance checker
//! holds the events against.
//!
//! The native format is deliberately line-oriented text, not a binary
//! dump: traces are small (tens of thousands of events), diffable, and
//! greppable in a failure report. `#`-prefixed lines carry metadata,
//! `E` lines carry events; unknown `#` keys are skipped so the format
//! can grow without breaking old readers.

use std::fmt;

use spi_dataflow::EdgeId;
use spi_platform::{ChannelId, FlushReason, PeId, ProbeEvent, ProbeKind};

/// Format version written in the header line.
pub const NATIVE_VERSION: u32 = 1;

/// What one unit of [`ProbeEvent::ts`] means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockKind {
    /// Simulated cycles from the discrete-event engine — exact,
    /// deterministic, and comparable against analytic cycle bounds.
    Cycles,
    /// Monotonic wall-clock nanoseconds from the threaded runner —
    /// real time, not comparable against cycle-denominated bounds.
    Nanos,
}

impl ClockKind {
    fn as_str(self) -> &'static str {
        match self {
            ClockKind::Cycles => "cycles",
            ClockKind::Nanos => "ns",
        }
    }
}

/// The static contract of one application edge, as the analyzer and
/// builder derived it — the numbers the runtime must stay within.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeBound {
    /// Application-graph edge this bound belongs to.
    pub edge: EdgeId,
    /// Platform channel that carries the edge's data messages.
    pub channel: ChannelId,
    /// Allocated buffer capacity in bytes — the eq. (2) bound
    /// `B(e) = (Γ + delay(e)) · c(e)` as provisioned by the builder.
    /// Observed occupancy above this is a hard invariant violation.
    pub capacity_bytes: u64,
    /// Largest legal packed message in bytes (eq. 1 `c(e)` including
    /// the header), fixed at compile time by the token-size bound.
    pub max_message_bytes: u64,
    /// Message-count form of the buffer bound (`Γ + delay(e)`), when
    /// the protocol bounds it; `None` for unbounded UBS edges.
    pub bound_tokens: Option<u64>,
}

/// The declared batching budget of one channel: the most records its
/// sending endpoint may coalesce into a single flush, as lowered from
/// the schedule (`spi_sched::BatchPlan`). The conformance checker holds
/// every observed [`ProbeKind::BatchFlush`] against this (SPI086).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchBound {
    /// Platform channel the budget applies to.
    pub channel: ChannelId,
    /// Most records one flush may carry.
    pub max_msgs: u64,
}

/// Declared supervision budgets of a supervised run — the bounds the
/// conformance checker holds the observed `Fault*` events against
/// (diagnostics SPI090–SPI092).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionBounds {
    /// Retries allowed per channel operation beyond the first attempt
    /// (`SupervisionPolicy::max_retries`).
    pub max_retries: u64,
    /// Total tokens the run may degrade (substitute or skip) before it
    /// is considered out of spec.
    pub max_degraded: u64,
    /// Checkpoint restarts allowed per PE
    /// (`SupervisionPolicy::max_restarts`).
    pub max_restarts: u64,
}

/// Everything about a capture run except the events themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Unit of every event timestamp.
    pub clock: ClockKind,
    /// Interned label table; [`ProbeKind::FiringBegin::label`] indexes
    /// into it.
    pub labels: Vec<String>,
    /// Static bounds for the data edges the run was built from. Channels
    /// not listed here (control/ack traffic) are exempt from bound
    /// checks but still FIFO-checked.
    pub edges: Vec<EdgeBound>,
    /// Analytic makespan bound in cycles for the traced horizon, when
    /// the builder computed one. Only meaningful for
    /// [`ClockKind::Cycles`] traces.
    pub predicted_makespan_cycles: Option<u64>,
    /// Graph iterations the run executed.
    pub iterations: u64,
    /// Probe events the capture buffer had to drop (ring overflow).
    /// Non-zero means every check ran on a partial stream.
    pub dropped: u64,
    /// Supervision budgets when the run was supervised; `None` for
    /// plain runs (the fault-budget checks SPI090–SPI092 are skipped).
    pub supervision: Option<SupervisionBounds>,
    /// Batching budgets for channels whose senders coalesce records.
    /// Channels not listed are exempt from the SPI086 budget check
    /// (ad-hoc batched endpoints in tests and benches declare nothing).
    pub batch_bounds: Vec<BatchBound>,
}

impl TraceMeta {
    /// A metadata block with the given clock and everything else empty.
    pub fn new(clock: ClockKind) -> Self {
        TraceMeta {
            clock,
            labels: Vec::new(),
            edges: Vec::new(),
            predicted_makespan_cycles: None,
            iterations: 0,
            dropped: 0,
            supervision: None,
            batch_bounds: Vec::new(),
        }
    }

    /// The label string for an interned id, or a stable placeholder when
    /// the id is out of range (possible after a truncated parse).
    pub fn label(&self, id: u32) -> &str {
        self.labels.get(id as usize).map_or("?", String::as_str)
    }
}

/// A complete capture: metadata plus the merged event stream, ordered
/// by timestamp (ties keep per-PE emission order).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Run metadata.
    pub meta: TraceMeta,
    /// Timestamp-ordered probe events.
    pub events: Vec<ProbeEvent>,
}

impl Trace {
    /// Timestamp of the last event — the observed makespan for a
    /// cycle-clocked trace (the DES starts at cycle 0).
    pub fn observed_end(&self) -> u64 {
        self.events.iter().map(|e| e.ts).max().unwrap_or(0)
    }

    /// Width of the observed window (`max ts − min ts`).
    pub fn span(&self) -> u64 {
        let min = self.events.iter().map(|e| e.ts).min().unwrap_or(0);
        self.observed_end() - min
    }

    /// Serializes to the native line format (see the module docs).
    pub fn to_native(&self) -> String {
        let m = &self.meta;
        let mut out = String::new();
        out.push_str(&format!("# spi-trace v{NATIVE_VERSION}\n"));
        out.push_str(&format!("# clock {}\n", m.clock.as_str()));
        out.push_str(&format!("# iterations {}\n", m.iterations));
        out.push_str(&format!("# dropped {}\n", m.dropped));
        if let Some(p) = m.predicted_makespan_cycles {
            out.push_str(&format!("# predicted_makespan {p}\n"));
        }
        if let Some(s) = m.supervision {
            out.push_str(&format!(
                "# supervision retries {} degraded {} restarts {}\n",
                s.max_retries, s.max_degraded, s.max_restarts
            ));
        }
        for (i, l) in m.labels.iter().enumerate() {
            out.push_str(&format!("# label {i} {l}\n"));
        }
        for e in &m.edges {
            let tokens = e
                .bound_tokens
                .map_or_else(|| "inf".to_string(), |t| t.to_string());
            out.push_str(&format!(
                "# edge {} ch {} cap {} max {} tokens {}\n",
                e.edge.0, e.channel.0, e.capacity_bytes, e.max_message_bytes, tokens
            ));
        }
        for b in &m.batch_bounds {
            out.push_str(&format!("# batch ch {} max {}\n", b.channel.0, b.max_msgs));
        }
        for ev in &self.events {
            out.push_str(&format!("E {} {} ", ev.ts, ev.pe.0));
            match ev.kind {
                ProbeKind::FiringBegin { label } => out.push_str(&format!("B {label}")),
                ProbeKind::FiringEnd { label } => out.push_str(&format!("E {label}")),
                ProbeKind::Send {
                    channel,
                    bytes,
                    digest,
                    occ_bytes,
                    occ_msgs,
                } => out.push_str(&format!(
                    "S {} {bytes} {digest} {occ_bytes} {occ_msgs}",
                    channel.0
                )),
                ProbeKind::Recv {
                    channel,
                    bytes,
                    digest,
                    occ_bytes,
                    occ_msgs,
                } => out.push_str(&format!(
                    "R {} {bytes} {digest} {occ_bytes} {occ_msgs}",
                    channel.0
                )),
                ProbeKind::BlockSend { channel } => out.push_str(&format!("bs {}", channel.0)),
                ProbeKind::BlockRecv { channel } => out.push_str(&format!("br {}", channel.0)),
                ProbeKind::UnblockSend { channel } => out.push_str(&format!("us {}", channel.0)),
                ProbeKind::UnblockRecv { channel } => out.push_str(&format!("ur {}", channel.0)),
                ProbeKind::FaultRetry { channel, attempt } => {
                    out.push_str(&format!("fr {} {attempt}", channel.0));
                }
                ProbeKind::FaultCorrupt { channel } => out.push_str(&format!("fc {}", channel.0)),
                ProbeKind::FaultDegraded {
                    channel,
                    substituted,
                } => out.push_str(&format!("fd {} {}", channel.0, u8::from(substituted))),
                ProbeKind::FaultRestart { iter } => out.push_str(&format!("fx {iter}")),
                ProbeKind::BatchFlush {
                    channel,
                    msgs,
                    bytes,
                    reason,
                } => out.push_str(&format!(
                    "bf {} {msgs} {bytes} {}",
                    channel.0,
                    reason.code()
                )),
                _ => out.push('?'),
            }
            out.push('\n');
        }
        out
    }

    /// Parses the native line format.
    ///
    /// # Errors
    ///
    /// [`TraceParseError`] with the offending 1-based line number on any
    /// malformed header, metadata or event line.
    pub fn from_native(text: &str) -> Result<Trace, TraceParseError> {
        let mut lines = text.lines().enumerate();
        let mut meta = TraceMeta::new(ClockKind::Cycles);
        let mut events = Vec::new();

        let (_, first) = lines
            .next()
            .ok_or_else(|| TraceParseError::at(1, "empty trace"))?;
        if first.trim() != format!("# spi-trace v{NATIVE_VERSION}") {
            return Err(TraceParseError::at(
                1,
                format!("bad header {first:?}; expected \"# spi-trace v{NATIVE_VERSION}\""),
            ));
        }

        for (i, raw) in lines {
            let n = i + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# ") {
                parse_meta_line(rest, n, &mut meta)?;
            } else if let Some(rest) = line.strip_prefix("E ") {
                events.push(parse_event_line(rest, n)?);
            } else {
                return Err(TraceParseError::at(
                    n,
                    format!("unrecognized line {line:?}"),
                ));
            }
        }
        Ok(Trace { meta, events })
    }
}

fn parse_meta_line(rest: &str, n: usize, meta: &mut TraceMeta) -> Result<(), TraceParseError> {
    let mut it = rest.splitn(2, ' ');
    let key = it.next().unwrap_or("");
    let val = it.next().unwrap_or("").trim();
    match key {
        "clock" => {
            meta.clock = match val {
                "cycles" => ClockKind::Cycles,
                "ns" => ClockKind::Nanos,
                other => {
                    return Err(TraceParseError::at(n, format!("unknown clock {other:?}")));
                }
            }
        }
        "iterations" => meta.iterations = parse_u64(val, n, "iterations")?,
        "dropped" => meta.dropped = parse_u64(val, n, "dropped")?,
        "predicted_makespan" => {
            meta.predicted_makespan_cycles = Some(parse_u64(val, n, "predicted_makespan")?);
        }
        "supervision" => {
            let f: Vec<&str> = val.split_whitespace().collect();
            // "retries <r> degraded <d> restarts <s>"
            if f.len() != 6 || f[0] != "retries" || f[2] != "degraded" || f[4] != "restarts" {
                return Err(TraceParseError::at(
                    n,
                    format!("malformed supervision line {val:?}"),
                ));
            }
            meta.supervision = Some(SupervisionBounds {
                max_retries: parse_u64(f[1], n, "retries")?,
                max_degraded: parse_u64(f[3], n, "degraded")?,
                max_restarts: parse_u64(f[5], n, "restarts")?,
            });
        }
        "label" => {
            let mut parts = val.splitn(2, ' ');
            let id = parse_u64(parts.next().unwrap_or(""), n, "label id")? as usize;
            let name = parts.next().unwrap_or("").to_string();
            if meta.labels.len() <= id {
                meta.labels.resize(id + 1, String::new());
            }
            meta.labels[id] = name;
        }
        "edge" => {
            let f: Vec<&str> = val.split_whitespace().collect();
            // "<id> ch <n> cap <B> max <m> tokens <t|inf>"
            if f.len() != 9 || f[1] != "ch" || f[3] != "cap" || f[5] != "max" || f[7] != "tokens" {
                return Err(TraceParseError::at(
                    n,
                    format!("malformed edge line {val:?}"),
                ));
            }
            meta.edges.push(EdgeBound {
                edge: EdgeId(parse_u64(f[0], n, "edge id")? as usize),
                channel: ChannelId(parse_u64(f[2], n, "channel")? as usize),
                capacity_bytes: parse_u64(f[4], n, "cap")?,
                max_message_bytes: parse_u64(f[6], n, "max")?,
                bound_tokens: if f[8] == "inf" {
                    None
                } else {
                    Some(parse_u64(f[8], n, "tokens")?)
                },
            });
        }
        "batch" => {
            let f: Vec<&str> = val.split_whitespace().collect();
            // "ch <n> max <m>"
            if f.len() != 4 || f[0] != "ch" || f[2] != "max" {
                return Err(TraceParseError::at(
                    n,
                    format!("malformed batch line {val:?}"),
                ));
            }
            meta.batch_bounds.push(BatchBound {
                channel: ChannelId(parse_u64(f[1], n, "channel")? as usize),
                max_msgs: parse_u64(f[3], n, "max")?,
            });
        }
        // Unknown keys are forward-compatible comments.
        _ => {}
    }
    Ok(())
}

fn parse_event_line(rest: &str, n: usize) -> Result<ProbeEvent, TraceParseError> {
    let f: Vec<&str> = rest.split_whitespace().collect();
    if f.len() < 3 {
        return Err(TraceParseError::at(n, format!("truncated event {rest:?}")));
    }
    let ts = parse_u64(f[0], n, "timestamp")?;
    let pe = PeId(parse_u64(f[1], n, "pe")? as usize);
    let arg = |i: usize| -> Result<u64, TraceParseError> {
        f.get(i)
            .copied()
            .ok_or_else(|| TraceParseError::at(n, format!("truncated event {rest:?}")))
            .and_then(|s| parse_u64(s, n, "event field"))
    };
    let data = |kind: &str| -> Result<(ChannelId, u32, u64, u32, u32), TraceParseError> {
        if f.len() != 8 {
            return Err(TraceParseError::at(
                n,
                format!("{kind} event needs 5 fields, got {}", f.len() - 3),
            ));
        }
        Ok((
            ChannelId(arg(3)? as usize),
            arg(4)? as u32,
            arg(5)?,
            arg(6)? as u32,
            arg(7)? as u32,
        ))
    };
    let kind = match f[2] {
        "B" => ProbeKind::FiringBegin {
            label: arg(3)? as u32,
        },
        "E" => ProbeKind::FiringEnd {
            label: arg(3)? as u32,
        },
        "S" => {
            let (channel, bytes, digest, occ_bytes, occ_msgs) = data("send")?;
            ProbeKind::Send {
                channel,
                bytes,
                digest,
                occ_bytes,
                occ_msgs,
            }
        }
        "R" => {
            let (channel, bytes, digest, occ_bytes, occ_msgs) = data("recv")?;
            ProbeKind::Recv {
                channel,
                bytes,
                digest,
                occ_bytes,
                occ_msgs,
            }
        }
        "bs" => ProbeKind::BlockSend {
            channel: ChannelId(arg(3)? as usize),
        },
        "br" => ProbeKind::BlockRecv {
            channel: ChannelId(arg(3)? as usize),
        },
        "us" => ProbeKind::UnblockSend {
            channel: ChannelId(arg(3)? as usize),
        },
        "ur" => ProbeKind::UnblockRecv {
            channel: ChannelId(arg(3)? as usize),
        },
        "fr" => ProbeKind::FaultRetry {
            channel: ChannelId(arg(3)? as usize),
            attempt: arg(4)? as u32,
        },
        "fc" => ProbeKind::FaultCorrupt {
            channel: ChannelId(arg(3)? as usize),
        },
        "fd" => ProbeKind::FaultDegraded {
            channel: ChannelId(arg(3)? as usize),
            substituted: arg(4)? != 0,
        },
        "fx" => ProbeKind::FaultRestart { iter: arg(3)? },
        "bf" => {
            let code = arg(6)? as u32;
            ProbeKind::BatchFlush {
                channel: ChannelId(arg(3)? as usize),
                msgs: arg(4)? as u32,
                bytes: arg(5)? as u32,
                reason: FlushReason::from_code(code).ok_or_else(|| {
                    TraceParseError::at(n, format!("unknown flush reason code {code}"))
                })?,
            }
        }
        other => {
            return Err(TraceParseError::at(
                n,
                format!("unknown event kind {other:?}"),
            ));
        }
    };
    Ok(ProbeEvent { ts, pe, kind })
}

fn parse_u64(s: &str, line: usize, what: &str) -> Result<u64, TraceParseError> {
    s.parse()
        .map_err(|_| TraceParseError::at(line, format!("bad {what} {s:?}")))
}

/// A malformed native-format trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl TraceParseError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        TraceParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut meta = TraceMeta::new(ClockKind::Cycles);
        meta.labels = vec!["fire:src#0".into(), "fire:snk#0".into()];
        meta.iterations = 2;
        meta.predicted_makespan_cycles = Some(500);
        meta.edges.push(EdgeBound {
            edge: EdgeId(0),
            channel: ChannelId(1),
            capacity_bytes: 64,
            max_message_bytes: 16,
            bound_tokens: Some(4),
        });
        meta.edges.push(EdgeBound {
            edge: EdgeId(1),
            channel: ChannelId(2),
            capacity_bytes: 32,
            max_message_bytes: 8,
            bound_tokens: None,
        });
        let events = vec![
            ProbeEvent {
                ts: 0,
                pe: PeId(0),
                kind: ProbeKind::FiringBegin { label: 0 },
            },
            ProbeEvent {
                ts: 10,
                pe: PeId(0),
                kind: ProbeKind::FiringEnd { label: 0 },
            },
            ProbeEvent {
                ts: 10,
                pe: PeId(0),
                kind: ProbeKind::Send {
                    channel: ChannelId(1),
                    bytes: 16,
                    digest: 0xdead_beef,
                    occ_bytes: 16,
                    occ_msgs: 1,
                },
            },
            ProbeEvent {
                ts: 12,
                pe: PeId(1),
                kind: ProbeKind::BlockRecv {
                    channel: ChannelId(1),
                },
            },
            ProbeEvent {
                ts: 14,
                pe: PeId(1),
                kind: ProbeKind::UnblockRecv {
                    channel: ChannelId(1),
                },
            },
            ProbeEvent {
                ts: 14,
                pe: PeId(1),
                kind: ProbeKind::Recv {
                    channel: ChannelId(1),
                    bytes: 16,
                    digest: 0xdead_beef,
                    occ_bytes: 0,
                    occ_msgs: 0,
                },
            },
        ];
        Trace { meta, events }
    }

    #[test]
    fn native_roundtrip_preserves_everything() {
        let t = sample_trace();
        let text = t.to_native();
        let back = Trace::from_native(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn supervision_meta_and_fault_events_roundtrip() {
        let mut t = sample_trace();
        t.meta.supervision = Some(SupervisionBounds {
            max_retries: 3,
            max_degraded: 5,
            max_restarts: 1,
        });
        t.events.extend([
            ProbeEvent {
                ts: 20,
                pe: PeId(0),
                kind: ProbeKind::FaultRetry {
                    channel: ChannelId(1),
                    attempt: 2,
                },
            },
            ProbeEvent {
                ts: 21,
                pe: PeId(1),
                kind: ProbeKind::FaultCorrupt {
                    channel: ChannelId(1),
                },
            },
            ProbeEvent {
                ts: 22,
                pe: PeId(1),
                kind: ProbeKind::FaultDegraded {
                    channel: ChannelId(1),
                    substituted: true,
                },
            },
            ProbeEvent {
                ts: 23,
                pe: PeId(1),
                kind: ProbeKind::FaultDegraded {
                    channel: ChannelId(2),
                    substituted: false,
                },
            },
            ProbeEvent {
                ts: 24,
                pe: PeId(1),
                kind: ProbeKind::FaultRestart { iter: 7 },
            },
        ]);
        let text = t.to_native();
        assert!(text.contains("# supervision retries 3 degraded 5 restarts 1"));
        assert!(text.contains("fr 1 2"));
        assert!(text.contains("fc 1"));
        assert!(text.contains("fd 1 1"));
        assert!(text.contains("fd 2 0"));
        assert!(text.contains("fx 7"));
        let back = Trace::from_native(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn batch_meta_and_flush_events_roundtrip() {
        let mut t = sample_trace();
        t.meta.batch_bounds.push(BatchBound {
            channel: ChannelId(1),
            max_msgs: 8,
        });
        t.events.extend([
            ProbeEvent {
                ts: 30,
                pe: PeId(0),
                kind: ProbeKind::BatchFlush {
                    channel: ChannelId(1),
                    msgs: 8,
                    bytes: 128,
                    reason: FlushReason::Full,
                },
            },
            ProbeEvent {
                ts: 31,
                pe: PeId(0),
                kind: ProbeKind::BatchFlush {
                    channel: ChannelId(1),
                    msgs: 3,
                    bytes: 48,
                    reason: FlushReason::Deadline,
                },
            },
            ProbeEvent {
                ts: 32,
                pe: PeId(0),
                kind: ProbeKind::BatchFlush {
                    channel: ChannelId(1),
                    msgs: 1,
                    bytes: 16,
                    reason: FlushReason::Final,
                },
            },
        ]);
        let text = t.to_native();
        assert!(text.contains("# batch ch 1 max 8"));
        assert!(text.contains("bf 1 8 128 0"));
        assert!(text.contains("bf 1 3 48 2"));
        assert!(text.contains("bf 1 1 16 4"));
        let back = Trace::from_native(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn malformed_batch_meta_and_unknown_flush_codes_are_rejected() {
        let err = Trace::from_native("# spi-trace v1\n# batch ch 1\n").unwrap_err();
        assert!(err.to_string().contains("malformed batch"));
        let err = Trace::from_native("# spi-trace v1\nE 1 0 bf 1 2 32 9\n").unwrap_err();
        assert!(err.to_string().contains("unknown flush reason"));
    }

    #[test]
    fn malformed_supervision_line_is_rejected() {
        let err =
            Trace::from_native("# spi-trace v1\n# supervision retries 3 degraded 5\n").unwrap_err();
        assert!(err.to_string().contains("malformed supervision"));
    }

    #[test]
    fn header_is_mandatory() {
        let err = Trace::from_native("E 0 0 B 0\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn unknown_meta_keys_are_skipped() {
        let text = "# spi-trace v1\n# clock ns\n# flavor vanilla\nE 5 0 bs 3\n";
        let t = Trace::from_native(text).unwrap();
        assert_eq!(t.meta.clock, ClockKind::Nanos);
        assert_eq!(t.events.len(), 1);
        assert_eq!(
            t.events[0].kind,
            ProbeKind::BlockSend {
                channel: ChannelId(3)
            }
        );
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let err = Trace::from_native("# spi-trace v1\nE 1 0 S 2 16\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = Trace::from_native("# spi-trace v1\nwat\n").unwrap_err();
        assert!(err.to_string().contains("unrecognized"));
        let err = Trace::from_native("# spi-trace v1\n# edge 0 ch 1 cap 64\n").unwrap_err();
        assert!(err.to_string().contains("malformed edge"));
    }

    #[test]
    fn observed_end_and_span() {
        let t = sample_trace();
        assert_eq!(t.observed_end(), 14);
        assert_eq!(t.span(), 14);
        let empty = Trace {
            meta: TraceMeta::new(ClockKind::Cycles),
            events: vec![],
        };
        assert_eq!(empty.observed_end(), 0);
        assert_eq!(empty.span(), 0);
    }

    #[test]
    fn labels_resolve_with_placeholder_fallback() {
        let t = sample_trace();
        assert_eq!(t.meta.label(1), "fire:snk#0");
        assert_eq!(t.meta.label(99), "?");
    }
}

//! # spi-trace — runtime observability for SPI systems
//!
//! The static layers of this repo derive guarantees *before* a system
//! runs: eq. (1) bounds every packed message, eq. (2) sizes every IPC
//! buffer, and the self-timed analysis predicts a makespan. This crate
//! turns those paper bounds into **checked runtime invariants**:
//!
//! * [`RingTracer`] — lock-free per-PE event capture implementing the
//!   platform's [`Tracer`] probe trait: no locks or allocation on the
//!   hot path, overflow drops-and-counts instead of blocking, and a
//!   stable timestamp merge that preserves per-channel FIFO order.
//! * [`Trace`] / [`TraceMeta`] — the owned capture model plus a
//!   line-oriented native format (`# spi-trace v1`) that is diffable
//!   and greppable in failure reports.
//! * [`aggregate`] — per-actor utilization, per-PE stall time,
//!   per-channel occupancy high-water marks, observed iteration period.
//! * [`to_chrome_json`] / [`render_gantt`] — Chrome `trace_event`
//!   export (open in `chrome://tracing` or Perfetto) and a terminal
//!   Gantt chart.
//! * [`check`] — the conformance checker: replays a trace against the
//!   eq. (1)/(2) bounds, per-channel FIFO, token conservation, and the
//!   predicted makespan, emitting analyzer-style `SPI080`–`SPI095`
//!   diagnostics — including the supervision-budget checks over the
//!   fault/retry/degrade/restart events a supervised run emits.
//!
//! ## Typical flow
//!
//! ```text
//! builder.tracer(ring.clone())         // attach a RingTracer
//!     -> system.run()                  // engines emit probe events
//!     -> ring.finish(system.trace_meta(ClockKind::Cycles))
//!     -> check(&trace)                 // SPI08x conformance report
//!     -> to_chrome_json(&trace)        // visualize
//! ```
//!
//! The capture module is the only unsafe code in the crate (the same
//! single-writer claim/publish idiom as the platform's `RingTransport`);
//! everything else is `#![deny(unsafe_code)]`-clean.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod capture;
mod check;
mod export;
mod metrics;
mod model;

pub use capture::{RingTracer, DEFAULT_EVENTS_PER_PE};
pub use check::{check, ConformanceReport};
pub use export::{render_gantt, to_chrome_json};
pub use metrics::{aggregate, ActorMetrics, ChannelMetrics, PeMetrics, TraceMetrics};
pub use model::{
    BatchBound, ClockKind, EdgeBound, SupervisionBounds, Trace, TraceMeta, TraceParseError,
    NATIVE_VERSION,
};

// Re-export the probe-side vocabulary so trace consumers need only this
// crate.
pub use spi_platform::{payload_digest, FlushReason, NopTracer, ProbeEvent, ProbeKind, Tracer};

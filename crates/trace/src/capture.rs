//! Lock-free trace capture: the [`RingTracer`].
//!
//! The capture buffer follows the same discipline as the runtime's
//! `RingTransport`: preallocated storage, atomics for coordination, and
//! zero heap allocation on the hot path. Each PE gets its **own** event
//! buffer — the [`spi_platform::Tracer`] contract guarantees
//! `record(pe, …)` is only called from the thread executing that PE (the
//! DES calls everything from one thread, which is the degenerate case) —
//! so recording an event is one atomic claim plus a plain slot write,
//! with no cross-thread contention and no locks.
//!
//! When a per-PE buffer fills, further events for that PE are **dropped
//! and counted**, never blocked on: observability must not perturb the
//! execution it observes beyond its fixed per-event cost. A non-zero
//! [`RingTracer::dropped`] count is carried into the trace metadata so
//! the conformance checker can flag that its verdict covers a partial
//! stream (SPI084).

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use spi_platform::{PeId, ProbeEvent, ProbeKind, Tracer};

use crate::model::{Trace, TraceMeta};

/// Monotonic nanosecond clock for [`Tracer::now`].
///
/// On x86-64 a raw `rdtsc` plus a once-per-process calibration against
/// the OS monotonic clock shaves a vDSO call off every timestamp — the
/// timestamp is the single largest fixed cost of recording an event, so
/// this is worth the few lines. Elsewhere it falls back to
/// [`Instant::elapsed`].
struct NsClock {
    #[cfg_attr(target_arch = "x86_64", allow(dead_code))]
    epoch: Instant,
    #[cfg(target_arch = "x86_64")]
    tsc_base: u64,
    #[cfg(target_arch = "x86_64")]
    ns_per_tick: f64,
}

#[cfg(target_arch = "x86_64")]
fn tsc_ns_per_tick() -> f64 {
    use std::sync::OnceLock;
    static NS_PER_TICK: OnceLock<f64> = OnceLock::new();
    *NS_PER_TICK.get_or_init(|| {
        // The TSC rate is a hardware constant (the kernel exposes `tsc`
        // as a clocksource only when it is invariant), so one short
        // calibration spin per process suffices.
        let t0 = Instant::now();
        let c0 = unsafe { core::arch::x86_64::_rdtsc() };
        while t0.elapsed() < std::time::Duration::from_millis(2) {
            std::hint::spin_loop();
        }
        let c1 = unsafe { core::arch::x86_64::_rdtsc() };
        let ticks = c1.wrapping_sub(c0);
        if ticks == 0 {
            // Degenerate TSC (emulator): fall back to 1 ns per tick so
            // now() stays monotonic even if meaningless.
            1.0
        } else {
            t0.elapsed().as_nanos() as f64 / ticks as f64
        }
    })
}

impl NsClock {
    fn start() -> Self {
        NsClock {
            epoch: Instant::now(),
            #[cfg(target_arch = "x86_64")]
            tsc_base: unsafe { core::arch::x86_64::_rdtsc() },
            #[cfg(target_arch = "x86_64")]
            ns_per_tick: tsc_ns_per_tick(),
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        #[cfg(target_arch = "x86_64")]
        {
            let ticks = unsafe { core::arch::x86_64::_rdtsc() }.wrapping_sub(self.tsc_base);
            (ticks as f64 * self.ns_per_tick) as u64
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self.epoch.elapsed().as_nanos() as u64
        }
    }
}

/// Default per-PE event capacity (events, not bytes).
pub const DEFAULT_EVENTS_PER_PE: usize = 1 << 16;

/// One PE's single-writer event buffer.
struct PeBuffer {
    /// Preallocated event slots. A slot is written at most once per
    /// capture (between two [`RingTracer::reset`] calls) by the single
    /// thread that owns this PE.
    slots: Box<[UnsafeCell<ProbeEvent>]>,
    /// Number of claimed slots; may run past `slots.len()` when events
    /// overflow (the excess is the per-PE drop count).
    len: AtomicUsize,
}

// SAFETY: each slot is written exactly once, by the single thread that
// claimed its index via the `len` fetch_add below, and only read after
// the capture quiesces (run threads joined, or same thread for the
// DES); the join / program order provides the needed happens-before.
unsafe impl Sync for PeBuffer {}

impl PeBuffer {
    fn new(capacity: usize) -> Self {
        let zero = ProbeEvent {
            ts: 0,
            pe: PeId(0),
            kind: ProbeKind::FiringBegin { label: 0 },
        };
        PeBuffer {
            slots: (0..capacity).map(|_| UnsafeCell::new(zero)).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Events captured (clamped to capacity) and events dropped.
    fn counts(&self) -> (usize, u64) {
        let n = self.len.load(Ordering::Acquire);
        let kept = n.min(self.slots.len());
        (kept, (n - kept) as u64)
    }
}

/// A lock-free, allocation-free probe sink with per-PE event buffers.
///
/// Construct it once per capture, share it with the engine via
/// `Arc<RingTracer>`, run, then turn the buffers into an owned
/// [`Trace`] with [`RingTracer::finish`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use spi_platform::{PeId, ProbeKind, Tracer};
/// use spi_trace::{ClockKind, RingTracer, TraceMeta};
///
/// let tracer = Arc::new(RingTracer::new(2, 64));
/// let label = tracer.intern("fire:src#0");
/// tracer.record(PeId(0), 5, ProbeKind::FiringBegin { label });
/// tracer.record(PeId(0), 9, ProbeKind::FiringEnd { label });
/// let trace = tracer.finish(TraceMeta::new(ClockKind::Cycles));
/// assert_eq!(trace.events.len(), 2);
/// assert_eq!(trace.meta.label(label), "fire:src#0");
/// ```
pub struct RingTracer {
    clock: NsClock,
    pes: Vec<PeBuffer>,
    /// Interned label table. Locking is fine here: labels are static per
    /// program and interned once, outside the hot loops (the `Tracer`
    /// contract).
    labels: Mutex<Vec<String>>,
    /// Events recorded for PEs beyond the configured PE count.
    out_of_range: AtomicU64,
}

impl RingTracer {
    /// A tracer for up to `pes` processing elements with
    /// `events_per_pe` preallocated event slots each.
    pub fn new(pes: usize, events_per_pe: usize) -> Self {
        RingTracer {
            clock: NsClock::start(),
            pes: (0..pes)
                .map(|_| PeBuffer::new(events_per_pe.max(1)))
                .collect(),
            labels: Mutex::new(Vec::new()),
            out_of_range: AtomicU64::new(0),
        }
    }

    /// A tracer for `pes` PEs with the default per-PE capacity.
    pub fn with_default_capacity(pes: usize) -> Self {
        RingTracer::new(pes, DEFAULT_EVENTS_PER_PE)
    }

    /// Total events dropped so far (full buffers plus out-of-range PE
    /// ids).
    pub fn dropped(&self) -> u64 {
        let overflow: u64 = self.pes.iter().map(|b| b.counts().1).sum();
        overflow + self.out_of_range.load(Ordering::Relaxed)
    }

    /// Events currently captured across all PEs.
    pub fn captured(&self) -> usize {
        self.pes.iter().map(|b| b.counts().0).sum()
    }

    /// Clears all buffers and drop counts for reuse (benchmark loops).
    /// Must not be called while a traced run is in flight.
    pub fn reset(&self) {
        for b in &self.pes {
            b.len.store(0, Ordering::Release);
        }
        self.out_of_range.store(0, Ordering::Relaxed);
    }

    /// Merges the per-PE buffers into one timestamp-ordered stream.
    ///
    /// The merge is a stable k-way merge: ties on `ts` preserve each
    /// PE's own emission order, so per-channel FIFO order (sends from
    /// one producer PE, receives from one consumer PE) survives into
    /// the merged stream even when timestamps collide.
    pub fn events(&self) -> Vec<ProbeEvent> {
        let mut streams: Vec<(usize, &[UnsafeCell<ProbeEvent>])> = self
            .pes
            .iter()
            .map(|b| {
                let (kept, _) = b.counts();
                (0usize, &b.slots[..kept])
            })
            .collect();
        let total: usize = streams.iter().map(|(_, s)| s.len()).sum();
        let mut out = Vec::with_capacity(total);
        // K is tiny (the PE count), so a linear scan per pop is faster
        // than a heap in practice and trivially stable.
        loop {
            let mut best: Option<usize> = None;
            let mut best_ts = u64::MAX;
            for (i, (pos, slots)) in streams.iter().enumerate() {
                if *pos < slots.len() {
                    // SAFETY: `pos < kept` slots were fully written
                    // before the capture quiesced (see `PeBuffer`).
                    let ts = unsafe { (*slots[*pos].get()).ts };
                    if ts < best_ts {
                        best_ts = ts;
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            let (pos, slots) = &mut streams[i];
            // SAFETY: as above.
            out.push(unsafe { *slots[*pos].get() });
            *pos += 1;
        }
        out
    }

    /// Consumes the capture into an owned [`Trace`]: merged events plus
    /// `meta` with the label table and drop count filled in from this
    /// tracer. The caller supplies the rest of the metadata (clock,
    /// edge bounds, predicted makespan) — typically via
    /// `SpiSystem::trace_meta`.
    pub fn finish(&self, mut meta: TraceMeta) -> Trace {
        meta.labels = self.labels.lock().expect("label lock").clone();
        meta.dropped += self.dropped();
        Trace {
            meta,
            events: self.events(),
        }
    }
}

impl Tracer for RingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn intern(&self, label: &str) -> u32 {
        let mut labels = self.labels.lock().expect("label lock");
        if let Some(i) = labels.iter().position(|l| l == label) {
            return i as u32;
        }
        labels.push(label.to_string());
        (labels.len() - 1) as u32
    }

    fn record(&self, pe: PeId, ts: u64, kind: ProbeKind) {
        let Some(buf) = self.pes.get(pe.0) else {
            self.out_of_range.fetch_add(1, Ordering::Relaxed);
            return;
        };
        // Claim the next slot. Relaxed suffices: this counter is only
        // incremented by the one thread owning this PE; the reader
        // synchronizes via thread join (threaded) or program order
        // (DES).
        let idx = buf.len.fetch_add(1, Ordering::Relaxed);
        if idx >= buf.slots.len() {
            // Full: drop, never block. The excess count stays in `len`.
            return;
        }
        // SAFETY: `idx` was claimed exclusively by the fetch_add above;
        // no other write to this slot happens within the capture.
        unsafe {
            *buf.slots[idx].get() = ProbeEvent { ts, pe, kind };
        }
    }

    fn now(&self) -> u64 {
        self.clock.now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ClockKind;
    use std::sync::Arc;

    #[test]
    fn records_and_merges_by_timestamp_stably() {
        let t = RingTracer::new(2, 8);
        let l = t.intern("fire:a#0");
        // PE 1 events recorded first but timestamped later/equal.
        t.record(PeId(1), 5, ProbeKind::FiringBegin { label: l });
        t.record(PeId(1), 5, ProbeKind::FiringEnd { label: l });
        t.record(PeId(0), 3, ProbeKind::FiringBegin { label: l });
        t.record(PeId(0), 5, ProbeKind::FiringEnd { label: l });
        let ev = t.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].ts, 3);
        // Tie at ts=5: PE 0's stream order is preserved relative to
        // itself and PE 1's Begin stays before its End.
        let pe1: Vec<_> = ev.iter().filter(|e| e.pe == PeId(1)).collect();
        assert!(matches!(pe1[0].kind, ProbeKind::FiringBegin { .. }));
        assert!(matches!(pe1[1].kind, ProbeKind::FiringEnd { .. }));
    }

    #[test]
    fn overflow_drops_and_counts_instead_of_blocking() {
        let t = RingTracer::new(1, 2);
        for ts in 0..5 {
            t.record(PeId(0), ts, ProbeKind::FiringBegin { label: 0 });
        }
        assert_eq!(t.captured(), 2);
        assert_eq!(t.dropped(), 3);
        let trace = t.finish(TraceMeta::new(ClockKind::Cycles));
        assert_eq!(trace.meta.dropped, 3);
        assert_eq!(trace.events.len(), 2);
    }

    #[test]
    fn out_of_range_pe_counts_as_dropped() {
        let t = RingTracer::new(1, 4);
        t.record(PeId(7), 0, ProbeKind::FiringBegin { label: 0 });
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.captured(), 0);
    }

    #[test]
    fn intern_is_idempotent() {
        let t = RingTracer::new(1, 4);
        let a = t.intern("fire:x#0");
        let b = t.intern("fire:y#0");
        assert_ne!(a, b);
        assert_eq!(t.intern("fire:x#0"), a);
    }

    #[test]
    fn reset_clears_for_reuse() {
        let t = RingTracer::new(1, 2);
        t.record(PeId(0), 1, ProbeKind::FiringBegin { label: 0 });
        t.record(PeId(3), 1, ProbeKind::FiringBegin { label: 0 });
        t.reset();
        assert_eq!(t.captured(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn concurrent_per_pe_writers_do_not_interfere() {
        let t = Arc::new(RingTracer::new(4, 1024));
        std::thread::scope(|s| {
            for pe in 0..4 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        t.record(PeId(pe), i, ProbeKind::FiringBegin { label: pe as u32 });
                    }
                });
            }
        });
        assert_eq!(t.captured(), 4 * 1000);
        assert_eq!(t.dropped(), 0);
        let ev = t.events();
        // Each PE's stream is intact and in its own order.
        for pe in 0..4 {
            let mine: Vec<_> = ev.iter().filter(|e| e.pe == PeId(pe)).collect();
            assert_eq!(mine.len(), 1000);
            for (i, e) in mine.iter().enumerate() {
                assert_eq!(e.ts, i as u64);
            }
        }
    }

    #[test]
    fn now_is_monotonic() {
        let t = RingTracer::new(1, 4);
        let a = t.now();
        let b = t.now();
        assert!(b >= a);
    }
}

//! # spi-sim — deterministic whole-system simulation
//!
//! FoundationDB-style simulation testing for the SPI runtime: the real
//! production stack — [`spi_platform::ThreadedRunner`] worker threads,
//! [`spi_platform::RingTransport`] / `PointerTransport` channels,
//! supervision retry/backoff, and the `spi-net` framed socket protocol
//! — runs unmodified under a seeded scheduler that serializes every
//! thread at its synchronization points and advances a **virtual
//! clock** only when no thread can run. One `u64` seed determines the
//! entire execution:
//!
//! * the interleaving (every lock hand-off, park/unpark race and
//!   condvar wake order),
//! * all timer behavior (timeouts, Nagle deadlines and backoff sleeps
//!   fire in deterministic virtual time, never wall time),
//! * the byte stream (reads and writes on [`SimStream`] split at
//!   seeded boundaries, exercising every short-read/short-write loop).
//!
//! The payoff is **one-command failure replay**: any failing run prints
//! a `SPI_SIM_SEED=<n> cargo test …` line that reproduces the exact
//! schedule, and [`shrink`] (sharing the model checker's
//! witness-minimization machinery) reduces it to a minimal
//! context-switch story before reporting.
//!
//! The engine itself lives in [`spi_platform::simrt`] behind the
//! `verify-shim` feature — the same instrumentation seam the `spi-verify`
//! bounded model checker uses, so any code the checker can explore, the
//! simulator can run at whole-system scale. This crate packages it with
//! the pieces a whole-system test needs: the in-memory [`SimStream`]
//! socket, ready-made [`scenarios`], and the seed/replay/report
//! [`harness`](crate::check).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use spi_platform::simrt::{replay, run, shrink, SimFailure, SimOptions, SimRun};
pub use spi_platform::verify::{FailureKind, Step};

mod stream;
pub use stream::{sim_stream_pair, SimStream};

pub mod scenarios;

use std::time::Duration;

/// Reads a `u64` seed from environment variable `var` (decimal, or hex
/// with an `0x` prefix). Returns `None` when unset or unparsable.
pub fn env_seed(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// The one-command replay line printed for every simulated failure.
pub fn replay_line(seed: u64, test: &str) -> String {
    format!("SPI_SIM_SEED={seed} cargo test -p spi-sim --test {test} -- --nocapture")
}

/// Runs `scenario` once under `opts`; on failure, shrinks the schedule
/// and panics with a report that leads with the replay one-liner.
///
/// `test` names the integration test binary the replay command should
/// target (`file!()`-style stem, e.g. `"whole_system"`).
///
/// # Panics
///
/// When the simulated run deadlocks, panics, or exceeds its step
/// budget.
pub fn check(test: &str, opts: &SimOptions, scenario: impl Fn() + Send + Sync) -> SimRun {
    let r = run(opts, &scenario);
    if let Some(f) = &r.failure {
        let shrunk = shrink(opts, f, &scenario);
        panic!(
            "simulated failure (seed {seed})\n\
             \n\
             replay: {line}\n\
             \n\
             {shrunk}",
            seed = opts.seed,
            line = replay_line(opts.seed, test),
        );
    }
    r
}

/// Runs `scenario` across `count` seeds starting at `base`, failing
/// fast with the full [`check`] report on the first bad seed.
///
/// `SPI_SIM_SEED` (if set) pins the sweep to that single seed —
/// exactly what the printed replay line does. `SPI_SIM_SWEEP`
/// overrides `count`, which is how the nightly CI tier widens the same
/// test to hundreds of seeds.
pub fn sweep(test: &str, base: &SimOptions, count: u64, scenario: impl Fn() + Send + Sync) {
    if let Some(seed) = env_seed("SPI_SIM_SEED") {
        let opts = SimOptions {
            seed,
            ..base.clone()
        };
        check(test, &opts, &scenario);
        return;
    }
    let count = env_seed("SPI_SIM_SWEEP").unwrap_or(count);
    for seed in base.seed..base.seed.saturating_add(count) {
        let opts = SimOptions {
            seed,
            ..base.clone()
        };
        check(test, &opts, &scenario);
    }
}

/// A generous virtual-time transport timeout for scenarios: virtual
/// clocks only advance when every thread is blocked, so "30 seconds"
/// costs nothing and only fires on a genuine stall.
pub const SIM_TIMEOUT: Duration = Duration::from_secs(30);

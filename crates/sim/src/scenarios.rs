//! Ready-made whole-system scenarios for the deterministic simulator.
//!
//! Every builder constructs its entire object graph *inside* the call,
//! so a scenario closure like `|| fir_pipeline(4, false)` produces the
//! same shim-object numbering — and therefore a byte-identical event
//! log — on every run of the same seed. All of them run the real
//! production stack: [`ThreadedRunner`] worker threads over
//! [`RingTransport`] rings, `spi-fault` decorators, and the `spi-net`
//! framed credit protocol over [`SimStream`] sockets.
//!
//! [`TransportKind::Locked`] is deliberately absent: the locked queue
//! uses raw `std::sync` primitives (by design — it is the
//! uninstrumented baseline), which would block real OS threads
//! invisibly to the scheduler and hang the controller.

use std::sync::Arc;
use std::time::Duration;

use spi_fault::{FaultKind, FaultPlan};
use spi_net::{AckPolicy, BatchParams, NetReceiver, NetSender};
use spi_platform::shim;
use spi_platform::{
    ChannelId, ChannelSpec, FlushReason, Op, PeId, PeLocal, ProbeKind, Program, RingTransport,
    ThreadedRunner, Tracer, Transport, TransportKind,
};

use crate::{sim_stream_pair, SIM_TIMEOUT};

fn byte_spec(capacity_bytes: usize) -> ChannelSpec {
    ChannelSpec {
        capacity_bytes,
        max_message_bytes: 4,
        ..ChannelSpec::default()
    }
}

/// A 3-PE FIR pipeline over ring channels: a source streams `u32`
/// samples, a filter PE folds a 3-tap moving sum over them, a sink
/// accumulates the filtered stream. With `faulted`, a `spi-fault` plan
/// injects delays and a duplicated token — faults the unsupervised
/// pipeline tolerates (completion is still asserted), but which
/// perturb the schedule and the message stream. (`Corrupt`/`Drop`
/// surface as channel faults without supervision, so they belong to
/// the supervised scenarios, not this one.)
///
/// # Panics
///
/// When the run fails or the sink's final accumulator state is absent.
pub fn fir_pipeline(iterations: u64, faulted: bool) {
    let channels = vec![byte_spec(16), byte_spec(16)];
    let source = Program::new(
        vec![Op::Send {
            channel: ChannelId(0),
            payload: Box::new(|l: &mut PeLocal| (l.iter as u32).to_le_bytes().to_vec()),
        }],
        iterations,
    );
    let filter = Program::new(
        vec![
            Op::Recv {
                channel: ChannelId(0),
            },
            Op::Compute {
                label: "fir3".into(),
                work: Box::new(|l: &mut PeLocal| {
                    let v = l.take_from(ChannelId(0)).expect("sample");
                    let x = u32::from_le_bytes(v[..4].try_into().expect("4-byte sample"));
                    let mut taps = l.store.remove("taps").unwrap_or_default();
                    taps.extend_from_slice(&x.to_le_bytes());
                    let n = taps.len() / 4;
                    let start = n.saturating_sub(3);
                    let y: u32 = (start..n)
                        .map(|i| {
                            u32::from_le_bytes(taps[i * 4..i * 4 + 4].try_into().expect("tap"))
                        })
                        .fold(0u32, u32::wrapping_add);
                    l.store.insert("taps".into(), taps);
                    l.store.insert("y".into(), y.to_le_bytes().to_vec());
                    3
                }),
            },
            Op::Send {
                channel: ChannelId(1),
                payload: Box::new(|l: &mut PeLocal| l.store["y"].clone()),
            },
        ],
        iterations,
    );
    let sink = Program::new(
        vec![
            Op::Recv {
                channel: ChannelId(1),
            },
            Op::Compute {
                label: "acc".into(),
                work: Box::new(|l: &mut PeLocal| {
                    let v = l.take_from(ChannelId(1)).expect("filtered sample");
                    let y = u32::from_le_bytes(v[..4].try_into().expect("4-byte result"));
                    let acc = l
                        .store
                        .get("acc")
                        .map(|a| u32::from_le_bytes(a[..4].try_into().expect("acc")))
                        .unwrap_or(0);
                    l.store
                        .insert("acc".into(), y.wrapping_add(acc).to_le_bytes().to_vec());
                    1
                }),
            },
        ],
        iterations,
    );

    let mut runner = ThreadedRunner::new()
        .transport(TransportKind::Ring)
        .timeout(SIM_TIMEOUT);
    if faulted {
        // Delays perturb timing, the duplicate perturbs the stream;
        // none of them lose a message, so the pipeline still completes
        // (the duplicated token shifts which samples the filter sees,
        // leaving at most one undelivered message behind).
        let plan = FaultPlan::new()
            .inject(ChannelId(0), 1, FaultKind::Delay { micros: 300 })
            .inject(ChannelId(0), 2, FaultKind::Duplicate)
            .inject(ChannelId(1), 1, FaultKind::Delay { micros: 700 });
        let (decorator, _log) = plan.into_decorator().expect("valid fault plan");
        runner = runner.decorate_transports(decorator);
    }
    let results = runner
        .run(&channels, vec![source, filter, sink])
        .expect("pipeline completes");
    assert_eq!(results.len(), 3, "one result per PE");
    assert!(
        iterations == 0 || results[2].store.contains_key("acc"),
        "sink accumulated"
    );
}

/// The PR 3 lost-wakeup oracle at whole-system scale: one producer
/// pushes two messages through a single-slot ring while two consumers
/// share the receive endpoint, each taking one message. With
/// `reverted`, the ring's wait list uses the pre-PR 3
/// wake-all-*with*-dequeue behavior; under `strict_park` scheduling
/// (park deadlines never fire) the lost wakeup then surfaces as a
/// deadlock on some seeds. With `reverted = false` this must complete
/// on every seed.
pub fn ring_shared_consumers(reverted: bool) {
    let ring = Arc::new(if reverted {
        RingTransport::new_with_reverted_wakeup(4, 4)
    } else {
        RingTransport::new(4, 4)
    });
    shim::scope(|s| {
        let p = Arc::clone(&ring);
        s.spawn_named("producer".into(), move || {
            for i in 0..2u32 {
                p.send_with(
                    4,
                    &mut |buf| buf.copy_from_slice(&i.to_le_bytes()),
                    SIM_TIMEOUT,
                )
                .expect("send");
            }
        });
        for name in ["consumer-1", "consumer-2"] {
            let c = Arc::clone(&ring);
            s.spawn_named(name.into(), move || {
                c.recv_with(&mut |_| {}, SIM_TIMEOUT).expect("recv");
            });
        }
    });
}

/// Builds a connected `NetSender`/`NetReceiver` pair over a seeded
/// [`SimStream`] socket, with the receiver's ack policy matched to the
/// sender's batch parameters.
fn net_pair(
    stream_seed: u64,
    batch: BatchParams,
) -> (NetSender<crate::SimStream>, NetReceiver<crate::SimStream>) {
    let spec = byte_spec(64);
    let (a, b) = sim_stream_pair(stream_seed);
    let tx = NetSender::from_stream_with(a, &spec, batch);
    let rx = NetReceiver::from_stream_with(b, &spec, AckPolicy::for_batch(&spec, batch));
    (tx, rx)
}

/// Full framed round trip over the simulated socket: a producer thread
/// sends `msgs` sequenced records through the credit window, a
/// consumer thread receives and checks order. Partial reads and short
/// writes on the [`SimStream`] exercise the wire-format resume loops
/// on nearly every record.
pub fn net_round_trip(stream_seed: u64, msgs: u32, batch: BatchParams) {
    let (tx, rx) = net_pair(stream_seed, batch);
    shim::scope(|s| {
        let txr = &tx;
        s.spawn_named("producer".into(), move || {
            for i in 0..msgs {
                txr.send(&i.to_le_bytes(), SIM_TIMEOUT).expect("send");
            }
            txr.flush_pending().expect("final flush");
        });
        let rxr = &rx;
        s.spawn_named("consumer".into(), move || {
            for i in 0..msgs {
                let got = rxr.recv(SIM_TIMEOUT).expect("recv");
                assert_eq!(got, i.to_le_bytes(), "FIFO order violated");
            }
        });
    });
    drop(tx);
    drop(rx);
}

/// A probe tracer that records every [`ProbeKind::BatchFlush`] reason.
struct FlushLog {
    reasons: shim::Mutex<Vec<FlushReason>>,
}

impl Tracer for FlushLog {
    fn enabled(&self) -> bool {
        true
    }

    fn intern(&self, _label: &str) -> u32 {
        0
    }

    fn record(&self, _pe: PeId, _ts: u64, kind: ProbeKind) {
        if let ProbeKind::BatchFlush { reason, .. } = kind {
            self.reasons.lock().push(reason);
        }
    }

    fn now(&self) -> u64 {
        // Keep probe timestamps off the wall clock: determinism over
        // fidelity, the sim log carries virtual time already.
        0
    }
}

fn flush_log() -> Arc<FlushLog> {
    Arc::new(FlushLog {
        reasons: shim::Mutex::labeled(Vec::new(), "sim_flush_log"),
    })
}

/// Flush-policy edge: the Nagle deadline fires with a non-empty partial
/// batch. Three records go into an 8-record batch window while the
/// consumer sits in a virtual-time sleep past the deadline, so neither
/// a Full nor a Hungry trigger can flush first; the records must reach
/// the consumer via a [`FlushReason::Deadline`] flush on the virtual
/// clock.
pub fn net_deadline_flush(stream_seed: u64) {
    let batch = BatchParams {
        max_msgs: 8,
        flush_after: Duration::from_millis(5),
    };
    let (tx, rx) = net_pair(stream_seed, batch);
    let log = flush_log();
    tx.set_probe(Arc::clone(&log) as Arc<dyn Tracer>, PeId(0), ChannelId(0));
    shim::scope(|s| {
        let txr = &tx;
        s.spawn_named("producer".into(), move || {
            for i in 0..3u32 {
                txr.send(&i.to_le_bytes(), SIM_TIMEOUT).expect("send");
            }
        });
        let rxr = &rx;
        s.spawn_named("consumer".into(), move || {
            // Stay out of recv until well past the deadline: a parked
            // consumer would send a HUNGRY ack and flush early.
            shim::sleep(Duration::from_millis(50));
            for i in 0..3u32 {
                let got = rxr.recv(SIM_TIMEOUT).expect("recv");
                assert_eq!(got, i.to_le_bytes());
            }
        });
    });
    let reasons = log.reasons.lock().clone();
    assert!(
        reasons.contains(&FlushReason::Deadline),
        "expected a Deadline flush, got {reasons:?}"
    );
    drop(tx);
    drop(rx);
}

/// Flush-policy edge: the Hungry→Full transition. A consumer parked in
/// `recv` earns a HUNGRY-flagged ack, so the first record flushes
/// immediately despite a cold batch window and an hour-long deadline;
/// once the consumer stops being hungry, a full window of records must
/// flush via [`FlushReason::Full`].
pub fn net_hungry_then_full(stream_seed: u64) {
    let batch = BatchParams {
        max_msgs: 4,
        flush_after: Duration::from_secs(3600),
    };
    let (tx, rx) = net_pair(stream_seed, batch);
    let log = flush_log();
    tx.set_probe(Arc::clone(&log) as Arc<dyn Tracer>, PeId(0), ChannelId(0));
    shim::scope(|s| {
        let txr = &tx;
        s.spawn_named("producer".into(), move || {
            // Give the consumer time to park and report hungry.
            shim::sleep(Duration::from_millis(20));
            txr.send(&0u32.to_le_bytes(), SIM_TIMEOUT).expect("send");
            // Now a full window: must flush on count, not deadline.
            for i in 1..=4u32 {
                txr.send(&i.to_le_bytes(), SIM_TIMEOUT).expect("send");
            }
            txr.flush_pending().expect("final flush");
        });
        let rxr = &rx;
        s.spawn_named("consumer".into(), move || {
            for i in 0..=4u32 {
                let got = rxr.recv(SIM_TIMEOUT).expect("recv");
                assert_eq!(got, i.to_le_bytes());
            }
        });
    });
    let reasons = log.reasons.lock().clone();
    assert!(
        reasons.contains(&FlushReason::Hungry) || reasons.first() == Some(&FlushReason::Full),
        "expected the first record to leave via a Hungry flush, got {reasons:?}"
    );
    assert!(
        reasons.contains(&FlushReason::Full),
        "expected a Full-window flush, got {reasons:?}"
    );
    drop(tx);
    drop(rx);
}

/// Flush-policy edge: the Final flush racing peer EOF. A producer
/// batches records it never flushes explicitly, the consumer tears
/// down concurrently; the sender's `flush_pending` (and its Drop-time
/// Final flush) must either deliver cleanly or observe the close as an
/// error — never panic, never hang the virtual clock.
pub fn net_final_flush_races_eof(stream_seed: u64) {
    let batch = BatchParams {
        max_msgs: 8,
        flush_after: Duration::from_secs(3600),
    };
    let (tx, rx) = net_pair(stream_seed, batch);
    shim::scope(|s| {
        let txr = &tx;
        s.spawn_named("producer".into(), move || {
            for i in 0..3u32 {
                // The peer may already be gone: Closed is acceptable,
                // wedging or panicking is not.
                if txr.send(&i.to_le_bytes(), SIM_TIMEOUT).is_err() {
                    return;
                }
            }
            let _ = txr.flush_pending();
        });
        s.spawn_named("closer".into(), move || {
            drop(rx);
        });
    });
    drop(tx);
}

/// A stalled ring channel under virtual time: a full single-slot ring
/// times a second send out after exactly the requested deadline, and
/// the error's idle measurement equals the deadline to the nanosecond —
/// assertions that are only exact because `shim::now()` reads the
/// virtual clock.
pub fn stalled_ring_reports_exact_idle() {
    let spec = byte_spec(4);
    let t = TransportKind::Ring.instantiate(&spec);
    t.send(&[1, 2, 3, 4], Duration::from_millis(10))
        .expect("first send fills the slot");
    let before = shim::now();
    let err = t
        .send(&[5, 6, 7, 8], Duration::from_millis(50))
        .expect_err("single slot is full");
    let waited = shim::now().duration_since(before);
    match err {
        spi_platform::TransportError::Timeout { after, idle } => {
            assert_eq!(after, Duration::from_millis(50));
            assert!(
                idle >= Duration::from_millis(50),
                "peer never progressed, idle {idle:?}"
            );
            assert!(
                waited >= Duration::from_millis(50),
                "deadline honored in virtual time, waited {waited:?}"
            );
        }
        other => panic!("expected Timeout, got {other}"),
    }
}

//! [`SimStream`]: the in-memory, schedule-aware socket replacing
//! `UnixStream` under simulation.
//!
//! A pair models one connected full-duplex socket as two directional
//! byte queues guarded by [`spi_platform::shim`] primitives, so every
//! read and write is a schedule point the seeded scheduler interleaves
//! like any other synchronization. On top of that, both directions
//! carry their own seeded PRNG and deliberately fragment I/O:
//!
//! * reads return a random non-empty **prefix** of what is buffered,
//! * writes accept a random non-empty prefix of at most
//!   [`MAX_WRITE_CHUNK`] bytes.
//!
//! The chunk cap is co-prime with the 4-byte record-length prefix, so
//! frames routinely split *inside* the length word — the exact
//! short-read/short-write loops in `spi_net::wire` (and the vectored
//! batch writer's partial-write resume) get exercised on virtually
//! every run, something a kernel socketpair almost never does.
//!
//! Shutdown follows socket semantics: closing the write half EOFs the
//! peer's reads once it drains; writes into a shut-down direction fail
//! with `BrokenPipe`.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::Shutdown;
use std::sync::Arc;

use spi_net::NetStream;
use spi_platform::shim::{Condvar, Mutex};

/// Largest single `write` the stream accepts. Chosen co-prime with the
/// wire format's 4-byte length prefix so records fragment mid-header.
pub const MAX_WRITE_CHUNK: usize = 7;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Half {
    buf: VecDeque<u8>,
    /// Set by shutdown of either end; readers drain then see EOF,
    /// writers fail immediately.
    eof: bool,
    rng: u64,
}

struct Dir {
    st: Mutex<Half>,
    changed: Condvar,
}

impl Dir {
    fn new(seed: u64, label: &'static str) -> Arc<Dir> {
        Arc::new(Dir {
            st: Mutex::labeled(
                Half {
                    buf: VecDeque::new(),
                    eof: false,
                    rng: seed,
                },
                label,
            ),
            changed: Condvar::labeled(label),
        })
    }

    fn close(&self) {
        self.st.lock().eof = true;
        self.changed.notify_all();
    }
}

/// One endpoint of an in-memory simulated socket pair. Implements
/// [`NetStream`], so `NetSender::<SimStream>::from_stream_with` /
/// `NetReceiver::<SimStream>::from_stream_with` run the full framed
/// credit protocol over it. Construct pairs with [`sim_stream_pair`].
pub struct SimStream {
    rd: Arc<Dir>,
    wr: Arc<Dir>,
}

/// Creates a connected pair of [`SimStream`] endpoints whose partial
/// I/O boundaries are derived from `seed`.
///
/// Outside a simulation session the pair still works (the shim
/// primitives fall back to `std::sync`), making it usable from plain
/// unit tests too.
pub fn sim_stream_pair(seed: u64) -> (SimStream, SimStream) {
    let mut s = seed ^ 0xA076_1D64_78BD_642F;
    let a2b = Dir::new(splitmix(&mut s), "sim_stream_a2b");
    let b2a = Dir::new(splitmix(&mut s), "sim_stream_b2a");
    (
        SimStream {
            rd: Arc::clone(&b2a),
            wr: Arc::clone(&a2b),
        },
        SimStream { rd: a2b, wr: b2a },
    )
}

impl Read for SimStream {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut h = self.rd.st.lock();
        loop {
            if !h.buf.is_empty() {
                let avail = h.buf.len().min(out.len());
                let n = 1 + (splitmix(&mut h.rng) as usize) % avail;
                for slot in out.iter_mut().take(n) {
                    *slot = h.buf.pop_front().expect("sized by avail");
                }
                return Ok(n);
            }
            if h.eof {
                return Ok(0);
            }
            h = self.rd.changed.wait(h);
        }
    }
}

impl Write for SimStream {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut h = self.wr.st.lock();
        if h.eof {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "simulated peer closed",
            ));
        }
        let cap = data.len().min(MAX_WRITE_CHUNK);
        let n = 1 + (splitmix(&mut h.rng) as usize) % cap;
        h.buf.extend(&data[..n]);
        drop(h);
        self.wr.changed.notify_all();
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl NetStream for SimStream {
    fn try_clone(&self) -> io::Result<Self> {
        Ok(SimStream {
            rd: Arc::clone(&self.rd),
            wr: Arc::clone(&self.wr),
        })
    }

    fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        if matches!(how, Shutdown::Read | Shutdown::Both) {
            self.rd.close();
        }
        if matches!(how, Shutdown::Write | Shutdown::Both) {
            self.wr.close();
        }
        Ok(())
    }
}

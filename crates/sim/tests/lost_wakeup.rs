//! The acceptance gate from the ISSUE: the simulator must *rediscover*
//! the PR 3 lost-wakeup bug. `RingTransport::new_with_reverted_wakeup`
//! mechanically reverts the wait-list fix (wake-all *with* dequeue);
//! under `strict_park` scheduling — park deadlines never fire, so the
//! bounded park slices production code uses cannot mask a lost wakeup
//! — some seeds must deadlock the shared-consumer scenario, and the
//! shrunk schedule must still reproduce it.

use spi_sim::{env_seed, replay, run, scenarios, shrink, FailureKind, SimOptions};

fn strict(seed: u64) -> SimOptions {
    SimOptions {
        strict_park: true,
        ..SimOptions::seeded(seed)
    }
}

#[test]
fn sim_rediscovers_pr3_lost_wakeup() {
    // Sweep seeds until the bug surfaces. The deadlock needs a specific
    // wake-steal interleaving, so not every seed hits it; the budget is
    // far above the empirically observed discovery rate.
    let seeds: Vec<u64> = match env_seed("SPI_SIM_SEED") {
        Some(s) => vec![s],
        None => (0..200).collect(),
    };
    let mut found = None;
    for seed in seeds {
        let r = run(&strict(seed), || scenarios::ring_shared_consumers(true));
        if let Some(f) = r.failure {
            found = Some((seed, f));
            break;
        }
    }
    let (seed, failure) = found.expect("no seed deadlocked the reverted-wakeup ring");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "expected a deadlock, got: {failure}"
    );
    println!("rediscovered at seed {seed}: replay with SPI_SIM_SEED={seed}");

    // Shrink the witness with the model checker's minimization and make
    // sure the minimized schedule still reproduces the same deadlock.
    let opts = strict(seed);
    let small = shrink(&opts, &failure, || scenarios::ring_shared_consumers(true));
    assert!(
        matches!(small.kind, FailureKind::Deadlock { .. }),
        "shrunk schedule changed failure kind: {small}"
    );
    assert!(
        small.context_switches <= failure.context_switches,
        "shrinking increased context switches ({} > {})",
        small.context_switches,
        failure.context_switches
    );
    let again = replay(&opts, &small.schedule, || {
        scenarios::ring_shared_consumers(true)
    });
    let f = again.failure.expect("shrunk schedule no longer fails");
    assert!(matches!(f.kind, FailureKind::Deadlock { .. }));
    println!("shrunk witness:\n{small}");

    // The shipped fix survives the exact seed that killed the revert.
    let fixed = run(&strict(seed), || scenarios::ring_shared_consumers(false));
    assert!(
        fixed.failure.is_none(),
        "fixed ring failed under the bug-finding seed: {:?}",
        fixed.failure
    );
}

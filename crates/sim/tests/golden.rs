//! Golden-log snapshot tests (ISSUE satellite): two canonical sim
//! event logs are committed under `tests/golden/` and every run must
//! reproduce them byte-identically — the broadest regression net the
//! repo has, since *any* behavioral drift in the runner, the ring
//! transport, the shims, or the scheduler itself shows up as a log
//! diff. Regenerate deliberately with `scripts/sim_regen.sh` (sets
//! `SPI_SIM_REGEN=1`) after intentional changes, and read the diff.

use spi_sim::{check, scenarios, SimOptions, SimRun};

const TEST: &str = "golden";

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_golden(name: &str, run: &SimRun) {
    let path = golden_path(name);
    let header = format!(
        "# spi-sim golden log: seed {} steps {} vtime {}ns\n",
        run.seed,
        run.steps,
        run.vtime.as_nanos()
    );
    let body = format!("{header}{}", run.log);
    if std::env::var_os("SPI_SIM_REGEN").is_some() {
        std::fs::write(&path, &body).expect("write golden log");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden log {} ({e}); run scripts/sim_regen.sh",
            name
        )
    });
    assert!(
        want == body,
        "sim event log drifted from {name} (seed {}).\n\
         If the change is intentional, regenerate with scripts/sim_regen.sh and review the diff.\n\
         first divergence at byte {}",
        run.seed,
        want.bytes()
            .zip(body.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| want.len().min(body.len())),
    );
}

#[test]
fn golden_fir_clean() {
    let opts = SimOptions::seeded(1);
    let run = check(TEST, &opts, || scenarios::fir_pipeline(3, false));
    assert_golden("fir_clean.log", &run);
}

#[test]
fn golden_fir_faulted() {
    let opts = SimOptions::seeded(2);
    let run = check(TEST, &opts, || scenarios::fir_pipeline(3, true));
    assert_golden("fir_faulted.log", &run);
}

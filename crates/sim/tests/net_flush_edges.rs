//! Seeded simulation tests for the `spi-net` sender's adaptive flush
//! policy edges (ISSUE satellite): each edge runs under one named
//! seed, so a failure prints a one-command replay line and CI runs are
//! reproducible bit-for-bit. The virtual clock makes the timing edges
//! (Nagle deadline, hour-long deadlines that must *not* fire) exact
//! and instantaneous.

use spi_sim::{check, env_seed, scenarios, SimOptions};

const TEST: &str = "net_flush_edges";

fn opts(named: u64) -> SimOptions {
    SimOptions::seeded(env_seed("SPI_SIM_SEED").unwrap_or(named))
}

#[test]
fn deadline_fires_on_partial_batch() {
    // Named seed 0xD0: three records in an 8-record window, consumer
    // asleep past the deadline — only the Deadline trigger can flush.
    let o = opts(0xD0);
    check(TEST, &o, || scenarios::net_deadline_flush(o.seed));
}

#[test]
fn hungry_then_full_window() {
    // Named seed 0xB1: a parked consumer's HUNGRY ack flushes a cold
    // batch immediately; a full window then flushes on count despite
    // an hour-long deadline.
    let o = opts(0xB1);
    check(TEST, &o, || scenarios::net_hungry_then_full(o.seed));
}

#[test]
fn final_flush_races_peer_eof() {
    // Named seed 0xEF: sender's Final flush racing receiver teardown
    // must deliver or error cleanly — never panic or wedge the clock.
    let o = opts(0xEF);
    check(TEST, &o, || scenarios::net_final_flush_races_eof(o.seed));
}

#[test]
fn flush_edges_hold_across_seeds() {
    // The named seeds above pin CI reproduction; a small sweep checks
    // the edges are not one-interleaving flukes.
    for seed in 0..6u64 {
        let o = SimOptions::seeded(seed);
        check(TEST, &o, || scenarios::net_deadline_flush(seed));
        check(TEST, &o, || scenarios::net_hungry_then_full(seed));
        check(TEST, &o, || scenarios::net_final_flush_races_eof(seed));
    }
}

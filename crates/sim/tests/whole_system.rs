//! The simulator's core guarantees at whole-system scale: determinism
//! (same seed ⇒ byte-identical event log), exact schedule replay, and
//! a seed sweep over the full FIR-pipeline and spi-net scenarios.

use spi_net::BatchParams;
use spi_sim::{check, env_seed, replay, run, scenarios, sweep, SimOptions};
use std::time::Duration;

const TEST: &str = "whole_system";

#[test]
fn same_seed_is_byte_identical() {
    // The ISSUE's acceptance gate: two consecutive runs of the same
    // seed produce the same canonical event log, byte for byte.
    let opts = SimOptions::seeded(env_seed("SPI_SIM_SEED").unwrap_or(42));
    let a = check(TEST, &opts, || scenarios::fir_pipeline(3, false));
    let b = check(TEST, &opts, || scenarios::fir_pipeline(3, false));
    assert!(!a.log.is_empty(), "run produced an event log");
    assert_eq!(a.steps, b.steps, "step counts diverged");
    assert_eq!(a.vtime, b.vtime, "virtual clocks diverged");
    assert_eq!(a.schedule, b.schedule, "schedules diverged");
    assert_eq!(a.log, b.log, "event logs diverged for the same seed");
}

#[test]
fn forced_replay_reproduces_the_run() {
    let opts = SimOptions::seeded(env_seed("SPI_SIM_SEED").unwrap_or(7));
    let a = check(TEST, &opts, || scenarios::fir_pipeline(2, false));
    let b = replay(&opts, &a.schedule, || scenarios::fir_pipeline(2, false));
    assert!(b.failure.is_none(), "replay of a clean run stays clean");
    assert_eq!(a.log, b.log, "forced replay diverged from its schedule");
}

#[test]
fn distinct_seeds_explore_distinct_schedules() {
    // Not a hard guarantee per pair, but across eight seeds at least
    // two schedules must differ or the scheduler is ignoring its seed.
    let mut logs = std::collections::HashSet::new();
    for seed in 100..108 {
        let r = check(TEST, &SimOptions::seeded(seed), || {
            scenarios::fir_pipeline(2, false)
        });
        logs.insert(r.log);
    }
    assert!(logs.len() > 1, "every seed produced the same interleaving");
}

#[test]
fn virtual_clock_advances_without_wall_waits() {
    // The scenario sleeps 50 virtual milliseconds; the test must not.
    let wall = std::time::Instant::now();
    let r = check(TEST, &SimOptions::seeded(3), || {
        scenarios::net_deadline_flush(3)
    });
    assert!(
        r.vtime >= Duration::from_millis(50),
        "virtual clock saw the sleep, vtime {:?}",
        r.vtime
    );
    // Generous bound: the point is that 50ms of virtual time does not
    // cost 50ms of wall time per virtual timer, not a perf assertion.
    assert!(
        wall.elapsed() < Duration::from_secs(30),
        "virtual waits leaked into wall time"
    );
}

#[test]
fn seed_sweep_fir_pipeline() {
    sweep(TEST, &SimOptions::seeded(0), 10, || {
        scenarios::fir_pipeline(3, false)
    });
}

#[test]
fn seed_sweep_fir_pipeline_faulted() {
    sweep(TEST, &SimOptions::seeded(1000), 10, || {
        scenarios::fir_pipeline(3, true)
    });
}

#[test]
fn seed_sweep_net_round_trip() {
    sweep(TEST, &SimOptions::seeded(2000), 8, || {
        scenarios::net_round_trip(9, 6, BatchParams::disabled())
    });
}

#[test]
fn seed_sweep_net_round_trip_batched() {
    sweep(TEST, &SimOptions::seeded(3000), 8, || {
        scenarios::net_round_trip(
            11,
            8,
            BatchParams {
                max_msgs: 3,
                flush_after: Duration::from_millis(2),
            },
        )
    });
}

#[test]
fn fixed_ring_never_deadlocks_under_strict_park() {
    // The shipped wait-list fix survives the same adversarial
    // scheduling that kills the reverted variant (see lost_wakeup.rs).
    let base = SimOptions {
        strict_park: true,
        ..SimOptions::seeded(0)
    };
    sweep(TEST, &base, 40, || scenarios::ring_shared_consumers(false));
}

#[test]
fn failing_run_reports_seed_and_shrinks() {
    // End-to-end failure path: a scenario that always panics must
    // produce a SimFailure whose report carries the replay seed line.
    let opts = SimOptions::seeded(5);
    let r = run(&opts, || {
        spi_platform::shim::scope(|s| {
            s.spawn_named("boom".into(), || panic!("injected failure"));
        });
    });
    let f = r.failure.expect("panicking scenario must fail");
    let text = format!("{f}");
    assert!(
        text.contains("injected failure"),
        "report names the panic: {text}"
    );
    let line = spi_sim::replay_line(opts.seed, TEST);
    assert!(line.contains("SPI_SIM_SEED=5"), "replay line: {line}");
}

//! Virtual-time supervision checks (ISSUE satellite): the
//! deadline/backoff assertions that were wall-clock-dependent in the
//! platform's supervised tests become *exact* under the simulator —
//! `shim::now()` reads the virtual clock, timers fire deterministically
//! and instantly, and nothing sleeps for real.

use spi_sim::{check, env_seed, scenarios, sweep, SimOptions};
use std::time::Duration;

const TEST: &str = "virtual_time";

#[test]
fn stalled_ring_reports_exact_idle_instantly() {
    // 60ms of virtual waiting (10ms fill + 50ms deadline) must cost
    // essentially zero wall time, and the Timeout error's idle
    // measurement is exact rather than "at least, modulo scheduler".
    let wall = std::time::Instant::now();
    let o = SimOptions::seeded(env_seed("SPI_SIM_SEED").unwrap_or(17));
    let r = check(TEST, &o, scenarios::stalled_ring_reports_exact_idle);
    assert!(
        r.vtime >= Duration::from_millis(50),
        "deadline waited on the virtual clock, vtime {:?}",
        r.vtime
    );
    assert!(
        wall.elapsed() < Duration::from_secs(10),
        "virtual deadline leaked into wall time"
    );
}

#[test]
fn stalled_ring_idle_holds_across_seeds() {
    sweep(
        TEST,
        &SimOptions::seeded(0),
        10,
        scenarios::stalled_ring_reports_exact_idle,
    );
}

//! # spi-net — distributed multi-process backend
//!
//! Runs a partitioned SPI system across several OS processes connected
//! by Unix-domain sockets, while keeping every guarantee of the
//! single-process path:
//!
//! * **[`transport::NetSender`] / [`transport::NetReceiver`]** carry
//!   the existing seq+crc32 framed messages byte-for-byte over a
//!   socket. Capacity is enforced sender-side with a credit window
//!   sized from the channel's [`spi_platform::ChannelSpec`] — i.e. from
//!   the paper's eq. (2) buffer bound — so a remote edge blocks its
//!   producer exactly where an in-memory ring would. With
//!   [`transport::BatchParams`] the sender coalesces up to `batch_max`
//!   records into one vectored write (Nagle-style adaptive flush), and
//!   the receiver returns credit in cumulative acks
//!   ([`transport::AckPolicy`]) — the runtime analogue of the paper's
//!   §4 resynchronization, trading per-message acknowledgement traffic
//!   for one byte-accurate cumulative grant.
//! * **[`node`]** lowers a partition-annotated
//!   [`spi::SpiSystem`] onto one node process: intra-partition edges
//!   keep their in-memory transports, only cross-partition edges lower
//!   to sockets.
//! * **[`launcher`]** spawns the node workers, cross-checks their
//!   deterministic builds against a manifest, barriers socket
//!   establishment, estimates per-node clock offsets, and supervises
//!   child failure with whole-run restarts.
//! * **[`merge`]** folds the per-node trace captures into one
//!   clock-aligned, causally consistent trace that `spi-lint
//!   trace-check` and `race-check` accept unchanged.
//!
//! The `spi-noded` binary packages all of this: `spi-noded launch`
//! drives a multi-process run from one command line, `spi-noded
//! worker` is the per-node entry point it spawns.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod launcher;
pub mod merge;
pub mod node;
pub mod stream;
pub mod transport;
pub mod wire;

pub use error::NetError;
pub use launcher::{
    launch, manifest_of, verify_manifest, ChanDecl, CtlMsg, LaunchOutcome, LaunchSpec, Manifest,
    NodeDone, CLOCK_SYNC_ROUNDS, CONTROL_SOCKET,
};
pub use merge::{merge_node_traces, NodeTrace};
pub use node::{build_endpoints, deploy, socket_path, ChannelRole, Deployment};
pub use stream::NetStream;
pub use transport::{loopback, loopback_with, AckPolicy, BatchParams, NetReceiver, NetSender};

//! `spi-noded` — node worker and launcher for distributed SPI runs.
//!
//! Two modes share one binary so the launcher can spawn workers via
//! `current_exe()`:
//!
//! ```text
//! spi-noded launch --app filterbank --nodes 2 --iters 8 \
//!     [--supervised] [--chaos] [--local ring|pointer|locked] \
//!     [--trace-out PATH]
//! spi-noded worker --app filterbank --nodes 2 --iters 8 \
//!     --node I --dir DIR [--supervised] [--chaos] [--local K]
//! ```
//!
//! `launch` builds the partitioned system, spawns one worker per node,
//! drives the control handshake (manifest cross-check, socket barrier,
//! clock sync), then verifies the distributed artifact byte-for-byte
//! against a fresh single-process run of the same application and
//! writes the merged distributed trace. Exit status: 0 on byte-identical
//! output with a conformant trace, 1 otherwise.

use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spi_apps::{FilterBankApp, FilterBankConfig};
use spi_fault::{FaultKind, FaultPlan};
use spi_net::launcher::{recv_ctl, send_ctl, CtlMsg, NodeDone};
use spi_net::node::{build_endpoints, deploy, Deployment};
use spi_net::wire::put_u64;
use spi_net::{launch, verify_manifest, LaunchSpec, NetError, CONTROL_SOCKET};
use spi_platform::{ChannelId, SupervisionPolicy, ThreadedRunner, Tracer, TransportKind};
use spi_sched::Partition;
use spi_trace::{ClockKind, RingTracer, TraceMeta};

const USAGE: &str = "usage: spi-noded <launch|worker> --app filterbank --nodes N --iters K \
[--supervised] [--chaos] [--force-ubs] [--local ring|pointer|locked] [--timeout-secs S] \
[--trace-out PATH] [--restarts N] (worker adds: --node I --dir DIR)";

/// Processors in the filter bank's canonical assignment.
const FILTERBANK_PROCS: usize = 3;

#[derive(Clone)]
struct Args {
    mode: String,
    app: String,
    nodes: usize,
    iters: u64,
    node: usize,
    dir: PathBuf,
    supervised: bool,
    chaos: bool,
    force_ubs: bool,
    local: TransportKind,
    timeout_secs: u64,
    trace_out: PathBuf,
    restarts: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let mode = argv.next().ok_or(USAGE)?;
    if mode != "launch" && mode != "worker" {
        return Err(USAGE.into());
    }
    let mut a = Args {
        mode,
        app: "filterbank".into(),
        nodes: 2,
        iters: 8,
        node: usize::MAX,
        dir: PathBuf::new(),
        supervised: false,
        chaos: false,
        force_ubs: false,
        local: TransportKind::Ring,
        timeout_secs: 10,
        trace_out: PathBuf::from("target/net/filterbank_distributed.trace"),
        restarts: 2,
    };
    while let Some(flag) = argv.next() {
        let mut val = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--app" => a.app = val("--app")?,
            "--nodes" => {
                a.nodes = val("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--iters" => {
                a.iters = val("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?
            }
            "--node" => a.node = val("--node")?.parse().map_err(|e| format!("--node: {e}"))?,
            "--dir" => a.dir = PathBuf::from(val("--dir")?),
            "--supervised" => a.supervised = true,
            "--chaos" => a.chaos = true,
            "--force-ubs" => a.force_ubs = true,
            "--local" => {
                a.local = match val("--local")?.as_str() {
                    "ring" => TransportKind::Ring,
                    "pointer" => TransportKind::Pointer,
                    "locked" => TransportKind::Locked,
                    other => return Err(format!("unknown --local transport {other}")),
                }
            }
            "--timeout-secs" => {
                a.timeout_secs = val("--timeout-secs")?
                    .parse()
                    .map_err(|e| format!("--timeout-secs: {e}"))?
            }
            "--trace-out" => a.trace_out = PathBuf::from(val("--trace-out")?),
            "--restarts" => {
                a.restarts = val("--restarts")?
                    .parse()
                    .map_err(|e| format!("--restarts: {e}"))?
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    // Socket-level chaos only makes sense under the recovery protocol.
    if a.chaos {
        a.supervised = true;
    }
    if a.app != "filterbank" {
        return Err(format!("unknown --app {} (only: filterbank)", a.app));
    }
    if a.nodes == 0 || a.nodes > FILTERBANK_PROCS {
        return Err(format!(
            "--nodes must be 1..={FILTERBANK_PROCS} for the filter bank"
        ));
    }
    if a.mode == "worker" && (a.node >= a.nodes || a.dir.as_os_str().is_empty()) {
        return Err("worker mode needs --node < --nodes and --dir".into());
    }
    Ok(a)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("spi-noded: {e}");
            std::process::exit(2);
        }
    };
    let result = match args.mode.as_str() {
        "worker" => worker_main(&args),
        _ => launch_main(&args),
    };
    if let Err(e) = result {
        eprintln!("spi-noded {}: {e}", args.mode);
        std::process::exit(1);
    }
}

/// Builds the partitioned filter-bank system every process derives its
/// deployment from. Determinism across processes is load-bearing: the
/// launcher's manifest cross-check verifies it.
fn build_system(a: &Args, app: &FilterBankApp) -> Result<spi::SpiSystem, NetError> {
    let partition = Partition::blocks(FILTERBANK_PROCS, a.nodes)?;
    app.system_with(a.iters, |b| {
        b.partition(partition);
        if a.force_ubs {
            // UBS edges get deep windows (≥ 1 MiB), so the schedule
            // lowers non-trivial batch plans; the default BBS windows
            // on the filter bank are too shallow to amortize batching.
            b.force_ubs(true);
        }
    })
    .map_err(|e| NetError::Protocol(format!("app build failed: {e}")))
}

fn supervision_policy(a: &Args, system: &spi::SpiSystem) -> Option<SupervisionPolicy> {
    if !a.supervised {
        return None;
    }
    // The paper-derived deadline covers in-memory hops; distributed
    // edges add socket latency and cross-process scheduling jitter, so
    // clamp it up generously — recovery correctness never depends on
    // the deadline being tight.
    let deadline = system
        .supervision_deadline(50.0)
        .unwrap_or(Duration::from_secs(2))
        .max(Duration::from_millis(250));
    Some(SupervisionPolicy::retry(3).with_deadline(deadline))
}

/// The deterministic chaos plan shared by every process: walk the
/// cross-partition channels in id order and inject one drop, one
/// corruption, and one duplication. Each fault triggers on the node
/// hosting the channel's sender; the other nodes' identical plans stay
/// inert there.
fn chaos_plan(a: &Args, dep: &Deployment) -> FaultPlan {
    let mut plan = FaultPlan::new();
    if !a.chaos {
        return plan;
    }
    let kinds = [FaultKind::Drop, FaultKind::Corrupt, FaultKind::Duplicate];
    let msg_index = a.iters.saturating_sub(1).min(1);
    let mut k = 0;
    for ch in 0..dep.specs.len() {
        if dep.is_cross(ch) && k < kinds.len() {
            plan = plan.inject(ChannelId(ch), msg_index, kinds[k]);
            k += 1;
        }
    }
    plan
}

fn encode_output(app: &FilterBankApp) -> Vec<u8> {
    let rows = app.output.lock().expect("output lock");
    let mut buf = Vec::new();
    put_u64(&mut buf, rows.len() as u64);
    for row in rows.iter() {
        put_u64(&mut buf, row.len() as u64);
        for v in row {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    buf
}

// ---------------------------------------------------------------------
// Worker mode
// ---------------------------------------------------------------------

fn connect_control(a: &Args) -> Result<UnixStream, NetError> {
    let path = a.dir.join(CONTROL_SOCKET);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(&path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e.into());
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn worker_main(a: &Args) -> Result<(), NetError> {
    let app = FilterBankApp::new(FilterBankConfig::default())
        .map_err(|e| NetError::Protocol(format!("app config: {e}")))?;
    let system = build_system(a, &app)?;
    let policy = supervision_policy(a, &system);
    let mut dep = deploy(system)?;

    let mut ctl = connect_control(a)?;
    send_ctl(
        &mut ctl,
        &CtlMsg::Hello {
            node: a.node as u32,
        },
    )?;

    match worker_run(a, &app, &mut dep, policy, &mut ctl) {
        Ok(done) => {
            send_ctl(&mut ctl, &CtlMsg::Done(done))?;
            let _ = recv_ctl(&mut ctl); // Bye (or launcher gone — fine)
            Ok(())
        }
        Err(e) => {
            // Best-effort failure report so the launcher gets a reason
            // instead of just a dead socket.
            let _ = send_ctl(
                &mut ctl,
                &CtlMsg::Done(NodeDone {
                    ok: false,
                    error: e.to_string(),
                    ..NodeDone::default()
                }),
            );
            Err(e)
        }
    }
}

fn worker_run(
    a: &Args,
    app: &FilterBankApp,
    dep: &mut Deployment,
    policy: Option<SupervisionPolicy>,
    ctl: &mut UnixStream,
) -> Result<NodeDone, NetError> {
    let manifest = match recv_ctl(ctl)? {
        CtlMsg::Manifest(m) => m,
        other => {
            return Err(NetError::Protocol(format!(
                "expected Manifest, got {other:?}"
            )))
        }
    };
    verify_manifest(dep, &manifest, a.supervised)?;

    // The tracer exists before the endpoints so batched cross-partition
    // senders can stamp their flush probes into the same per-PE rings
    // the runner uses.
    let procs = dep.procs_on(a.node);
    let tracer = Arc::new(RingTracer::with_default_capacity(procs.len()));
    let probe_tracer: Arc<dyn Tracer> = tracer.clone();

    let endpoints = {
        let ctl = &mut *ctl;
        build_endpoints(
            dep,
            a.node,
            &a.dir,
            a.local,
            a.supervised,
            Some(&probe_tracer),
            move || {
                send_ctl(ctl, &CtlMsg::Ready)?;
                match recv_ctl(ctl)? {
                    CtlMsg::Proceed => Ok(()),
                    other => Err(NetError::Protocol(format!(
                        "expected Proceed, got {other:?}"
                    ))),
                }
            },
        )?
    };
    // Socket-level chaos: decorate after framing-sized endpoints exist,
    // exactly as the in-process runner decorates framed transports.
    let plan = chaos_plan(a, dep);
    let endpoints = if plan.is_empty() {
        endpoints
    } else {
        let (decorator, _log) = plan
            .into_decorator()
            .map_err(|e| NetError::Protocol(format!("fault plan: {e}")))?;
        endpoints
            .into_iter()
            .enumerate()
            .map(|(i, t)| decorator(ChannelId(i), t))
            .collect()
    };

    let programs = dep.take_local_programs(a.node);

    loop {
        match recv_ctl(ctl)? {
            CtlMsg::Ping => send_ctl(
                ctl,
                &CtlMsg::Pong {
                    now_ns: tracer.now(),
                },
            )?,
            CtlMsg::Start => break,
            other => return Err(NetError::Protocol(format!("expected Start, got {other:?}"))),
        }
    }

    let mut runner = ThreadedRunner::new()
        .transport(a.local)
        .timeout(Duration::from_secs(a.timeout_secs))
        .tracer(tracer.clone());
    if let Some(policy) = policy {
        runner = runner.supervise(policy);
    }
    let results = runner.run_with_endpoints(&dep.specs, endpoints, programs)?;
    for r in &results {
        // The SPI actor harness reports firing failures through this
        // store key (mirrors `SpiSystem::run_threaded_with`).
        if let Some(msg) = r.store.get("__spi_error") {
            return Err(NetError::Protocol(format!(
                "actor failed: {}",
                String::from_utf8_lossy(msg)
            )));
        }
    }

    let trace = tracer.finish(TraceMeta::new(ClockKind::Nanos));
    let artifact = if procs.contains(&0) {
        encode_output(app)
    } else {
        Vec::new()
    };
    Ok(NodeDone {
        ok: true,
        error: String::new(),
        artifact,
        trace_text: trace.to_native(),
        procs: procs.iter().map(|p| *p as u32).collect(),
    })
}

// ---------------------------------------------------------------------
// Launch mode
// ---------------------------------------------------------------------

fn launch_main(a: &Args) -> Result<(), NetError> {
    let app = FilterBankApp::new(FilterBankConfig::default())
        .map_err(|e| NetError::Protocol(format!("app config: {e}")))?;
    let system = build_system(a, &app)?;
    let policy = supervision_policy(a, &system);
    let meta = match &policy {
        Some(p) => system.trace_meta_supervised(ClockKind::Nanos, p),
        None => system.trace_meta(ClockKind::Nanos),
    };
    let dep = deploy(system)?;

    let mut worker_args = vec![
        "worker".to_string(),
        "--app".into(),
        a.app.clone(),
        "--nodes".into(),
        a.nodes.to_string(),
        "--iters".into(),
        a.iters.to_string(),
        "--timeout-secs".into(),
        a.timeout_secs.to_string(),
        "--local".into(),
        match a.local {
            TransportKind::Ring => "ring".into(),
            TransportKind::Pointer => "pointer".into(),
            TransportKind::Locked => "locked".into(),
        },
    ];
    if a.supervised {
        worker_args.push("--supervised".into());
    }
    if a.chaos {
        worker_args.push("--chaos".into());
    }
    if a.force_ubs {
        // Workers must build the byte-identical system; the manifest
        // cross-check fails the run otherwise.
        worker_args.push("--force-ubs".into());
    }
    let spec = LaunchSpec {
        worker_exe: std::env::current_exe()?,
        worker_args,
        nodes: a.nodes,
        supervised: a.supervised,
        max_restarts: a.restarts,
        run_deadline: Duration::from_secs(a.timeout_secs.saturating_mul(4).max(60)),
    };
    let outcome = launch(&spec, &dep, meta)?;

    // Reference: the same application, single process, in-memory rings.
    let ref_app = FilterBankApp::new(FilterBankConfig::default())
        .map_err(|e| NetError::Protocol(format!("app config: {e}")))?;
    let ref_system = ref_app
        .system(a.iters)
        .map_err(|e| NetError::Protocol(format!("reference build: {e}")))?;
    ref_system.run_threaded_with(&ThreadedRunner::new().transport(a.local))?;
    let expect = encode_output(&ref_app);

    let got: Vec<&Vec<u8>> = outcome.artifacts.iter().filter(|a| !a.is_empty()).collect();
    if got.len() != 1 {
        return Err(NetError::Protocol(format!(
            "expected exactly one sink artifact, got {}",
            got.len()
        )));
    }
    let identical = *got[0] == expect;

    if let Some(parent) = a.trace_out.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&a.trace_out, outcome.trace.to_native())?;

    let report = spi_trace::check(&outcome.trace);
    println!(
        "spi-noded: {} nodes, {} iterations, attempt(s) {}, offsets {:?} ns",
        a.nodes, a.iters, outcome.attempts, outcome.offsets_ns
    );
    println!(
        "spi-noded: artifact {} bytes, byte-identical to single-process: {}",
        got[0].len(),
        identical
    );
    println!(
        "spi-noded: merged trace {} events -> {}",
        outcome.trace.events.len(),
        a.trace_out.display()
    );
    if report.has_errors() {
        println!("{}", report.render_human());
        return Err(NetError::Protocol("merged trace failed trace-check".into()));
    }
    if !identical {
        return Err(NetError::Protocol(
            "distributed output differs from single-process output".into(),
        ));
    }
    Ok(())
}

//! The byte-stream seam under [`crate::NetSender`] /
//! [`crate::NetReceiver`].
//!
//! The transport logic — framing, vectored batch writes, credit acks,
//! flush policy — is generic over any full-duplex byte stream with the
//! small surface a `UnixStream` offers: cloneable handles (separate
//! reader/writer views of one connection) and half/full shutdown. Real
//! deployments use `UnixStream`; the `spi-sim` deterministic simulator
//! substitutes an in-memory pair whose reads and writes are schedule
//! points with seeded partial-I/O, exercising the exact short-read /
//! short-write loops in [`crate::wire`] without a kernel in the loop.

use std::io::{Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;

/// A connected, cloneable, shutdown-capable byte stream.
///
/// `try_clone` must return a handle onto the *same* connection (reads
/// and writes interleave with the original); `shutdown` must cause
/// blocked and future reads on every clone to observe EOF per
/// [`Shutdown`] semantics, like a socket.
pub trait NetStream: Read + Write + Send + Sized + 'static {
    /// A second handle onto the same connection.
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying handle duplication.
    fn try_clone(&self) -> std::io::Result<Self>;

    /// Shuts down the read, write, or both halves of the connection.
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying shutdown.
    fn shutdown(&self, how: Shutdown) -> std::io::Result<()>;
}

impl NetStream for UnixStream {
    fn try_clone(&self) -> std::io::Result<Self> {
        UnixStream::try_clone(self)
    }

    fn shutdown(&self, how: Shutdown) -> std::io::Result<()> {
        UnixStream::shutdown(self, how)
    }
}

//! Length-prefixed message framing over byte streams.
//!
//! Everything `spi-net` puts on a socket — data messages (which already
//! carry the supervision layer's `[seq][crc32]` frame when the run is
//! supervised), credit acknowledgements, and the control-plane handshake
//! — travels as `[len: u32 LE][len bytes]` records. The codec is
//! deliberately resilient to the two stream pathologies TCP/Unix sockets
//! exhibit under load: **short reads** (a record arriving split across
//! an arbitrary number of `read` returns, including mid-prefix) and
//! **short writes** (the kernel accepting only part of a buffer per
//! `write`). `read_record` reassembles across both; `write_record`
//! relies on `write_all`, which loops over partial acceptance.
//!
//! A second concern the codec owns is **structured field encoding** for
//! the control plane: the handshake exchanges manifests and result
//! blobs as flat sequences of integers, byte strings and lists, encoded
//! with the `put_*`/[`WireReader`] helpers here rather than trusting a
//! general serializer with cross-process wire data.

use std::io::{self, IoSlice, Read, Write};

/// Upper bound on a single wire record. Anything larger is treated as
/// stream corruption rather than an allocation request: a legal SPI
/// message is bounded by its channel's eq. (1) packed size, and control
/// blobs (traces, artifacts) stay far below this.
pub const MAX_RECORD_BYTES: usize = 256 << 20;

/// Writes one `[len][bytes]` record and flushes.
///
/// # Errors
///
/// Any I/O error from the underlying stream; records larger than
/// [`MAX_RECORD_BYTES`] are rejected with `InvalidInput`.
pub fn write_record(w: &mut dyn Write, bytes: &[u8]) -> io::Result<()> {
    if bytes.len() > MAX_RECORD_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("record of {} bytes exceeds wire bound", bytes.len()),
        ));
    }
    let len = bytes.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Writes a batch of pre-framed records (each buffer already carries
/// its `[len: u32 LE]` prefix) with vectored I/O, then flushes once.
///
/// One `writev` per fully-accepted batch; on a **short write** the
/// gather list is rebuilt past the accepted bytes and retried, so a
/// batch torn across arbitrary kernel acceptance boundaries — including
/// mid-prefix — still lands on the stream intact and in order.
/// `Interrupted` (EINTR) and `WouldBlock` (EWOULDBLOCK, transiently
/// possible on streams shared with timeout-taking code paths) are
/// retried; empty buffers are skipped.
///
/// # Errors
///
/// Any other I/O error from the stream; a `write_vectored` that accepts
/// zero bytes surfaces as `WriteZero` (a wedged peer, not progress).
pub fn write_framed_vectored(w: &mut dyn Write, framed: &[Vec<u8>]) -> io::Result<()> {
    let mut idx = 0usize; // first buffer with unwritten bytes
    let mut off = 0usize; // bytes of `framed[idx]` already written
    while idx < framed.len() {
        if off >= framed[idx].len() {
            idx += 1;
            off = 0;
            continue;
        }
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(framed.len() - idx);
        slices.push(IoSlice::new(&framed[idx][off..]));
        slices.extend(
            framed[idx + 1..]
                .iter()
                .filter(|b| !b.is_empty())
                .map(|b| IoSlice::new(b)),
        );
        match w.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "vectored write accepted zero bytes",
                ));
            }
            Ok(mut n) => {
                while n > 0 {
                    let rem = framed[idx].len() - off;
                    if n >= rem {
                        n -= rem;
                        idx += 1;
                        off = 0;
                        while idx < framed.len() && framed[idx].is_empty() {
                            idx += 1;
                        }
                    } else {
                        off += n;
                        n = 0;
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
                ) => {}
            Err(e) => return Err(e),
        }
    }
    w.flush()
}

/// Frames `len` payload bytes into a fresh `[len: u32 LE][payload]`
/// buffer and hands the payload region to `fill` — the single
/// allocation a batched sender makes per message.
///
/// # Panics
///
/// `len` beyond [`MAX_RECORD_BYTES`] is a caller bug (transport specs
/// bound messages far below the wire limit).
pub fn frame_with(len: usize, fill: &mut dyn FnMut(&mut [u8])) -> Vec<u8> {
    assert!(
        len <= MAX_RECORD_BYTES,
        "record of {len} bytes exceeds wire bound"
    );
    let mut rec = vec![0u8; 4 + len];
    rec[..4].copy_from_slice(&(len as u32).to_le_bytes());
    fill(&mut rec[4..]);
    rec
}

/// Reads one `[len][bytes]` record, reassembling across arbitrarily
/// split reads. Returns `None` on a clean end-of-stream **at a record
/// boundary** (the peer closed between records).
///
/// # Errors
///
/// `UnexpectedEof` when the stream ends mid-prefix or mid-payload (a
/// truncated record is a fault, not a clean shutdown); `InvalidData`
/// for a length prefix beyond [`MAX_RECORD_BYTES`]; any other I/O error
/// from the stream.
pub fn read_record(r: &mut dyn Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream ended {got} byte(s) into a record length prefix"),
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_RECORD_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("record length {len} exceeds wire bound"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream ended {filled}/{len} byte(s) into a record payload"),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Structured field encoding for control-plane blobs
// ---------------------------------------------------------------------

/// Appends a `u32` (LE) to a control blob.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` (LE) to a control blob.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` (LE) to a control blob.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed byte string to a control blob.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u64(out, v.len() as u64);
    out.extend_from_slice(v);
}

/// Appends a length-prefixed UTF-8 string to a control blob.
pub fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

/// Cursor over a control blob written with the `put_*` helpers. Every
/// read is bounds-checked: a truncated or reordered blob surfaces as a
/// decode error, never a panic or a misread.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// A malformed control blob (truncated field, oversized length, invalid
/// UTF-8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDecodeError {
    /// Byte offset the decode failed at.
    pub at: usize,
    /// What was being decoded.
    pub what: String,
}

impl std::fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode failed at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for WireDecodeError {}

impl<'a> WireReader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireDecodeError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(WireDecodeError {
                at: self.pos,
                what: format!("truncated {what} ({n} byte(s) wanted)"),
            }),
        }
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`WireDecodeError`] on truncation.
    pub fn u32(&mut self, what: &str) -> Result<u32, WireDecodeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`WireDecodeError`] on truncation.
    pub fn u64(&mut self, what: &str) -> Result<u64, WireDecodeError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `i64`.
    ///
    /// # Errors
    ///
    /// [`WireDecodeError`] on truncation.
    pub fn i64(&mut self, what: &str) -> Result<i64, WireDecodeError> {
        let b = self.take(8, what)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`WireDecodeError`] on truncation or an oversized length.
    pub fn bytes(&mut self, what: &str) -> Result<&'a [u8], WireDecodeError> {
        let len = self.u64(what)? as usize;
        if len > MAX_RECORD_BYTES {
            return Err(WireDecodeError {
                at: self.pos,
                what: format!("{what} length {len} exceeds wire bound"),
            });
        }
        self.take(len, what)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`WireDecodeError`] on truncation or invalid UTF-8.
    pub fn str(&mut self, what: &str) -> Result<&'a str, WireDecodeError> {
        let at = self.pos;
        let b = self.bytes(what)?;
        std::str::from_utf8(b).map_err(|_| WireDecodeError {
            at,
            what: format!("{what} is not valid UTF-8"),
        })
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that returns at most `chunk` bytes per `read` call —
    /// the short-read pathology, deterministically.
    struct Chunked<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Chunked<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    /// A writer that accepts at most `chunk` bytes per `write` call —
    /// the short-write pathology (`write_all` must loop over it).
    struct ChunkedWriter {
        out: Vec<u8>,
        chunk: usize,
    }

    impl Write for ChunkedWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = self.chunk.min(buf.len());
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// A writer whose `write_vectored` accepts at most `chunk` bytes
    /// per call — potentially mid-slice, potentially mid-prefix — and
    /// injects `EINTR`/`EWOULDBLOCK` on a fixed cadence before making
    /// progress. The worst stream a batched writer can face, made
    /// deterministic.
    struct TornWriter {
        out: Vec<u8>,
        chunk: usize,
        calls: usize,
        /// Every `interrupt_every`-th call fails with EINTR (odd
        /// occurrences) or EWOULDBLOCK (even) instead of writing.
        interrupt_every: usize,
    }

    impl Write for TornWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.write_vectored(&[IoSlice::new(buf)])
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            self.calls += 1;
            if self.interrupt_every != 0 && self.calls.is_multiple_of(self.interrupt_every) {
                let kind = if (self.calls / self.interrupt_every) % 2 == 1 {
                    io::ErrorKind::Interrupted
                } else {
                    io::ErrorKind::WouldBlock
                };
                return Err(io::Error::new(kind, "injected"));
            }
            let mut budget = self.chunk;
            let mut accepted = 0usize;
            for b in bufs {
                if budget == 0 {
                    break;
                }
                let n = budget.min(b.len());
                self.out.extend_from_slice(&b[..n]);
                budget -= n;
                accepted += n;
            }
            Ok(accepted)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        frame_with(payload.len(), &mut |buf| buf.copy_from_slice(payload))
    }

    #[test]
    fn vectored_batch_survives_torn_writes_and_injected_interrupts() {
        let payloads: Vec<Vec<u8>> = (0..7)
            .map(|i| (0..=255u8).cycle().take(37 * (i + 1)).collect())
            .collect();
        let batch: Vec<Vec<u8>> = payloads.iter().map(|p| frame(p)).collect();
        // Sweep acceptance granularities (1 byte tears every prefix)
        // and interrupt cadences (0 = never).
        for chunk in [1, 2, 3, 5, 64, 1 << 20] {
            for interrupt_every in [0, 2, 3] {
                let mut w = TornWriter {
                    out: Vec::new(),
                    chunk,
                    calls: 0,
                    interrupt_every,
                };
                write_framed_vectored(&mut w, &batch).unwrap();
                // The stream must parse back into the exact records, in
                // order, ending at a clean boundary.
                let mut r: &[u8] = &w.out;
                for (i, p) in payloads.iter().enumerate() {
                    let got = read_record(&mut r).unwrap().unwrap();
                    assert_eq!(
                        &got, p,
                        "record {i}, chunk {chunk}, interrupt {interrupt_every}"
                    );
                }
                assert_eq!(read_record(&mut r).unwrap(), None);
            }
        }
    }

    #[test]
    fn vectored_batch_skips_empty_buffers_and_handles_empty_records() {
        // A zero-length record is legal ([0u32] prefix, no payload) and
        // must not wedge the cursor arithmetic.
        let batch = vec![frame(b""), frame(b"x"), frame(b"")];
        let mut w = TornWriter {
            out: Vec::new(),
            chunk: 1,
            calls: 0,
            interrupt_every: 3,
        };
        write_framed_vectored(&mut w, &batch).unwrap();
        let mut r: &[u8] = &w.out;
        assert_eq!(read_record(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_record(&mut r).unwrap().unwrap(), b"x");
        assert_eq!(read_record(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_record(&mut r).unwrap(), None);
    }

    #[test]
    fn vectored_batch_reports_write_zero_on_a_wedged_stream() {
        struct Wedged;
        impl Write for Wedged {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_framed_vectored(&mut Wedged, &[frame(b"data")]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn single_record_vectored_write_matches_write_record_bytes() {
        let mut classic = Vec::new();
        write_record(&mut classic, b"identical").unwrap();
        let mut vectored = Vec::new();
        write_framed_vectored(&mut vectored, &[frame(b"identical")]).unwrap();
        assert_eq!(classic, vectored);
    }

    #[test]
    fn roundtrip_survives_single_byte_reads_and_writes() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut w = ChunkedWriter {
            out: Vec::new(),
            chunk: 1,
        };
        write_record(&mut w, &payload).unwrap();
        assert_eq!(w.out.len(), 4 + payload.len());

        for chunk in [1, 2, 3, 5, 7, 1000] {
            let mut r = Chunked {
                data: &w.out,
                pos: 0,
                chunk,
            };
            let got = read_record(&mut r).unwrap().unwrap();
            assert_eq!(got, payload, "chunk size {chunk}");
            assert_eq!(read_record(&mut r).unwrap(), None, "clean EOF after");
        }
    }

    #[test]
    fn eof_at_boundary_is_none_mid_record_is_error() {
        // Clean EOF before any byte.
        let mut empty: &[u8] = &[];
        assert_eq!(read_record(&mut empty).unwrap(), None);

        // Every truncated prefix of a full record must error, not hang
        // or return a partial message.
        let mut full = Vec::new();
        write_record(&mut full, b"hello world").unwrap();
        for cut in 1..full.len() {
            let mut r: &[u8] = &full[..cut];
            let err = read_record(&mut r).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::UnexpectedEof,
                "cut at {cut} byte(s)"
            );
        }
    }

    #[test]
    fn truncated_prefix_through_chunked_reader_errors() {
        let mut full = Vec::new();
        write_record(&mut full, &[7u8; 64]).unwrap();
        // 2 bytes of the 4-byte prefix, dribbled one byte at a time.
        let mut r = Chunked {
            data: &full[..2],
            pos: 0,
            chunk: 1,
        };
        let err = read_record(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("length prefix"));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r: &[u8] = &bad;
        let err = read_record(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn structured_fields_roundtrip() {
        let mut blob = Vec::new();
        put_u32(&mut blob, 42);
        put_u64(&mut blob, u64::MAX - 1);
        put_i64(&mut blob, -123_456_789);
        put_str(&mut blob, "filterbank");
        put_bytes(&mut blob, &[1, 2, 3]);

        let mut r = WireReader::new(&blob);
        assert_eq!(r.u32("a").unwrap(), 42);
        assert_eq!(r.u64("b").unwrap(), u64::MAX - 1);
        assert_eq!(r.i64("c").unwrap(), -123_456_789);
        assert_eq!(r.str("d").unwrap(), "filterbank");
        assert_eq!(r.bytes("e").unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn structured_decode_reports_truncation() {
        let mut blob = Vec::new();
        put_str(&mut blob, "abc");
        let mut r = WireReader::new(&blob[..blob.len() - 1]);
        let err = r.str("name").unwrap_err();
        assert!(err.to_string().contains("name"));
    }
}

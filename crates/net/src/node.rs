//! Lowering a partitioned [`SpiSystem`] onto one node process.
//!
//! A distributed run builds the **same** system in every process (the
//! SPI flow is deterministic, and the launcher's manifest cross-checks
//! that determinism byte-for-byte), then each node keeps only its share:
//!
//! * the programs of the processors its partition block assigns to it;
//! * per channel, an endpoint matching where the channel's two ends
//!   live — an in-memory transport when both are local, a socket
//!   endpoint ([`NetSender`] / [`NetReceiver`]) when the edge crosses
//!   the partition, and a poisoned placeholder when the channel does
//!   not touch this node at all (any use is a routing bug and fails
//!   loudly rather than silently exchanging data with nobody).
//!
//! Socket establishment is deadlock-free by construction: every node
//! binds **all** of its listeners before the launcher's barrier, and
//! only connects after it, so no connect can race a missing listener.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use spi::SpiSystem;
use spi_platform::{
    framed_spec, ChannelId, ChannelSpec, PeId, Program, Tracer, Transport, TransportError,
    TransportKind,
};
use spi_sched::{Partition, ProcId};

use crate::error::NetError;
use crate::transport::{AckPolicy, BatchParams, NetReceiver, NetSender};

/// The two processors a channel connects (data channels run
/// producer→consumer; UBS acknowledgement channels run the reverse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelRole {
    /// Processor whose program sends on this channel.
    pub sender: ProcId,
    /// Processor whose program receives on this channel.
    pub receiver: ProcId,
}

/// A built system decomposed for multi-process deployment: the
/// partition, every channel's spec and endpoint roles, and the
/// per-processor programs (indexed by `ProcId`).
pub struct Deployment {
    /// Processor→node mapping (from [`spi::SpiSystemBuilder::partition`]).
    pub partition: Partition,
    /// Per-channel endpoint roles, indexed by `ChannelId`.
    pub roles: Vec<ChannelRole>,
    /// Per-channel logical specs (un-inflated; supervision framing is
    /// applied at endpoint construction), indexed by `ChannelId`.
    pub specs: Vec<ChannelSpec>,
    /// Per-channel batching parameters lowered from the schedule
    /// ([`spi::SpiSystem::batch_plans`]), indexed by `ChannelId`.
    /// [`BatchParams::disabled`] for ack channels and edges whose
    /// credit window is too small to amortize.
    pub batches: Vec<BatchParams>,
    /// One program per processor, indexed by `ProcId`.
    programs: Vec<Program>,
}

/// Decomposes a partitioned system into its deployment parts.
///
/// Grab anything else you need from the system first (trace metadata,
/// supervision deadline) — this consumes it.
///
/// # Errors
///
/// [`NetError::Unpartitioned`] when the system was built without a
/// partition; [`NetError::UncoveredChannel`] if a platform channel
/// belongs to no edge plan (a builder invariant violation).
pub fn deploy(system: SpiSystem) -> Result<Deployment, NetError> {
    let partition = system.partition().cloned().ok_or(NetError::Unpartitioned)?;
    let mut role_of: Vec<Option<ChannelRole>> = Vec::new();
    let mut set = |ch: usize, role: ChannelRole| {
        if role_of.len() <= ch {
            role_of.resize(ch + 1, None);
        }
        role_of[ch] = Some(role);
    };
    let mut batch_of: Vec<BatchParams> = Vec::new();
    for (eid, plan) in system.edge_plans() {
        set(
            plan.data_ch.0,
            ChannelRole {
                sender: plan.src_proc,
                receiver: plan.dst_proc,
            },
        );
        if let Some(p) = system.batch_plans().get(eid) {
            if p.is_batched() {
                let ch = plan.data_ch.0;
                if batch_of.len() <= ch {
                    batch_of.resize(ch + 1, BatchParams::disabled());
                }
                batch_of[ch] = BatchParams {
                    max_msgs: p.max_msgs as usize,
                    flush_after: p.flush_after,
                };
            }
        }
        if let Some(ack) = plan.ack_ch {
            set(
                ack.0,
                ChannelRole {
                    sender: plan.dst_proc,
                    receiver: plan.src_proc,
                },
            );
        }
    }
    let (specs, programs) = system.into_parts();
    if role_of.len() < specs.len() {
        role_of.resize(specs.len(), None);
    }
    let roles = role_of
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.ok_or(NetError::UncoveredChannel(i)))
        .collect::<Result<Vec<_>, _>>()?;
    for role in &roles {
        partition.node_of(role.sender)?;
        partition.node_of(role.receiver)?;
    }
    let mut batches = batch_of;
    batches.resize(specs.len(), BatchParams::disabled());
    Ok(Deployment {
        partition,
        roles,
        specs,
        batches,
        programs,
    })
}

impl Deployment {
    /// Global processor ids hosted by `node`, ascending — also the
    /// local-PE→global-processor map for that node's trace capture.
    pub fn procs_on(&self, node: usize) -> Vec<usize> {
        self.partition
            .procs_on(node)
            .into_iter()
            .map(|p| p.0)
            .collect()
    }

    /// Moves out the programs `node` should execute, in processor-id
    /// order (local `PeId(i)` runs global processor `procs_on(node)[i]`).
    pub fn take_local_programs(&mut self, node: usize) -> Vec<Program> {
        let mine = self.procs_on(node);
        std::mem::take(&mut self.programs)
            .into_iter()
            .enumerate()
            .filter_map(|(i, prog)| mine.contains(&i).then_some(prog))
            .collect()
    }

    /// Whether channel `ch` crosses the partition boundary.
    pub fn is_cross(&self, ch: usize) -> bool {
        self.partition
            .is_cross(self.roles[ch].sender, self.roles[ch].receiver)
    }
}

/// Filesystem path of the socket carrying channel `ch` (the receiver
/// binds it; the sender connects to it).
pub fn socket_path(dir: &Path, ch: usize) -> PathBuf {
    dir.join(format!("c{ch}.sock"))
}

/// Builds this node's endpoint for every channel. Two-phase: all
/// listeners are bound first, then `barrier` runs (the worker reports
/// READY and waits for the launcher's PROCEED — i.e. for *every* node's
/// binds), then senders connect. Under supervision each endpoint is
/// sized with [`framed_spec`], matching what the supervised runner
/// expects of pre-built endpoints.
///
/// Cross-partition channels with a batched entry in
/// [`Deployment::batches`] get the coalescing sender and the matching
/// [`AckPolicy`]; when `tracer` is given, each batched sender records a
/// [`spi_platform::ProbeKind::BatchFlush`] probe per flush, stamped with
/// the local PE that runs the sending processor (so merged traces pass
/// the SPI086 budget check).
///
/// The caller applies any fault-injection decorator to the result; this
/// function hands back bare endpoints.
///
/// # Errors
///
/// Socket errors, partition lookups out of range, or the barrier's own
/// failure.
pub fn build_endpoints(
    d: &Deployment,
    node: usize,
    dir: &Path,
    local_kind: TransportKind,
    supervised: bool,
    tracer: Option<&Arc<dyn Tracer>>,
    barrier: impl FnOnce() -> Result<(), NetError>,
) -> Result<Vec<Box<dyn Transport>>, NetError> {
    let eff: Vec<ChannelSpec> = d
        .specs
        .iter()
        .map(|s| if supervised { framed_spec(s) } else { *s })
        .collect();
    let local_procs = d.procs_on(node);
    let mut slots: Vec<Option<Box<dyn Transport>>> = (0..d.specs.len()).map(|_| None).collect();
    for (ch, role) in d.roles.iter().enumerate() {
        let s_node = d.partition.node_of(role.sender)?;
        let r_node = d.partition.node_of(role.receiver)?;
        if r_node == node && s_node != node {
            let policy = AckPolicy::for_batch(&eff[ch], d.batches[ch]);
            let recv = NetReceiver::bind_with(&socket_path(dir, ch), &eff[ch], policy)?;
            slots[ch] = Some(Box::new(recv));
        }
    }
    barrier()?;
    for (ch, role) in d.roles.iter().enumerate() {
        let s_node = d.partition.node_of(role.sender)?;
        let r_node = d.partition.node_of(role.receiver)?;
        slots[ch] = match (s_node == node, r_node == node) {
            (true, false) => {
                let sender =
                    NetSender::connect_with(&socket_path(dir, ch), &eff[ch], d.batches[ch])?;
                if let Some(tracer) = tracer {
                    if d.batches[ch].is_batched() {
                        // The probe's PE is the *local* index of the
                        // sending processor, matching how the worker's
                        // runner stamps every other event on this node.
                        if let Some(pe) = local_procs.iter().position(|&p| p == role.sender.0) {
                            sender.set_probe(Arc::clone(tracer), PeId(pe), ChannelId(ch));
                        }
                    }
                }
                Some(Box::new(sender))
            }
            (true, true) => Some(local_kind.instantiate(&eff[ch])),
            (false, true) => slots[ch].take(), // bound above
            (false, false) => Some(Box::new(UnmappedChannel {
                spec: eff[ch],
                channel: ch,
                node,
            })),
        };
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every channel slot filled"))
        .collect())
}

/// Placeholder endpoint for a channel whose two ends both live on other
/// nodes. The accessors answer honestly (deadlock reports may consult
/// them); any data operation is a routing bug and panics with the
/// channel id.
struct UnmappedChannel {
    spec: ChannelSpec,
    channel: usize,
    node: usize,
}

impl UnmappedChannel {
    fn misroute(&self) -> ! {
        panic!(
            "channel {} is not mapped to node {}: both endpoints live elsewhere, \
             yet a local program touched it (partition/program mismatch)",
            self.channel, self.node
        );
    }
}

impl Transport for UnmappedChannel {
    fn capacity_bytes(&self) -> usize {
        self.spec.capacity_bytes
    }
    fn max_message_bytes(&self) -> usize {
        self.spec.max_message_bytes
    }
    fn len_bytes(&self) -> usize {
        0
    }
    fn occupancy(&self) -> usize {
        0
    }
    fn try_send(&self, _data: &[u8]) -> Result<(), TransportError> {
        self.misroute()
    }
    fn try_recv(&self) -> Result<Vec<u8>, TransportError> {
        self.misroute()
    }
    fn send_with(
        &self,
        _len: usize,
        _fill: &mut dyn FnMut(&mut [u8]),
        _timeout: Duration,
    ) -> Result<(), TransportError> {
        self.misroute()
    }
    fn recv_with(
        &self,
        _consume: &mut dyn FnMut(&[u8]),
        _timeout: Duration,
    ) -> Result<(), TransportError> {
        self.misroute()
    }
}

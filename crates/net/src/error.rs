//! Error type for the distributed backend.

use std::fmt;

use crate::wire::WireDecodeError;

/// Errors surfaced by deployment, the control protocol, and the
/// launcher.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// Socket or process I/O failed.
    Io(std::io::Error),
    /// A control message failed to decode.
    Decode(WireDecodeError),
    /// The control protocol was violated (unexpected message, early
    /// close, child death mid-handshake).
    Protocol(String),
    /// The system was built without a partition — nothing to deploy.
    Unpartitioned,
    /// A platform channel belongs to no edge plan, so its endpoints
    /// cannot be placed (builder invariant violation).
    UncoveredChannel(usize),
    /// A worker's locally built deployment disagrees with the
    /// launcher's manifest — the build is not deterministic across
    /// processes, and running would silently desynchronise.
    ManifestMismatch(String),
    /// A node process finished with a failure it reported itself.
    NodeFailed {
        /// Which node reported the failure.
        node: usize,
        /// The node's own description of what went wrong.
        error: String,
    },
    /// System construction failed inside a worker.
    Spi(spi::SpiError),
    /// Threaded execution failed.
    Platform(spi_platform::PlatformError),
    /// Partition lookup failed.
    Sched(spi_sched::SchedError),
    /// A node's trace artifact failed to parse back.
    Trace(spi_trace::TraceParseError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Decode(e) => write!(f, "control message decode error: {e}"),
            NetError::Protocol(what) => write!(f, "control protocol violation: {what}"),
            NetError::Unpartitioned => {
                write!(f, "system has no partition; build it with .partition(..)")
            }
            NetError::UncoveredChannel(ch) => {
                write!(
                    f,
                    "channel {ch} belongs to no edge plan; cannot place endpoints"
                )
            }
            NetError::ManifestMismatch(what) => {
                write!(f, "worker build disagrees with launcher manifest: {what}")
            }
            NetError::NodeFailed { node, error } => {
                write!(f, "node {node} failed: {error}")
            }
            NetError::Spi(e) => write!(f, "system build error: {e}"),
            NetError::Platform(e) => write!(f, "execution error: {e}"),
            NetError::Sched(e) => write!(f, "partition error: {e}"),
            NetError::Trace(e) => write!(f, "trace parse error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Decode(e) => Some(e),
            NetError::Spi(e) => Some(e),
            NetError::Platform(e) => Some(e),
            NetError::Sched(e) => Some(e),
            NetError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireDecodeError> for NetError {
    fn from(e: WireDecodeError) -> Self {
        NetError::Decode(e)
    }
}

impl From<spi::SpiError> for NetError {
    fn from(e: spi::SpiError) -> Self {
        NetError::Spi(e)
    }
}

impl From<spi_platform::PlatformError> for NetError {
    fn from(e: spi_platform::PlatformError) -> Self {
        NetError::Platform(e)
    }
}

impl From<spi_sched::SchedError> for NetError {
    fn from(e: spi_sched::SchedError) -> Self {
        NetError::Sched(e)
    }
}

impl From<spi_trace::TraceParseError> for NetError {
    fn from(e: spi_trace::TraceParseError) -> Self {
        NetError::Trace(e)
    }
}

//! [`Transport`] over Unix-domain sockets with an eq. (2) credit window.
//!
//! A cross-process SPI channel is one socket carrying length-prefixed
//! data records sender→receiver and credit acknowledgements
//! receiver→sender. Capacity is enforced **sender-side**: the sender
//! starts with a credit balance equal to the channel's
//! [`ChannelSpec::capacity_bytes`] (the eq. (2) allocation, inflated by
//! [`spi_platform::framed_spec`] under supervision), debits every send
//! by its payload size, and blocks when the balance cannot cover the
//! next message. The receiver returns credits only when the application
//! actually **consumes** a message — not on socket arrival — so the
//! bytes in flight across socket buffers, pending batches and the
//! receive queue together never exceed the eq. (2) bound, exactly like
//! the in-memory ring.
//!
//! # Batched fast path
//!
//! The paper's resynchronization pass (§4) removes redundant UBS
//! acknowledgements at compile time; this transport applies the same
//! idea at runtime, in both directions:
//!
//! * **Record coalescing** ([`BatchParams`]): a sender may accumulate
//!   up to `max_msgs` framed records — always debiting credits at
//!   append, so the eq. (2) accounting is untouched — and flush them
//!   with one vectored write. The Nagle-style flush policy is adaptive:
//!   flush on a full batch, on a credit window that cannot cover the
//!   next message (unsent records can never earn credits back), on the
//!   peer reporting itself blocked in `recv` (a HUNGRY ack), on a
//!   µs deadline derived from the schedule's predicted period, and on
//!   endpoint teardown. Every flush is observable as a
//!   [`ProbeKind::BatchFlush`] event when a probe is attached.
//! * **Coalesced credit acks** ([`AckPolicy`]): the receiver replaces
//!   the per-message acknowledgement with a cumulative
//!   `[freed_bytes][freed_msgs][flags]` record emitted every
//!   `every_msgs` consumptions or at a byte low-water mark, keeping the
//!   sender's balance byte-accurate to B(e) while cutting the ack
//!   traffic by the coalescing factor. A receiver that runs dry parks
//!   only after settling its accumulated credits and raising the
//!   HUNGRY flag, so coalescing can never starve a blocked sender or
//!   deadlock a request/response loop.
//!
//! Supervision frames (`[seq][crc32]`, PR 4) ride opaquely inside the
//! data records; corruption injected by a [`spi_fault`] decorator on
//! the sender's side hits real frame bytes and is caught by the
//! receiver's CRC check in the supervised runner, unchanged.
//!
//! Error semantics mirror [`spi_platform::RingTransport`]:
//! [`TransportError::Timeout`] carries the configured deadline and the
//! time since the channel last made progress; non-blocking ops return
//! [`TransportError::Full`] / [`TransportError::Empty`]; oversized
//! payloads return [`TransportError::TooLarge`] without consuming
//! credits. A torn connection (peer exit, socket error) parks the
//! channel in a closed state where blocking ops fail fast with a
//! `Timeout` — the supervised runner's retry/degrade machinery treats
//! that like any other unresponsive peer.

use std::collections::VecDeque;
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use spi_platform::shim::{self, AtomicBool, Condvar, Mutex};
use spi_platform::{
    ChannelId, ChannelSpec, FlushReason, PeId, ProbeKind, Tracer, Transport, TransportError,
};

use crate::stream::NetStream;
use crate::wire::{frame_with, read_record, write_framed_vectored, write_record};

/// How long [`NetSender::connect`] keeps retrying a missing socket path
/// before giving up — covers the window between the launcher's PROCEED
/// and a peer node finishing its binds under load.
pub const CONNECT_RETRY_WINDOW: Duration = Duration::from_secs(10);

const CONNECT_RETRY_STEP: Duration = Duration::from_millis(5);

/// Wire size of a credit acknowledgement record:
/// `[freed_bytes: u32][freed_msgs: u32][flags: u32]`, all LE.
const ACK_BYTES: usize = 12;

/// Ack flag: the receiver is parked in a blocking `recv` on an empty
/// queue — the sender should flush any pending batch immediately.
const ACK_FLAG_HUNGRY: u32 = 1;

fn effective_capacity(spec: &ChannelSpec) -> usize {
    // Like the in-memory transports, a channel always admits at least
    // one maximum-size message so progress can never wedge on a spec
    // whose capacity under-runs its own message bound.
    spec.capacity_bytes.max(spec.max_message_bytes.max(1))
}

fn closed_err(timeout: Duration, since: Instant) -> TransportError {
    // `idle` never exceeds the configured deadline (scheduling jitter
    // can overshoot it); RingTransport reports the same shape. Read the
    // clock through the shim so the figure is virtual under `spi-sim`.
    TransportError::Timeout {
        after: timeout,
        idle: shim::now().saturating_duration_since(since).min(timeout),
    }
}

// ---------------------------------------------------------------------
// Batching configuration
// ---------------------------------------------------------------------

/// Sender-side record-coalescing parameters. Lowered per edge from the
/// schedule (`spi_sched::BatchPlan`) for distributed runs; the default
/// is the unbatched legacy path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchParams {
    /// Most records coalesced into one vectored write; `1` writes every
    /// record immediately. Must stay within the edge's credit window in
    /// messages (the SPI046 analyzer lint enforces the declared form).
    pub max_msgs: usize,
    /// Nagle deadline: a pending batch older than this is flushed even
    /// if partial. Ignored when `max_msgs == 1`.
    pub flush_after: Duration,
}

impl BatchParams {
    /// The unbatched legacy path: one record per write, no deadline.
    pub fn disabled() -> BatchParams {
        BatchParams {
            max_msgs: 1,
            flush_after: Duration::ZERO,
        }
    }

    /// Whether this configuration coalesces records at all.
    pub fn is_batched(&self) -> bool {
        self.max_msgs > 1
    }
}

impl Default for BatchParams {
    fn default() -> Self {
        BatchParams::disabled()
    }
}

/// Receiver-side credit-acknowledgement coalescing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckPolicy {
    /// Emit a cumulative ack after this many consumptions.
    pub every_msgs: usize,
    /// ... or as soon as the accumulated un-acked bytes reach this
    /// low-water mark, whichever comes first. Half the credit window
    /// keeps the sender from ever draining completely while the
    /// receiver is making progress.
    pub low_water_bytes: usize,
}

impl AckPolicy {
    /// The legacy policy: one ack per consumed message.
    pub fn immediate() -> AckPolicy {
        AckPolicy {
            every_msgs: 1,
            low_water_bytes: 0,
        }
    }

    /// The policy matched to a sender batching under `batch`: ack every
    /// `batch.max_msgs` consumptions or at the half-window byte mark.
    pub fn for_batch(spec: &ChannelSpec, batch: BatchParams) -> AckPolicy {
        if !batch.is_batched() {
            return AckPolicy::immediate();
        }
        AckPolicy {
            every_msgs: batch.max_msgs,
            low_water_bytes: effective_capacity(spec) / 2,
        }
    }
}

impl Default for AckPolicy {
    fn default() -> Self {
        AckPolicy::immediate()
    }
}

/// Where a sender's [`ProbeKind::BatchFlush`] events go: a tracer plus
/// the identity they are recorded under.
struct ProbePoint {
    tracer: Arc<dyn Tracer>,
    pe: PeId,
    channel: ChannelId,
}

// ---------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------

struct SenderState {
    /// Unspent credit bytes; `capacity - credits` is the in-flight load.
    credits: usize,
    /// Messages sent but not yet consumed by the peer.
    in_flight_msgs: usize,
    /// Monotonic count of credit grants, for idle tracking.
    grants: u64,
}

/// Records appended but not yet written to the socket. Credits are
/// debited at append time, so pending bytes already count against the
/// eq. (2) window.
struct PendingBatch {
    /// Framed `[len][payload]` buffers, send order.
    records: Vec<Vec<u8>>,
    /// Total payload bytes across `records`.
    bytes: usize,
    /// When the oldest pending record was appended (deadline anchor).
    first_at: Option<Instant>,
}

struct SenderShared<S: NetStream> {
    capacity: usize,
    max_msg: usize,
    batch: BatchParams,
    state: Mutex<SenderState>,
    credit_back: Condvar,
    closed: AtomicBool,
    /// Lock order: `state` → `pending` → `stream`. Flushing holds
    /// `pending` across the socket write so batches land whole and in
    /// order — and so [`ProbeKind::BatchFlush`] records made under it
    /// are release/acquire-ordered with the endpoint's final flush,
    /// which the trace collector runs after.
    pending: Mutex<PendingBatch>,
    /// Wakes the deadline-flusher thread when a batch starts or the
    /// endpoint closes. Paired with `pending`.
    flush_wake: Condvar,
    stream: Mutex<S>,
    /// Sticky peer-is-blocked hint from a HUNGRY ack; cleared by the
    /// next successful flush (whose records will unpark the peer).
    hungry: AtomicBool,
    probe: OnceLock<ProbePoint>,
}

impl<S: NetStream> SenderShared<S> {
    /// Drains the pending batch with one vectored write. No-op when
    /// nothing is pending; on a socket error the channel closes.
    fn flush(&self, reason: FlushReason) -> std::io::Result<()> {
        let mut p = self.pending.lock();
        self.flush_locked(&mut p, reason)
    }

    fn flush_locked(&self, p: &mut PendingBatch, reason: FlushReason) -> std::io::Result<()> {
        if p.records.is_empty() {
            return Ok(());
        }
        let records = std::mem::take(&mut p.records);
        let bytes = std::mem::take(&mut p.bytes);
        p.first_at = None;
        let res = {
            let mut tx = self.stream.lock();
            write_framed_vectored(&mut *tx as &mut dyn Write, &records)
        };
        match res {
            Ok(()) => {
                // Data on the wire will unpark a hungry peer.
                self.hungry.store(false, Ordering::Release);
                if let Some(pr) = self.probe.get() {
                    pr.tracer.record(
                        pr.pe,
                        pr.tracer.now(),
                        ProbeKind::BatchFlush {
                            channel: pr.channel,
                            msgs: records.len() as u32,
                            bytes: bytes as u32,
                            reason,
                        },
                    );
                }
                Ok(())
            }
            Err(e) => {
                self.closed.store(true, Ordering::Release);
                self.credit_back.notify_all();
                self.flush_wake.notify_all();
                Err(e)
            }
        }
    }
}

/// The sending endpoint of a cross-process channel.
///
/// Owns the socket's write half, a background thread draining credit
/// acknowledgements from the read half, and — when batching is on — a
/// deadline-flusher thread enforcing the Nagle timer.
///
/// Generic over the underlying byte stream ([`NetStream`]): real
/// deployments use the `UnixStream` default, `spi-sim` substitutes a
/// deterministic in-memory pair.
pub struct NetSender<S: NetStream = UnixStream> {
    shared: Arc<SenderShared<S>>,
}

impl NetSender {
    /// Connects to the receiving endpoint at `path`, retrying for up to
    /// [`CONNECT_RETRY_WINDOW`] while the peer is still binding. The
    /// unbatched legacy path; see [`NetSender::connect_with`].
    ///
    /// # Errors
    ///
    /// The final connect error if the window elapses.
    pub fn connect(path: &Path, spec: &ChannelSpec) -> std::io::Result<NetSender> {
        NetSender::connect_with(path, spec, BatchParams::disabled())
    }

    /// [`NetSender::connect`] with record coalescing configured.
    ///
    /// # Errors
    ///
    /// The final connect error if the retry window elapses.
    pub fn connect_with(
        path: &Path,
        spec: &ChannelSpec,
        batch: BatchParams,
    ) -> std::io::Result<NetSender> {
        let deadline = Instant::now() + CONNECT_RETRY_WINDOW;
        let stream = loop {
            match UnixStream::connect(path) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(CONNECT_RETRY_STEP);
                }
                Err(e) => return Err(e),
            }
        };
        Ok(NetSender::from_stream_with(stream, spec, batch))
    }
}

impl<S: NetStream> NetSender<S> {
    /// Wraps an already-connected stream (socketpair loopback, tests),
    /// unbatched.
    pub fn from_stream(stream: S, spec: &ChannelSpec) -> NetSender<S> {
        NetSender::from_stream_with(stream, spec, BatchParams::disabled())
    }

    /// Wraps an already-connected stream with record coalescing
    /// configured.
    pub fn from_stream_with(stream: S, spec: &ChannelSpec, batch: BatchParams) -> NetSender<S> {
        let capacity = effective_capacity(spec);
        let batch = BatchParams {
            max_msgs: batch.max_msgs.max(1),
            ..batch
        };
        let shared = Arc::new(SenderShared {
            capacity,
            max_msg: spec.max_message_bytes.max(1),
            batch,
            state: Mutex::labeled(
                SenderState {
                    credits: capacity,
                    in_flight_msgs: 0,
                    grants: 0,
                },
                "net_sender_state",
            ),
            credit_back: Condvar::labeled("net_credit_back"),
            closed: AtomicBool::labeled(false, "net_sender_closed"),
            pending: Mutex::labeled(
                PendingBatch {
                    records: Vec::new(),
                    bytes: 0,
                    first_at: None,
                },
                "net_pending_batch",
            ),
            flush_wake: Condvar::labeled("net_flush_wake"),
            stream: Mutex::labeled(
                stream.try_clone().expect("clone socket"),
                "net_sender_stream",
            ),
            hungry: AtomicBool::labeled(false, "net_hungry"),
            probe: OnceLock::new(),
        });
        let reader = Arc::clone(&shared);
        // Detached on purpose: the thread holds only the Arc and exits
        // as soon as the socket EOFs or errors (Drop shuts it down).
        shim::spawn("net-ack", move || {
            let mut rx = stream;
            loop {
                match read_record(&mut rx) {
                    Ok(Some(ack)) if ack.len() == ACK_BYTES => {
                        let word =
                            |i: usize| u32::from_le_bytes(ack[i..i + 4].try_into().expect("word"));
                        let freed = word(0) as usize;
                        let msgs = word(4) as usize;
                        let flags = word(8);
                        if freed > 0 || msgs > 0 {
                            let mut st = reader.state.lock();
                            st.credits = (st.credits + freed).min(reader.capacity);
                            st.in_flight_msgs = st.in_flight_msgs.saturating_sub(msgs);
                            st.grants += 1;
                            drop(st);
                            reader.credit_back.notify_all();
                        }
                        if flags & ACK_FLAG_HUNGRY != 0 {
                            // The peer is parked in recv: latency beats
                            // amortization, push whatever is pending.
                            // The sticky hint also fast-flushes the
                            // next appended record if nothing is
                            // pending right now.
                            reader.hungry.store(true, Ordering::Release);
                            let _ = reader.flush(FlushReason::Hungry);
                        }
                    }
                    // Malformed ack, clean EOF, or socket error: the
                    // channel is unusable either way.
                    _ => break,
                }
            }
            reader.closed.store(true, Ordering::Release);
            reader.credit_back.notify_all();
            reader.flush_wake.notify_all();
        });
        if shared.batch.is_batched() {
            let fl = Arc::clone(&shared);
            // Deadline flusher: parks on `flush_wake` until a batch
            // starts, then sleeps out the Nagle deadline and drains
            // whatever is still pending.
            shim::spawn("net-flush", move || {
                let mut p = fl.pending.lock();
                while !fl.closed.load(Ordering::Acquire) {
                    let Some(first_at) = p.first_at else {
                        let (guard, _) = fl.flush_wake.wait_timeout(p, Duration::from_millis(50));
                        p = guard;
                        continue;
                    };
                    let age = shim::now().saturating_duration_since(first_at);
                    if age >= fl.batch.flush_after {
                        let _ = fl.flush_locked(&mut p, FlushReason::Deadline);
                        continue;
                    }
                    let (guard, _) = fl.flush_wake.wait_timeout(p, fl.batch.flush_after - age);
                    p = guard;
                }
            });
        }
        NetSender { shared }
    }

    /// Attaches a tracer: every batch flush records a
    /// [`ProbeKind::BatchFlush`] under `pe`/`channel`. May be set once,
    /// before the endpoint is shared; later calls are ignored.
    pub fn set_probe(&self, tracer: Arc<dyn Tracer>, pe: PeId, channel: ChannelId) {
        if tracer.enabled() {
            let _ = self.shared.probe.set(ProbePoint {
                tracer,
                pe,
                channel,
            });
        }
    }

    /// Forces any pending batch onto the wire now (reason `Final`).
    /// Useful at iteration boundaries and in tests; the adaptive policy
    /// makes routine calls unnecessary.
    ///
    /// # Errors
    ///
    /// A closed-channel timeout shape if the socket write fails.
    pub fn flush_pending(&self) -> Result<(), TransportError> {
        self.shared
            .flush(FlushReason::Final)
            .map_err(|_| closed_err(Duration::ZERO, shim::now()))
    }

    fn closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }
}

impl<S: NetStream> Drop for NetSender<S> {
    fn drop(&mut self) {
        // Drain any coalesced records first: peers distinguish a clean
        // EOF from a truncated stream, and credits for unsent bytes are
        // unrecoverable either way.
        let _ = self.shared.flush(FlushReason::Final);
        self.shared.closed.store(true, Ordering::Release);
        {
            let s = self.shared.stream.lock();
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        self.shared.credit_back.notify_all();
        self.shared.flush_wake.notify_all();
    }
}

impl<S: NetStream> Transport for NetSender<S> {
    fn capacity_bytes(&self) -> usize {
        self.shared.capacity
    }

    fn max_message_bytes(&self) -> usize {
        self.shared.max_msg
    }

    fn len_bytes(&self) -> usize {
        let st = self.shared.state.lock();
        self.shared.capacity - st.credits
    }

    fn occupancy(&self) -> usize {
        self.shared.state.lock().in_flight_msgs
    }

    fn snapshot(&self) -> (usize, usize) {
        let st = self.shared.state.lock();
        (self.shared.capacity - st.credits, st.in_flight_msgs)
    }

    fn try_send(&self, data: &[u8]) -> Result<(), TransportError> {
        self.send_with(
            data.len(),
            &mut |buf| buf.copy_from_slice(data),
            Duration::ZERO,
        )
        .map_err(|e| match e {
            TransportError::Timeout { .. } => TransportError::Full,
            other => other,
        })
    }

    fn try_recv(&self) -> Result<Vec<u8>, TransportError> {
        unreachable!("receive on the sending endpoint of a network channel")
    }

    fn send_with(
        &self,
        len: usize,
        fill: &mut dyn FnMut(&mut [u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        if len > self.shared.max_msg {
            return Err(TransportError::TooLarge {
                bytes: len,
                max: self.shared.max_msg,
            });
        }
        let start = shim::now();
        let deadline = start + timeout;
        let credits_after;
        {
            let mut st = self.shared.state.lock();
            let mut seen_grants = st.grants;
            let mut progress_at = start;
            // An idle channel always admits one message (credits start
            // at full capacity ≥ max_msg), so this loop cannot wedge on
            // a degenerate spec.
            while st.credits < len {
                if self.closed() {
                    return Err(closed_err(timeout, start));
                }
                if self.shared.batch.is_batched() {
                    // Credits can only return for records the peer has
                    // seen — drain the pending batch before waiting.
                    let unsent = {
                        let p = self.shared.pending.lock();
                        !p.records.is_empty()
                    };
                    if unsent {
                        drop(st);
                        if self.shared.flush(FlushReason::Window).is_err() {
                            return Err(closed_err(timeout, start));
                        }
                        st = self.shared.state.lock();
                        continue;
                    }
                }
                let now = shim::now();
                if st.grants != seen_grants {
                    seen_grants = st.grants;
                    progress_at = now;
                }
                if now >= deadline {
                    return Err(TransportError::Timeout {
                        after: timeout,
                        idle: now.duration_since(progress_at).min(timeout),
                    });
                }
                let (guard, _) = self.shared.credit_back.wait_timeout(st, deadline - now);
                st = guard;
            }
            st.credits -= len;
            st.in_flight_msgs += 1;
            credits_after = st.credits;
        }
        let rec = frame_with(len, fill);
        let flush_reason = {
            let mut p = self.shared.pending.lock();
            if p.records.is_empty() {
                p.first_at = Some(shim::now());
                // Arm the deadline flusher for this batch.
                self.shared.flush_wake.notify_all();
            }
            p.records.push(rec);
            p.bytes += len;
            if p.records.len() >= self.shared.batch.max_msgs {
                Some(FlushReason::Full)
            } else if credits_after < self.shared.max_msg {
                // The window cannot cover another message; the peer
                // must see these records to return credits.
                Some(FlushReason::Window)
            } else if self.shared.hungry.load(Ordering::Acquire) {
                Some(FlushReason::Hungry)
            } else {
                None
            }
        };
        if let Some(reason) = flush_reason {
            if self.shared.flush(reason).is_err() {
                return Err(closed_err(timeout, start));
            }
        }
        Ok(())
    }

    fn recv_with(
        &self,
        _consume: &mut dyn FnMut(&[u8]),
        _timeout: Duration,
    ) -> Result<(), TransportError> {
        unreachable!("receive on the sending endpoint of a network channel")
    }
}

// ---------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------

struct ReceiverState {
    queue: VecDeque<Vec<u8>>,
    queued_bytes: usize,
    /// Monotonic count of arrivals, for idle tracking.
    arrivals: u64,
    /// Consumed-but-not-yet-acknowledged credit, per [`AckPolicy`].
    unacked_bytes: usize,
    unacked_msgs: usize,
    /// A HUNGRY ack was sent for the current empty-queue episode;
    /// cleared by the pump on the next arrival so each episode raises
    /// the flag at most once.
    hungry_sent: bool,
}

/// The credit-ack write half plus the drop flag, under one lock so the
/// endpoint's `Drop` and the pump thread cannot race past each other:
/// whichever runs second sees the other's effect and performs the
/// socket shutdown exactly once.
struct AckSlot<S> {
    /// Populated by the pump once the connection exists (immediately
    /// for socketpair construction, after accept when bound).
    stream: Option<S>,
    /// Set by the endpoint's `Drop`.
    dropped: bool,
}

impl<S> Default for AckSlot<S> {
    fn default() -> Self {
        AckSlot {
            stream: None,
            dropped: false,
        }
    }
}

struct ReceiverShared<S: NetStream> {
    capacity: usize,
    max_msg: usize,
    ack_policy: AckPolicy,
    state: Mutex<ReceiverState>,
    arrived: Condvar,
    closed: AtomicBool,
    ack_tx: Mutex<AckSlot<S>>,
}

/// The receiving endpoint of a cross-process channel.
///
/// A background thread (accepting first, when bound to a listener)
/// drains data records into a bounded-by-protocol queue; consuming a
/// message accumulates credit that is returned to the sender per the
/// endpoint's [`AckPolicy`].
/// Generic over the underlying byte stream ([`NetStream`]): real
/// deployments use the `UnixStream` default, `spi-sim` substitutes a
/// deterministic in-memory pair.
pub struct NetReceiver<S: NetStream = UnixStream> {
    shared: Arc<ReceiverShared<S>>,
    /// Socket path to poke on Drop so a never-connected accept thread
    /// unblocks and exits.
    listener_path: Option<std::path::PathBuf>,
}

impl NetReceiver {
    /// Binds a listener at `path` and accepts the sender's connection
    /// in the background, acking every message (legacy policy). The
    /// path must not exist yet.
    ///
    /// # Errors
    ///
    /// Any bind error.
    pub fn bind(path: &Path, spec: &ChannelSpec) -> std::io::Result<NetReceiver> {
        NetReceiver::bind_with(path, spec, AckPolicy::immediate())
    }

    /// [`NetReceiver::bind`] with a coalesced ack policy.
    ///
    /// # Errors
    ///
    /// Any bind error.
    pub fn bind_with(
        path: &Path,
        spec: &ChannelSpec,
        ack: AckPolicy,
    ) -> std::io::Result<NetReceiver> {
        let listener = UnixListener::bind(path)?;
        let shared = Self::shared_for(spec, ack);
        let reader = Arc::clone(&shared);
        shim::spawn("net-accept", move || {
            let Ok((stream, _)) = listener.accept() else {
                reader.closed.store(true, Ordering::Release);
                reader.arrived.notify_all();
                return;
            };
            Self::pump(&reader, stream);
        });
        Ok(NetReceiver {
            shared,
            listener_path: Some(path.to_path_buf()),
        })
    }
}

impl<S: NetStream> NetReceiver<S> {
    /// Wraps an already-connected stream (socketpair loopback, tests),
    /// acking every message.
    pub fn from_stream(stream: S, spec: &ChannelSpec) -> NetReceiver<S> {
        NetReceiver::from_stream_with(stream, spec, AckPolicy::immediate())
    }

    /// Wraps an already-connected stream with a coalesced ack policy.
    pub fn from_stream_with(stream: S, spec: &ChannelSpec, ack: AckPolicy) -> NetReceiver<S> {
        let shared = Self::shared_for(spec, ack);
        let reader = Arc::clone(&shared);
        shim::spawn("net-pump", move || Self::pump(&reader, stream));
        NetReceiver {
            shared,
            listener_path: None,
        }
    }

    fn shared_for(spec: &ChannelSpec, ack: AckPolicy) -> Arc<ReceiverShared<S>> {
        Arc::new(ReceiverShared {
            capacity: effective_capacity(spec),
            max_msg: spec.max_message_bytes.max(1),
            ack_policy: AckPolicy {
                every_msgs: ack.every_msgs.max(1),
                ..ack
            },
            state: Mutex::labeled(
                ReceiverState {
                    queue: VecDeque::new(),
                    queued_bytes: 0,
                    arrivals: 0,
                    unacked_bytes: 0,
                    unacked_msgs: 0,
                    hungry_sent: false,
                },
                "net_receiver_state",
            ),
            arrived: Condvar::labeled("net_arrived"),
            closed: AtomicBool::labeled(false, "net_receiver_closed"),
            ack_tx: Mutex::labeled(AckSlot::default(), "net_ack_tx"),
        })
    }

    /// Reads data records off `stream` into the queue until EOF/error.
    fn pump(shared: &Arc<ReceiverShared<S>>, stream: S) {
        {
            let mut slot = shared.ack_tx.lock();
            if slot.dropped {
                // The endpoint was dropped before the connection came
                // up; tear it down here — Drop could not, it never saw
                // a stream.
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
            slot.stream = stream.try_clone().ok();
        }
        let mut rx = stream;
        while let Ok(Some(msg)) = read_record(&mut rx) {
            let mut st = shared.state.lock();
            st.queued_bytes += msg.len();
            st.arrivals += 1;
            st.hungry_sent = false;
            st.queue.push_back(msg);
            drop(st);
            shared.arrived.notify_all();
        }
        shared.closed.store(true, Ordering::Release);
        shared.arrived.notify_all();
    }

    fn closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Writes one cumulative credit-ack record.
    fn ack(&self, freed_bytes: usize, freed_msgs: usize, flags: u32) {
        let mut slot = self.shared.ack_tx.lock();
        if let Some(tx) = slot.stream.as_mut() {
            let mut rec = [0u8; ACK_BYTES];
            rec[..4].copy_from_slice(&(freed_bytes as u32).to_le_bytes());
            rec[4..8].copy_from_slice(&(freed_msgs as u32).to_le_bytes());
            rec[8..].copy_from_slice(&flags.to_le_bytes());
            if write_record(tx as &mut dyn Write, &rec).is_err() {
                self.shared.closed.store(true, Ordering::Release);
            }
        }
    }

    /// Accumulates credit for one consumed message under `st` and
    /// decides whether the policy requires emitting an ack now. The
    /// caller emits after dropping the state lock (acks write to a
    /// socket and must not hold it).
    fn accrue(&self, st: &mut ReceiverState, len: usize) -> Option<(usize, usize)> {
        st.unacked_bytes += len;
        st.unacked_msgs += 1;
        let due = st.unacked_msgs >= self.shared.ack_policy.every_msgs
            || st.unacked_bytes >= self.shared.ack_policy.low_water_bytes.max(1);
        due.then(|| {
            (
                std::mem::take(&mut st.unacked_bytes),
                std::mem::take(&mut st.unacked_msgs),
            )
        })
    }

    /// Settles all accumulated credit with the HUNGRY flag raised —
    /// called when the consumer finds the queue empty, so a coalescing
    /// receiver can never sit on credits while its sender blocks, and
    /// the sender learns to flush any pending batch. At most one per
    /// empty-queue episode.
    fn settle_hungry(&self, st: &mut ReceiverState) -> Option<(usize, usize)> {
        if st.hungry_sent {
            return None;
        }
        st.hungry_sent = true;
        Some((
            std::mem::take(&mut st.unacked_bytes),
            std::mem::take(&mut st.unacked_msgs),
        ))
    }
}

impl<S: NetStream> Drop for NetReceiver<S> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        let connected = {
            let mut slot = self.shared.ack_tx.lock();
            slot.dropped = true;
            if let Some(tx) = slot.stream.as_ref() {
                let _ = tx.shutdown(std::net::Shutdown::Both);
                true
            } else {
                false
            }
        };
        // No connection yet: either the pump will see `dropped` and
        // shut the socket itself, or the accept is still parked — poke
        // it with a throwaway connection so the thread exits.
        if !connected {
            if let Some(path) = &self.listener_path {
                let _ = UnixStream::connect(path);
            }
        }
        if let Some(path) = &self.listener_path {
            let _ = std::fs::remove_file(path);
        }
        self.shared.arrived.notify_all();
    }
}

impl<S: NetStream> Transport for NetReceiver<S> {
    fn capacity_bytes(&self) -> usize {
        self.shared.capacity
    }

    fn max_message_bytes(&self) -> usize {
        self.shared.max_msg
    }

    fn len_bytes(&self) -> usize {
        self.shared.state.lock().queued_bytes
    }

    fn occupancy(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    fn snapshot(&self) -> (usize, usize) {
        let st = self.shared.state.lock();
        (st.queued_bytes, st.queue.len())
    }

    fn try_send(&self, _data: &[u8]) -> Result<(), TransportError> {
        unreachable!("send on the receiving endpoint of a network channel")
    }

    fn try_recv(&self) -> Result<Vec<u8>, TransportError> {
        let (msg, due) = {
            let mut st = self.shared.state.lock();
            match st.queue.pop_front() {
                Some(m) => {
                    st.queued_bytes -= m.len();
                    let due = self.accrue(&mut st, m.len());
                    (m, due)
                }
                None => {
                    // A polling consumer never parks, so the park-time
                    // settlement below can't run — settle here instead.
                    let hungry = self.settle_hungry(&mut st);
                    drop(st);
                    if let Some((b, n)) = hungry {
                        self.ack(b, n, ACK_FLAG_HUNGRY);
                    }
                    return Err(TransportError::Empty);
                }
            }
        };
        if let Some((b, n)) = due {
            self.ack(b, n, 0);
        }
        Ok(msg)
    }

    fn send_with(
        &self,
        _len: usize,
        _fill: &mut dyn FnMut(&mut [u8]),
        _timeout: Duration,
    ) -> Result<(), TransportError> {
        unreachable!("send on the receiving endpoint of a network channel")
    }

    fn recv_with(
        &self,
        consume: &mut dyn FnMut(&[u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        let start = shim::now();
        let deadline = start + timeout;
        let mut seen_arrivals: Option<u64> = None;
        let mut progress_at = start;
        let mut st = self.shared.state.lock();
        let (msg, due) = loop {
            if let Some(m) = st.queue.pop_front() {
                st.queued_bytes -= m.len();
                let due = self.accrue(&mut st, m.len());
                break (m, due);
            }
            if self.closed() {
                return Err(closed_err(timeout, start));
            }
            // About to park: settle accumulated credit and tell the
            // sender we are starving so it flushes any pending batch.
            if let Some((b, n)) = self.settle_hungry(&mut st) {
                drop(st);
                self.ack(b, n, ACK_FLAG_HUNGRY);
                st = self.shared.state.lock();
                continue;
            }
            let now = shim::now();
            if seen_arrivals != Some(st.arrivals) {
                if seen_arrivals.is_some() {
                    progress_at = now;
                }
                seen_arrivals = Some(st.arrivals);
            }
            if now >= deadline {
                return Err(TransportError::Timeout {
                    after: timeout,
                    idle: now.duration_since(progress_at).min(timeout),
                });
            }
            let (guard, _) = self.shared.arrived.wait_timeout(st, deadline - now);
            st = guard;
        };
        drop(st);
        consume(&msg);
        if let Some((b, n)) = due {
            self.ack(b, n, 0);
        }
        Ok(())
    }
}

/// A connected loopback channel over `socketpair(2)` — both endpoints
/// in one process, the full wire protocol in between, no coalescing.
/// The workhorse of the transport tests.
pub fn loopback(spec: &ChannelSpec) -> std::io::Result<(NetSender, NetReceiver)> {
    loopback_with(spec, BatchParams::disabled())
}

/// [`loopback`] with the batched fast path: the sender coalesces under
/// `batch` and the receiver acks under the matched
/// [`AckPolicy::for_batch`] policy. The `fir_3pe_net_loopback`
/// benchmark's configuration.
pub fn loopback_with(
    spec: &ChannelSpec,
    batch: BatchParams,
) -> std::io::Result<(NetSender, NetReceiver)> {
    let (a, b) = UnixStream::pair()?;
    Ok((
        NetSender::from_stream_with(a, spec, batch),
        NetReceiver::from_stream_with(b, spec, AckPolicy::for_batch(spec, batch)),
    ))
}

//! [`Transport`] over Unix-domain sockets with an eq. (2) credit window.
//!
//! A cross-process SPI channel is one socket carrying length-prefixed
//! data records sender→receiver and 4-byte credit acknowledgements
//! receiver→sender. Capacity is enforced **sender-side**: the sender
//! starts with a credit balance equal to the channel's
//! [`ChannelSpec::capacity_bytes`] (the eq. (2) allocation, inflated by
//! [`spi_platform::framed_spec`] under supervision), debits every send
//! by its payload size, and blocks when the balance cannot cover the
//! next message. The receiver returns credits only when the application
//! actually **consumes** a message — not on socket arrival — so the
//! bytes in flight across socket buffers and the receive queue together
//! never exceed the eq. (2) bound, exactly like the in-memory ring.
//!
//! Supervision frames (`[seq][crc32]`, PR 4) ride opaquely inside the
//! data records; corruption injected by a [`spi_fault`] decorator on
//! the sender's side hits real frame bytes and is caught by the
//! receiver's CRC check in the supervised runner, unchanged.
//!
//! Error semantics mirror [`spi_platform::RingTransport`]:
//! [`TransportError::Timeout`] carries the configured deadline and the
//! time since the channel last made progress; non-blocking ops return
//! [`TransportError::Full`] / [`TransportError::Empty`]; oversized
//! payloads return [`TransportError::TooLarge`] without consuming
//! credits. A torn connection (peer exit, socket error) parks the
//! channel in a closed state where blocking ops fail fast with a
//! `Timeout` — the supervised runner's retry/degrade machinery treats
//! that like any other unresponsive peer.

use std::collections::VecDeque;
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use spi_platform::{ChannelSpec, Transport, TransportError};

use crate::wire::{read_record, write_record};

/// How long [`NetSender::connect`] keeps retrying a missing socket path
/// before giving up — covers the window between the launcher's PROCEED
/// and a peer node finishing its binds under load.
pub const CONNECT_RETRY_WINDOW: Duration = Duration::from_secs(10);

const CONNECT_RETRY_STEP: Duration = Duration::from_millis(5);

fn effective_capacity(spec: &ChannelSpec) -> usize {
    // Like the in-memory transports, a channel always admits at least
    // one maximum-size message so progress can never wedge on a spec
    // whose capacity under-runs its own message bound.
    spec.capacity_bytes.max(spec.max_message_bytes.max(1))
}

fn closed_err(timeout: Duration, since: Instant) -> TransportError {
    // `idle` never exceeds the configured deadline (scheduling jitter
    // can overshoot it); RingTransport reports the same shape.
    TransportError::Timeout {
        after: timeout,
        idle: since.elapsed().min(timeout),
    }
}

// ---------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------

struct SenderState {
    /// Unspent credit bytes; `capacity - credits` is the in-flight load.
    credits: usize,
    /// Messages sent but not yet consumed by the peer.
    in_flight_msgs: usize,
    /// Monotonic count of credit grants, for idle tracking.
    grants: u64,
}

struct SenderShared {
    capacity: usize,
    max_msg: usize,
    state: Mutex<SenderState>,
    credit_back: Condvar,
    closed: AtomicBool,
    stream: Mutex<UnixStream>,
}

/// The sending endpoint of a cross-process channel.
///
/// Owns the socket's write half and a background thread draining credit
/// acknowledgements from the read half.
pub struct NetSender {
    shared: Arc<SenderShared>,
}

impl NetSender {
    /// Connects to the receiving endpoint at `path`, retrying for up to
    /// [`CONNECT_RETRY_WINDOW`] while the peer is still binding.
    ///
    /// # Errors
    ///
    /// The final connect error if the window elapses.
    pub fn connect(path: &Path, spec: &ChannelSpec) -> std::io::Result<NetSender> {
        let deadline = Instant::now() + CONNECT_RETRY_WINDOW;
        let stream = loop {
            match UnixStream::connect(path) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(CONNECT_RETRY_STEP);
                }
                Err(e) => return Err(e),
            }
        };
        Ok(NetSender::from_stream(stream, spec))
    }

    /// Wraps an already-connected stream (socketpair loopback, tests).
    pub fn from_stream(stream: UnixStream, spec: &ChannelSpec) -> NetSender {
        let capacity = effective_capacity(spec);
        let shared = Arc::new(SenderShared {
            capacity,
            max_msg: spec.max_message_bytes.max(1),
            state: Mutex::new(SenderState {
                credits: capacity,
                in_flight_msgs: 0,
                grants: 0,
            }),
            credit_back: Condvar::new(),
            closed: AtomicBool::new(false),
            stream: Mutex::new(stream.try_clone().expect("clone socket")),
        });
        let reader = Arc::clone(&shared);
        // Detached on purpose: the thread holds only the Arc and exits
        // as soon as the socket EOFs or errors (Drop shuts it down).
        std::thread::spawn(move || {
            let mut rx = stream;
            loop {
                match read_record(&mut rx) {
                    Ok(Some(ack)) if ack.len() == 4 => {
                        let freed = u32::from_le_bytes(ack.try_into().expect("4 bytes")) as usize;
                        let mut st = reader.state.lock().expect("sender state");
                        st.credits = (st.credits + freed).min(reader.capacity);
                        st.in_flight_msgs = st.in_flight_msgs.saturating_sub(1);
                        st.grants += 1;
                        drop(st);
                        reader.credit_back.notify_all();
                    }
                    // Malformed ack, clean EOF, or socket error: the
                    // channel is unusable either way.
                    _ => break,
                }
            }
            reader.closed.store(true, Ordering::Release);
            reader.credit_back.notify_all();
        });
        NetSender { shared }
    }

    fn closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }
}

impl Drop for NetSender {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        if let Ok(s) = self.shared.stream.lock() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        self.shared.credit_back.notify_all();
    }
}

impl Transport for NetSender {
    fn capacity_bytes(&self) -> usize {
        self.shared.capacity
    }

    fn max_message_bytes(&self) -> usize {
        self.shared.max_msg
    }

    fn len_bytes(&self) -> usize {
        let st = self.shared.state.lock().expect("sender state");
        self.shared.capacity - st.credits
    }

    fn occupancy(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("sender state")
            .in_flight_msgs
    }

    fn snapshot(&self) -> (usize, usize) {
        let st = self.shared.state.lock().expect("sender state");
        (self.shared.capacity - st.credits, st.in_flight_msgs)
    }

    fn try_send(&self, data: &[u8]) -> Result<(), TransportError> {
        self.send_with(
            data.len(),
            &mut |buf| buf.copy_from_slice(data),
            Duration::ZERO,
        )
        .map_err(|e| match e {
            TransportError::Timeout { .. } => TransportError::Full,
            other => other,
        })
    }

    fn try_recv(&self) -> Result<Vec<u8>, TransportError> {
        unreachable!("receive on the sending endpoint of a network channel")
    }

    fn send_with(
        &self,
        len: usize,
        fill: &mut dyn FnMut(&mut [u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        if len > self.shared.max_msg {
            return Err(TransportError::TooLarge {
                bytes: len,
                max: self.shared.max_msg,
            });
        }
        let start = Instant::now();
        let deadline = start + timeout;
        {
            let mut st = self.shared.state.lock().expect("sender state");
            let mut seen_grants = st.grants;
            let mut progress_at = start;
            // An idle channel always admits one message (credits start
            // at full capacity ≥ max_msg), so this loop cannot wedge on
            // a degenerate spec.
            while st.credits < len {
                if self.closed() {
                    return Err(closed_err(timeout, start));
                }
                let now = Instant::now();
                if st.grants != seen_grants {
                    seen_grants = st.grants;
                    progress_at = now;
                }
                if now >= deadline {
                    return Err(TransportError::Timeout {
                        after: timeout,
                        idle: now.duration_since(progress_at).min(timeout),
                    });
                }
                let (guard, _) = self
                    .shared
                    .credit_back
                    .wait_timeout(st, deadline - now)
                    .expect("sender state");
                st = guard;
            }
            st.credits -= len;
            st.in_flight_msgs += 1;
        }
        let mut payload = vec![0u8; len];
        fill(&mut payload);
        let mut tx = self.shared.stream.lock().expect("sender stream");
        if write_record(&mut *tx as &mut dyn Write, &payload).is_err() {
            self.shared.closed.store(true, Ordering::Release);
            return Err(closed_err(timeout, start));
        }
        Ok(())
    }

    fn recv_with(
        &self,
        _consume: &mut dyn FnMut(&[u8]),
        _timeout: Duration,
    ) -> Result<(), TransportError> {
        unreachable!("receive on the sending endpoint of a network channel")
    }
}

// ---------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------

struct ReceiverState {
    queue: VecDeque<Vec<u8>>,
    queued_bytes: usize,
    /// Monotonic count of arrivals, for idle tracking.
    arrivals: u64,
}

/// The credit-ack write half plus the drop flag, under one lock so the
/// endpoint's `Drop` and the pump thread cannot race past each other:
/// whichever runs second sees the other's effect and performs the
/// socket shutdown exactly once.
#[derive(Default)]
struct AckSlot {
    /// Populated by the pump once the connection exists (immediately
    /// for socketpair construction, after accept when bound).
    stream: Option<UnixStream>,
    /// Set by the endpoint's `Drop`.
    dropped: bool,
}

struct ReceiverShared {
    capacity: usize,
    max_msg: usize,
    state: Mutex<ReceiverState>,
    arrived: Condvar,
    closed: AtomicBool,
    ack_tx: Mutex<AckSlot>,
}

/// The receiving endpoint of a cross-process channel.
///
/// A background thread (accepting first, when bound to a listener)
/// drains data records into a bounded-by-protocol queue; consuming a
/// message returns its bytes to the sender as a credit acknowledgement.
pub struct NetReceiver {
    shared: Arc<ReceiverShared>,
    /// Socket path to poke on Drop so a never-connected accept thread
    /// unblocks and exits.
    listener_path: Option<std::path::PathBuf>,
}

impl NetReceiver {
    /// Binds a listener at `path` and accepts the sender's connection
    /// in the background. The path must not exist yet.
    ///
    /// # Errors
    ///
    /// Any bind error.
    pub fn bind(path: &Path, spec: &ChannelSpec) -> std::io::Result<NetReceiver> {
        let listener = UnixListener::bind(path)?;
        let shared = Self::shared_for(spec);
        let reader = Arc::clone(&shared);
        std::thread::spawn(move || {
            let Ok((stream, _)) = listener.accept() else {
                reader.closed.store(true, Ordering::Release);
                reader.arrived.notify_all();
                return;
            };
            Self::pump(&reader, stream);
        });
        Ok(NetReceiver {
            shared,
            listener_path: Some(path.to_path_buf()),
        })
    }

    /// Wraps an already-connected stream (socketpair loopback, tests).
    pub fn from_stream(stream: UnixStream, spec: &ChannelSpec) -> NetReceiver {
        let shared = Self::shared_for(spec);
        let reader = Arc::clone(&shared);
        std::thread::spawn(move || Self::pump(&reader, stream));
        NetReceiver {
            shared,
            listener_path: None,
        }
    }

    fn shared_for(spec: &ChannelSpec) -> Arc<ReceiverShared> {
        Arc::new(ReceiverShared {
            capacity: effective_capacity(spec),
            max_msg: spec.max_message_bytes.max(1),
            state: Mutex::new(ReceiverState {
                queue: VecDeque::new(),
                queued_bytes: 0,
                arrivals: 0,
            }),
            arrived: Condvar::new(),
            closed: AtomicBool::new(false),
            ack_tx: Mutex::new(AckSlot::default()),
        })
    }

    /// Reads data records off `stream` into the queue until EOF/error.
    fn pump(shared: &Arc<ReceiverShared>, stream: UnixStream) {
        {
            let mut slot = shared.ack_tx.lock().expect("ack stream");
            if slot.dropped {
                // The endpoint was dropped before the connection came
                // up; tear it down here — Drop could not, it never saw
                // a stream.
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
            slot.stream = stream.try_clone().ok();
        }
        let mut rx = stream;
        while let Ok(Some(msg)) = read_record(&mut rx) {
            let mut st = shared.state.lock().expect("receiver state");
            st.queued_bytes += msg.len();
            st.arrivals += 1;
            st.queue.push_back(msg);
            drop(st);
            shared.arrived.notify_all();
        }
        shared.closed.store(true, Ordering::Release);
        shared.arrived.notify_all();
    }

    fn closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Returns `msg.len()` bytes of credit to the sender.
    fn ack(&self, freed: usize) {
        let mut slot = self.shared.ack_tx.lock().expect("ack stream");
        if let Some(tx) = slot.stream.as_mut() {
            let bytes = (freed as u32).to_le_bytes();
            if write_record(tx as &mut dyn Write, &bytes).is_err() {
                self.shared.closed.store(true, Ordering::Release);
            }
        }
    }
}

impl Drop for NetReceiver {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        let connected = {
            let mut slot = self.shared.ack_tx.lock().expect("ack stream");
            slot.dropped = true;
            if let Some(tx) = slot.stream.as_ref() {
                let _ = tx.shutdown(std::net::Shutdown::Both);
                true
            } else {
                false
            }
        };
        // No connection yet: either the pump will see `dropped` and
        // shut the socket itself, or the accept is still parked — poke
        // it with a throwaway connection so the thread exits.
        if !connected {
            if let Some(path) = &self.listener_path {
                let _ = UnixStream::connect(path);
            }
        }
        if let Some(path) = &self.listener_path {
            let _ = std::fs::remove_file(path);
        }
        self.shared.arrived.notify_all();
    }
}

impl Transport for NetReceiver {
    fn capacity_bytes(&self) -> usize {
        self.shared.capacity
    }

    fn max_message_bytes(&self) -> usize {
        self.shared.max_msg
    }

    fn len_bytes(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("receiver state")
            .queued_bytes
    }

    fn occupancy(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("receiver state")
            .queue
            .len()
    }

    fn snapshot(&self) -> (usize, usize) {
        let st = self.shared.state.lock().expect("receiver state");
        (st.queued_bytes, st.queue.len())
    }

    fn try_send(&self, _data: &[u8]) -> Result<(), TransportError> {
        unreachable!("send on the receiving endpoint of a network channel")
    }

    fn try_recv(&self) -> Result<Vec<u8>, TransportError> {
        let msg = {
            let mut st = self.shared.state.lock().expect("receiver state");
            match st.queue.pop_front() {
                Some(m) => {
                    st.queued_bytes -= m.len();
                    m
                }
                None => return Err(TransportError::Empty),
            }
        };
        self.ack(msg.len());
        Ok(msg)
    }

    fn send_with(
        &self,
        _len: usize,
        _fill: &mut dyn FnMut(&mut [u8]),
        _timeout: Duration,
    ) -> Result<(), TransportError> {
        unreachable!("send on the receiving endpoint of a network channel")
    }

    fn recv_with(
        &self,
        consume: &mut dyn FnMut(&[u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        let start = Instant::now();
        let deadline = start + timeout;
        let msg = {
            let mut st = self.shared.state.lock().expect("receiver state");
            let mut seen_arrivals = st.arrivals;
            let mut progress_at = start;
            loop {
                if let Some(m) = st.queue.pop_front() {
                    st.queued_bytes -= m.len();
                    break m;
                }
                if self.closed() {
                    return Err(closed_err(timeout, start));
                }
                let now = Instant::now();
                if st.arrivals != seen_arrivals {
                    seen_arrivals = st.arrivals;
                    progress_at = now;
                }
                if now >= deadline {
                    return Err(TransportError::Timeout {
                        after: timeout,
                        idle: now.duration_since(progress_at).min(timeout),
                    });
                }
                let (guard, _) = self
                    .shared
                    .arrived
                    .wait_timeout(st, deadline - now)
                    .expect("receiver state");
                st = guard;
            }
        };
        consume(&msg);
        self.ack(msg.len());
        Ok(())
    }
}

/// A connected loopback channel over `socketpair(2)` — both endpoints
/// in one process, the full wire protocol in between. The workhorse of
/// the transport tests and the `fir_3pe_net_loopback` benchmark.
pub fn loopback(spec: &ChannelSpec) -> std::io::Result<(NetSender, NetReceiver)> {
    let (a, b) = UnixStream::pair()?;
    Ok((
        NetSender::from_stream(a, spec),
        NetReceiver::from_stream(b, spec),
    ))
}

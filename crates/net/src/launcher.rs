//! Launcher: spawns node workers, drives the control handshake, and
//! merges the per-node traces.
//!
//! The control protocol runs over one Unix socket per child
//! (`<dir>/control.sock`, parent listening):
//!
//! ```text
//! C→P  Hello{node}            child identifies itself
//! P→C  Manifest{...}          partition + channel specs; the child
//!                             cross-checks its own build byte-for-byte
//! C→P  Ready                  all of the child's listeners are bound
//! P→C  Proceed                every node's listeners are bound — safe
//!                             to connect (the barrier in
//!                             [`crate::node::build_endpoints`])
//! P→C  Ping / C→P Pong{now}   ×N clock-sync rounds (min-RTT midpoint)
//! P→C  Start                  begin executing programs
//! C→P  Done{artifact, trace}  results + native-format trace capture
//! P→C  Bye                    child may exit
//! ```
//!
//! Fault path: a child that dies or closes its control socket before
//! `Done` aborts the attempt; the launcher kills the remaining
//! children and — mirroring the supervised runner's restart budget —
//! retries the whole run in a fresh attempt directory up to
//! [`LaunchSpec::max_restarts`] times.

use std::io::Read;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use spi_trace::{Trace, TraceMeta};

use crate::error::NetError;
use crate::merge::{merge_node_traces, NodeTrace};
use crate::node::Deployment;
use crate::wire::{put_bytes, put_str, put_u32, put_u64, read_record, write_record, WireReader};

/// File name of the control socket inside a run directory.
pub const CONTROL_SOCKET: &str = "control.sock";

/// Clock-sync rounds per node; the minimum-RTT sample wins.
pub const CLOCK_SYNC_ROUNDS: usize = 7;

/// Per-channel entry of the [`CtlMsg::Manifest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChanDecl {
    /// Logical capacity in bytes (pre-framing).
    pub capacity_bytes: u64,
    /// Logical per-message bound in bytes (pre-framing).
    pub max_message_bytes: u64,
    /// Sending processor id.
    pub sender: u32,
    /// Receiving processor id.
    pub receiver: u32,
}

/// The launcher's authoritative view of the deployment, sent to every
/// worker for cross-checking against its locally derived one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Number of node processes.
    pub nodes: u32,
    /// `node_of[proc]` — which node hosts each processor.
    pub node_of: Vec<u32>,
    /// Per-channel declarations, indexed by channel id.
    pub channels: Vec<ChanDecl>,
    /// Whether the run is supervised (workers must frame-inflate their
    /// endpoint specs to match).
    pub supervised: bool,
}

/// Builds the manifest describing `d` for `nodes` node processes.
pub fn manifest_of(d: &Deployment, supervised: bool) -> Result<Manifest, NetError> {
    let mut node_of = Vec::with_capacity(d.partition.processor_count());
    for p in 0..d.partition.processor_count() {
        node_of.push(d.partition.node_of(spi_sched::ProcId(p))? as u32);
    }
    let channels = d
        .roles
        .iter()
        .zip(&d.specs)
        .map(|(role, spec)| ChanDecl {
            capacity_bytes: spec.capacity_bytes as u64,
            max_message_bytes: spec.max_message_bytes as u64,
            sender: role.sender.0 as u32,
            receiver: role.receiver.0 as u32,
        })
        .collect();
    Ok(Manifest {
        nodes: d.partition.node_count() as u32,
        node_of,
        channels,
        supervised,
    })
}

/// Cross-checks a worker's locally derived deployment against the
/// launcher's manifest. Any disagreement means the supposedly
/// deterministic system build diverged between processes — running
/// would exchange garbage, so this is fatal.
pub fn verify_manifest(d: &Deployment, m: &Manifest, supervised: bool) -> Result<(), NetError> {
    let local = manifest_of(d, supervised)?;
    if local == *m {
        return Ok(());
    }
    let what = if local.nodes != m.nodes {
        format!("node count: local {} vs manifest {}", local.nodes, m.nodes)
    } else if local.node_of != m.node_of {
        format!(
            "processor placement: local {:?} vs manifest {:?}",
            local.node_of, m.node_of
        )
    } else if local.supervised != m.supervised {
        format!(
            "supervision flag: local {} vs manifest {}",
            local.supervised, m.supervised
        )
    } else {
        let ch = local
            .channels
            .iter()
            .zip(&m.channels)
            .position(|(a, b)| a != b)
            .map(|i| i.to_string())
            .unwrap_or_else(|| format!("count {} vs {}", local.channels.len(), m.channels.len()));
        format!("channel {ch}")
    };
    Err(NetError::ManifestMismatch(what))
}

/// A control-protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlMsg {
    /// Child identifies itself after connecting.
    Hello {
        /// The child's node index.
        node: u32,
    },
    /// Launcher's deployment description (cross-checked by the child).
    Manifest(Manifest),
    /// Child has bound all its listeners.
    Ready,
    /// All nodes have bound; senders may connect.
    Proceed,
    /// Clock-sync probe.
    Ping,
    /// Clock-sync reply carrying the child tracer's current timestamp.
    Pong {
        /// `RingTracer::now()` at the moment the ping was handled.
        now_ns: u64,
    },
    /// Begin executing programs.
    Start,
    /// Child finished (successfully or not).
    Done(NodeDone),
    /// Child may exit.
    Bye,
}

/// Payload of [`CtlMsg::Done`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeDone {
    /// Whether the node's run succeeded.
    pub ok: bool,
    /// Failure description when `ok` is false.
    pub error: String,
    /// Application artifact bytes (empty for nodes that host no sink).
    pub artifact: Vec<u8>,
    /// The node's trace capture in native format (empty when untraced).
    pub trace_text: String,
    /// Global processor ids this node ran, ascending (the local-PE map
    /// for the merge).
    pub procs: Vec<u32>,
}

const TAG_HELLO: u32 = 1;
const TAG_MANIFEST: u32 = 2;
const TAG_READY: u32 = 3;
const TAG_PROCEED: u32 = 4;
const TAG_PING: u32 = 5;
const TAG_PONG: u32 = 6;
const TAG_START: u32 = 7;
const TAG_DONE: u32 = 8;
const TAG_BYE: u32 = 9;

impl CtlMsg {
    /// Encodes the message body (record framing is added on the wire).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            CtlMsg::Hello { node } => {
                put_u32(&mut out, TAG_HELLO);
                put_u32(&mut out, *node);
            }
            CtlMsg::Manifest(m) => {
                put_u32(&mut out, TAG_MANIFEST);
                put_u32(&mut out, m.nodes);
                put_u32(&mut out, m.node_of.len() as u32);
                for n in &m.node_of {
                    put_u32(&mut out, *n);
                }
                put_u32(&mut out, m.channels.len() as u32);
                for c in &m.channels {
                    put_u64(&mut out, c.capacity_bytes);
                    put_u64(&mut out, c.max_message_bytes);
                    put_u32(&mut out, c.sender);
                    put_u32(&mut out, c.receiver);
                }
                put_u32(&mut out, u32::from(m.supervised));
            }
            CtlMsg::Ready => put_u32(&mut out, TAG_READY),
            CtlMsg::Proceed => put_u32(&mut out, TAG_PROCEED),
            CtlMsg::Ping => put_u32(&mut out, TAG_PING),
            CtlMsg::Pong { now_ns } => {
                put_u32(&mut out, TAG_PONG);
                put_u64(&mut out, *now_ns);
            }
            CtlMsg::Start => put_u32(&mut out, TAG_START),
            CtlMsg::Done(d) => {
                put_u32(&mut out, TAG_DONE);
                put_u32(&mut out, u32::from(d.ok));
                put_str(&mut out, &d.error);
                put_bytes(&mut out, &d.artifact);
                put_str(&mut out, &d.trace_text);
                put_u32(&mut out, d.procs.len() as u32);
                for p in &d.procs {
                    put_u32(&mut out, *p);
                }
            }
            CtlMsg::Bye => put_u32(&mut out, TAG_BYE),
        }
        out
    }

    /// Decodes a message body.
    ///
    /// # Errors
    ///
    /// [`crate::wire::WireDecodeError`] on truncation or an unknown tag.
    pub fn decode(buf: &[u8]) -> Result<CtlMsg, crate::wire::WireDecodeError> {
        let mut r = WireReader::new(buf);
        let tag = r.u32("tag")?;
        let msg = match tag {
            TAG_HELLO => CtlMsg::Hello {
                node: r.u32("hello.node")?,
            },
            TAG_MANIFEST => {
                let nodes = r.u32("manifest.nodes")?;
                let n = r.u32("manifest.node_of.len")? as usize;
                let mut node_of = Vec::with_capacity(n);
                for _ in 0..n {
                    node_of.push(r.u32("manifest.node_of[]")?);
                }
                let n = r.u32("manifest.channels.len")? as usize;
                let mut channels = Vec::with_capacity(n);
                for _ in 0..n {
                    channels.push(ChanDecl {
                        capacity_bytes: r.u64("manifest.ch.capacity")?,
                        max_message_bytes: r.u64("manifest.ch.max_msg")?,
                        sender: r.u32("manifest.ch.sender")?,
                        receiver: r.u32("manifest.ch.receiver")?,
                    });
                }
                let supervised = r.u32("manifest.supervised")? != 0;
                CtlMsg::Manifest(Manifest {
                    nodes,
                    node_of,
                    channels,
                    supervised,
                })
            }
            TAG_READY => CtlMsg::Ready,
            TAG_PROCEED => CtlMsg::Proceed,
            TAG_PING => CtlMsg::Ping,
            TAG_PONG => CtlMsg::Pong {
                now_ns: r.u64("pong.now_ns")?,
            },
            TAG_START => CtlMsg::Start,
            TAG_DONE => {
                let ok = r.u32("done.ok")? != 0;
                let error = r.str("done.error")?.to_string();
                let artifact = r.bytes("done.artifact")?.to_vec();
                let trace_text = r.str("done.trace")?.to_string();
                let n = r.u32("done.procs.len")? as usize;
                let mut procs = Vec::with_capacity(n);
                for _ in 0..n {
                    procs.push(r.u32("done.procs[]")?);
                }
                CtlMsg::Done(NodeDone {
                    ok,
                    error,
                    artifact,
                    trace_text,
                    procs,
                })
            }
            TAG_BYE => CtlMsg::Bye,
            other => {
                return Err(crate::wire::WireDecodeError {
                    at: 0,
                    what: format!("unknown control tag {other}"),
                })
            }
        };
        Ok(msg)
    }
}

/// Sends one control message over `stream`.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn send_ctl(stream: &mut UnixStream, msg: &CtlMsg) -> Result<(), NetError> {
    write_record(stream, &msg.encode())?;
    Ok(())
}

/// Receives one control message, blocking without deadline (worker
/// side: a dead launcher shows up as EOF).
///
/// # Errors
///
/// [`NetError::Protocol`] on EOF, I/O errors, or decode failures.
pub fn recv_ctl(stream: &mut UnixStream) -> Result<CtlMsg, NetError> {
    match read_record(stream)? {
        Some(body) => Ok(CtlMsg::decode(&body)?),
        None => Err(NetError::Protocol("control socket closed".into())),
    }
}

/// A `Read` adapter that turns per-syscall read timeouts into bounded
/// retries, so a multi-read record decode survives slow children while
/// still honouring an overall deadline and noticing child death between
/// retries. Partial reads are never abandoned: the retry happens at the
/// syscall level, inside one `read_record` call.
struct PatientReader<'a> {
    stream: &'a UnixStream,
    deadline: Instant,
    liveness: &'a mut dyn FnMut() -> Option<String>,
}

impl Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match (&mut &*self.stream).read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if let Some(reason) = (self.liveness)() {
                        return Err(std::io::Error::other(reason));
                    }
                    if Instant::now() >= self.deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "control deadline elapsed",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

/// Receives one control message with an overall deadline, invoking
/// `liveness` between poll intervals (return `Some(reason)` to abort —
/// e.g. when the child process has exited).
fn recv_ctl_deadline(
    stream: &UnixStream,
    deadline: Instant,
    liveness: &mut dyn FnMut() -> Option<String>,
) -> Result<CtlMsg, NetError> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = PatientReader {
        stream,
        deadline,
        liveness,
    };
    match read_record(&mut reader)? {
        Some(body) => Ok(CtlMsg::decode(&body)?),
        None => Err(NetError::Protocol("control socket closed".into())),
    }
}

/// Configuration for a distributed launch.
pub struct LaunchSpec {
    /// Path of the worker executable (usually
    /// `std::env::current_exe()` when launcher and worker share a
    /// binary).
    pub worker_exe: PathBuf,
    /// Arguments identifying the application and run shape; the
    /// launcher appends `--node <i> --dir <attempt-dir>` per child.
    pub worker_args: Vec<String>,
    /// Number of node processes.
    pub nodes: usize,
    /// Whether workers run supervised (manifest flag; workers size
    /// their endpoints with frame headers to match).
    pub supervised: bool,
    /// Whole-run restart budget on child failure, mirroring the
    /// supervised runner's restart policy at process granularity.
    pub max_restarts: u32,
    /// Overall deadline for each attempt's execute phase.
    pub run_deadline: Duration,
}

/// Result of a successful distributed launch.
pub struct LaunchOutcome {
    /// Per-node artifacts, indexed by node (empty vec when a node
    /// hosts no sink).
    pub artifacts: Vec<Vec<u8>>,
    /// The merged, clock-aligned distributed trace.
    pub trace: Trace,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Per-node clock offsets applied during the merge, in ns.
    pub offsets_ns: Vec<i64>,
}

/// Kills and reaps every child on drop, so no attempt leaks processes.
struct Reaper(Vec<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

static ATTEMPT_SALT: AtomicU64 = AtomicU64::new(0);

/// Spawns `spec.nodes` workers, drives the handshake, and merges the
/// per-node traces under `meta` (the launcher's authoritative metadata
/// from its own system build).
///
/// # Errors
///
/// The last attempt's failure once the restart budget is exhausted.
pub fn launch(
    spec: &LaunchSpec,
    deployment: &Deployment,
    meta: TraceMeta,
) -> Result<LaunchOutcome, NetError> {
    let manifest = manifest_of(deployment, spec.supervised)?;
    // Unix socket paths are length-limited (~108 bytes); keep run dirs
    // under the system temp dir with short names.
    let base = std::env::temp_dir().join(format!(
        "spi-net-{}-{}",
        std::process::id(),
        ATTEMPT_SALT.fetch_add(1, Ordering::Relaxed)
    ));
    let mut last_err = None;
    for attempt in 0..=spec.max_restarts {
        let dir = base.join(format!("a{attempt}"));
        match try_launch(spec, &manifest, &dir, meta.clone()) {
            Ok(mut outcome) => {
                outcome.attempts = attempt + 1;
                let _ = std::fs::remove_dir_all(&base);
                return Ok(outcome);
            }
            Err(e) => {
                eprintln!("spi-net: attempt {attempt} failed: {e}");
                last_err = Some(e);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    Err(last_err.expect("at least one attempt ran"))
}

fn try_launch(
    spec: &LaunchSpec,
    manifest: &Manifest,
    dir: &std::path::Path,
    meta: TraceMeta,
) -> Result<LaunchOutcome, NetError> {
    std::fs::create_dir_all(dir)?;
    let listener = UnixListener::bind(dir.join(CONTROL_SOCKET))?;
    listener.set_nonblocking(true)?;

    let epoch = Instant::now();
    let mut children = Vec::with_capacity(spec.nodes);
    for node in 0..spec.nodes {
        let child = Command::new(&spec.worker_exe)
            .args(&spec.worker_args)
            .arg("--node")
            .arg(node.to_string())
            .arg("--dir")
            .arg(dir)
            .stdin(Stdio::null())
            .spawn()?;
        children.push(child);
    }
    let mut reaper = Reaper(children);

    let handshake_deadline = Instant::now() + Duration::from_secs(30);
    // Accept one control connection per child and identify it by its
    // Hello. Children may connect in any order.
    let mut conns: Vec<Option<UnixStream>> = (0..spec.nodes).map(|_| None).collect();
    let mut accepted = 0;
    while accepted < spec.nodes {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let node = {
                    let mut live = liveness_probe(&mut reaper.0);
                    match recv_ctl_deadline(&stream, handshake_deadline, &mut live)? {
                        CtlMsg::Hello { node } => node as usize,
                        other => {
                            return Err(NetError::Protocol(format!(
                                "expected Hello, got {other:?}"
                            )))
                        }
                    }
                };
                if node >= spec.nodes || conns[node].is_some() {
                    return Err(NetError::Protocol(format!("bad Hello node {node}")));
                }
                conns[node] = Some(stream);
                accepted += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if let Some(reason) = liveness_probe(&mut reaper.0)() {
                    return Err(NetError::Protocol(reason));
                }
                if Instant::now() >= handshake_deadline {
                    return Err(NetError::Protocol("handshake deadline elapsed".into()));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e.into()),
        }
    }
    let mut conns: Vec<UnixStream> = conns.into_iter().map(Option::unwrap).collect();

    // Manifest out, Ready back (the bind phase), then release the
    // connect phase on every node at once.
    for conn in &mut conns {
        send_ctl(conn, &CtlMsg::Manifest(manifest.clone()))?;
    }
    for (node, conn) in conns.iter_mut().enumerate() {
        let mut live = liveness_probe(&mut reaper.0);
        match recv_ctl_deadline(conn, handshake_deadline, &mut live)? {
            CtlMsg::Ready => {}
            other => {
                return Err(NetError::Protocol(format!(
                    "node {node}: expected Ready, got {other:?}"
                )))
            }
        }
    }
    for conn in &mut conns {
        send_ctl(conn, &CtlMsg::Proceed)?;
    }

    // Clock sync: min-RTT midpoint against each child's tracer clock.
    let mut offsets_ns = vec![0i64; spec.nodes];
    for (node, conn) in conns.iter_mut().enumerate() {
        let mut best_rtt = u64::MAX;
        for _ in 0..CLOCK_SYNC_ROUNDS {
            let t0 = epoch.elapsed().as_nanos() as u64;
            send_ctl(conn, &CtlMsg::Ping)?;
            let mut live = liveness_probe(&mut reaper.0);
            let now_ns = match recv_ctl_deadline(conn, handshake_deadline, &mut live)? {
                CtlMsg::Pong { now_ns } => now_ns,
                other => {
                    return Err(NetError::Protocol(format!(
                        "node {node}: expected Pong, got {other:?}"
                    )))
                }
            };
            let t1 = epoch.elapsed().as_nanos() as u64;
            let rtt = t1.saturating_sub(t0);
            if rtt < best_rtt {
                best_rtt = rtt;
                let midpoint = t0 + rtt / 2;
                offsets_ns[node] = midpoint as i64 - now_ns as i64;
            }
        }
    }

    for conn in &mut conns {
        send_ctl(conn, &CtlMsg::Start)?;
    }

    // Execute phase: collect Done from every node.
    let run_deadline = Instant::now() + spec.run_deadline;
    let mut dones: Vec<Option<NodeDone>> = (0..spec.nodes).map(|_| None).collect();
    for (node, conn) in conns.iter_mut().enumerate() {
        let mut live = liveness_probe(&mut reaper.0);
        match recv_ctl_deadline(conn, run_deadline, &mut live)? {
            CtlMsg::Done(d) => dones[node] = Some(d),
            other => {
                return Err(NetError::Protocol(format!(
                    "node {node}: expected Done, got {other:?}"
                )))
            }
        }
    }
    for conn in &mut conns {
        let _ = send_ctl(conn, &CtlMsg::Bye);
    }
    for child in &mut reaper.0 {
        let _ = child.wait();
    }
    reaper.0.clear();

    let mut artifacts = Vec::with_capacity(spec.nodes);
    let mut node_traces = Vec::with_capacity(spec.nodes);
    for (node, done) in dones.into_iter().enumerate() {
        let done = done.expect("every node reported Done");
        if !done.ok {
            return Err(NetError::NodeFailed {
                node,
                error: done.error,
            });
        }
        artifacts.push(done.artifact);
        if !done.trace_text.is_empty() {
            node_traces.push(NodeTrace {
                trace: Trace::from_native(&done.trace_text)?,
                offset_ns: offsets_ns[node],
                procs: done.procs.iter().map(|p| *p as usize).collect(),
            });
        }
    }
    let trace = merge_node_traces(meta, &node_traces);
    Ok(LaunchOutcome {
        artifacts,
        trace,
        attempts: 1,
        offsets_ns,
    })
}

/// Builds a liveness closure reporting the first exited child.
fn liveness_probe(children: &mut [Child]) -> impl FnMut() -> Option<String> + '_ {
    move || {
        for (i, child) in children.iter_mut().enumerate() {
            if let Ok(Some(status)) = child.try_wait() {
                return Some(format!("node {i} exited early: {status}"));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_messages_round_trip() {
        let msgs = vec![
            CtlMsg::Hello { node: 3 },
            CtlMsg::Manifest(Manifest {
                nodes: 2,
                node_of: vec![0, 0, 1],
                channels: vec![ChanDecl {
                    capacity_bytes: 4096,
                    max_message_bytes: 1040,
                    sender: 0,
                    receiver: 2,
                }],
                supervised: true,
            }),
            CtlMsg::Ready,
            CtlMsg::Proceed,
            CtlMsg::Ping,
            CtlMsg::Pong { now_ns: 123456789 },
            CtlMsg::Start,
            CtlMsg::Done(NodeDone {
                ok: true,
                error: String::new(),
                artifact: vec![1, 2, 3],
                trace_text: "# spi-trace v1\n".into(),
                procs: vec![0, 1],
            }),
            CtlMsg::Bye,
        ];
        for msg in msgs {
            let decoded = CtlMsg::decode(&msg.encode()).expect("round trip");
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn unknown_tag_is_a_decode_error() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 999);
        assert!(CtlMsg::decode(&buf).is_err());
    }
}

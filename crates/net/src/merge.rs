//! Merging per-node trace captures into one checkable distributed trace.
//!
//! Each node process owns a `RingTracer` whose clock is *its own*
//! monotonic epoch, and numbers its PEs locally (0..k for the k
//! processors it hosts). Merging therefore has three jobs:
//!
//! 1. **Clock alignment** — shift every node's timestamps by the
//!    launcher's handshake-measured offset (midpoint of a min-RTT ping
//!    against the node's tracer clock), mapping all events onto the
//!    launcher's time base.
//! 2. **Identity restoration** — remap local PE ids back to global
//!    processor ids, and re-intern each node's label table into one
//!    shared table.
//! 3. **Causally consistent linearization** — probe timestamps lag the
//!    operations they describe (a `Send` probe is stamped after the
//!    push, so a racing receiver — descheduled senders make this
//!    common — can stamp its `Recv` earlier), and offset estimates add
//!    up to half the ping RTT on top. Raw timestamp order is therefore
//!    not causal order. The merge emits events under the same
//!    happens-before constraints the checkers verify: the k-th receive
//!    on a channel only after its k-th send (`SPI100`), and — on a
//!    `B`-token bounded channel — send `n+B` only after receive `n`
//!    (`SPI103`, the eq. (2) reuse window). Within those constraints
//!    events are taken in adjusted-timestamp order, and output
//!    timestamps are made monotonically nondecreasing so the emitted
//!    order and the timestamps agree.
//!
//! The merge works on **per-PE streams**, not whole-node streams: a PE
//! is a single thread, so its probe order equals its operation order —
//! that is the only interleaving a capture actually certifies. A
//! node-level interleaving is merely timestamp-sorted and can already
//! order a receive before its send across two local PEs.
//!
//! The gated merge always makes progress on well-formed inputs: take
//! the blocked head whose *operation* happened earliest. A blocked
//! receive's matching send operated strictly earlier on some other PE,
//! so that PE's head operated earlier still — and a blocked send's
//! window-opening receive likewise — contradicting minimality unless
//! some head is enabled. A defensive fallback emits the earliest head
//! anyway if gating ever wedges on a malformed trace (e.g. one with
//! dropped events), so the merge terminates on any input; such traces
//! already carry a `dropped` count that flags every downstream verdict
//! as partial.

use std::collections::HashMap;

use spi_platform::{PeId, ProbeEvent, ProbeKind};
use spi_trace::{Trace, TraceMeta};

/// One node's contribution to a distributed capture.
pub struct NodeTrace {
    /// The node's local capture (`RingTracer::finish` with a bare
    /// metadata block — labels and drop count filled, bounds absent).
    pub trace: Trace,
    /// Nanoseconds to add to this node's timestamps to land on the
    /// launcher's time base (from the handshake clock sync).
    pub offset_ns: i64,
    /// `procs[local_pe]` is the global processor id. Sorted ascending
    /// by construction (nodes run their processors in id order).
    pub procs: Vec<usize>,
}

/// Merges per-node captures into one trace under `meta` — the
/// authoritative metadata from the launcher's own system build (edge
/// bounds, iterations, supervision budgets). Label tables are unioned,
/// per-node drop counts accumulate into `meta.dropped`.
pub fn merge_node_traces(mut meta: TraceMeta, nodes: &[NodeTrace]) -> Trace {
    // ---- Union the label tables, building per-node remap vectors. ----
    let mut labels: Vec<String> = Vec::new();
    let mut label_maps: Vec<Vec<u32>> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let map = node
            .trace
            .meta
            .labels
            .iter()
            .map(|l| match labels.iter().position(|k| k == l) {
                Some(i) => i as u32,
                None => {
                    labels.push(l.clone());
                    (labels.len() - 1) as u32
                }
            })
            .collect();
        label_maps.push(map);
        meta.dropped += node.trace.meta.dropped;
    }
    meta.labels = labels;

    // ---- Adjust timestamps and restore global identities. -----------
    // One stream per (node, PE): per-PE probe order is operation order
    // (a PE is one thread); node-level interleavings are only ts-sorted
    // and carry no causal guarantee. `RingTracer::finish` merges per-PE
    // rings stably, so filtering by PE recovers each ring's order.
    // i128 arithmetic: a u64 nano timestamp plus an i64 offset cannot
    // overflow, and the global shift below restores u64 range.
    let mut streams: Vec<Vec<(i128, ProbeEvent)>> = Vec::new();
    let mut min_ts: i128 = 0;
    for (node, label_map) in nodes.iter().zip(&label_maps) {
        let mut per_pe: HashMap<usize, Vec<(i128, ProbeEvent)>> = HashMap::new();
        for ev in &node.trace.events {
            let mut ev = *ev;
            ev.pe = PeId(node.procs.get(ev.pe.0).copied().unwrap_or(ev.pe.0));
            match &mut ev.kind {
                ProbeKind::FiringBegin { label } | ProbeKind::FiringEnd { label } => {
                    *label = label_map.get(*label as usize).copied().unwrap_or(*label);
                }
                _ => {}
            }
            let adj = i128::from(ev.ts) + i128::from(node.offset_ns);
            min_ts = min_ts.min(adj);
            per_pe.entry(ev.pe.0).or_default().push((adj, ev));
        }
        let mut pes: Vec<usize> = per_pe.keys().copied().collect();
        pes.sort_unstable();
        for pe in pes {
            streams.push(per_pe.remove(&pe).expect("pe key present"));
        }
    }

    // ---- Gated k-way merge. ------------------------------------------
    let bound_of: HashMap<usize, u64> = meta
        .edges
        .iter()
        .filter_map(|b| b.bound_tokens.map(|t| (b.channel.0, t)))
        .collect();
    let mut heads = vec![0usize; streams.len()];
    let mut sent: HashMap<usize, u64> = HashMap::new();
    let mut recvd: HashMap<usize, u64> = HashMap::new();
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut events: Vec<ProbeEvent> = Vec::with_capacity(total);
    let mut last_ts: u64 = 0;

    let enabled =
        |ev: &ProbeEvent, sent: &HashMap<usize, u64>, recvd: &HashMap<usize, u64>| match ev.kind {
            ProbeKind::Recv { channel, .. } => {
                sent.get(&channel.0).copied().unwrap_or(0)
                    > recvd.get(&channel.0).copied().unwrap_or(0)
            }
            ProbeKind::Send { channel, .. } => match bound_of.get(&channel.0) {
                Some(&b) => {
                    sent.get(&channel.0).copied().unwrap_or(0)
                        < b + recvd.get(&channel.0).copied().unwrap_or(0)
                }
                None => true,
            },
            _ => true,
        };

    while events.len() < total {
        let mut pick: Option<usize> = None;
        let mut pick_ts = i128::MAX;
        let mut fallback: Option<usize> = None;
        let mut fallback_ts = i128::MAX;
        for (i, stream) in streams.iter().enumerate() {
            let Some(&(adj, ref ev)) = stream.get(heads[i]) else {
                continue;
            };
            if adj < fallback_ts {
                fallback_ts = adj;
                fallback = Some(i);
            }
            if adj < pick_ts && enabled(ev, &sent, &recvd) {
                pick_ts = adj;
                pick = Some(i);
            }
        }
        // Well-formed inputs always have an enabled head (see module
        // docs); the fallback keeps malformed ones terminating.
        let i = pick.or(fallback).expect("a non-empty stream remains");
        let (adj, mut ev) = streams[i][heads[i]];
        heads[i] += 1;
        match ev.kind {
            ProbeKind::Send { channel, .. } => *sent.entry(channel.0).or_insert(0) += 1,
            ProbeKind::Recv { channel, .. } => *recvd.entry(channel.0).or_insert(0) += 1,
            _ => {}
        }
        // Shift onto a shared non-negative axis, then clamp monotonic
        // so the emitted order and the timestamps tell the same story.
        let shifted = (adj - min_ts) as u64;
        ev.ts = shifted.max(last_ts);
        last_ts = ev.ts;
        events.push(ev);
    }

    Trace { meta, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_dataflow::EdgeId;
    use spi_platform::ChannelId;
    use spi_trace::{ClockKind, EdgeBound};

    fn send(ts: u64, pe: usize, ch: usize) -> ProbeEvent {
        ProbeEvent {
            ts,
            pe: PeId(pe),
            kind: ProbeKind::Send {
                channel: ChannelId(ch),
                bytes: 8,
                digest: 1,
                occ_bytes: 8,
                occ_msgs: 1,
            },
        }
    }

    fn recv(ts: u64, pe: usize, ch: usize) -> ProbeEvent {
        ProbeEvent {
            ts,
            pe: PeId(pe),
            kind: ProbeKind::Recv {
                channel: ChannelId(ch),
                bytes: 8,
                digest: 1,
                occ_bytes: 0,
                occ_msgs: 0,
            },
        }
    }

    fn node(events: Vec<ProbeEvent>, offset_ns: i64, procs: Vec<usize>) -> NodeTrace {
        NodeTrace {
            trace: Trace {
                meta: TraceMeta::new(ClockKind::Nanos),
                events,
            },
            offset_ns,
            procs,
        }
    }

    #[test]
    fn clock_skew_cannot_reorder_recv_before_send() {
        // The receiving node's clock runs 1 µs "early": raw merge order
        // would put its receives before the matching sends. The gate
        // must hold each receive back.
        let sender = node(vec![send(1000, 0, 0), send(2000, 0, 0)], 0, vec![0]);
        let receiver = node(vec![recv(100, 0, 0), recv(1100, 0, 0)], 0, vec![1]);
        let merged = merge_node_traces(TraceMeta::new(ClockKind::Nanos), &[sender, receiver]);

        let order: Vec<&str> = merged
            .events
            .iter()
            .map(|e| match e.kind {
                ProbeKind::Send { .. } => "S",
                ProbeKind::Recv { .. } => "R",
                _ => "?",
            })
            .collect();
        assert_eq!(order, vec!["S", "R", "S", "R"]);
        // Timestamps agree with the emitted order.
        for w in merged.events.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn slot_reuse_window_is_respected_in_the_linearization() {
        // One-token channel: send #1 must not be emitted before recv #0
        // even though the sender's adjusted clock puts it earlier.
        let mut meta = TraceMeta::new(ClockKind::Nanos);
        meta.edges.push(EdgeBound {
            edge: EdgeId(0),
            channel: ChannelId(0),
            capacity_bytes: 8,
            max_message_bytes: 8,
            bound_tokens: Some(1),
        });
        let sender = node(vec![send(0, 0, 0), send(10, 0, 0)], 0, vec![0]);
        let receiver = node(vec![recv(5000, 0, 0), recv(6000, 0, 0)], 0, vec![1]);
        let merged = merge_node_traces(meta, &[sender, receiver]);

        let kinds: Vec<&str> = merged
            .events
            .iter()
            .map(|e| match e.kind {
                ProbeKind::Send { .. } => "S",
                ProbeKind::Recv { .. } => "R",
                _ => "?",
            })
            .collect();
        assert_eq!(kinds, vec!["S", "R", "S", "R"]);
    }

    #[test]
    fn probe_lag_within_one_node_is_repaired() {
        // Two PEs on one node: the sender was descheduled between its
        // push and its probe, so the receiver's Recv probe carries the
        // earlier timestamp. A whole-node ts order would emit R before
        // S; the per-PE gated merge must restore S-before-R.
        let n = node(
            vec![
                // RingTracer::finish interleaves per-PE rings by ts:
                recv(1000, 1, 0), // PE1 (receiver) — probe stamped early
                send(1024, 0, 0), // PE0 (sender) — probe lagged the push
            ],
            0,
            vec![0, 1],
        );
        let merged = merge_node_traces(TraceMeta::new(ClockKind::Nanos), &[n]);
        let kinds: Vec<&str> = merged
            .events
            .iter()
            .map(|e| match e.kind {
                ProbeKind::Send { .. } => "S",
                ProbeKind::Recv { .. } => "R",
                _ => "?",
            })
            .collect();
        assert_eq!(kinds, vec!["S", "R"]);
    }

    #[test]
    fn identities_and_labels_are_remapped() {
        let mut a = node(
            vec![ProbeEvent {
                ts: 5,
                pe: PeId(0),
                kind: ProbeKind::FiringBegin { label: 0 },
            }],
            0,
            vec![2],
        );
        a.trace.meta.labels = vec!["fire:high#0".into()];
        a.trace.meta.dropped = 3;
        let mut b = node(
            vec![ProbeEvent {
                ts: 7,
                pe: PeId(0),
                kind: ProbeKind::FiringBegin { label: 0 },
            }],
            0,
            vec![0],
        );
        b.trace.meta.labels = vec!["fire:src#0".into()];

        let merged = merge_node_traces(TraceMeta::new(ClockKind::Nanos), &[a, b]);
        assert_eq!(merged.meta.dropped, 3);
        assert_eq!(merged.meta.labels.len(), 2);
        let by_pe: HashMap<usize, u32> = merged
            .events
            .iter()
            .map(|e| match e.kind {
                ProbeKind::FiringBegin { label } => (e.pe.0, label),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(merged.meta.label(by_pe[&2]), "fire:high#0");
        assert_eq!(merged.meta.label(by_pe[&0]), "fire:src#0");
    }

    #[test]
    fn negative_offsets_shift_onto_a_shared_nonnegative_axis() {
        let a = node(vec![send(0, 0, 0)], -5_000, vec![0]);
        let b = node(vec![recv(9_000, 0, 0)], -8_000, vec![1]);
        let merged = merge_node_traces(TraceMeta::new(ClockKind::Nanos), &[a, b]);
        assert_eq!(merged.events[0].ts, 0);
        assert_eq!(merged.events[1].ts, 6_000);
    }
}

//! Socket transport semantics: the `NetSender`/`NetReceiver` pair must
//! behave like the in-memory transports — eq. (2)-sized capacity
//! enforced at the sender, `RingTransport`-shaped errors, nonblocking
//! try-ops — and the framing codec must survive arbitrarily fragmented
//! socket I/O.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use spi_net::wire::{read_record, write_record};
use spi_net::{loopback, loopback_with, socket_path, BatchParams, NetReceiver, NetSender};
use spi_platform::{
    decode_frame, encode_frame_into, ChannelSpec, FrameError, Transport, TransportError,
    FRAME_HEADER_BYTES,
};

fn spec(capacity: usize, max_msg: usize) -> ChannelSpec {
    ChannelSpec {
        capacity_bytes: capacity,
        max_message_bytes: max_msg,
        ..ChannelSpec::default()
    }
}

#[test]
fn payloads_cross_the_socket_byte_accurately() {
    let (tx, rx) = loopback(&spec(4096, 512)).expect("loopback");
    for i in 0..64u32 {
        let msg: Vec<u8> = (0..((i % 37) + 1)).map(|b| (b ^ i) as u8).collect();
        tx.send(&msg, Duration::from_secs(5)).expect("send");
        let got = rx.recv(Duration::from_secs(5)).expect("recv");
        assert_eq!(got, msg, "message {i} mangled in transit");
    }
}

#[test]
fn sender_side_credit_window_enforces_declared_capacity() {
    // Two 8-byte messages fill the 16-byte window; the third must see
    // Full without the receiver ever draining.
    let (tx, _rx) = loopback(&spec(16, 8)).expect("loopback");
    tx.try_send(&[1u8; 8]).expect("first fits");
    tx.try_send(&[2u8; 8]).expect("second fits");
    assert_eq!(tx.try_send(&[3u8; 8]), Err(TransportError::Full));
    assert_eq!(tx.len_bytes(), 16);
    assert_eq!(tx.occupancy(), 2);
}

#[test]
fn credits_return_when_the_receiver_consumes() {
    let (tx, rx) = loopback(&spec(16, 8)).expect("loopback");
    tx.try_send(&[1u8; 8]).expect("first fits");
    tx.try_send(&[2u8; 8]).expect("second fits");
    assert_eq!(rx.recv(Duration::from_secs(5)).expect("recv"), [1u8; 8]);
    // The credit ack travels back asynchronously; a blocking send must
    // absorb that latency.
    tx.send(&[3u8; 8], Duration::from_secs(5))
        .expect("send after drain");
    assert_eq!(rx.recv(Duration::from_secs(5)).expect("recv"), [2u8; 8]);
    assert_eq!(rx.recv(Duration::from_secs(5)).expect("recv"), [3u8; 8]);
}

#[test]
fn oversize_messages_are_rejected_without_consuming_credits() {
    let (tx, _rx) = loopback(&spec(64, 8)).expect("loopback");
    assert_eq!(
        tx.try_send(&[0u8; 9]),
        Err(TransportError::TooLarge { bytes: 9, max: 8 })
    );
    assert_eq!(tx.len_bytes(), 0);
}

#[test]
fn blocked_send_times_out_with_ring_shaped_error() {
    let (tx, _rx) = loopback(&spec(8, 8)).expect("loopback");
    tx.try_send(&[1u8; 8]).expect("fills the window");
    let timeout = Duration::from_millis(50);
    match tx.send(&[2u8; 8], timeout) {
        Err(TransportError::Timeout { after, idle }) => {
            assert_eq!(after, timeout);
            assert!(idle <= after, "idle {idle:?} cannot exceed after {after:?}");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}

#[test]
fn empty_receiver_reports_empty_then_times_out() {
    let (_tx, rx) = loopback(&spec(64, 8)).expect("loopback");
    assert_eq!(rx.try_recv().map(|_| ()), Err(TransportError::Empty));
    let timeout = Duration::from_millis(50);
    match rx.recv(timeout) {
        Err(TransportError::Timeout { after, .. }) => assert_eq!(after, timeout),
        other => panic!("expected Timeout, got {other:?}"),
    }
}

#[test]
fn an_empty_window_always_admits_one_message() {
    // Mirrors the in-memory transports: a message as large as the whole
    // capacity must pass when the channel is idle.
    let (tx, rx) = loopback(&spec(8, 8)).expect("loopback");
    tx.send(&[7u8; 8], Duration::from_secs(5)).expect("send");
    assert_eq!(rx.recv(Duration::from_secs(5)).expect("recv"), [7u8; 8]);
}

#[test]
fn peer_disconnect_surfaces_as_timeout_not_hang() {
    let (tx, rx) = loopback(&spec(8, 8)).expect("loopback");
    tx.try_send(&[1u8; 8]).expect("fills the window");
    drop(rx);
    let start = std::time::Instant::now();
    let res = tx.send(&[2u8; 8], Duration::from_secs(30));
    assert!(
        matches!(res, Err(TransportError::Timeout { .. })),
        "expected fast-fail Timeout, got {res:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "closed peer must fail fast, waited {:?}",
        start.elapsed()
    );
}

#[test]
fn bind_and_connect_establish_across_a_filesystem_socket() {
    let dir = std::env::temp_dir().join(format!("spi-net-t-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = socket_path(&dir, 0);
    let s = spec(1024, 128);
    let rx = NetReceiver::bind(&path, &s).expect("bind");
    let tx = NetSender::connect(&path, &s).expect("connect");
    tx.send(b"over the wall", Duration::from_secs(5))
        .expect("send");
    assert_eq!(
        rx.recv(Duration::from_secs(5)).expect("recv"),
        b"over the wall"
    );
    drop(rx);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Batched path: sender-side coalescing with vectored writes and the
// receiver's cumulative credit acks must preserve every semantic the
// unbatched tests above pin down.
// ---------------------------------------------------------------------

fn batch(max_msgs: usize, flush_after: Duration) -> BatchParams {
    BatchParams {
        max_msgs,
        flush_after,
    }
}

#[test]
fn batched_payloads_arrive_byte_accurate_and_in_order() {
    let (tx, rx) = loopback_with(&spec(4096, 512), batch(8, Duration::from_millis(50)))
        .expect("batched loopback");
    let msgs: Vec<Vec<u8>> = (0..64u32)
        .map(|i| (0..((i % 37) + 1)).map(|b| (b ^ i) as u8).collect())
        .collect();
    for m in &msgs {
        tx.send(m, Duration::from_secs(5)).expect("send");
    }
    for (i, m) in msgs.iter().enumerate() {
        let got = rx.recv(Duration::from_secs(5)).expect("recv");
        assert_eq!(&got, m, "message {i} mangled or reordered by batching");
    }
}

#[test]
fn batched_sender_still_enforces_the_credit_window() {
    // Window holds 8 messages; the batch bound (4) is half the window.
    // Pending-but-unflushed records count against the window, so the
    // ninth send must see Full with no receiver involvement.
    let (tx, _rx) =
        loopback_with(&spec(64, 8), batch(4, Duration::from_secs(5))).expect("batched loopback");
    for i in 0..8u8 {
        tx.try_send(&[i; 8]).expect("window admits eight");
    }
    assert_eq!(tx.try_send(&[9u8; 8]), Err(TransportError::Full));
    assert_eq!(tx.len_bytes(), 64);
    assert_eq!(tx.occupancy(), 8);
}

#[test]
fn deadline_flush_delivers_a_lone_record_without_a_full_batch() {
    // One record in a batch of 8: only the flush deadline (or the
    // receiver's hungry signal) can put it on the wire. try_recv polls
    // without parking, so a prompt arrival proves a sender-side flush.
    let (tx, rx) = loopback_with(&spec(4096, 64), batch(8, Duration::from_millis(20)))
        .expect("batched loopback");
    tx.try_send(b"lone").expect("send");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match rx.try_recv() {
            Ok(got) => {
                assert_eq!(got, b"lone");
                break;
            }
            Err(TransportError::Empty) => {
                assert!(Instant::now() < deadline, "deadline flush never fired");
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(other) => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn hungry_receiver_forces_an_early_flush() {
    // The flush deadline is far beyond the assertion window, so a
    // blocked receiver getting the record quickly proves the HUNGRY
    // ack path: recv parks, signals hunger, the sender drains.
    let (tx, rx) = loopback_with(&spec(4096, 64), batch(8, Duration::from_secs(30)))
        .expect("batched loopback");
    let waiter = std::thread::spawn(move || rx.recv(Duration::from_secs(10)));
    // Let the receiver park (and its hungry signal land) before the
    // send, exercising the sticky-flag path too.
    std::thread::sleep(Duration::from_millis(50));
    let start = Instant::now();
    tx.send(b"eager", Duration::from_secs(5)).expect("send");
    let got = waiter.join().expect("join").expect("recv");
    assert_eq!(got, b"eager");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "delivery waited on the 30s deadline instead of the hungry flush"
    );
}

#[test]
fn explicit_and_final_flushes_drain_pending_records() {
    let (tx, rx) = loopback_with(&spec(4096, 64), batch(8, Duration::from_secs(30)))
        .expect("batched loopback");
    tx.try_send(b"one").expect("send");
    tx.try_send(b"two").expect("send");
    tx.flush_pending().expect("explicit flush");
    assert_eq!(rx.recv(Duration::from_secs(5)).expect("recv"), b"one");
    assert_eq!(rx.recv(Duration::from_secs(5)).expect("recv"), b"two");
    tx.try_send(b"three").expect("send");
    drop(tx); // Drop's Final flush must not strand the record.
    assert_eq!(rx.recv(Duration::from_secs(5)).expect("recv"), b"three");
}

#[test]
fn coalesced_acks_return_credit_for_sustained_traffic() {
    // Window = 4 messages, batch = 2: the receiver acks cumulatively
    // (every 2 consumptions or at the half-window low-water mark), so
    // several window-refills' worth of blocking sends must all clear.
    let (tx, rx) =
        loopback_with(&spec(32, 8), batch(2, Duration::from_millis(10))).expect("batched loopback");
    let consumer = std::thread::spawn(move || {
        let mut got = Vec::new();
        for _ in 0..24 {
            got.push(rx.recv(Duration::from_secs(10)).expect("recv"));
        }
        (got, rx) // keep the endpoint alive for the drain check below
    });
    for i in 0..24u8 {
        tx.send(&[i; 8], Duration::from_secs(10)).expect("send");
    }
    let (got, rx) = consumer.join().expect("join");
    for (i, m) in got.iter().enumerate() {
        assert_eq!(m, &[i as u8; 8], "message {i}");
    }
    // Every credit returns once the receiver settles on its empty poll
    // (sub-threshold residue rides the hungry ack).
    assert_eq!(rx.try_recv().map(|_| ()), Err(TransportError::Empty));
    let deadline = Instant::now() + Duration::from_secs(5);
    while tx.len_bytes() != 0 {
        assert!(Instant::now() < deadline, "final cumulative ack missing");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(tx.occupancy(), 0);
}

#[test]
fn batched_endpoints_interoperate_across_a_filesystem_socket() {
    let dir = std::env::temp_dir().join(format!("spi-net-b-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = socket_path(&dir, 1);
    let s = spec(1024, 128);
    let b = batch(4, Duration::from_millis(10));
    let rx = NetReceiver::bind_with(&path, &s, spi_net::AckPolicy::for_batch(&s, b)).expect("bind");
    let tx = NetSender::connect_with(&path, &s, b).expect("connect");
    for i in 0..16u8 {
        tx.send(&[i; 16], Duration::from_secs(5)).expect("send");
    }
    for i in 0..16u8 {
        assert_eq!(rx.recv(Duration::from_secs(5)).expect("recv"), [i; 16]);
    }
    drop(rx);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Framing resilience: the seq+crc32 supervision frames must survive
// partial reads and short writes on the wire codec.
// ---------------------------------------------------------------------

/// Writer that accepts at most `chunk` bytes per call — models a socket
/// under backpressure returning short writes.
struct ShortWriter {
    out: Vec<u8>,
    chunk: usize,
}

impl Write for ShortWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk);
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Reader that yields at most `chunk` bytes per call — models a socket
/// delivering a record in fragments.
struct ShortReader<'a> {
    buf: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for ShortReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let n = out.len().min(self.chunk).min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn supervision_frames_survive_fragmented_wire_io() {
    let payload: Vec<u8> = (0..1500u32).map(|i| (i * 7) as u8).collect();
    let mut frame = Vec::new();
    encode_frame_into(&mut frame, 42, &payload);

    for chunk in [1, 2, 3, 7, 8, 9, 64, 4096] {
        let mut w = ShortWriter {
            out: Vec::new(),
            chunk,
        };
        write_record(&mut w, &frame).expect("write through short writes");
        let mut r = ShortReader {
            buf: &w.out,
            pos: 0,
            chunk,
        };
        let got = read_record(&mut r)
            .expect("read through partial reads")
            .expect("one record");
        let (seq, body) = decode_frame(&got).expect("frame intact");
        assert_eq!(seq, 42, "chunk size {chunk}");
        assert_eq!(body, &payload[..], "chunk size {chunk}");
    }
}

#[test]
fn truncated_frame_prefixes_never_decode() {
    let payload = b"signal processing interface";
    let mut frame = Vec::new();
    encode_frame_into(&mut frame, 3, payload);
    // Every proper prefix must fail loudly: header-short prefixes as
    // Truncated, longer ones by CRC (the crc covers the whole payload).
    for n in 0..frame.len() {
        match decode_frame(&frame[..n]) {
            Err(FrameError::Truncated) => assert!(n < FRAME_HEADER_BYTES),
            Err(FrameError::BadCrc) => assert!(n >= FRAME_HEADER_BYTES),
            Ok(_) => panic!("prefix of {n} bytes decoded as a valid frame"),
        }
    }
    let (seq, body) = decode_frame(&frame).expect("full frame decodes");
    assert_eq!((seq, body), (3, &payload[..]));
}

#[test]
fn a_record_split_mid_length_prefix_is_an_unexpected_eof() {
    let mut full = Vec::new();
    write_record(&mut full, b"abcdef").expect("encode");
    for cut in 1..4 {
        let mut r = ShortReader {
            buf: &full[..cut],
            pos: 0,
            chunk: 1,
        };
        let err = read_record(&mut r).expect_err("mid-prefix EOF must error");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut {cut}");
    }
}

//! Socket transport semantics: the `NetSender`/`NetReceiver` pair must
//! behave like the in-memory transports — eq. (2)-sized capacity
//! enforced at the sender, `RingTransport`-shaped errors, nonblocking
//! try-ops — and the framing codec must survive arbitrarily fragmented
//! socket I/O.

use std::io::{Read, Write};
use std::time::Duration;

use spi_net::wire::{read_record, write_record};
use spi_net::{loopback, socket_path, NetReceiver, NetSender};
use spi_platform::{
    decode_frame, encode_frame_into, ChannelSpec, FrameError, Transport, TransportError,
    FRAME_HEADER_BYTES,
};

fn spec(capacity: usize, max_msg: usize) -> ChannelSpec {
    ChannelSpec {
        capacity_bytes: capacity,
        max_message_bytes: max_msg,
        ..ChannelSpec::default()
    }
}

#[test]
fn payloads_cross_the_socket_byte_accurately() {
    let (tx, rx) = loopback(&spec(4096, 512)).expect("loopback");
    for i in 0..64u32 {
        let msg: Vec<u8> = (0..((i % 37) + 1)).map(|b| (b ^ i) as u8).collect();
        tx.send(&msg, Duration::from_secs(5)).expect("send");
        let got = rx.recv(Duration::from_secs(5)).expect("recv");
        assert_eq!(got, msg, "message {i} mangled in transit");
    }
}

#[test]
fn sender_side_credit_window_enforces_declared_capacity() {
    // Two 8-byte messages fill the 16-byte window; the third must see
    // Full without the receiver ever draining.
    let (tx, _rx) = loopback(&spec(16, 8)).expect("loopback");
    tx.try_send(&[1u8; 8]).expect("first fits");
    tx.try_send(&[2u8; 8]).expect("second fits");
    assert_eq!(tx.try_send(&[3u8; 8]), Err(TransportError::Full));
    assert_eq!(tx.len_bytes(), 16);
    assert_eq!(tx.occupancy(), 2);
}

#[test]
fn credits_return_when_the_receiver_consumes() {
    let (tx, rx) = loopback(&spec(16, 8)).expect("loopback");
    tx.try_send(&[1u8; 8]).expect("first fits");
    tx.try_send(&[2u8; 8]).expect("second fits");
    assert_eq!(rx.recv(Duration::from_secs(5)).expect("recv"), [1u8; 8]);
    // The credit ack travels back asynchronously; a blocking send must
    // absorb that latency.
    tx.send(&[3u8; 8], Duration::from_secs(5))
        .expect("send after drain");
    assert_eq!(rx.recv(Duration::from_secs(5)).expect("recv"), [2u8; 8]);
    assert_eq!(rx.recv(Duration::from_secs(5)).expect("recv"), [3u8; 8]);
}

#[test]
fn oversize_messages_are_rejected_without_consuming_credits() {
    let (tx, _rx) = loopback(&spec(64, 8)).expect("loopback");
    assert_eq!(
        tx.try_send(&[0u8; 9]),
        Err(TransportError::TooLarge { bytes: 9, max: 8 })
    );
    assert_eq!(tx.len_bytes(), 0);
}

#[test]
fn blocked_send_times_out_with_ring_shaped_error() {
    let (tx, _rx) = loopback(&spec(8, 8)).expect("loopback");
    tx.try_send(&[1u8; 8]).expect("fills the window");
    let timeout = Duration::from_millis(50);
    match tx.send(&[2u8; 8], timeout) {
        Err(TransportError::Timeout { after, idle }) => {
            assert_eq!(after, timeout);
            assert!(idle <= after, "idle {idle:?} cannot exceed after {after:?}");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}

#[test]
fn empty_receiver_reports_empty_then_times_out() {
    let (_tx, rx) = loopback(&spec(64, 8)).expect("loopback");
    assert_eq!(rx.try_recv().map(|_| ()), Err(TransportError::Empty));
    let timeout = Duration::from_millis(50);
    match rx.recv(timeout) {
        Err(TransportError::Timeout { after, .. }) => assert_eq!(after, timeout),
        other => panic!("expected Timeout, got {other:?}"),
    }
}

#[test]
fn an_empty_window_always_admits_one_message() {
    // Mirrors the in-memory transports: a message as large as the whole
    // capacity must pass when the channel is idle.
    let (tx, rx) = loopback(&spec(8, 8)).expect("loopback");
    tx.send(&[7u8; 8], Duration::from_secs(5)).expect("send");
    assert_eq!(rx.recv(Duration::from_secs(5)).expect("recv"), [7u8; 8]);
}

#[test]
fn peer_disconnect_surfaces_as_timeout_not_hang() {
    let (tx, rx) = loopback(&spec(8, 8)).expect("loopback");
    tx.try_send(&[1u8; 8]).expect("fills the window");
    drop(rx);
    let start = std::time::Instant::now();
    let res = tx.send(&[2u8; 8], Duration::from_secs(30));
    assert!(
        matches!(res, Err(TransportError::Timeout { .. })),
        "expected fast-fail Timeout, got {res:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "closed peer must fail fast, waited {:?}",
        start.elapsed()
    );
}

#[test]
fn bind_and_connect_establish_across_a_filesystem_socket() {
    let dir = std::env::temp_dir().join(format!("spi-net-t-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = socket_path(&dir, 0);
    let s = spec(1024, 128);
    let rx = NetReceiver::bind(&path, &s).expect("bind");
    let tx = NetSender::connect(&path, &s).expect("connect");
    tx.send(b"over the wall", Duration::from_secs(5))
        .expect("send");
    assert_eq!(
        rx.recv(Duration::from_secs(5)).expect("recv"),
        b"over the wall"
    );
    drop(rx);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Framing resilience: the seq+crc32 supervision frames must survive
// partial reads and short writes on the wire codec.
// ---------------------------------------------------------------------

/// Writer that accepts at most `chunk` bytes per call — models a socket
/// under backpressure returning short writes.
struct ShortWriter {
    out: Vec<u8>,
    chunk: usize,
}

impl Write for ShortWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk);
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Reader that yields at most `chunk` bytes per call — models a socket
/// delivering a record in fragments.
struct ShortReader<'a> {
    buf: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for ShortReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let n = out.len().min(self.chunk).min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn supervision_frames_survive_fragmented_wire_io() {
    let payload: Vec<u8> = (0..1500u32).map(|i| (i * 7) as u8).collect();
    let mut frame = Vec::new();
    encode_frame_into(&mut frame, 42, &payload);

    for chunk in [1, 2, 3, 7, 8, 9, 64, 4096] {
        let mut w = ShortWriter {
            out: Vec::new(),
            chunk,
        };
        write_record(&mut w, &frame).expect("write through short writes");
        let mut r = ShortReader {
            buf: &w.out,
            pos: 0,
            chunk,
        };
        let got = read_record(&mut r)
            .expect("read through partial reads")
            .expect("one record");
        let (seq, body) = decode_frame(&got).expect("frame intact");
        assert_eq!(seq, 42, "chunk size {chunk}");
        assert_eq!(body, &payload[..], "chunk size {chunk}");
    }
}

#[test]
fn truncated_frame_prefixes_never_decode() {
    let payload = b"signal processing interface";
    let mut frame = Vec::new();
    encode_frame_into(&mut frame, 3, payload);
    // Every proper prefix must fail loudly: header-short prefixes as
    // Truncated, longer ones by CRC (the crc covers the whole payload).
    for n in 0..frame.len() {
        match decode_frame(&frame[..n]) {
            Err(FrameError::Truncated) => assert!(n < FRAME_HEADER_BYTES),
            Err(FrameError::BadCrc) => assert!(n >= FRAME_HEADER_BYTES),
            Ok(_) => panic!("prefix of {n} bytes decoded as a valid frame"),
        }
    }
    let (seq, body) = decode_frame(&frame).expect("full frame decodes");
    assert_eq!((seq, body), (3, &payload[..]));
}

#[test]
fn a_record_split_mid_length_prefix_is_an_unexpected_eof() {
    let mut full = Vec::new();
    write_record(&mut full, b"abcdef").expect("encode");
    for cut in 1..4 {
        let mut r = ShortReader {
            buf: &full[..cut],
            pos: 0,
            chunk: 1,
        };
        let err = read_record(&mut r).expect_err("mid-prefix EOF must error");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut {cut}");
    }
}

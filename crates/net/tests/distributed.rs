//! End-to-end: the filter bank partitioned across two OS processes must
//! produce byte-identical output to the single-process path — clean and
//! under socket-level fault injection — and the merged distributed
//! trace must pass the same conformance and race checkers as a local
//! capture.

use std::path::PathBuf;
use std::process::Command;

use spi_trace::Trace;

fn run_launch(extra: &[&str], trace_name: &str) -> Trace {
    let trace_out = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(trace_name);
    let out = Command::new(env!("CARGO_BIN_EXE_spi-noded"))
        .args([
            "launch",
            "--app",
            "filterbank",
            "--nodes",
            "2",
            "--iters",
            "8",
            "--trace-out",
        ])
        .arg(&trace_out)
        .args(extra)
        .output()
        .expect("spawn spi-noded");
    assert!(
        out.status.success(),
        "launch failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The launcher itself compares against a fresh single-process run.
    assert!(
        stdout.contains("byte-identical to single-process: true"),
        "missing byte-identity line in:\n{stdout}"
    );
    let text = std::fs::read_to_string(&trace_out).expect("merged trace written");
    Trace::from_native(&text).expect("merged trace parses")
}

#[test]
fn two_process_run_is_byte_identical_and_trace_conformant() {
    let trace = run_launch(&[], "e2e_clean.trace");
    let report = spi_trace::check(&trace);
    assert!(
        !report.has_errors(),
        "trace-check on merged trace:\n{}",
        report.render_human()
    );
    let races = spi_verify::race_check(&trace);
    assert!(
        !races.has_errors(),
        "race-check on merged trace:\n{}",
        races.render_human()
    );
    assert!(
        trace.events.iter().any(|e| e.pe.0 == 2),
        "remote node's processor must appear in the merged trace"
    );
}

#[test]
fn two_process_chaos_run_recovers_to_identical_output() {
    // --chaos injects one drop, one corruption, and one duplication on
    // cross-partition sockets; supervision must recover all three and
    // the launcher still demands byte-identical output.
    let trace = run_launch(&["--chaos"], "e2e_chaos.trace");
    let report = spi_trace::check(&trace);
    assert!(
        !report.has_errors(),
        "trace-check on faulted merged trace:\n{}",
        report.render_human()
    );
}

#[test]
fn batched_two_process_run_passes_both_checkers() {
    // --force-ubs deepens the cross-partition windows past the batching
    // threshold, so the schedule lowers real batch plans: the merged
    // trace must carry the declared budgets, observed flush events, and
    // still satisfy trace-check (incl. the SPI086 budget diagnostic)
    // and race-check.
    let trace = run_launch(&["--force-ubs"], "e2e_batched.trace");
    assert!(
        !trace.meta.batch_bounds.is_empty(),
        "merged meta must declare the lowered batching budgets"
    );
    let flushes: Vec<_> = trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            spi_trace::ProbeKind::BatchFlush { channel, msgs, .. } => Some((channel, msgs)),
            _ => None,
        })
        .collect();
    assert!(
        !flushes.is_empty(),
        "batched senders must record BatchFlush probes in the merged trace"
    );
    for b in &trace.meta.batch_bounds {
        for (ch, msgs) in &flushes {
            if *ch == b.channel {
                assert!(
                    u64::from(*msgs) <= b.max_msgs,
                    "flush of {msgs} records on channel {} exceeds budget {}",
                    ch.0,
                    b.max_msgs
                );
            }
        }
    }
    let report = spi_trace::check(&trace);
    assert!(
        !report.has_errors(),
        "trace-check on batched merged trace:\n{}",
        report.render_human()
    );
    let races = spi_verify::race_check(&trace);
    assert!(
        !races.has_errors(),
        "race-check on batched merged trace:\n{}",
        races.render_human()
    );
}

#[test]
fn supervised_two_process_run_stays_identical() {
    let trace = run_launch(&["--supervised"], "e2e_supervised.trace");
    let races = spi_verify::race_check(&trace);
    assert!(
        !races.has_errors(),
        "race-check on supervised merged trace:\n{}",
        races.render_human()
    );
}

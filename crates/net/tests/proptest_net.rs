//! Property-based tests of the batched socket transport: on any
//! interleaving of sends and receives, the coalesced-ack credit
//! accounting must keep the in-flight bytes inside the eq. (2) window
//! B(e), preserve FIFO order, and eventually return every credit.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use spi_net::{loopback_with, BatchParams};
use spi_platform::{ChannelSpec, Transport, TransportError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn coalesced_ack_accounting_never_exceeds_the_eq2_window(
        sizes in prop::collection::vec(1usize..32, 1..60),
        recv_gaps in prop::collection::vec(0usize..4, 1..60),
        max_msgs in 1usize..9,
        cap_msgs in 2usize..9,
    ) {
        let max_msg = 32usize;
        let capacity = cap_msgs * max_msg;
        let spec = ChannelSpec {
            capacity_bytes: capacity,
            max_message_bytes: max_msg,
            ..ChannelSpec::default()
        };
        let (tx, rx) = loopback_with(
            &spec,
            BatchParams { max_msgs, flush_after: Duration::from_millis(2) },
        ).expect("batched loopback");

        let mut expected: VecDeque<Vec<u8>> = VecDeque::new();
        let tx_dbg = &tx;
        let pop_and_check = |expected: &mut VecDeque<Vec<u8>>| {
            let got = match rx.recv(Duration::from_secs(10)) {
                Ok(m) => m,
                Err(e) => panic!(
                    "recv {e:?}; tx in-flight {}B/{}msg, rx queued {}B/{}msg, expected {} msgs, params max_msgs={} cap_msgs={}",
                    tx_dbg.len_bytes(), tx_dbg.occupancy(), rx.len_bytes(), rx.occupancy(), expected.len(), max_msgs, cap_msgs
                ),
            };
            let want = expected.pop_front().expect("receive only what was sent");
            assert_eq!(got, want, "FIFO order broken by batching");
            rx.len_bytes()
        };

        for (i, &sz) in sizes.iter().enumerate() {
            let payload: Vec<u8> = (0..sz).map(|b| (b as u8) ^ (i as u8)).collect();
            loop {
                match tx.try_send(&payload) {
                    Ok(()) => break,
                    Err(TransportError::Full) => {
                        if expected.is_empty() {
                            // Everything sent was already consumed; the
                            // window is only full until the receiver's
                            // cumulative ack lands. An empty poll
                            // settles any sub-threshold residue.
                            let _ = rx.try_recv();
                            std::thread::sleep(Duration::from_millis(1));
                            continue;
                        }
                        // A full window with records pending is exactly
                        // where a lost or late cumulative ack would
                        // wedge; a blocking receive must always unblock
                        // it (hungry flush + credit return).
                        let queued = pop_and_check(&mut expected);
                        prop_assert!(
                            queued <= capacity,
                            "receiver holds {queued} B > B(e) = {capacity} B"
                        );
                    }
                    Err(other) => panic!("unexpected send error {other:?}"),
                }
            }
            expected.push_back(payload);
            let in_flight = tx.len_bytes();
            prop_assert!(
                in_flight <= capacity,
                "sender admitted {in_flight} B in flight > B(e) = {capacity} B"
            );
            for _ in 0..recv_gaps[i % recv_gaps.len()] {
                if expected.is_empty() {
                    break;
                }
                let queued = pop_and_check(&mut expected);
                prop_assert!(queued <= capacity);
            }
        }

        tx.flush_pending().expect("final flush");
        while !expected.is_empty() {
            pop_and_check(&mut expected);
        }

        // With the channel drained, every coalesced ack must land by the
        // time the receiver next observes an empty queue: consumptions
        // below the ack threshold stay unacknowledged only until the
        // receiver settles them on the empty poll (the same settle that
        // precedes every park, so a sender can never wedge on them).
        prop_assert_eq!(rx.try_recv().map(|_| ()), Err(TransportError::Empty));
        let deadline = Instant::now() + Duration::from_secs(5);
        while tx.len_bytes() != 0 || tx.occupancy() != 0 {
            prop_assert!(
                Instant::now() < deadline,
                "credits never fully returned: {} B / {} msg outstanding",
                tx.len_bytes(),
                tx.occupancy()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the `rand` API the workspace uses —
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`]
//! extension methods `gen_range` / `gen_bool` over integer and float
//! ranges — on top of a SplitMix64 generator. Deterministic per seed,
//! which is exactly what the fuzz harnesses and seeded experiments need;
//! not cryptographic, and the streams differ from upstream `rand`
//! (seeded experiments are reproducible *within* this workspace).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of 64 random bits.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto [0, 1).
fn unit_f64(bits: u64) -> f64 {
    // 53 explicit mantissa bits give a uniform dyadic grid in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`. Fast, 64-bit state, passes through every seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): one additive step plus
            // two xor-shift multiplies; equidistributed over 2^64.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "got {hits}");
    }
}

//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this shim provides
//! just enough surface for the workspace's `use serde::{Deserialize,
//! Serialize}` + `#[derive(...)]` annotations to compile: empty marker
//! traits and derive macros that expand to nothing. No code in the
//! workspace performs actual (de)serialization; the annotations document
//! intent for a future online build, where this path dependency can be
//! swapped back to the real crate without touching any annotated type.

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}

// Same-name re-exports are legal because derive macros and traits live in
// different namespaces, exactly as in real serde.
pub use serde_derive::{Deserialize, Serialize};

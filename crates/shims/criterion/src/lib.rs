//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace's `[[bench]]` targets
//! use — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] tuning knobs, [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — without
//! statistics, plotting, or CLI parsing. Each benchmark runs a small
//! fixed number of iterations and reports mean wall-clock time, which is
//! enough for smoke-testing that benches build and run in an offline
//! environment; absolute numbers are not comparable to real criterion.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (std's hint since 1.66).
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 2;
const MEASURE_ITERS: u64 = 10;

/// Top-level harness handle, one per `criterion_group!` run.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores timing budgets.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim warms up a fixed amount.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op beyond parity with real criterion).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: parameter.to_string(),
        }
    }

    /// Parameter value only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(func) => write!(f, "{}/{}", func, self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = MEASURE_ITERS;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench {label:<48} {mean:>12.2?}/iter ({} iters)", b.iters);
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace's test suites
//! use: the [`proptest!`] macro (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `pat in
//! strategy` bindings, [`prop_assert!`]/[`prop_assert_eq!`], range and
//! tuple strategies, [`collection::vec`], [`any`], [`Just`], and
//! [`Strategy::prop_map`].
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! generated from a fixed per-test seed (fully deterministic, no
//! persisted regressions), and failures are reported via ordinary
//! panics with no shrinking. That trades minimality of counterexamples
//! for zero dependencies, which is the right trade in a registry-less
//! build environment.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies; SplitMix64 seeded from
/// the test name and case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator for one test case, mixing the test name so
    /// distinct tests explore distinct streams.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-`proptest!` block configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline suites quick
        // while still exercising a meaningful spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Types with a canonical unconstrained strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property test (panics on failure; the
/// offline shim performs no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Environment variable pinning property tests to one case index:
/// `SPI_CHAOS_SEED=<case> cargo test …` replays exactly the case a
/// failure report printed, skipping all others.
pub const CHAOS_SEED_VAR: &str = "SPI_CHAOS_SEED";

/// Reads the [`CHAOS_SEED_VAR`] case override, if any.
pub fn pinned_case() -> Option<u32> {
    std::env::var(CHAOS_SEED_VAR).ok()?.trim().parse().ok()
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (@cfg $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let (first, last) = match $crate::pinned_case() {
                ::std::option::Option::Some(c) => (c, c),
                ::std::option::Option::None => (0, config.cases.saturating_sub(1)),
            };
            for case in first..=last {
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                    $body
                }));
                if let ::std::result::Result::Err(cause) = outcome {
                    ::std::eprintln!(
                        "proptest case {} of `{}` failed\nreplay: {}={} cargo test {} -- --nocapture",
                        case, stringify!($name), $crate::CHAOS_SEED_VAR, case, stringify!($name),
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
    )*};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes
/// a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(@cfg $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(@cfg $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static COUNTED_RUNS: AtomicU32 = AtomicU32::new(0);

    // Declared without #[test] so the pin test below can drive it.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        fn counted(_x in 0u32..10) {
            COUNTED_RUNS.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn case_loop_respects_chaos_seed_pin() {
        COUNTED_RUNS.store(0, Ordering::Relaxed);
        counted();
        let expect = match crate::pinned_case() {
            Some(_) => 1,
            None => 5,
        };
        assert_eq!(COUNTED_RUNS.load(Ordering::Relaxed), expect);
    }

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..5, 10u32..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in pair(), flag in any::<bool>()) {
            prop_assert!((1..5).contains(&a));
            prop_assert!((10..20).contains(&b));
            let _ = flag;
        }

        #[test]
        fn vec_and_map(
            v in prop::collection::vec(0usize..9, 2..6).prop_map(|mut v| { v.sort(); v }),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}

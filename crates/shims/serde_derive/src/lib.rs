//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! forward-looking annotation — nothing serializes at run time — so the
//! offline shim accepts the attributes and expands to nothing. See
//! `crates/shims/serde` for the matching trait definitions.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

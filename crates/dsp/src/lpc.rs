//! Linear predictive coding (application 1's compression math).
//!
//! The paper's acoustic data compression pipeline: frames of input
//! samples produce predictor coefficients via the autocorrelation normal
//! equations, which the paper solves with **LU decomposition** (actor
//! "C"); the prediction error (actor "D") plus quantized coefficients
//! form the compressed representation.

use serde::{Deserialize, Serialize};

/// Errors from the LPC pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpcError {
    /// The normal-equation matrix was numerically singular.
    SingularMatrix {
        /// Pivot column where elimination failed.
        column: usize,
    },
    /// Model order must be positive and smaller than the frame length.
    BadOrder {
        /// Requested order.
        order: usize,
        /// Frame length.
        frame: usize,
    },
}

impl std::fmt::Display for LpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpcError::SingularMatrix { column } => {
                write!(f, "normal equations singular at column {column}")
            }
            LpcError::BadOrder { order, frame } => {
                write!(
                    f,
                    "model order {order} invalid for frame of {frame} samples"
                )
            }
        }
    }
}

impl std::error::Error for LpcError {}

/// Applies a Hamming window in place.
pub fn hamming_window(frame: &mut [f64]) {
    let n = frame.len();
    if n < 2 {
        return;
    }
    for (i, x) in frame.iter_mut().enumerate() {
        let w = 0.54 - 0.46 * (2.0 * std::f64::consts::PI * i as f64 / (n - 1) as f64).cos();
        *x *= w;
    }
}

/// Autocorrelation `r[0..=order]` of `frame`.
pub fn autocorrelation(frame: &[f64], order: usize) -> Vec<f64> {
    (0..=order)
        .map(|lag| {
            frame
                .iter()
                .zip(frame.iter().skip(lag))
                .map(|(a, b)| a * b)
                .sum()
        })
        .collect()
}

/// LU decomposition with partial pivoting: factors `a` (n×n, row-major)
/// in place into L (unit diagonal, below) and U (on/above), returning the
/// row permutation.
///
/// # Errors
///
/// [`LpcError::SingularMatrix`] if a pivot column is all (near-)zeros.
pub fn lu_decompose(a: &mut [f64], n: usize) -> Result<Vec<usize>, LpcError> {
    assert_eq!(a.len(), n * n, "matrix must be n*n");
    let mut perm: Vec<usize> = (0..n).collect();
    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, a[r * n + col].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("no NaN pivots"))
            .expect("nonempty column");
        if pivot_val < 1e-12 {
            return Err(LpcError::SingularMatrix { column: col });
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            perm.swap(col, pivot_row);
        }
        for r in (col + 1)..n {
            let factor = a[r * n + col] / a[col * n + col];
            a[r * n + col] = factor; // store L
            for k in (col + 1)..n {
                a[r * n + k] -= factor * a[col * n + k];
            }
        }
    }
    Ok(perm)
}

/// Solves `A x = b` given the in-place LU factors and permutation from
/// [`lu_decompose`].
pub fn lu_solve(lu: &[f64], n: usize, perm: &[usize], b: &[f64]) -> Vec<f64> {
    // Forward substitution on permuted b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[perm[i]];
        for j in 0..i {
            acc -= lu[i * n + j] * y[j];
        }
        y[i] = acc;
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for j in (i + 1)..n {
            acc -= lu[i * n + j] * x[j];
        }
        x[i] = acc / lu[i * n + i];
    }
    x
}

/// Predictor coefficients of `frame` at the given model order, via the
/// autocorrelation normal equations solved with LU decomposition
/// (exactly the paper's actor "C").
///
/// Returns `a[1..=order]` such that
/// `x̂[t] = Σ_k a[k] · x[t−k]`.
///
/// # Errors
///
/// [`LpcError::BadOrder`] for a degenerate order and
/// [`LpcError::SingularMatrix`] for pathological (e.g. all-zero) frames.
pub fn predictor_coefficients(frame: &[f64], order: usize) -> Result<Vec<f64>, LpcError> {
    if order == 0 || order >= frame.len() {
        return Err(LpcError::BadOrder {
            order,
            frame: frame.len(),
        });
    }
    let r = autocorrelation(frame, order);
    // Toeplitz system: R[i][j] = r[|i−j|], rhs = r[1..=order].
    let mut matrix = vec![0.0; order * order];
    for i in 0..order {
        for j in 0..order {
            matrix[i * order + j] = r[i.abs_diff(j)];
        }
    }
    // Tiny diagonal loading for numerical robustness on tonal frames.
    for i in 0..order {
        matrix[i * order + i] += 1e-9 * (r[0] + 1.0);
    }
    let perm = lu_decompose(&mut matrix, order)?;
    Ok(lu_solve(&matrix, order, &perm, &r[1..=order]))
}

/// Prediction error of `frame` under `coeffs` (actor "D"): the residual
/// `e[t] = x[t] − Σ_k a[k]·x[t−k]`, with out-of-range history treated as
/// zero.
pub fn prediction_error(frame: &[f64], coeffs: &[f64]) -> Vec<f64> {
    frame
        .iter()
        .enumerate()
        .map(|(t, &x)| {
            let predicted: f64 = coeffs
                .iter()
                .enumerate()
                .map(|(k, &a)| if t > k { a * frame[t - k - 1] } else { 0.0 })
                .sum();
            x - predicted
        })
        .collect()
}

/// Prediction error restricted to samples `[start, end)` — the unit of
/// work one error-generation PE handles when actor "D" is parallelized
/// (paper §5.2: "each PE computes N/n error values" over overlapping
/// sections). The PE still needs `coeffs.len()` samples of history before
/// `start`, which the caller supplies by sending an overlapping section.
pub fn prediction_error_range(frame: &[f64], coeffs: &[f64], start: usize, end: usize) -> Vec<f64> {
    (start..end.min(frame.len()))
        .map(|t| {
            let predicted: f64 = coeffs
                .iter()
                .enumerate()
                .map(|(k, &a)| if t > k { a * frame[t - k - 1] } else { 0.0 })
                .sum();
            frame[t] - predicted
        })
        .collect()
}

/// LPC synthesis: reconstructs the signal from a (possibly quantized)
/// residual by running the prediction filter in feedback,
/// `x̂[t] = e[t] + Σ_k a[k]·x̂[t−k]` — the decoder dual of
/// [`prediction_error`].
pub fn synthesize(residual: &[f64], coeffs: &[f64]) -> Vec<f64> {
    let mut out: Vec<f64> = Vec::with_capacity(residual.len());
    for (t, &e) in residual.iter().enumerate() {
        let predicted: f64 = coeffs
            .iter()
            .enumerate()
            .map(|(k, &a)| if t > k { a * out[t - k - 1] } else { 0.0 })
            .sum();
        out.push(e + predicted);
    }
    out
}

/// A uniform scalar quantizer over `[-range, range]` with `2^bits`
/// levels (the compression step before Huffman coding).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    /// Half-range of representable values.
    pub range: f64,
    /// Bits per symbol.
    pub bits: u32,
}

impl Quantizer {
    /// Creates a quantizer; values beyond ±`range` saturate.
    pub fn new(range: f64, bits: u32) -> Self {
        Quantizer { range, bits }
    }

    /// Number of quantization levels.
    pub fn levels(&self) -> u32 {
        1 << self.bits
    }

    /// Quantizes one value to a symbol index.
    pub fn quantize(&self, x: f64) -> u16 {
        let levels = self.levels() as f64;
        let clamped = x.clamp(-self.range, self.range);
        let norm = (clamped + self.range) / (2.0 * self.range);
        ((norm * (levels - 1.0)).round() as u32).min(self.levels() - 1) as u16
    }

    /// Reconstructs the value of a symbol index.
    pub fn dequantize(&self, symbol: u16) -> f64 {
        let levels = self.levels() as f64;
        (f64::from(symbol) / (levels - 1.0)) * 2.0 * self.range - self.range
    }
}

/// Cycle-cost models for the LPC pipeline actors on the simulated
/// hardware (MAC-per-cycle datapaths with pipeline fill overhead).
pub mod cost {
    /// Autocorrelation + normal-equation assembly + LU solve for model
    /// order `m` over a frame of `n` samples.
    pub fn lu_cycles(n: usize, m: usize) -> u64 {
        let n = n as u64;
        let m = m as u64;
        // Autocorrelation: (m+1) lags × n MACs; LU: ~(2/3)m³; solve: m².
        (m + 1) * n + (2 * m * m * m) / 3 + m * m + 50
    }

    /// Error generation over `n` samples at order `m` (one MAC per tap).
    pub fn error_cycles(n: usize, m: usize) -> u64 {
        (n as u64) * (m as u64 + 1) + 20
    }

    /// Frame read cost (I/O interface, one word per cycle).
    pub fn read_cycles(n: usize) -> u64 {
        n as u64 + 10
    }

    /// Quantization cost (one sample per cycle, pipelined).
    pub fn quantize_cycles(n: usize) -> u64 {
        n as u64 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autocorrelation_lag0_is_energy() {
        let x = [1.0, -2.0, 3.0];
        let r = autocorrelation(&x, 2);
        assert!((r[0] - 14.0).abs() < 1e-12);
        assert!((r[1] - (1.0 * -2.0 + -2.0 * 3.0)).abs() < 1e-12);
    }

    #[test]
    fn lu_solves_known_system() {
        // [[2,1],[1,3]] x = [3,5] → x = [4/5, 7/5]
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let perm = lu_decompose(&mut a, 2).unwrap();
        let x = lu_solve(&a, 2, &perm, &[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn lu_with_pivoting_handles_zero_leading_pivot() {
        // [[0,1],[1,0]] needs a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let perm = lu_decompose(&mut a, 2).unwrap();
        let x = lu_solve(&a, 2, &perm, &[7.0, 9.0]);
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singular() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(matches!(
            lu_decompose(&mut a, 2),
            Err(LpcError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn predictor_recovers_ar1_process() {
        // x[t] = 0.9 x[t−1] + tiny noise → a[0] ≈ 0.9.
        let mut x = vec![1.0];
        for t in 1..512 {
            let noise = ((t * 2654435761_usize) % 1000) as f64 / 1e6;
            x.push(0.9 * x[t - 1] + noise);
        }
        let coeffs = predictor_coefficients(&x, 1).unwrap();
        assert!((coeffs[0] - 0.9).abs() < 0.05, "got {}", coeffs[0]);
    }

    #[test]
    fn prediction_error_is_small_for_predictable_signal() {
        let mut x = vec![1.0, 0.95];
        for t in 2..256 {
            x.push(0.95 * x[t - 1]);
        }
        let coeffs = predictor_coefficients(&x, 2).unwrap();
        let err = prediction_error(&x, &coeffs);
        let energy: f64 = x.iter().map(|v| v * v).sum();
        let err_energy: f64 = err.iter().skip(2).map(|v| v * v).sum();
        assert!(
            err_energy < 0.01 * energy,
            "prediction must capture the AR structure"
        );
    }

    #[test]
    fn error_range_matches_full_computation() {
        let x: Vec<f64> = (0..64).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let coeffs = vec![0.5, -0.25];
        let full = prediction_error(&x, &coeffs);
        let part = prediction_error_range(&x, &coeffs, 16, 32);
        assert_eq!(part, full[16..32].to_vec());
    }

    #[test]
    fn split_ranges_reassemble_exactly() {
        // The parallelized actor D must produce the same residuals as the
        // serial one.
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let coeffs = predictor_coefficients(&x, 4).unwrap();
        let full = prediction_error(&x, &coeffs);
        let n_pes = 3;
        let mut reassembled = Vec::new();
        for p in 0..n_pes {
            let start = p * x.len() / n_pes;
            let end = (p + 1) * x.len() / n_pes;
            reassembled.extend(prediction_error_range(&x, &coeffs, start, end));
        }
        assert_eq!(reassembled.len(), full.len());
        for (a, b) in reassembled.iter().zip(&full) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn bad_order_rejected() {
        let x = [1.0, 2.0, 3.0];
        assert!(matches!(
            predictor_coefficients(&x, 0),
            Err(LpcError::BadOrder { .. })
        ));
        assert!(matches!(
            predictor_coefficients(&x, 3),
            Err(LpcError::BadOrder { .. })
        ));
    }

    #[test]
    fn synthesis_inverts_prediction_exactly_without_quantization() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.21).sin() * 2.0).collect();
        let coeffs = predictor_coefficients(&x, 4).unwrap();
        let residual = prediction_error(&x, &coeffs);
        let back = synthesize(&residual, &coeffs);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn synthesis_with_quantized_residual_stays_close() {
        let x: Vec<f64> = (0..256).map(|i| (i as f64 * 0.13).sin()).collect();
        let coeffs = predictor_coefficients(&x, 6).unwrap();
        let residual = prediction_error(&x, &coeffs);
        let q = Quantizer::new(1.0, 8);
        let qres: Vec<f64> = residual
            .iter()
            .map(|&e| q.dequantize(q.quantize(e)))
            .collect();
        let back = synthesize(&qres, &coeffs);
        let err: f64 = back.iter().zip(&x).map(|(a, b)| (a - b) * (a - b)).sum();
        let sig: f64 = x.iter().map(|v| v * v).sum();
        let snr_db = 10.0 * (sig / err.max(1e-12)).log10();
        assert!(
            snr_db > 20.0,
            "8-bit residual coding must exceed 20 dB, got {snr_db:.1}"
        );
    }

    #[test]
    fn quantizer_roundtrip_error_bounded() {
        let q = Quantizer::new(4.0, 8);
        let step = 8.0 / 255.0;
        for i in -40..=40 {
            let x = i as f64 / 10.0;
            let back = q.dequantize(q.quantize(x));
            assert!((back - x).abs() <= step / 2.0 + 1e-12, "x={x} back={back}");
        }
    }

    #[test]
    fn quantizer_saturates_out_of_range() {
        let q = Quantizer::new(1.0, 4);
        assert_eq!(q.quantize(100.0), q.levels() as u16 - 1);
        assert_eq!(q.quantize(-100.0), 0);
    }

    #[test]
    fn hamming_window_tapers_edges() {
        let mut frame = vec![1.0; 32];
        hamming_window(&mut frame);
        assert!(frame[0] < 0.1);
        assert!(frame[31] < 0.1);
        assert!((frame[16] - 1.0).abs() < 0.05);
    }

    #[test]
    fn cost_models_scale_sensibly() {
        assert!(cost::lu_cycles(400, 10) > cost::lu_cycles(100, 10));
        assert!(cost::error_cycles(400, 10) == 400 * 11 + 20);
    }
}

//! Window functions and windowed spectral analysis helpers.
//!
//! LPC front-ends window each frame before autocorrelation; this module
//! collects the standard windows plus a windowed power-spectrum helper
//! used by tooling around the speech application.

use crate::fft::{fft, Complex, FftError};

/// The supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Window {
    /// All-ones (no tapering).
    Rectangular,
    /// `0.54 − 0.46·cos(2πn/(N−1))`.
    Hamming,
    /// `0.5·(1 − cos(2πn/(N−1)))`.
    Hann,
    /// The three-term Blackman window.
    Blackman,
}

impl Window {
    /// Coefficient `n` of an `len`-point window.
    pub fn coefficient(self, n: usize, len: usize) -> f64 {
        if len < 2 {
            return 1.0;
        }
        let x = 2.0 * std::f64::consts::PI * n as f64 / (len - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hamming => 0.54 - 0.46 * x.cos(),
            Window::Hann => 0.5 * (1.0 - x.cos()),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// The full coefficient vector.
    pub fn coefficients(self, len: usize) -> Vec<f64> {
        (0..len).map(|n| self.coefficient(n, len)).collect()
    }

    /// Applies the window in place.
    pub fn apply(self, frame: &mut [f64]) {
        let len = frame.len();
        for (n, x) in frame.iter_mut().enumerate() {
            *x *= self.coefficient(n, len);
        }
    }

    /// Coherent gain (mean coefficient) — used to renormalize spectra.
    pub fn coherent_gain(self, len: usize) -> f64 {
        if len == 0 {
            return 1.0;
        }
        self.coefficients(len).iter().sum::<f64>() / len as f64
    }
}

/// Windowed power spectrum: applies `window`, zero-pads to the next
/// power of two and returns `|X[k]|²` for the non-negative frequencies
/// (`n/2 + 1` bins).
///
/// # Errors
///
/// Propagates [`FftError`] (cannot occur for the padded length, kept in
/// the signature for transparency).
pub fn power_spectrum(frame: &[f64], window: Window) -> Result<Vec<f64>, FftError> {
    let mut data = frame.to_vec();
    window.apply(&mut data);
    let n = data.len().max(1).next_power_of_two();
    let mut buf = vec![Complex::default(); n];
    for (i, &x) in data.iter().enumerate() {
        buf[i] = Complex::new(x, 0.0);
    }
    fft(&mut buf)?;
    Ok(buf[..n / 2 + 1]
        .iter()
        .map(|z| z.re * z.re + z.im * z.im)
        .collect())
}

/// Index of the strongest bin in a power spectrum.
pub fn peak_bin(spectrum: &[f64]) -> Option<usize> {
    spectrum
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite power"))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_taper_except_rectangular() {
        for w in [Window::Hamming, Window::Hann, Window::Blackman] {
            let c = w.coefficients(64);
            assert!(c[0] < 0.12, "{w:?} starts low: {}", c[0]);
            assert!((c[32] - 1.0).abs() < 0.12, "{w:?} peaks mid-frame");
        }
        assert!(Window::Rectangular
            .coefficients(64)
            .iter()
            .all(|&c| c == 1.0));
    }

    #[test]
    fn windows_are_symmetric() {
        for w in [Window::Hamming, Window::Hann, Window::Blackman] {
            let c = w.coefficients(33);
            for i in 0..33 {
                assert!((c[i] - c[32 - i]).abs() < 1e-12, "{w:?} asymmetric at {i}");
            }
        }
    }

    #[test]
    fn hann_sums_to_half() {
        // Hann's coherent gain tends to 0.5 for long windows.
        let g = Window::Hann.coherent_gain(1024);
        assert!((g - 0.5).abs() < 0.01, "gain {g}");
    }

    #[test]
    fn power_spectrum_finds_the_tone() {
        let n = 256;
        let freq_bins = 32.0;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq_bins * i as f64 / n as f64).sin())
            .collect();
        let spec = power_spectrum(&signal, Window::Hann).unwrap();
        assert_eq!(spec.len(), n / 2 + 1);
        assert_eq!(peak_bin(&spec), Some(32));
    }

    #[test]
    fn windowing_reduces_leakage() {
        // An off-bin tone leaks less under Hann than rectangular.
        let n = 256;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 32.37 * i as f64 / n as f64).sin())
            .collect();
        let rect = power_spectrum(&signal, Window::Rectangular).unwrap();
        let hann = power_spectrum(&signal, Window::Hann).unwrap();
        // Compare energy far from the tone (leakage floor).
        let far = |s: &[f64]| s[90..120].iter().sum::<f64>();
        assert!(
            far(&hann) < far(&rect) / 10.0,
            "hann floor {} vs rect {}",
            far(&hann),
            far(&rect)
        );
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(Window::Hann.coefficient(0, 1), 1.0);
        assert!(power_spectrum(&[], Window::Hamming).unwrap().len() == 1);
        assert_eq!(peak_bin(&[]), None);
    }
}

//! Particle filter for crack-growth failure prognosis (application 2).
//!
//! Reproduces the tracking problem of Orchard et al. that the paper uses:
//! recursively estimate a turbine-blade crack length from noisy
//! observations. The state model is a Paris-law growth equation; the
//! filter is sampling-importance-resampling (SIR) with systematic
//! resampling.
//!
//! For the multiprocessor implementation the resampling step is split
//! exactly as in paper §5.3:
//! 1. each PE computes a **partial weight sum** and exchanges it;
//! 2. each PE **locally resamples** a proportionally-allocated share of
//!    the global particle count;
//! 3. **intra-resampling**: surplus particles travel to deficit PEs so
//!    every PE again holds `N/n` particles.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Paris-law crack-growth model with additive Gaussian process noise.
///
/// `a_{k+1} = a_k + c · (β · Δσ · √(π·a_k))^m + w_k`,
/// observed as `y_k = a_k + v_k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrackModel {
    /// Paris-law coefficient `C`.
    pub c: f64,
    /// Paris-law exponent `m`.
    pub m: f64,
    /// Geometry × stress-range factor `β·Δσ`.
    pub stress_factor: f64,
    /// Process noise standard deviation.
    pub process_noise: f64,
    /// Measurement noise standard deviation.
    pub measurement_noise: f64,
}

impl Default for CrackModel {
    fn default() -> Self {
        // Millimetre-scale crack growing over hundreds of load cycles.
        CrackModel {
            c: 1e-3,
            m: 1.3,
            stress_factor: 1.0,
            process_noise: 0.02,
            measurement_noise: 0.15,
        }
    }
}

impl CrackModel {
    /// Deterministic part of one growth step.
    pub fn growth(&self, a: f64) -> f64 {
        let a = a.max(1e-9);
        let dk = self.stress_factor * (std::f64::consts::PI * a).sqrt();
        self.c * dk.powf(self.m)
    }

    /// Propagates a crack length one step with process noise from `rng`.
    pub fn step(&self, a: f64, rng: &mut impl Rng) -> f64 {
        (a + self.growth(a) + gaussian(rng) * self.process_noise).max(0.0)
    }

    /// Simulates a ground-truth trajectory and its noisy observations.
    pub fn simulate(&self, a0: f64, steps: usize, rng: &mut impl Rng) -> (Vec<f64>, Vec<f64>) {
        let mut truth = Vec::with_capacity(steps);
        let mut obs = Vec::with_capacity(steps);
        let mut a = a0;
        for _ in 0..steps {
            a = self.step(a, rng);
            truth.push(a);
            obs.push(a + gaussian(rng) * self.measurement_noise);
        }
        (truth, obs)
    }

    /// Gaussian likelihood `p(y | a)` up to a constant factor.
    pub fn likelihood(&self, a: f64, y: f64) -> f64 {
        let d = (y - a) / self.measurement_noise;
        (-0.5 * d * d).exp().max(1e-300)
    }
}

/// Standard-normal sample via Box–Muller.
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A sampling-importance-resampling particle filter over crack length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParticleFilter {
    /// The dynamics/observation model.
    pub model: CrackModel,
    /// Particle states (crack lengths).
    pub particles: Vec<f64>,
    /// Normalized importance weights (sum = 1).
    pub weights: Vec<f64>,
}

impl ParticleFilter {
    /// Initializes `n` particles uniformly in `[lo, hi]`.
    pub fn new(model: CrackModel, n: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> Self {
        let particles: Vec<f64> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        let weights = vec![1.0 / n as f64; n];
        ParticleFilter {
            model,
            particles,
            weights,
        }
    }

    /// Prediction step (actor "E"): propagate every particle.
    pub fn predict(&mut self, rng: &mut impl Rng) {
        for p in &mut self.particles {
            *p = self.model.step(*p, rng);
        }
    }

    /// Update step (actor "U"): reweight against observation `y` and
    /// normalize.
    pub fn update(&mut self, y: f64) {
        let mut total = 0.0;
        for (p, w) in self.particles.iter().zip(self.weights.iter_mut()) {
            *w *= self.model.likelihood(*p, y);
            total += *w;
        }
        if total <= 0.0 {
            let n = self.weights.len() as f64;
            self.weights.fill(1.0 / n);
        } else {
            for w in &mut self.weights {
                *w /= total;
            }
        }
    }

    /// Update step without normalization: reweight against `y` but keep
    /// raw likelihood-scaled weights. The distributed implementation
    /// needs this — partial weight sums from different PEs are only
    /// comparable before local normalization.
    pub fn update_unnormalized(&mut self, y: f64) {
        for (p, w) in self.particles.iter().zip(self.weights.iter_mut()) {
            *w *= self.model.likelihood(*p, y);
        }
    }

    /// Minimum-mean-square-error estimate (weighted mean).
    pub fn estimate(&self) -> f64 {
        self.particles
            .iter()
            .zip(&self.weights)
            .map(|(p, w)| p * w)
            .sum()
    }

    /// Effective sample size `1 / Σ w²` — resampling is usually triggered
    /// when this falls below `N/2`.
    pub fn effective_sample_size(&self) -> f64 {
        let s: f64 = self.weights.iter().map(|w| w * w).sum();
        if s <= 0.0 {
            0.0
        } else {
            1.0 / s
        }
    }

    /// Systematic resampling (actor "S", serial reference): replaces
    /// particles by replicas with multiplicities proportional to weight
    /// and resets weights to uniform.
    pub fn systematic_resample(&mut self, rng: &mut impl Rng) {
        let n = self.particles.len();
        let new = systematic_draw(&self.particles, &self.weights, n, rng);
        self.particles = new;
        self.weights.fill(1.0 / n as f64);
    }
}

/// Draws `count` particles with multiplicities proportional to `weights`
/// via the low-variance systematic scheme. The paper's scheme: "new
/// samples are exact replicas of some of the old samples, occurring with
/// multiplicities proportional to their previous weights."
pub fn systematic_draw(
    particles: &[f64],
    weights: &[f64],
    count: usize,
    rng: &mut impl Rng,
) -> Vec<f64> {
    assert_eq!(particles.len(), weights.len());
    if particles.is_empty() || count == 0 {
        return Vec::new();
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        // Degenerate: uniform replication.
        return (0..count).map(|i| particles[i % particles.len()]).collect();
    }
    let step = total / count as f64;
    let mut u = rng.gen_range(0.0..step);
    let mut out = Vec::with_capacity(count);
    let mut cum = weights[0];
    let mut i = 0;
    for _ in 0..count {
        while u > cum && i + 1 < particles.len() {
            i += 1;
            cum += weights[i];
        }
        out.push(particles[i]);
        u += step;
    }
    out
}

// ---------------------------------------------------------------------
// Distributed resampling (paper §5.3)
// ---------------------------------------------------------------------

/// Proportional allocation of `total_count` resampled particles to PEs
/// given their partial weight sums, using the largest-remainder method so
/// the counts sum exactly to `total_count`.
pub fn allocate_counts(partial_sums: &[f64], total_count: usize) -> Vec<usize> {
    let total: f64 = partial_sums.iter().sum();
    let n = partial_sums.len();
    if n == 0 {
        return Vec::new();
    }
    if total <= 0.0 {
        // Degenerate: spread evenly.
        let base = total_count / n;
        let mut counts = vec![base; n];
        for c in counts.iter_mut().take(total_count - base * n) {
            *c += 1;
        }
        return counts;
    }
    let exact: Vec<f64> = partial_sums
        .iter()
        .map(|&s| s / total * total_count as f64)
        .collect();
    let mut counts: Vec<usize> = exact.iter().map(|&e| e.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    // Distribute the remainder by largest fractional part.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa).expect("no NaN").then(a.cmp(&b))
    });
    for &i in order.iter().take(total_count - assigned) {
        counts[i] += 1;
    }
    counts
}

/// One planned particle transfer between PEs during intra-resampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exchange {
    /// Sending PE index (has surplus particles).
    pub from: usize,
    /// Receiving PE index (has a deficit).
    pub to: usize,
    /// Number of particles to move.
    pub count: usize,
}

/// Plans the intra-resampling exchanges: PEs whose allocated `counts`
/// exceed `target` ship surplus particles to PEs below `target`, so all
/// PEs end with exactly `target` particles.
///
/// # Panics
///
/// Panics if `counts.len() * target != counts.iter().sum()` — allocation
/// and target must be consistent.
pub fn plan_exchanges(counts: &[usize], target: usize) -> Vec<Exchange> {
    let total: usize = counts.iter().sum();
    assert_eq!(
        total,
        counts.len() * target,
        "allocation must redistribute exactly the global particle count"
    );
    let mut surplus: Vec<(usize, usize)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > target)
        .map(|(i, &c)| (i, c - target))
        .collect();
    let mut deficit: Vec<(usize, usize)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c < target)
        .map(|(i, &c)| (i, target - c))
        .collect();
    let mut plan = Vec::new();
    let (mut si, mut di) = (0, 0);
    while si < surplus.len() && di < deficit.len() {
        let move_n = surplus[si].1.min(deficit[di].1);
        plan.push(Exchange {
            from: surplus[si].0,
            to: deficit[di].0,
            count: move_n,
        });
        surplus[si].1 -= move_n;
        deficit[di].1 -= move_n;
        if surplus[si].1 == 0 {
            si += 1;
        }
        if deficit[di].1 == 0 {
            di += 1;
        }
    }
    plan
}

/// Remaining-useful-life estimate: propagates each particle forward
/// (with process noise) until its crack length crosses `threshold`,
/// returning the per-particle step counts — the distribution failure
/// prognosis reports. Particles that survive `horizon` steps are
/// censored at `horizon`.
pub fn remaining_useful_life(
    model: &CrackModel,
    particles: &[f64],
    threshold: f64,
    horizon: usize,
    rng: &mut impl Rng,
) -> Vec<usize> {
    particles
        .iter()
        .map(|&p0| {
            let mut a = p0;
            for step in 0..horizon {
                if a >= threshold {
                    return step;
                }
                a = model.step(a, rng);
            }
            horizon
        })
        .collect()
}

/// Summary statistics of a RUL distribution: `(mean, 10th percentile,
/// 90th percentile)` in steps.
pub fn rul_summary(mut rul: Vec<usize>) -> (f64, usize, usize) {
    if rul.is_empty() {
        return (0.0, 0, 0);
    }
    rul.sort_unstable();
    let mean = rul.iter().sum::<usize>() as f64 / rul.len() as f64;
    let p10 = rul[rul.len() / 10];
    let p90 = rul[rul.len() * 9 / 10];
    (mean, p10, p90)
}

/// Cycle-cost models for the particle-filter actors (pipelined datapaths,
/// a handful of cycles per particle).
pub mod cost {
    /// Prediction (state propagation) over `p` particles.
    pub fn estimate_cycles(p: usize) -> u64 {
        12 * p as u64 + 30
    }

    /// Weight update over `p` particles (exp evaluation dominated).
    pub fn update_cycles(p: usize) -> u64 {
        18 * p as u64 + 30
    }

    /// Local resampling of `p` particles.
    pub fn resample_cycles(p: usize) -> u64 {
        8 * p as u64 + 40
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn model_growth_is_monotone_in_crack_length() {
        let m = CrackModel::default();
        assert!(m.growth(2.0) > m.growth(1.0));
        assert!(m.growth(1.0) > 0.0);
    }

    #[test]
    fn filter_tracks_simulated_crack() {
        let mut r = rng();
        let model = CrackModel::default();
        let (truth, obs) = model.simulate(1.0, 60, &mut r);
        let mut pf = ParticleFilter::new(model, 300, 0.5, 1.5, &mut r);
        let mut errs = Vec::new();
        for (t, &y) in obs.iter().enumerate() {
            pf.predict(&mut r);
            pf.update(y);
            if pf.effective_sample_size() < 150.0 {
                pf.systematic_resample(&mut r);
            }
            if t >= 10 {
                errs.push((pf.estimate() - truth[t]).abs());
            }
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(
            mean_err < 2.0 * model.measurement_noise,
            "filter must beat raw measurements: {mean_err}"
        );
    }

    #[test]
    fn weights_stay_normalized() {
        let mut r = rng();
        let model = CrackModel::default();
        let mut pf = ParticleFilter::new(model, 100, 0.5, 1.5, &mut r);
        pf.predict(&mut r);
        pf.update(1.0);
        let sum: f64 = pf.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn systematic_resample_concentrates_on_heavy_particles() {
        let mut r = rng();
        let particles = vec![1.0, 2.0, 3.0, 4.0];
        let weights = vec![0.0, 0.9, 0.1, 0.0];
        let drawn = systematic_draw(&particles, &weights, 1000, &mut r);
        let n2 = drawn.iter().filter(|&&p| p == 2.0).count();
        let n4 = drawn.iter().filter(|&&p| p == 4.0).count();
        assert!(
            n2 > 850 && n2 < 950,
            "≈90% replicas of the heavy particle, got {n2}"
        );
        assert_eq!(n4, 0);
    }

    #[test]
    fn ess_detects_degeneracy() {
        let model = CrackModel::default();
        let pf_uniform = ParticleFilter {
            model,
            particles: vec![1.0; 100],
            weights: vec![0.01; 100],
        };
        assert!((pf_uniform.effective_sample_size() - 100.0).abs() < 1e-6);
        let mut degen = pf_uniform.clone();
        degen.weights = vec![0.0; 100];
        degen.weights[3] = 1.0;
        assert!((degen.effective_sample_size() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn allocate_counts_sums_exactly() {
        let sums = [0.5, 0.25, 0.125, 0.125];
        let counts = allocate_counts(&sums, 200);
        assert_eq!(counts.iter().sum::<usize>(), 200);
        assert_eq!(counts, vec![100, 50, 25, 25]);
    }

    #[test]
    fn allocate_counts_handles_remainders() {
        let sums = [1.0, 1.0, 1.0];
        let counts = allocate_counts(&sums, 100);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert!(counts.iter().all(|&c| c == 33 || c == 34));
    }

    #[test]
    fn allocate_counts_degenerate_weights() {
        let counts = allocate_counts(&[0.0, 0.0], 10);
        assert_eq!(counts.iter().sum::<usize>(), 10);
    }

    #[test]
    fn exchange_plan_balances_all_pes() {
        let counts = vec![70, 10, 20, 100];
        let target = 50;
        let plan = plan_exchanges(&counts, target);
        let mut after = counts.clone();
        for x in &plan {
            after[x.from] -= x.count;
            after[x.to] += x.count;
        }
        assert!(after.iter().all(|&c| c == target), "after: {after:?}");
        // Surplus PEs only send; deficit PEs only receive.
        for x in &plan {
            assert!(counts[x.from] > target);
            assert!(counts[x.to] < target);
            assert!(x.count > 0);
        }
    }

    #[test]
    fn exchange_plan_empty_when_balanced() {
        assert!(plan_exchanges(&[50, 50], 50).is_empty());
    }

    #[test]
    #[should_panic(expected = "allocation must redistribute")]
    fn exchange_plan_rejects_inconsistent_totals() {
        let _ = plan_exchanges(&[10, 10], 50);
    }

    #[test]
    fn distributed_resampling_equals_global_in_distribution() {
        // Partition particles over 2 PEs, run the 3-step distributed
        // scheme, and check the pooled result has the same weighted mean
        // as a global resample (within Monte-Carlo tolerance).
        let mut r = rng();
        let n = 2000;
        let particles: Vec<f64> = (0..n).map(|i| (i % 50) as f64 / 10.0).collect();
        let raw: Vec<f64> = particles.iter().map(|&p| (p - 2.0).abs() + 0.01).collect();
        let total: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / total).collect();

        // Global reference.
        let global = systematic_draw(&particles, &weights, n, &mut r);
        let gmean = global.iter().sum::<f64>() / n as f64;

        // Distributed: split halves.
        let halves = [(0..n / 2), (n / 2..n)];
        let partial: Vec<f64> = halves
            .clone()
            .into_iter()
            .map(|range| range.map(|i| weights[i]).sum())
            .collect();
        let alloc = allocate_counts(&partial, n);
        let mut pooled = Vec::new();
        for (range, &count) in halves.into_iter().zip(&alloc) {
            let idx: Vec<usize> = range.collect();
            let p: Vec<f64> = idx.iter().map(|&i| particles[i]).collect();
            let w: Vec<f64> = idx.iter().map(|&i| weights[i]).collect();
            pooled.extend(systematic_draw(&p, &w, count, &mut r));
        }
        assert_eq!(pooled.len(), n);
        let dmean = pooled.iter().sum::<f64>() / n as f64;
        assert!(
            (gmean - dmean).abs() < 0.1,
            "global {gmean} vs distributed {dmean}"
        );
    }

    #[test]
    fn rul_grows_with_distance_to_threshold() {
        let mut r = rng();
        let model = CrackModel {
            process_noise: 0.005,
            ..CrackModel::default()
        };
        let near: Vec<f64> = vec![2.8; 200];
        let far: Vec<f64> = vec![1.0; 200];
        let rul_near = remaining_useful_life(&model, &near, 3.0, 10_000, &mut r);
        let rul_far = remaining_useful_life(&model, &far, 3.0, 10_000, &mut r);
        let (m_near, ..) = rul_summary(rul_near);
        let (m_far, p10, p90) = rul_summary(rul_far);
        assert!(m_far > m_near * 2.0, "far {m_far} vs near {m_near}");
        assert!(p10 <= p90);
    }

    #[test]
    fn rul_censors_at_horizon() {
        let mut r = rng();
        let model = CrackModel {
            c: 1e-9,
            process_noise: 0.0,
            ..CrackModel::default()
        };
        let rul = remaining_useful_life(&model, &[0.1; 10], 100.0, 50, &mut r);
        assert!(rul.iter().all(|&s| s == 50), "glacial growth never crosses");
        let crossed = remaining_useful_life(&model, &[200.0; 4], 100.0, 50, &mut r);
        assert!(crossed.iter().all(|&s| s == 0), "already failed");
    }

    #[test]
    fn rul_summary_of_empty_is_zero() {
        assert_eq!(rul_summary(Vec::new()), (0.0, 0, 0));
    }

    #[test]
    fn cost_models_scale_with_particles() {
        assert!(cost::estimate_cycles(300) > cost::estimate_cycles(50));
        assert_eq!(cost::update_cycles(100), 1830);
    }
}

//! Iterative radix-2 complex FFT (actor "B" of application 1).

use std::f64::consts::PI;

use serde::{Deserialize, Serialize};

/// A complex number (re, im) — minimal, `Copy`, sufficient for the FFT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

/// Errors from the FFT routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftError {
    /// Input length is not a power of two.
    NotPowerOfTwo {
        /// Offending length.
        len: usize,
    },
}

impl std::fmt::Display for FftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FftError::NotPowerOfTwo { len } => {
                write!(f, "fft length {len} is not a power of two")
            }
        }
    }
}

impl std::error::Error for FftError {}

/// In-place forward FFT (decimation in time).
///
/// # Errors
///
/// [`FftError::NotPowerOfTwo`] unless `data.len()` is a power of two
/// (zero-length input is accepted as a no-op).
pub fn fft(data: &mut [Complex]) -> Result<(), FftError> {
    transform(data, false)
}

/// In-place inverse FFT (includes the 1/N scaling).
///
/// # Errors
///
/// Same conditions as [`fft`].
pub fn ifft(data: &mut [Complex]) -> Result<(), FftError> {
    transform(data, true)?;
    let n = data.len() as f64;
    for z in data.iter_mut() {
        z.re /= n;
        z.im /= n;
    }
    Ok(())
}

fn transform(data: &mut [Complex], inverse: bool) -> Result<(), FftError> {
    let n = data.len();
    if n <= 1 {
        // Zero- and one-point transforms are identities.
        return Ok(());
    }
    if !n.is_power_of_two() {
        return Err(FftError::NotPowerOfTwo { len: n });
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for block in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = block[i];
                let v = block[i + half].mul(w);
                block[i] = u.add(v);
                block[i + half] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// FFT of a real signal: convenience wrapper returning the complex
/// spectrum.
///
/// # Errors
///
/// Same conditions as [`fft`].
pub fn fft_real(signal: &[f64]) -> Result<Vec<Complex>, FftError> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft(&mut data)?;
    Ok(data)
}

/// Cycle-cost model of a streaming FFT core: `~5·N·log2(N)` cycles plus
/// load/unload — the figure used when an FFT actor fires in the platform
/// simulator.
pub fn fft_cycles(n: usize) -> u64 {
    if n < 2 {
        return 8;
    }
    let logn = (usize::BITS - (n - 1).leading_zeros()) as u64;
    5 * n as u64 * logn + 2 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (j, &v) in x.iter().enumerate() {
                    let ang = -2.0 * PI * (k * j) as f64 / n as f64;
                    acc = acc.add(v.mul(Complex::new(ang.cos(), ang.sin())));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let expected = naive_dft(&x);
        let mut got = x.clone();
        fft(&mut got).unwrap();
        for (a, b) in got.iter().zip(&expected) {
            assert!((a.re - b.re).abs() < 1e-9, "{a:?} vs {b:?}");
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn roundtrip_fft_ifft() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new(i as f64, -(i as f64) / 3.0))
            .collect();
        let mut y = x.clone();
        fft(&mut y).unwrap();
        ifft(&mut y).unwrap();
        for (a, b) in y.iter().zip(&x) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::default(); 8];
        x[0] = Complex::new(1.0, 0.0);
        fft(&mut x).unwrap();
        for z in &x {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sine_concentrates_in_one_bin() {
        let n = 32;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 4.0 * i as f64 / n as f64).sin())
            .collect();
        let spec = fft_real(&signal).unwrap();
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert!(peak == 4 || peak == n - 4, "peak at bin {peak}");
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex::default(); 12];
        assert_eq!(fft(&mut x), Err(FftError::NotPowerOfTwo { len: 12 }));
    }

    #[test]
    fn empty_input_is_noop() {
        let mut x: Vec<Complex> = Vec::new();
        assert!(fft(&mut x).is_ok());
    }

    #[test]
    fn cost_model_grows_superlinearly() {
        assert!(fft_cycles(1024) > 2 * fft_cycles(512));
        assert!(fft_cycles(2) >= 8);
    }

    #[test]
    fn linearity_property() {
        // FFT(a·x + y) = a·FFT(x) + FFT(y)
        let x: Vec<Complex> = (0..16).map(|i| Complex::new(i as f64, 0.0)).collect();
        let y: Vec<Complex> = (0..16).map(|i| Complex::new(0.0, (i * i) as f64)).collect();
        let a = 2.5;
        let mut lhs: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(u, v)| Complex::new(a * u.re + v.re, a * u.im + v.im))
            .collect();
        fft(&mut lhs).unwrap();
        let mut fx = x.clone();
        let mut fy = y.clone();
        fft(&mut fx).unwrap();
        fft(&mut fy).unwrap();
        for i in 0..16 {
            let want_re = a * fx[i].re + fy[i].re;
            let want_im = a * fx[i].im + fy[i].im;
            assert!((lhs[i].re - want_re).abs() < 1e-9);
            assert!((lhs[i].im - want_im).abs() < 1e-9);
        }
    }
}

//! Canonical Huffman coding (actor "E" of application 1).
//!
//! Encodes the quantized prediction-error symbols. The implementation is
//! a classic frequency-driven tree build followed by canonicalization, so
//! code tables are reproducible and compact to transmit.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use serde::{Deserialize, Serialize};

/// Errors from Huffman coding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HuffmanError {
    /// No symbols were provided to build a code from.
    EmptyInput,
    /// The bitstream ended mid-codeword or decoded to an unknown prefix.
    CorruptBitstream {
        /// Bit offset where decoding failed.
        bit: usize,
    },
    /// A symbol outside the code table was submitted for encoding.
    UnknownSymbol {
        /// The symbol.
        symbol: u16,
    },
}

impl std::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HuffmanError::EmptyInput => write!(f, "cannot build a huffman code from no symbols"),
            HuffmanError::CorruptBitstream { bit } => {
                write!(f, "bitstream corrupt near bit {bit}")
            }
            HuffmanError::UnknownSymbol { symbol } => {
                write!(f, "symbol {symbol} missing from the code table")
            }
        }
    }
}

impl std::error::Error for HuffmanError {}

/// A canonical Huffman code over `u16` symbols.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HuffmanCode {
    /// (symbol, code length in bits), sorted canonically.
    lengths: Vec<(u16, u8)>,
    /// symbol → (code bits, length).
    encode_table: HashMap<u16, (u32, u8)>,
}

impl HuffmanCode {
    /// Builds a code from observed symbols.
    ///
    /// # Errors
    ///
    /// [`HuffmanError::EmptyInput`] if `symbols` is empty.
    pub fn from_symbols(symbols: &[u16]) -> Result<Self, HuffmanError> {
        if symbols.is_empty() {
            return Err(HuffmanError::EmptyInput);
        }
        let mut freq: HashMap<u16, u64> = HashMap::new();
        for &s in symbols {
            *freq.entry(s).or_insert(0) += 1;
        }
        Self::from_frequencies(&freq)
    }

    /// Builds a code from a symbol→frequency map.
    ///
    /// # Errors
    ///
    /// [`HuffmanError::EmptyInput`] if `freq` is empty.
    pub fn from_frequencies(freq: &HashMap<u16, u64>) -> Result<Self, HuffmanError> {
        if freq.is_empty() {
            return Err(HuffmanError::EmptyInput);
        }
        // Degenerate single-symbol alphabet: one 1-bit code.
        if freq.len() == 1 {
            let &s = freq.keys().next().expect("nonempty");
            let lengths = vec![(s, 1u8)];
            return Ok(Self::canonicalize(lengths));
        }

        // Tree build: heap of (weight, tiebreak, node).
        #[derive(Debug)]
        enum Node {
            Leaf(u16),
            Internal(Box<Node>, Box<Node>),
        }
        let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut arena: Vec<Node> = Vec::new();
        let mut entries: Vec<(&u16, &u64)> = freq.iter().collect();
        entries.sort(); // deterministic tiebreak
        for (tie, (&sym, &w)) in entries.iter().enumerate() {
            arena.push(Node::Leaf(sym));
            heap.push(Reverse((w, tie as u64, arena.len() - 1)));
        }
        let mut tie = entries.len() as u64;
        while heap.len() > 1 {
            let Reverse((w1, _, i1)) = heap.pop().expect("len>1");
            let Reverse((w2, _, i2)) = heap.pop().expect("len>1");
            // Move children out of the arena via placeholder swap.
            let left = std::mem::replace(&mut arena[i1], Node::Leaf(0));
            let right = std::mem::replace(&mut arena[i2], Node::Leaf(0));
            arena.push(Node::Internal(Box::new(left), Box::new(right)));
            heap.push(Reverse((w1 + w2, tie, arena.len() - 1)));
            tie += 1;
        }
        let Reverse((_, _, root)) = heap.pop().expect("one root");

        // Collect code lengths.
        let mut lengths: Vec<(u16, u8)> = Vec::new();
        fn walk(node: &Node, depth: u8, out: &mut Vec<(u16, u8)>) {
            match node {
                Node::Leaf(s) => out.push((*s, depth.max(1))),
                Node::Internal(l, r) => {
                    walk(l, depth + 1, out);
                    walk(r, depth + 1, out);
                }
            }
        }
        walk(&arena[root], 0, &mut lengths);
        Ok(Self::canonicalize(lengths))
    }

    /// Assigns canonical codes given `(symbol, length)` pairs.
    fn canonicalize(mut lengths: Vec<(u16, u8)>) -> Self {
        lengths.sort_by_key(|&(s, l)| (l, s));
        let mut encode_table = HashMap::new();
        let mut code: u32 = 0;
        let mut prev_len = 0u8;
        for &(sym, len) in &lengths {
            code <<= len - prev_len;
            encode_table.insert(sym, (code, len));
            code += 1;
            prev_len = len;
        }
        HuffmanCode {
            lengths,
            encode_table,
        }
    }

    /// Number of distinct symbols in the code.
    pub fn alphabet_size(&self) -> usize {
        self.lengths.len()
    }

    /// Code length in bits for `symbol`, if present.
    pub fn code_length(&self, symbol: u16) -> Option<u8> {
        self.encode_table.get(&symbol).map(|&(_, l)| l)
    }

    /// Encodes `symbols` into a bitstream (MSB-first) and its bit length.
    ///
    /// # Errors
    ///
    /// [`HuffmanError::UnknownSymbol`] if a symbol is not in the table.
    pub fn encode(&self, symbols: &[u16]) -> Result<(Vec<u8>, usize), HuffmanError> {
        let mut bits: Vec<u8> = Vec::new();
        let mut bitlen = 0usize;
        let mut current = 0u8;
        let mut fill = 0u8;
        for &s in symbols {
            let &(code, len) = self
                .encode_table
                .get(&s)
                .ok_or(HuffmanError::UnknownSymbol { symbol: s })?;
            for b in (0..len).rev() {
                let bit = ((code >> b) & 1) as u8;
                current = (current << 1) | bit;
                fill += 1;
                bitlen += 1;
                if fill == 8 {
                    bits.push(current);
                    current = 0;
                    fill = 0;
                }
            }
        }
        if fill > 0 {
            bits.push(current << (8 - fill));
        }
        Ok((bits, bitlen))
    }

    /// Decodes `count` symbols from a bitstream produced by
    /// [`HuffmanCode::encode`].
    ///
    /// # Errors
    ///
    /// [`HuffmanError::CorruptBitstream`] if the stream is exhausted or an
    /// invalid prefix is encountered.
    pub fn decode(
        &self,
        bits: &[u8],
        bitlen: usize,
        count: usize,
    ) -> Result<Vec<u16>, HuffmanError> {
        // Build decode map: (length, code) → symbol.
        let mut decode_map: HashMap<(u8, u32), u16> = HashMap::new();
        let mut max_len = 0u8;
        for (&sym, &(code, len)) in &self.encode_table {
            decode_map.insert((len, code), sym);
            max_len = max_len.max(len);
        }
        let mut out = Vec::with_capacity(count);
        let mut pos = 0usize;
        while out.len() < count {
            let mut code = 0u32;
            let mut len = 0u8;
            loop {
                if pos >= bitlen {
                    return Err(HuffmanError::CorruptBitstream { bit: pos });
                }
                let byte = bits[pos / 8];
                let bit = (byte >> (7 - (pos % 8))) & 1;
                code = (code << 1) | u32::from(bit);
                len += 1;
                pos += 1;
                if let Some(&sym) = decode_map.get(&(len, code)) {
                    out.push(sym);
                    break;
                }
                if len > max_len {
                    return Err(HuffmanError::CorruptBitstream { bit: pos });
                }
            }
        }
        Ok(out)
    }

    /// Expected bits per symbol under `freq` — the compression figure of
    /// merit.
    pub fn expected_bits(&self, freq: &HashMap<u16, u64>) -> f64 {
        let total: u64 = freq.values().sum();
        if total == 0 {
            return 0.0;
        }
        freq.iter()
            .map(|(&s, &w)| {
                let len = self.code_length(s).unwrap_or(0) as f64;
                w as f64 * len
            })
            .sum::<f64>()
            / total as f64
    }
}

/// Cycle-cost model: table-driven encode, one symbol per cycle plus
/// bit-pack overhead.
pub fn huffman_cycles(n_symbols: usize) -> u64 {
    2 * n_symbols as u64 + 30
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_random_symbols() {
        let symbols: Vec<u16> = (0..500).map(|i| ((i * 7919) % 17) as u16).collect();
        let code = HuffmanCode::from_symbols(&symbols).unwrap();
        let (bits, bitlen) = code.encode(&symbols).unwrap();
        let back = code.decode(&bits, bitlen, symbols.len()).unwrap();
        assert_eq!(back, symbols);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90 % of symbols are 0 → entropy ≪ log2(alphabet).
        let mut symbols = vec![0u16; 900];
        symbols.extend((0..100).map(|i| (1 + i % 7) as u16));
        let code = HuffmanCode::from_symbols(&symbols).unwrap();
        let mut freq = HashMap::new();
        for &s in &symbols {
            *freq.entry(s).or_insert(0u64) += 1;
        }
        let bps = code.expected_bits(&freq);
        assert!(
            bps < 2.0,
            "expected < 2 bits/symbol on skewed data, got {bps}"
        );
        // Frequent symbol gets the shortest code.
        let zero_len = code.code_length(0).unwrap();
        for s in 1..8 {
            assert!(code.code_length(s).unwrap() >= zero_len);
        }
    }

    #[test]
    fn single_symbol_alphabet() {
        let symbols = vec![42u16; 10];
        let code = HuffmanCode::from_symbols(&symbols).unwrap();
        assert_eq!(code.alphabet_size(), 1);
        let (bits, bitlen) = code.encode(&symbols).unwrap();
        assert_eq!(bitlen, 10);
        let back = code.decode(&bits, bitlen, 10).unwrap();
        assert_eq!(back, symbols);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            HuffmanCode::from_symbols(&[]),
            Err(HuffmanError::EmptyInput)
        ));
    }

    #[test]
    fn unknown_symbol_rejected() {
        let code = HuffmanCode::from_symbols(&[1, 2, 3]).unwrap();
        assert!(matches!(
            code.encode(&[99]),
            Err(HuffmanError::UnknownSymbol { symbol: 99 })
        ));
    }

    #[test]
    fn corrupt_stream_detected() {
        let symbols: Vec<u16> = (0..32).map(|i| (i % 5) as u16).collect();
        let code = HuffmanCode::from_symbols(&symbols).unwrap();
        let (bits, bitlen) = code.encode(&symbols).unwrap();
        // Ask for more symbols than were encoded.
        assert!(matches!(
            code.decode(&bits, bitlen, symbols.len() + 1),
            Err(HuffmanError::CorruptBitstream { .. })
        ));
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let symbols: Vec<u16> = (0..256).map(|i| (i % 23) as u16).collect();
        let code = HuffmanCode::from_symbols(&symbols).unwrap();
        let codes: Vec<(u32, u8)> = (0..23)
            .filter_map(|s| code.encode_table.get(&(s as u16)).copied())
            .collect();
        for (i, &(c1, l1)) in codes.iter().enumerate() {
            for (j, &(c2, l2)) in codes.iter().enumerate() {
                if i == j {
                    continue;
                }
                if l1 <= l2 {
                    assert_ne!(c1, c2 >> (l2 - l1), "code {i} is a prefix of {j}");
                }
            }
        }
    }

    #[test]
    fn kraft_inequality_holds_with_equality() {
        let symbols: Vec<u16> = (0..1000).map(|i| ((i * i) % 31) as u16).collect();
        let code = HuffmanCode::from_symbols(&symbols).unwrap();
        let kraft: f64 = code
            .lengths
            .iter()
            .map(|&(_, l)| 2f64.powi(-i32::from(l)))
            .sum();
        assert!(
            (kraft - 1.0).abs() < 1e-9,
            "complete huffman codes are tight: {kraft}"
        );
    }

    #[test]
    fn expected_bits_beats_fixed_length_on_nonuniform_data() {
        let mut freq = HashMap::new();
        freq.insert(0u16, 100u64);
        freq.insert(1, 50);
        freq.insert(2, 25);
        freq.insert(3, 25);
        let code = HuffmanCode::from_frequencies(&freq).unwrap();
        assert!(code.expected_bits(&freq) < 2.0);
    }

    #[test]
    fn cost_model_linear() {
        assert_eq!(huffman_cycles(100), 230);
    }
}

//! # spi-dsp — signal-processing kernels for the SPI evaluation apps
//!
//! Functional implementations (plus cycle-cost models) of every kernel
//! the DATE 2008 SPI paper's two applications need:
//!
//! * [`fft`] — radix-2 complex FFT (application 1, actor B);
//! * [`lpc`] — windowing, autocorrelation, **LU-decomposition** predictor
//!   solve, prediction error, quantization (actors C and D);
//! * [`huffman`] — canonical Huffman coding of the error symbols
//!   (actor E);
//! * [`particle`] — Paris-law crack-growth particle filter with the
//!   paper's three-step **distributed resampling** (application 2);
//! * [`fir`] — FIR filtering and polyphase decimation for the multirate
//!   filter-bank example;
//! * [`window`] — window functions and windowed spectral analysis.
//!
//! Every kernel is a pure function or small struct so it can run both
//! standalone (unit tests, examples) and inside `spi-platform` compute
//! closures (timed simulation).
//!
//! # Examples
//!
//! One frame of the application-1 pipeline, end to end:
//!
//! ```
//! use spi_dsp::lpc::{predictor_coefficients, prediction_error, Quantizer};
//! use spi_dsp::huffman::HuffmanCode;
//!
//! let frame: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
//! let coeffs = predictor_coefficients(&frame, 8)?;
//! let residual = prediction_error(&frame, &coeffs);
//! let q = Quantizer::new(1.0, 6);
//! let symbols: Vec<u16> = residual.iter().map(|&e| q.quantize(e)).collect();
//! let code = HuffmanCode::from_symbols(&symbols)?;
//! let (bits, bitlen) = code.encode(&symbols)?;
//! assert!(bitlen <= symbols.len() * 6, "compression must not expand 6-bit data");
//! # let _ = bits;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fft;
pub mod fir;
pub mod huffman;
pub mod lpc;
pub mod particle;
pub mod window;

//! FIR filtering and polyphase decimation — the multirate kernels used
//! by the filter-bank example (a classic SDF/CSDF showcase workload).

use serde::{Deserialize, Serialize};

/// A direct-form FIR filter with persistent state, suitable for
//  streaming frame-by-frame inside an actor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fir {
    taps: Vec<f64>,
    history: Vec<f64>,
}

impl Fir {
    /// Creates a filter from its tap coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty — a zero-tap filter has no output
    /// definition and indicates a construction bug.
    pub fn new(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR filters need at least one tap");
        let history = vec![0.0; taps.len() - 1];
        Fir { taps, history }
    }

    /// A length-`n` moving-average (boxcar) filter.
    pub fn moving_average(n: usize) -> Self {
        Fir::new(vec![1.0 / n.max(1) as f64; n.max(1)])
    }

    /// A windowed-sinc low-pass with `taps` coefficients and normalized
    /// cutoff `fc` (0 < fc < 0.5, in cycles/sample).
    pub fn lowpass(taps: usize, fc: f64) -> Self {
        let taps = taps.max(1);
        let m = (taps - 1) as f64;
        let coeffs: Vec<f64> = (0..taps)
            .map(|i| {
                let x = i as f64 - m / 2.0;
                let sinc = if x.abs() < 1e-12 {
                    2.0 * fc
                } else {
                    (2.0 * std::f64::consts::PI * fc * x).sin() / (std::f64::consts::PI * x)
                };
                // Hamming window.
                let w = 0.54 - 0.46 * (2.0 * std::f64::consts::PI * i as f64 / m.max(1.0)).cos();
                sinc * w
            })
            .collect();
        let sum: f64 = coeffs.iter().sum();
        Fir::new(coeffs.into_iter().map(|c| c / sum).collect())
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// `true` only for the degenerate single-tap filter… never: taps ≥ 1.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Filters one frame, carrying state across calls.
    pub fn process(&mut self, frame: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(frame.len());
        for &x in frame {
            // history holds the previous len-1 inputs, newest first.
            let mut acc = self.taps[0] * x;
            for (k, &h) in self.history.iter().enumerate() {
                acc += self.taps[k + 1] * h;
            }
            out.push(acc);
            if !self.history.is_empty() {
                self.history.rotate_right(1);
                self.history[0] = x;
            }
        }
        out
    }

    /// Resets the filter state.
    pub fn reset(&mut self) {
        self.history.fill(0.0);
    }
}

/// Decimates by `factor`, keeping every `factor`-th sample (offset 0).
pub fn decimate(frame: &[f64], factor: usize) -> Vec<f64> {
    if factor <= 1 {
        return frame.to_vec();
    }
    frame.iter().step_by(factor).copied().collect()
}

/// Upsamples by `factor` (zero insertion).
pub fn upsample(frame: &[f64], factor: usize) -> Vec<f64> {
    if factor <= 1 {
        return frame.to_vec();
    }
    let mut out = Vec::with_capacity(frame.len() * factor);
    for &x in frame {
        out.push(x);
        out.extend(std::iter::repeat_n(0.0, factor - 1));
    }
    out
}

/// Cycle cost of an `n`-sample frame through a `t`-tap MAC pipeline.
pub fn fir_cycles(n: usize, t: usize) -> u64 {
    (n as u64) * (t as u64) + 16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_filter_passes_through() {
        let mut f = Fir::new(vec![1.0]);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(f.process(&x), x);
    }

    #[test]
    fn moving_average_smooths_steps() {
        let mut f = Fir::moving_average(4);
        let out = f.process(&[4.0; 8]);
        // After the filter fills, output settles at the input level.
        assert!((out[7] - 4.0).abs() < 1e-12);
        assert!(out[0] < 4.0, "transient while history is zero");
    }

    #[test]
    fn state_carries_across_frames() {
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.4).sin()).collect();
        let mut whole = Fir::moving_average(3);
        let expected = whole.process(&x);
        let mut split = Fir::moving_average(3);
        let mut got = split.process(&x[..7]);
        got.extend(split.process(&x[7..]));
        for (a, b) in got.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn lowpass_attenuates_high_frequency() {
        let mut f = Fir::lowpass(31, 0.1);
        let n = 256;
        let low: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 0.02 * i as f64).sin())
            .collect();
        let high: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 0.4 * i as f64).sin())
            .collect();
        let low_out = f.process(&low);
        f.reset();
        let high_out = f.process(&high);
        let energy = |v: &[f64]| v[64..].iter().map(|x| x * x).sum::<f64>();
        assert!(
            energy(&low_out) > 20.0 * energy(&high_out),
            "low {} vs high {}",
            energy(&low_out),
            energy(&high_out)
        );
    }

    #[test]
    fn decimate_and_upsample() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(decimate(&x, 2), vec![1.0, 3.0, 5.0]);
        assert_eq!(decimate(&x, 1), x);
        assert_eq!(upsample(&[1.0, 2.0], 3), vec![1.0, 0.0, 0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn reset_clears_history() {
        let mut f = Fir::moving_average(3);
        f.process(&[9.0; 5]);
        f.reset();
        let out = f.process(&[0.0; 3]);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn zero_taps_panics() {
        let _ = Fir::new(vec![]);
    }

    #[test]
    fn cost_model_scales() {
        assert_eq!(fir_cycles(100, 8), 816);
        assert!(fir_cycles(200, 8) > fir_cycles(100, 8));
    }
}

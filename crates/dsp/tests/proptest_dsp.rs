//! Property-based tests of the DSP kernels.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use spi_dsp::fft::{fft, fft_real, ifft, Complex};
use spi_dsp::huffman::HuffmanCode;
use spi_dsp::lpc::{autocorrelation, prediction_error, Quantizer};
use spi_dsp::particle::{systematic_draw, CrackModel};

proptest! {
    #[test]
    fn fft_ifft_is_identity(
        signal in prop::collection::vec(-100.0f64..100.0, 1..5)
            .prop_map(|seed| {
                // Expand the seed into a power-of-two-length signal.
                let n = 64;
                (0..n).map(|i| {
                    seed.iter()
                        .enumerate()
                        .map(|(k, &a)| a * ((i * (k + 1)) as f64 * 0.1).sin())
                        .sum()
                }).collect::<Vec<f64>>()
            })
    ) {
        let mut data: Vec<Complex> =
            signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft(&mut data).expect("power of two");
        ifft(&mut data).expect("power of two");
        for (z, &x) in data.iter().zip(&signal) {
            prop_assert!((z.re - x).abs() < 1e-8);
            prop_assert!(z.im.abs() < 1e-8);
        }
    }

    #[test]
    fn parseval_energy_conservation(
        signal in prop::collection::vec(-10.0f64..10.0, 32..33)
    ) {
        let spec = fft_real(&signal).expect("32-point");
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 =
            spec.iter().map(|z| z.re * z.re + z.im * z.im).sum::<f64>() / signal.len() as f64;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
    }

    #[test]
    fn autocorrelation_lag0_dominates(
        signal in prop::collection::vec(-10.0f64..10.0, 8..64),
        order in 1usize..6,
    ) {
        let r = autocorrelation(&signal, order.min(signal.len() - 1));
        for &lag in &r[1..] {
            prop_assert!(lag.abs() <= r[0] + 1e-9, "r0 {} lag {lag}", r[0]);
        }
    }

    #[test]
    fn prediction_error_of_zero_coeffs_is_signal(
        signal in prop::collection::vec(-5.0f64..5.0, 4..32)
    ) {
        let err = prediction_error(&signal, &[]);
        prop_assert_eq!(err, signal);
    }

    #[test]
    fn quantizer_roundtrip_within_half_step(
        x in -10.0f64..10.0,
        bits in 2u32..12,
    ) {
        let q = Quantizer::new(10.0, bits);
        let step = 20.0 / (q.levels() - 1) as f64;
        let back = q.dequantize(q.quantize(x));
        prop_assert!((back - x).abs() <= step / 2.0 + 1e-9);
    }

    #[test]
    fn huffman_never_expands_beyond_fixed_length(
        symbols in prop::collection::vec(0u16..16, 1..500)
    ) {
        let code = HuffmanCode::from_symbols(&symbols).expect("nonempty");
        let (_, bitlen) = code.encode(&symbols).expect("known symbols");
        // An alphabet of ≤16 symbols never needs > ~15 bits/symbol even
        // in the most skewed Huffman tree; sanity-bound the output and
        // require it beats (or ties) 16-bit raw storage.
        prop_assert!(bitlen <= symbols.len() * 16);
        prop_assert!(bitlen >= symbols.len(), "at least 1 bit per symbol");
    }

    #[test]
    fn systematic_draw_multiplicities_proportional(
        heavy_idx in 0usize..8,
        heavy_weight in 5.0f64..50.0,
    ) {
        let particles: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let mut weights = vec![1.0; 8];
        weights[heavy_idx] = heavy_weight;
        let mut rng = StdRng::seed_from_u64(42);
        let drawn = systematic_draw(&particles, &weights, 8000, &mut rng);
        let total: f64 = weights.iter().sum();
        let expected = heavy_weight / total * 8000.0;
        let got = drawn.iter().filter(|&&p| p == heavy_idx as f64).count() as f64;
        // Systematic resampling has very low variance: within ±1 of the
        // proportional share per 1000 draws.
        prop_assert!((got - expected).abs() <= 8.0 + expected * 0.01);
    }

    #[test]
    fn crack_growth_is_monotone_without_noise(a0 in 0.1f64..5.0, steps in 1usize..50) {
        let model = CrackModel { process_noise: 0.0, ..CrackModel::default() };
        let mut a = a0;
        for _ in 0..steps {
            let next = a + model.growth(a);
            prop_assert!(next > a);
            a = next;
        }
    }
}

//! # spi-fault — deterministic fault injection for SPI transports
//!
//! The supervision layer in `spi-platform` claims a strong property:
//! under its declared budgets, a run either converges to the fault-free
//! output or terminates with an error naming the faulted edge — never a
//! hang, never silent corruption. This crate supplies the adversary
//! that claim is tested against.
//!
//! A [`FaultPlan`] is a list of [`FaultSpec`]s — *(channel, message
//! index, kind)* triples — built explicitly or sampled from a seed
//! ([`FaultPlan::random`]). [`FaultPlan::into_decorator`] compiles the
//! plan into a [`spi_platform::TransportDecorator`]: channels named by
//! the plan are wrapped in a [`FaultyTransport`] that counts blocking
//! send calls and fires the planned fault when the count matches, so
//! the same plan on the same program faults the same tokens every run
//! — *schedule-indexed* determinism, independent of thread timing.
//!
//! ## Fault kinds and their observable contracts
//!
//! | kind | wire effect | typed signal to the sender |
//! |------|-------------|-----------------------------|
//! | [`FaultKind::Delay`] | token arrives late | none (send succeeds) |
//! | [`FaultKind::Stall`] | link stalls for a long beat | none (send succeeds) |
//! | [`FaultKind::Drop`] | token never delivered | [`InjectedFault::Dropped`] |
//! | [`FaultKind::Duplicate`] | token delivered twice | none (send succeeds) |
//! | [`FaultKind::Corrupt`] | bit-flipped copy delivered | [`InjectedFault::Corrupted`] |
//!
//! `Drop` and `Corrupt` report a typed [`TransportError::Injected`] so
//! a *supervised* sender retransmits the same sequence number (the
//! receiver's CRC check rejects the corrupt copy, its sequence dedup
//! discards the duplicate). An *unsupervised* runner surfaces the same
//! error as a terminal `ChannelFault` naming the edge — injected
//! faults are never silent.
//!
//! Every fault that fires is appended to the shared [`InjectionLog`]
//! returned alongside the decorator, so tests can assert exactly which
//! faults the run absorbed.
//!
//! ```
//! use spi_fault::{FaultKind, FaultPlan};
//! use spi_platform::ChannelId;
//!
//! let plan = FaultPlan::new()
//!     .inject(ChannelId(0), 2, FaultKind::Drop)
//!     .inject(ChannelId(0), 5, FaultKind::Corrupt);
//! let (decorator, log) = plan.into_decorator().unwrap();
//! // ThreadedRunner::new().supervise(policy).decorate_transports(decorator)…
//! # let _ = (decorator, log);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};
use spi_platform::{
    BufferPool, ChannelId, InjectedFault, Token, Transport, TransportDecorator, TransportError,
};

/// One kind of injected transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The token is delivered after an extra `micros` microseconds —
    /// models a transient slow link. Invisible to the sender.
    Delay {
        /// Added latency in microseconds.
        micros: u64,
    },
    /// The link stalls for `millis` milliseconds before delivering —
    /// long enough to trip receiver deadlines and exercise the retry
    /// path (or, past the retry budget, degradation).
    Stall {
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// The token is never delivered; the sender gets
    /// [`InjectedFault::Dropped`].
    Drop,
    /// The token is delivered twice (the second copy is dropped
    /// silently if the channel is full — duplication can never push
    /// occupancy past the eq. (2) bound).
    Duplicate,
    /// A copy with a flipped byte is delivered and the sender gets
    /// [`InjectedFault::Corrupted`] — under supervision the receiver's
    /// CRC check rejects the bad frame and the retransmission heals it.
    Corrupt,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Delay { micros } => write!(f, "delay({micros}µs)"),
            FaultKind::Stall { millis } => write!(f, "stall({millis}ms)"),
            FaultKind::Drop => write!(f, "drop"),
            FaultKind::Duplicate => write!(f, "duplicate"),
            FaultKind::Corrupt => write!(f, "corrupt"),
        }
    }
}

/// One planned fault: fire `kind` on the `message_index`-th blocking
/// send call on `channel` (0-based; retransmissions count, so a fault
/// at index *i* can land on the retry of a fault at *i − 1*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The edge to fault.
    pub channel: ChannelId,
    /// Which send call on that edge to fault (0-based).
    pub message_index: u64,
    /// What to do to it.
    pub kind: FaultKind,
}

/// A plan rejected by [`FaultPlan::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlanError {
    /// Two faults target the same `(channel, message_index)` — the
    /// plan would be ambiguous.
    DuplicateTarget {
        /// The doubly-targeted channel.
        channel: ChannelId,
        /// The doubly-targeted send index.
        message_index: u64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::DuplicateTarget {
                channel,
                message_index,
            } => write!(
                f,
                "fault plan targets {channel} message {message_index} more than once"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A fault that actually fired at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionRecord {
    /// The faulted edge.
    pub channel: ChannelId,
    /// The send index the fault fired on.
    pub message_index: u64,
    /// The fault that fired.
    pub kind: FaultKind,
}

/// Shared log of fired injections, filled by every [`FaultyTransport`]
/// the decorator created.
pub type InjectionLog = Arc<Mutex<Vec<InjectionRecord>>>;

/// A deterministic set of planned faults over a system's edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one fault (builder-style).
    #[must_use]
    pub fn inject(mut self, channel: ChannelId, message_index: u64, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec {
            channel,
            message_index,
            kind,
        });
        self
    }

    /// Samples `count` faults over `n_channels` edges and the first
    /// `messages` sends of each, deterministically from `seed`. Fault
    /// kinds are drawn uniformly; delays are 10–200 µs and stalls 1–3 ms
    /// — sized to perturb scheduling without blowing sensible retry
    /// budgets (chaos tests wanting budget-busting stalls add them
    /// explicitly via [`FaultPlan::inject`]).
    pub fn random(seed: u64, n_channels: usize, messages: u64, count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut taken: HashSet<(usize, u64)> = HashSet::new();
        let mut plan = FaultPlan::new();
        if n_channels == 0 || messages == 0 {
            return plan;
        }
        let max_faults = (n_channels as u64 * messages).min(count as u64);
        while (plan.faults.len() as u64) < max_faults {
            let ch = rng.gen_range(0..n_channels);
            let idx = rng.gen_range(0..messages);
            if !taken.insert((ch, idx)) {
                continue;
            }
            let kind = match rng.gen_range(0..5u32) {
                0 => FaultKind::Delay {
                    micros: rng.gen_range(10..200u64),
                },
                1 => FaultKind::Stall {
                    millis: rng.gen_range(1..3u64),
                },
                2 => FaultKind::Drop,
                3 => FaultKind::Duplicate,
                _ => FaultKind::Corrupt,
            };
            plan = plan.inject(ChannelId(ch), idx, kind);
        }
        plan
    }

    /// The planned faults, in insertion order.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Rejects ambiguous plans (two faults on one `(channel, index)`).
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let mut seen = HashSet::new();
        for f in &self.faults {
            if !seen.insert((f.channel, f.message_index)) {
                return Err(FaultPlanError::DuplicateTarget {
                    channel: f.channel,
                    message_index: f.message_index,
                });
            }
        }
        Ok(())
    }

    /// Compiles the plan into a transport decorator for
    /// [`spi_platform::ThreadedRunner::decorate_transports`], plus the
    /// shared log of faults that actually fire. Channels the plan does
    /// not name pass through undecorated (zero overhead).
    ///
    /// # Errors
    ///
    /// [`FaultPlanError`] when [`FaultPlan::validate`] fails.
    pub fn into_decorator(self) -> Result<(Arc<TransportDecorator>, InjectionLog), FaultPlanError> {
        self.validate()?;
        let mut by_channel: HashMap<usize, HashMap<u64, FaultKind>> = HashMap::new();
        for f in self.faults {
            by_channel
                .entry(f.channel.0)
                .or_default()
                .insert(f.message_index, f.kind);
        }
        let log: InjectionLog = Arc::new(Mutex::new(Vec::new()));
        let log_out = Arc::clone(&log);
        let decorator: Arc<TransportDecorator> = Arc::new(
            move |ch: ChannelId, inner: Box<dyn Transport>| -> Box<dyn Transport> {
                match by_channel.get(&ch.0) {
                    Some(faults) => Box::new(FaultyTransport {
                        inner,
                        channel: ch,
                        faults: faults.clone(),
                        sends: AtomicU64::new(0),
                        log: Arc::clone(&log),
                    }),
                    None => inner,
                }
            },
        );
        Ok((decorator, log_out))
    }
}

/// A [`Transport`] decorator that fires planned faults on blocking
/// sends, indexed by the per-channel send-call count. Receives and
/// non-blocking sends pass straight through to the wrapped transport.
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    channel: ChannelId,
    faults: HashMap<u64, FaultKind>,
    sends: AtomicU64,
    log: InjectionLog,
}

impl FaultyTransport {
    fn record(&self, message_index: u64, kind: FaultKind) {
        self.log
            .lock()
            .expect("injection log")
            .push(InjectionRecord {
                channel: self.channel,
                message_index,
                kind,
            });
    }
}

impl Transport for FaultyTransport {
    fn capacity_bytes(&self) -> usize {
        self.inner.capacity_bytes()
    }

    fn max_message_bytes(&self) -> usize {
        self.inner.max_message_bytes()
    }

    fn len_bytes(&self) -> usize {
        self.inner.len_bytes()
    }

    fn occupancy(&self) -> usize {
        self.inner.occupancy()
    }

    fn snapshot(&self) -> (usize, usize) {
        self.inner.snapshot()
    }

    fn try_send(&self, data: &[u8]) -> Result<(), TransportError> {
        self.inner.try_send(data)
    }

    fn try_recv(&self) -> Result<Vec<u8>, TransportError> {
        self.inner.try_recv()
    }

    fn send(&self, data: &[u8], timeout: Duration) -> Result<(), TransportError> {
        let idx = self.sends.fetch_add(1, Ordering::Relaxed);
        let Some(&kind) = self.faults.get(&idx) else {
            return self.inner.send(data, timeout);
        };
        self.record(idx, kind);
        match kind {
            FaultKind::Delay { micros } => {
                spi_platform::shim::sleep(Duration::from_micros(micros));
                self.inner.send(data, timeout)
            }
            FaultKind::Stall { millis } => {
                spi_platform::shim::sleep(Duration::from_millis(millis));
                self.inner.send(data, timeout)
            }
            FaultKind::Drop => Err(TransportError::Injected {
                fault: InjectedFault::Dropped,
            }),
            FaultKind::Duplicate => {
                self.inner.send(data, timeout)?;
                // The duplicate is delivered opportunistically: when
                // the channel is full it vanishes, so duplication can
                // never exceed the channel's static bound.
                let _ = self.inner.try_send(data);
                Ok(())
            }
            FaultKind::Corrupt => {
                let mut bad = data.to_vec();
                if let Some(last) = bad.last_mut() {
                    *last ^= 0x5A;
                }
                // Deliver the corrupted copy (best effort: a full
                // channel degrades the fault into a drop) and tell the
                // sender, which retransmits under supervision.
                let _ = self.inner.try_send(&bad);
                Err(TransportError::Injected {
                    fault: InjectedFault::Corrupted,
                })
            }
        }
    }

    fn send_with(
        &self,
        len: usize,
        fill: &mut dyn FnMut(&mut [u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        // Materialize the payload so the fault logic in `send` sees the
        // bytes; a fault injector is not a zero-copy fast path.
        let mut buf = vec![0u8; len];
        fill(&mut buf);
        self.send(&buf, timeout)
    }

    fn recv_with(
        &self,
        consume: &mut dyn FnMut(&[u8]),
        timeout: Duration,
    ) -> Result<(), TransportError> {
        self.inner.recv_with(consume, timeout)
    }

    fn send_in_place(
        &self,
        max_len: usize,
        frame: &mut dyn FnMut(&mut [u8]) -> usize,
        timeout: Duration,
    ) -> Result<(), TransportError> {
        // Materialize the frame so the fault logic in `send` sees the
        // bytes; a fault injector is not a zero-copy fast path.
        let mut buf = vec![0u8; max_len];
        let n = frame(&mut buf).min(max_len);
        buf.truncate(n);
        self.send(&buf, timeout)
    }

    fn send_token(&self, mut token: Token, timeout: Duration) -> Result<(), TransportError> {
        let idx = self.sends.fetch_add(1, Ordering::Relaxed);
        let Some(&kind) = self.faults.get(&idx) else {
            return self.inner.send_token(token, timeout);
        };
        self.record(idx, kind);
        match kind {
            FaultKind::Delay { micros } => {
                spi_platform::shim::sleep(Duration::from_micros(micros));
                self.inner.send_token(token, timeout)
            }
            FaultKind::Stall { millis } => {
                spi_platform::shim::sleep(Duration::from_millis(millis));
                self.inner.send_token(token, timeout)
            }
            // Dropping the token releases its pool slot, if any — a
            // dropped lease can never leak (the fault leak test pins
            // this down).
            FaultKind::Drop => Err(TransportError::Injected {
                fault: InjectedFault::Dropped,
            }),
            FaultKind::Duplicate => {
                // Stage the duplicate in one of the inner transport's
                // own pool slots when one is free — no heap allocation
                // — falling back to an owned copy otherwise.
                let dup = match self.inner.pool().and_then(|p| p.try_acquire()) {
                    Some(mut lease) if lease.capacity() >= token.len() => {
                        lease[..token.len()].copy_from_slice(&token);
                        lease.truncate(token.len());
                        Token::Pooled(lease)
                    }
                    _ => Token::Owned(token.to_vec()),
                };
                self.inner.send_token(token, timeout)?;
                // The duplicate is delivered opportunistically: when
                // the channel is full it vanishes, so duplication can
                // never exceed the channel's static bound.
                let _ = self.inner.try_send_token(dup);
                Ok(())
            }
            FaultKind::Corrupt => {
                // Flip the last byte in place — directly over the pool
                // slot for a pooled lease, no re-allocation — deliver
                // the bad copy best-effort, and tell the sender, which
                // retransmits under supervision.
                if let Some(last) = token.last_mut() {
                    *last ^= 0x5A;
                }
                let _ = self.inner.try_send_token(token);
                Err(TransportError::Injected {
                    fault: InjectedFault::Corrupted,
                })
            }
        }
    }

    fn try_send_token(&self, token: Token) -> Result<(), TransportError> {
        self.inner.try_send_token(token)
    }

    fn recv_token(&self, timeout: Duration) -> Result<Token, TransportError> {
        self.inner.recv_token(timeout)
    }

    fn try_recv_token(&self) -> Result<Token, TransportError> {
        self.inner.try_recv_token()
    }

    fn pool(&self) -> Option<&BufferPool> {
        self.inner.pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_platform::TransportKind;

    fn transport() -> Box<dyn Transport> {
        TransportKind::Locked.instantiate(&spi_platform::ChannelSpec {
            capacity_bytes: 64,
            max_message_bytes: 8,
            ..Default::default()
        })
    }

    fn wrap(plan: FaultPlan) -> (Box<dyn Transport>, InjectionLog) {
        let (decorator, log) = plan.into_decorator().unwrap();
        (decorator(ChannelId(0), transport()), log)
    }

    const T: Duration = Duration::from_millis(100);

    #[test]
    fn empty_plan_leaves_channels_undecorated() {
        let (decorator, log) = FaultPlan::new().into_decorator().unwrap();
        let t = decorator(ChannelId(0), transport());
        t.send(b"hello", T).unwrap();
        assert_eq!(t.recv(T).unwrap(), b"hello");
        assert!(log.lock().unwrap().is_empty());
    }

    #[test]
    fn drop_faults_the_planned_send_only() {
        let (t, log) = wrap(FaultPlan::new().inject(ChannelId(0), 1, FaultKind::Drop));
        t.send(b"msg0", T).unwrap();
        let err = t.send(b"msg1", T).unwrap_err();
        assert!(matches!(
            err,
            TransportError::Injected {
                fault: InjectedFault::Dropped
            }
        ));
        t.send(b"msg1-retry", T).unwrap();
        assert_eq!(t.recv(T).unwrap(), b"msg0");
        assert_eq!(t.recv(T).unwrap(), b"msg1-retry");
        let records = log.lock().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].message_index, 1);
        assert_eq!(records[0].kind, FaultKind::Drop);
    }

    #[test]
    fn duplicate_delivers_twice_within_capacity() {
        let (t, _log) = wrap(FaultPlan::new().inject(ChannelId(0), 0, FaultKind::Duplicate));
        t.send(b"twice", T).unwrap();
        assert_eq!(t.recv(T).unwrap(), b"twice");
        assert_eq!(t.recv(T).unwrap(), b"twice");
        assert!(t.try_recv().is_err());
    }

    #[test]
    fn corrupt_delivers_flipped_copy_and_reports() {
        let (t, _log) = wrap(FaultPlan::new().inject(ChannelId(0), 0, FaultKind::Corrupt));
        let err = t.send(b"data", T).unwrap_err();
        assert!(matches!(
            err,
            TransportError::Injected {
                fault: InjectedFault::Corrupted
            }
        ));
        let got = t.recv(T).unwrap();
        assert_eq!(got.len(), 4);
        assert_ne!(got, b"data");
        assert_eq!(got[3], b'a' ^ 0x5A);
    }

    #[test]
    fn delay_and_stall_deliver_late_but_intact() {
        let (t, log) = wrap(
            FaultPlan::new()
                .inject(ChannelId(0), 0, FaultKind::Delay { micros: 100 })
                .inject(ChannelId(0), 1, FaultKind::Stall { millis: 1 }),
        );
        t.send(b"a", T).unwrap();
        t.send(b"b", T).unwrap();
        assert_eq!(t.recv(T).unwrap(), b"a");
        assert_eq!(t.recv(T).unwrap(), b"b");
        assert_eq!(log.lock().unwrap().len(), 2);
    }

    #[test]
    fn send_with_path_is_also_faulted() {
        let (t, _log) = wrap(FaultPlan::new().inject(ChannelId(0), 0, FaultKind::Drop));
        let err = t
            .send_with(3, &mut |buf| buf.copy_from_slice(b"abc"), T)
            .unwrap_err();
        assert!(matches!(err, TransportError::Injected { .. }));
    }

    #[test]
    fn validate_rejects_ambiguous_plans() {
        let plan = FaultPlan::new()
            .inject(ChannelId(2), 7, FaultKind::Drop)
            .inject(ChannelId(2), 7, FaultKind::Corrupt);
        assert_eq!(
            plan.validate(),
            Err(FaultPlanError::DuplicateTarget {
                channel: ChannelId(2),
                message_index: 7
            })
        );
        assert!(plan.into_decorator().is_err());
    }

    #[test]
    fn random_plans_are_deterministic_and_valid() {
        let a = FaultPlan::random(42, 3, 100, 10);
        let b = FaultPlan::random(42, 3, 100, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        a.validate().unwrap();
        let c = FaultPlan::random(43, 3, 100, 10);
        assert_ne!(a, c, "different seeds give different plans");
        // Degenerate shapes saturate instead of looping forever.
        assert_eq!(FaultPlan::random(1, 0, 100, 10).len(), 0);
        assert_eq!(FaultPlan::random(1, 2, 2, 100).len(), 4);
    }
}

//! Slot-conservation under injected faults: whatever a fault does to a
//! message — drop it, corrupt it, duplicate it, delay it — the pooled
//! slot carrying it must come home. A leak here is permanent capacity
//! loss: the pointer transport's sender stalls forever once the free
//! ring runs dry, which no retry budget can heal.

use std::time::Duration;

use spi_fault::{FaultKind, FaultPlan};
use spi_platform::{ChannelId, PointerTransport, Token, Transport};

const T: Duration = Duration::from_secs(2);
const SLOT: usize = 64;

fn faulty_pointer_transport(plan: FaultPlan) -> (Box<dyn Transport>, usize) {
    let (decorate, _log) = plan.into_decorator().unwrap();
    let inner = PointerTransport::new(8 * SLOT, SLOT);
    let slots = inner.slots();
    (decorate(ChannelId(0), Box::new(inner)), slots)
}

/// Drives `messages` lease-path sends through `t`, draining deliveries
/// as it goes (send errors from injected faults are expected), then
/// asserts every pool slot is free again.
fn assert_slots_conserved(t: &dyn Transport, slots: usize, messages: u8) {
    let pool = t.pool().expect("fault decorator forwards the pool").clone();
    assert_eq!(pool.available(), slots, "pool starts full");

    for i in 0..messages {
        let mut lease = pool.acquire(T).expect("slot available");
        lease[0] = i;
        lease.truncate(SLOT / 2);
        // Dropped / corrupted sends surface as errors; the lease was
        // consumed either way and its slot must still be released.
        let _ = t.send_token(Token::from(lease), T);
        while let Ok(token) = t.try_recv_token() {
            drop(token);
        }
    }
    while let Ok(token) = t.try_recv_token() {
        drop(token);
    }
    assert_eq!(pool.available(), slots, "injected faults leaked pool slots");
}

#[test]
fn every_fault_kind_returns_its_slot() {
    for kind in [
        FaultKind::Drop,
        FaultKind::Corrupt,
        FaultKind::Duplicate,
        FaultKind::Delay { micros: 50 },
        FaultKind::Stall { millis: 1 },
    ] {
        // Fault every fourth message so faulted and clean sends
        // interleave while the pool cycles through all its slots.
        let mut plan = FaultPlan::new();
        for idx in [0u64, 4, 8, 12] {
            plan = plan.inject(ChannelId(0), idx, kind);
        }
        let (t, slots) = faulty_pointer_transport(plan);
        assert_slots_conserved(t.as_ref(), slots, 16);
    }
}

#[test]
fn mixed_fault_burst_returns_all_slots() {
    // All kinds in one run, clustered early so duplicates contend for
    // slots while later messages are still in flight.
    let plan = FaultPlan::new()
        .inject(ChannelId(0), 0, FaultKind::Duplicate)
        .inject(ChannelId(0), 1, FaultKind::Drop)
        .inject(ChannelId(0), 2, FaultKind::Corrupt)
        .inject(ChannelId(0), 3, FaultKind::Duplicate)
        .inject(ChannelId(0), 4, FaultKind::Drop)
        .inject(ChannelId(0), 5, FaultKind::Delay { micros: 10 });
    let (t, slots) = faulty_pointer_transport(plan);
    assert_slots_conserved(t.as_ref(), slots, 24);
}

#[test]
fn unsent_and_mid_frame_leases_release_on_drop() {
    let inner = PointerTransport::new(8 * SLOT, SLOT);
    let slots = inner.slots();
    let pool = inner.buffer_pool().clone();

    // A lease dropped without ever being sent (e.g. the framing step
    // errored) returns its slot.
    let lease = pool.acquire(T).unwrap();
    assert_eq!(pool.available(), slots - 1);
    drop(lease);
    assert_eq!(pool.available(), slots);

    // Same through the Token wrapper, as runner error paths see it.
    let token = Token::from(pool.acquire(T).unwrap());
    assert_eq!(pool.available(), slots - 1);
    drop(token);
    assert_eq!(pool.available(), slots);
}

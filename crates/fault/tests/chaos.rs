//! Chaos property test: randomized seeded fault plans driven through
//! the DES / Locked / Ring equivalence harness under supervision.
//!
//! The contract under test is the tentpole robustness claim: for ANY
//! fault plan, a supervised run either **converges to the fault-free
//! output byte-for-byte** or **terminates with a typed error naming a
//! faulted edge** — it never hangs (every channel op is bounded by the
//! retry budget) and never silently corrupts (the strict `Fail`
//! degradation policy forbids substitution, so success means exact
//! bytes).
//!
//! Case count defaults to 200 and can be tuned with `CHAOS_CASES` (the
//! TSan stress harness runs fewer, slower cases).

use std::time::Duration;

use proptest::prelude::*;

use spi_fault::{FaultKind, FaultPlan};
use spi_platform::{
    ChannelId, ChannelSpec, Machine, Op, PeLocal, PlatformError, Program, SupervisionPolicy,
    ThreadedRunner, TransportKind,
};

/// Parameters of one randomized linear pipeline (mirrors the
/// engine-equivalence harness).
#[derive(Debug, Clone, Copy)]
struct PipelineParams {
    n_pes: u64,
    payload: u64,
    cap_msgs: u64,
    iterations: u64,
    seed: u64,
}

/// Builds a random linear pipeline: PE 0 produces `payload`-byte
/// messages derived from (iteration, seed); every later PE folds the
/// first byte of each arrival into its "acc" store key and, except the
/// last, forwards a deterministically transformed message. The
/// per-message bound always equals the payload size, so both transports
/// enforce identical slot-granular admission.
fn random_pipeline(p: PipelineParams) -> (Vec<ChannelSpec>, Vec<Program>) {
    let n = p.n_pes as usize;
    let payload = p.payload as usize;
    let specs: Vec<ChannelSpec> = (0..n - 1)
        .map(|_| ChannelSpec {
            capacity_bytes: (p.cap_msgs as usize) * payload,
            max_message_bytes: payload,
            ..ChannelSpec::default()
        })
        .collect();
    let mut programs = Vec::with_capacity(n);
    let seed = p.seed;
    programs.push(Program::new(
        vec![Op::Send {
            channel: ChannelId(0),
            payload: Box::new(move |l: &mut PeLocal| {
                (0..payload)
                    .map(|b| (l.iter.wrapping_mul(31).wrapping_add(seed + b as u64) % 251) as u8)
                    .collect()
            }),
        }],
        p.iterations,
    ));
    for pe in 1..n {
        let input = ChannelId(pe - 1);
        let mul = (2 * pe + 1) as u8;
        let add = (seed % 256) as u8;
        let mut ops = vec![
            Op::Recv { channel: input },
            Op::Compute {
                label: format!("stage{pe}"),
                work: Box::new(move |l: &mut PeLocal| {
                    let v = l.take_from(input).expect("message");
                    let out: Vec<u8> = v
                        .iter()
                        .map(|&b| b.wrapping_mul(mul).wrapping_add(add))
                        .collect();
                    let mut acc = l.store.remove("acc").unwrap_or_default();
                    acc.push(out[0]);
                    l.store.insert("acc".into(), acc);
                    l.store.insert("fwd".into(), out);
                    1
                }),
            },
        ];
        if pe != n - 1 {
            ops.push(Op::Send {
                channel: ChannelId(pe),
                payload: Box::new(|l: &mut PeLocal| l.store.get("fwd").cloned().expect("staged")),
            });
        }
        programs.push(Program::new(ops, p.iterations));
    }
    (specs, programs)
}

/// Fault-free DES reference run.
fn des_reference(p: PipelineParams) -> Vec<(std::collections::HashMap<String, Vec<u8>>, usize)> {
    let (specs, programs) = random_pipeline(p);
    let mut machine = Machine::new();
    for s in &specs {
        machine.add_channel(*s);
    }
    for prog in programs {
        machine.add_pe(prog);
    }
    let des = machine.run().expect("fault-free DES reference");
    des.locals
        .iter()
        .map(|l| (l.store.clone(), l.leftover_inbox))
        .collect()
}

/// Per-attempt deadline of the chaos policy.
const DEADLINE: Duration = Duration::from_millis(100);
/// Retries beyond the first attempt.
const RETRIES: u32 = 2;
/// A stall guaranteed to bust the whole retry budget:
/// `deadline × (retries + 1)` is 300 ms, so 1 s clears it more than 3×.
const BIG_STALL_MS: u64 = 1_000;

fn chaos_policy() -> SupervisionPolicy {
    SupervisionPolicy::retry(RETRIES).with_deadline(DEADLINE)
}

/// Adds a budget-busting stall on a free `(channel, index)` slot, or
/// returns the plan unchanged when the random plan saturated them all.
fn add_big_stall(plan: FaultPlan, n_channels: u64, iterations: u64, seed: u64) -> FaultPlan {
    for probe in 0..n_channels * iterations {
        let slot = (seed + probe) % (n_channels * iterations);
        let (ch, idx) = ((slot / iterations) as usize, slot % iterations);
        let candidate = plan.clone().inject(
            ChannelId(ch),
            idx,
            FaultKind::Stall {
                millis: BIG_STALL_MS,
            },
        );
        if candidate.validate().is_ok() {
            return candidate;
        }
    }
    plan
}

/// `CHAOS_CASES` override for slow harnesses (TSan) — defaults to 200.
fn chaos_cases() -> u32 {
    std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    /// 200+ randomized seeded fault plans over randomized pipelines,
    /// each driven through both threaded transports under strict
    /// supervision: converge byte-identically or fail naming an edge.
    #[test]
    fn randomized_fault_plans_never_hang_or_corrupt(
        n_pes in 2u64..5,
        payload in 1u64..9,
        cap_msgs in 1u64..5,
        iterations in 4u64..14,
        seed in 0u64..0x1_0000_0000,
        n_faults in 0usize..7,
        stall_roll in 0u32..20,
    ) {
        let p = PipelineParams { n_pes, payload, cap_msgs, iterations, seed };
        let n_channels = n_pes - 1;
        let reference = des_reference(p);

        let mut plan = FaultPlan::random(seed, n_channels as usize, iterations, n_faults);
        // ~5% of cases add a stall long enough to exhaust the retry
        // budget, pinning the error path (the benign faults alone
        // usually heal).
        if stall_roll == 0 {
            plan = add_big_stall(plan, n_channels, iterations, seed);
        }
        plan.validate().expect("generated plans are unambiguous");

        for kind in [TransportKind::Locked, TransportKind::Ring] {
            let (specs, programs) = random_pipeline(p);
            let (decorator, _log) = plan.clone().into_decorator().expect("valid plan");
            let outcome = ThreadedRunner::new()
                .transport(kind)
                .supervise(chaos_policy())
                .decorate_transports(decorator)
                .run(&specs, programs);
            match outcome {
                Ok(results) => {
                    // Convergence must be exact: the strict Fail policy
                    // never substitutes, so success means the faults
                    // were absorbed without a byte of deviation.
                    for (i, r) in results.iter().enumerate() {
                        prop_assert_eq!(
                            &reference[i].0, &r.store,
                            "silent corruption on PE {} under {:?} with {:?} plan {:?}",
                            i, kind, p, plan
                        );
                        prop_assert_eq!(reference[i].1, r.leftover_inbox);
                    }
                }
                Err(e) => {
                    // Termination must be a typed supervision error
                    // naming an edge of the system.
                    let channel = match &e {
                        PlatformError::RetryBudgetExhausted { channel, .. } => *channel,
                        PlatformError::TokensLost { channel, .. } => *channel,
                        PlatformError::ChannelFault { channel, .. } => *channel,
                        other => panic!(
                            "non-supervision failure under {kind:?} with {p:?} plan {plan:?}: {other}"
                        ),
                    };
                    prop_assert!(
                        (channel.0 as u64) < n_channels,
                        "error names a real edge, got {} under {:?}", channel, kind
                    );
                    prop_assert!(
                        e.to_string().contains(&format!("ch{}", channel.0)),
                        "diagnostic names the edge: {}", e
                    );
                }
            }
        }
    }
}

/// The deterministic error path: on a 2-PE system the only edge is
/// ch0, so a budget-busting stall must surface as a supervision error
/// naming exactly that edge.
#[test]
fn budget_busting_stall_names_the_only_edge() {
    let p = PipelineParams {
        n_pes: 2,
        payload: 4,
        cap_msgs: 2,
        iterations: 6,
        seed: 7,
    };
    for kind in [TransportKind::Locked, TransportKind::Ring] {
        let (specs, programs) = random_pipeline(p);
        let plan = FaultPlan::new().inject(
            ChannelId(0),
            2,
            FaultKind::Stall {
                millis: BIG_STALL_MS,
            },
        );
        let (decorator, log) = plan.into_decorator().expect("valid plan");
        let err = ThreadedRunner::new()
            .transport(kind)
            .supervise(chaos_policy())
            .decorate_transports(decorator)
            .run(&specs, programs)
            .unwrap_err();
        match &err {
            PlatformError::RetryBudgetExhausted { channel, .. }
            | PlatformError::TokensLost { channel, .. } => {
                assert_eq!(*channel, ChannelId(0), "{kind:?}: {err}");
            }
            other => panic!("expected supervision error under {kind:?}, got {other}"),
        }
        assert!(err.to_string().contains("ch0"), "{err}");
        let fired = log.lock().unwrap();
        assert_eq!(fired.len(), 1, "exactly the planned stall fired");
        assert_eq!(fired[0].channel, ChannelId(0));
    }
}

//! One Criterion entry per paper experiment: times a single regeneration
//! of each figure/table data point so regressions in the simulation
//! stack are caught.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig6_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("fig6_point_n2_256", |b| {
        b.iter(|| spi_bench::fig6_scaling(&[256], &[2], 4))
    });
    group.finish();
}

fn bench_fig7_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("fig7_point_n2_100", |b| {
        b.iter(|| spi_bench::fig7_scaling(&[100], &[2], 6))
    });
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("table1_n4", |b| b.iter(|| spi_bench::table1_resources(4)));
    group.bench_function("table2_n2", |b| b.iter(|| spi_bench::table2_resources(2)));
    group.finish();
}

fn bench_resync_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("fig3_resync_n3", |b| b.iter(|| spi_bench::fig3_resync(3)));
    group.bench_function("fig5_resync_n2", |b| b.iter(|| spi_bench::fig5_resync(2)));
    group.finish();
}

criterion_group!(
    benches,
    bench_fig6_point,
    bench_fig7_point,
    bench_tables,
    bench_resync_figures
);
criterion_main!(benches);

//! Micro-benchmarks of the DSP kernels behind both applications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use spi_dsp::fft::{fft, Complex};
use spi_dsp::huffman::HuffmanCode;
use spi_dsp::lpc::{prediction_error, predictor_coefficients};
use spi_dsp::particle::{systematic_draw, CrackModel, ParticleFilter};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [256usize, 1024] {
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut d = data.clone();
                fft(&mut d).expect("power of two");
                d
            })
        });
    }
    group.finish();
}

fn bench_lpc(c: &mut Criterion) {
    let frame: Vec<f64> = (0..512).map(|i| (i as f64 * 0.17).sin() * 2.0).collect();
    c.bench_function("lpc/predictor_order8", |b| {
        b.iter(|| predictor_coefficients(&frame, 8).expect("solvable"))
    });
    let coeffs = predictor_coefficients(&frame, 8).expect("solvable");
    c.bench_function("lpc/prediction_error_512", |b| {
        b.iter(|| prediction_error(&frame, &coeffs))
    });
}

fn bench_huffman(c: &mut Criterion) {
    let symbols: Vec<u16> = (0..4096).map(|i| ((i * i) % 37) as u16).collect();
    let code = HuffmanCode::from_symbols(&symbols).expect("nonempty");
    c.bench_function("huffman/build_4096", |b| {
        b.iter(|| HuffmanCode::from_symbols(&symbols).expect("nonempty"))
    });
    c.bench_function("huffman/encode_4096", |b| {
        b.iter(|| code.encode(&symbols).expect("known symbols"))
    });
}

fn bench_particle(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let model = CrackModel::default();
    let mut pf = ParticleFilter::new(model, 300, 0.5, 1.5, &mut rng);
    c.bench_function("particle/predict_update_300", |b| {
        b.iter(|| {
            pf.predict(&mut rng);
            pf.update(1.2);
            pf.estimate()
        })
    });
    let particles: Vec<f64> = (0..300).map(|i| i as f64 / 100.0).collect();
    let weights: Vec<f64> = (0..300).map(|i| 1.0 + (i % 7) as f64).collect();
    c.bench_function("particle/systematic_draw_300", |b| {
        b.iter(|| systematic_draw(&particles, &weights, 300, &mut rng))
    });
}

criterion_group!(benches, bench_fft, bench_lpc, bench_huffman, bench_particle);
criterion_main!(benches);

//! Micro-benchmarks of the message layer: SPI framing vs the token
//! packer vs the MPI envelope path.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spi::{decode_dynamic, decode_static, encode_dynamic, encode_static};
use spi_dataflow::{EdgeId, LengthSignal, TokenPacker};

fn bench_spi_framing(c: &mut Criterion) {
    let mut group = c.benchmark_group("spi_framing");
    for n in [16usize, 256, 4096] {
        let payload = vec![0xA5u8; n];
        group.bench_with_input(BenchmarkId::new("static", n), &payload, |b, p| {
            b.iter(|| {
                let msg = encode_static(EdgeId(3), p).expect("small edge id");
                decode_static(&msg, EdgeId(3), p.len()).expect("well-formed")
            })
        });
        group.bench_with_input(BenchmarkId::new("dynamic", n), &payload, |b, p| {
            b.iter(|| {
                let msg = encode_dynamic(EdgeId(3), p).expect("small edge id");
                decode_dynamic(&msg, EdgeId(3), p.len()).expect("well-formed")
            })
        });
    }
    group.finish();
}

fn bench_token_packer(c: &mut Criterion) {
    let mut group = c.benchmark_group("token_packer");
    let raw = vec![0x7Eu8; 1024]; // worst case for the delimiter escape
    for signal in [LengthSignal::Header, LengthSignal::Delimiter] {
        let packer = TokenPacker::new(4, 256, signal);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{signal:?}")),
            &raw,
            |b, raw| {
                b.iter(|| {
                    let framed = packer.pack(raw).expect("within bound");
                    packer.unpack(&framed).expect("roundtrip")
                })
            },
        );
    }
    group.finish();
}

fn bench_end_to_end_stream(c: &mut Criterion) {
    // One full simulated SPI stream per iteration (setup + run).
    let mut group = c.benchmark_group("stream_64B_x100");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("spi", |b| {
        b.iter(|| spi_bench::ablation_spi_vs_mpi(64, 100))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spi_framing,
    bench_token_packer,
    bench_end_to_end_stream
);
criterion_main!(benches);

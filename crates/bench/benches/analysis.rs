//! Micro-benchmarks of the dataflow/scheduling analyses.

use criterion::{criterion_group, criterion_main, Criterion};

use spi_dataflow::loops::{flat_single_appearance, optimal_chain_schedule};
use spi_dataflow::{dif, CsdfGraph, PhaseRates, PrecedenceGraph, SdfGraph, VtsConversion};
use spi_sched::{Assignment, IpcGraph, ProcId, Protocol, SelfTimedSchedule, SyncGraph};

/// A representative multirate chain with a feedback loop. Rates
/// alternate 2→3 / 3→2 so the cycle closes consistently
/// (q = [3,2,3,2,…]).
fn test_graph() -> SdfGraph {
    let mut g = SdfGraph::new();
    let actors: Vec<_> = (0..8)
        .map(|i| g.add_actor(format!("v{i}"), 10 + i))
        .collect();
    for (i, w) in actors.windows(2).enumerate() {
        let (p, c) = if i % 2 == 0 { (2, 3) } else { (3, 2) };
        g.add_edge(w[0], w[1], p, c, 0, 4).expect("edge");
    }
    g.add_edge(actors[7], actors[0], 3, 2, 12, 4)
        .expect("feedback");
    g
}

fn bench_repetition_vector(c: &mut Criterion) {
    let g = test_graph();
    c.bench_function("analysis/repetition_vector", |b| {
        b.iter(|| g.repetition_vector().expect("consistent"))
    });
}

fn bench_class_s(c: &mut Criterion) {
    let g = test_graph();
    c.bench_function("analysis/class_s_schedule", |b| {
        b.iter(|| g.sdf_buffer_bounds().expect("live"))
    });
}

fn bench_vts_conversion(c: &mut Criterion) {
    let mut g = SdfGraph::new();
    let actors: Vec<_> = (0..16).map(|i| g.add_actor(format!("v{i}"), 10)).collect();
    for w in actors.windows(2) {
        g.add_dynamic_edge(w[0], w[1], 32, 24, 0, 8).expect("edge");
    }
    c.bench_function("analysis/vts_conversion_15edges", |b| {
        b.iter(|| VtsConversion::convert(&g).expect("bounded"))
    });
}

fn sync_graph_setup() -> SyncGraph {
    let g = test_graph();
    let pg = PrecedenceGraph::expand(&g).expect("consistent");
    let assign = Assignment::by_actor(&pg, 4, |a| ProcId(a.0 % 4)).expect("assigned");
    let st = SelfTimedSchedule::from_assignment(&pg, assign).expect("scheduled");
    let ipc = IpcGraph::build(&g, &pg, &st).expect("built");
    SyncGraph::from_ipc(&ipc, |_| Protocol::Ubs { ack_window: 4 }).expect("live")
}

fn bench_redundancy(c: &mut Criterion) {
    let sg = sync_graph_setup();
    c.bench_function("analysis/remove_redundant", |b| {
        b.iter(|| {
            let mut g = sg.clone();
            g.remove_redundant()
        })
    });
}

fn bench_resync(c: &mut Criterion) {
    let sg = sync_graph_setup();
    c.bench_function("analysis/resynchronize", |b| {
        b.iter(|| {
            let mut g = sg.clone();
            g.resynchronize(true)
        })
    });
}

fn bench_mcm(c: &mut Criterion) {
    let sg = sync_graph_setup();
    c.bench_function("analysis/max_cycle_mean", |b| {
        b.iter(|| sg.iteration_period())
    });
}

fn bench_chain_dp(c: &mut Criterion) {
    // A 10-actor rate chain with varied factors.
    let mut g = SdfGraph::new();
    let mut prev = g.add_actor("a0", 1);
    for i in 0..9 {
        let next = g.add_actor(format!("a{}", i + 1), 1);
        g.add_edge(prev, next, 2 + (i as u32 % 3), 1 + (i as u32 % 4), 0, 4)
            .expect("edge");
        prev = next;
    }
    c.bench_function("analysis/chain_dp_10", |b| {
        b.iter(|| optimal_chain_schedule(&g).expect("chain"))
    });
    c.bench_function("analysis/flat_sas_10", |b| {
        b.iter(|| flat_single_appearance(&g).expect("acyclic"))
    });
}

fn bench_csdf_reduction(c: &mut Criterion) {
    let mut g = CsdfGraph::new();
    let mut prev = g.add_actor("a0", 1);
    for i in 0..7 {
        let next = g.add_actor(format!("a{}", i + 1), 1);
        g.add_edge(
            prev,
            next,
            PhaseRates::new(vec![1, 0, 2, 1]).expect("valid"),
            PhaseRates::new(vec![2, 2]).expect("valid"),
            4,
            4,
        )
        .expect("edge");
        prev = next;
    }
    c.bench_function("analysis/csdf_to_sdf_8", |b| {
        b.iter(|| g.to_sdf().expect("reducible"))
    });
    c.bench_function("analysis/csdf_phase_schedule_8", |b| {
        b.iter(|| g.phase_schedule().expect("live"))
    });
}

fn bench_dif_roundtrip(c: &mut Criterion) {
    let g = test_graph();
    let text = dif::to_dif(&g, "bench");
    c.bench_function("analysis/dif_parse", |b| {
        b.iter(|| dif::from_dif(&text).expect("well-formed"))
    });
}

criterion_group!(
    benches,
    bench_repetition_vector,
    bench_class_s,
    bench_vts_conversion,
    bench_redundancy,
    bench_resync,
    bench_mcm,
    bench_chain_dp,
    bench_csdf_reduction,
    bench_dif_roundtrip
);
criterion_main!(benches);

//! Criterion throughput benchmark of the transport layer: the locked
//! reference queue vs the lock-free ring, raw and through the 3-PE
//! pipeline executor. `bench_transport` (a bin) writes the committed
//! `BENCH_transport.json` from the same scenarios.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spi_platform::{
    ChannelId, ChannelSpec, LockedTransport, Op, Program, RingTransport, ThreadedRunner, Transport,
    TransportKind,
};

const TIMEOUT: Duration = Duration::from_secs(30);

fn stream(transport: &dyn Transport, messages: u64) {
    std::thread::scope(|s| {
        s.spawn(|| {
            let payload = [0xA5u8; 8];
            for _ in 0..messages {
                transport.send(&payload, TIMEOUT).expect("send");
            }
        });
        s.spawn(|| {
            for _ in 0..messages {
                transport.recv(TIMEOUT).expect("recv");
            }
        });
    });
}

fn bench_raw_spsc(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_raw_spsc_8B");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    const N: u64 = 50_000;
    group.bench_with_input(BenchmarkId::new("locked", N), &N, |b, &n| {
        b.iter(|| stream(&LockedTransport::new(64 * 8, 8), n))
    });
    group.bench_with_input(BenchmarkId::new("ring", N), &N, |b, &n| {
        b.iter(|| stream(&RingTransport::new(64 * 8, 8), n))
    });
    group.finish();
}

fn pipeline(kind: TransportKind, iterations: u64) {
    let spec = ChannelSpec {
        capacity_bytes: 64 * 8,
        max_message_bytes: 8,
        ..ChannelSpec::default()
    };
    let c1 = ChannelId(0);
    let c2 = ChannelId(1);
    let producer = Program::new(
        vec![Op::Send {
            channel: c1,
            payload: Box::new(|l| l.iter.to_le_bytes().to_vec()),
        }],
        iterations,
    );
    let forwarder = Program::new(
        vec![
            Op::Recv { channel: c1 },
            Op::Send {
                channel: c2,
                payload: Box::new(move |l| l.take_from(c1).expect("input")),
            },
        ],
        iterations,
    );
    let sink = Program::new(
        vec![
            Op::Recv { channel: c2 },
            Op::Compute {
                label: "drain".into(),
                work: Box::new(move |l| {
                    let _ = l.take_from(c2);
                    0
                }),
            },
        ],
        iterations,
    );
    ThreadedRunner::new()
        .transport(kind)
        .timeout(TIMEOUT)
        .run(&[spec, spec], vec![producer, forwarder, sink])
        .expect("pipeline run");
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_pipeline_3pe");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    const N: u64 = 20_000;
    for kind in [TransportKind::Locked, TransportKind::Ring] {
        group.bench_with_input(
            BenchmarkId::new(&format!("{kind:?}").to_lowercase(), N),
            &N,
            |b, &n| b.iter(|| pipeline(kind, n)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_raw_spsc, bench_pipeline);
criterion_main!(benches);

//! Regeneration of the paper's tables 1 and 2 (FPGA resource usage).

use spi_apps::{ErrorStageApp, ErrorStageConfig, PrognosisApp, PrognosisConfig};
use spi_platform::{Device, ResourcePercent};

/// A reproduced resource table: device utilization of the full system
/// and the SPI library's share of it — the two rows of tables 1 and 2.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceTable {
    /// What the table describes.
    pub title: String,
    /// Device used for utilization percentages.
    pub device: Device,
    /// "Full system" row: percent of the device.
    pub full_system: ResourcePercent,
    /// "SPI library (relative to full system)" row.
    pub spi_share: ResourcePercent,
}

impl std::fmt::Display for ResourceTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} (device: {})", self.title, self.device.name)?;
        writeln!(
            f,
            "{:<34} {:>8} {:>10} {:>12} {:>11} {:>8}",
            "", "Slices", "Slice FFs", "4-in LUTs", "Block RAMs", "DSP48s"
        )?;
        let row = |label: &str, p: &ResourcePercent| {
            format!(
                "{label:<34} {:>7.2}% {:>9.2}% {:>11.2}% {:>10.2}% {:>7.2}%",
                p.slices, p.slice_ffs, p.lut4, p.bram, p.dsp48
            )
        };
        writeln!(f, "{}", row("Full system", &self.full_system))?;
        write!(
            f,
            "{}",
            row("SPI library (rel. to full system)", &self.spi_share)
        )
    }
}

/// Table 1: FPGA resources of the `n`-PE error-stage implementation
/// (the paper uses n = 4).
pub fn table1_resources(n_pes: usize) -> ResourceTable {
    let app = ErrorStageApp::new(ErrorStageConfig {
        n_pes,
        ..Default::default()
    })
    .expect("valid config");
    let sys = app.system(1).expect("buildable");
    let device = Device::virtex4_sx35();
    let lib = sys.library();
    ResourceTable {
        title: format!("Table 1 — {n_pes}-PE implementation of actor D (application 1)"),
        device,
        full_system: lib.device_utilization(&device),
        spi_share: lib.spi_share(),
    }
}

/// Table 2: FPGA resources of the `n`-PE particle-filter implementation
/// (the paper uses n = 2).
pub fn table2_resources(n_pes: usize) -> ResourceTable {
    let app = PrognosisApp::new(PrognosisConfig {
        n_pes,
        ..Default::default()
    })
    .expect("valid config");
    let sys = app.system(1).expect("buildable");
    let device = Device::virtex4_sx35();
    let lib = sys.library();
    ResourceTable {
        title: format!("Table 2 — {n_pes}-PE implementation of application 2"),
        device,
        full_system: lib.device_utilization(&device),
        spi_share: lib.spi_share(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_spi_share_is_modest() {
        let t = table1_resources(4);
        // Paper: SPI ≈ 12 % of a small full system. Shape: well under half.
        assert!(t.spi_share.slices > 0.0);
        assert!(t.spi_share.slices < 50.0, "{}", t.spi_share);
        assert!(t.full_system.slices < 100.0);
    }

    #[test]
    fn table2_spi_share_is_tiny() {
        let t = table2_resources(2);
        // Paper: SPI ≈ 0.2 % of a large system. Shape: ≪ table 1's share.
        let t1 = table1_resources(4);
        assert!(t.spi_share.slices < t1.spi_share.slices);
        assert!(t.spi_share.slices < 5.0, "{}", t.spi_share);
        // The PF system is the big one (paper: 65 % of LUTs).
        assert!(t.full_system.lut4 > t1.full_system.lut4);
    }

    #[test]
    fn display_renders_both_rows() {
        let t = table1_resources(2);
        let s = t.to_string();
        assert!(s.contains("Full system"));
        assert!(s.contains("SPI library"));
        assert!(s.contains('%'));
    }
}

//! Regeneration of the paper's figures.

use spi_apps::{
    ErrorStageApp, ErrorStageConfig, PrognosisApp, PrognosisConfig, SpeechApp, SpeechConfig,
};
use spi_dataflow::{SdfGraph, VtsConversion};

/// One point of a scaling figure (figures 6 and 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingRow {
    /// Number of PEs (`n` in the figures).
    pub n_pes: usize,
    /// X-axis value: sample size (fig. 6) or particle count (fig. 7).
    pub x: usize,
    /// Execution time per iteration in microseconds.
    pub time_us: f64,
}

/// Figure 1: the VTS conversion example — a dynamic edge with production
/// bound 10 and consumption bound 8 becomes a rate-1 packed-token edge.
/// Returns a human-readable account.
pub fn fig1_vts() -> String {
    let mut g = SdfGraph::new();
    let a = g.add_actor("A", 10);
    let b = g.add_actor("B", 10);
    let e = g
        .add_dynamic_edge(a, b, 10, 8, 0, 4)
        .expect("figure-1 edge");
    let mut out = String::new();
    out.push_str("Figure 1 — VTS conversion\n\nBefore (dynamic rates):\n");
    out.push_str(&g.to_string());
    out.push_str(&format!(
        "\nSDF analysis on the raw graph: {:?}\n",
        g.repetition_vector().map(|_| ()).unwrap_err()
    ));
    let vts = VtsConversion::convert(&g).expect("conversion");
    out.push_str("\nAfter VTS conversion (packed tokens, static rate 1):\n");
    out.push_str(&vts.graph().to_string());
    let info = vts.edge_info(e).expect("converted");
    out.push_str(&format!(
        "\npacked token bound b_max(e) = max({}, {}) × {} B = {} B\n",
        info.produce_bound, info.consume_bound, info.raw_token_bytes, info.b_max
    ));
    let q = vts.graph().repetition_vector().expect("consistent");
    out.push_str(&format!(
        "repetition vector: q[A] = {}, q[B] = {}\n",
        q[a], q[b]
    ));
    out.push_str(&format!(
        "eq. (1): c(e) = c_sdf(e) × b_max(e) = {} B\n",
        vts.packed_capacity_bytes(e).expect("bounded")
    ));
    out
}

/// Figure 2: application 1's dataflow graph.
pub fn fig2_graph(n_pes: usize) -> String {
    let app = SpeechApp::new(SpeechConfig {
        n_pes,
        ..Default::default()
    })
    .expect("valid default config");
    format!(
        "Figure 2 — application 1 (LPC compression), D parallelized {n_pes}×\n\n{}",
        app.graph
    )
}

/// Figure 4: application 2's dataflow graph.
pub fn fig4_graph(n_pes: usize) -> String {
    let app = PrognosisApp::new(PrognosisConfig {
        n_pes,
        ..Default::default()
    })
    .expect("valid default config");
    format!(
        "Figure 4 — application 2 (particle filter), {n_pes} PEs\n\n{}",
        app.graph
    )
}

/// Synchronization-cost summary of a resynchronization figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResyncFigure {
    /// Removable synchronization edges before optimization.
    pub sync_before: usize,
    /// After redundancy removal + resynchronization.
    pub sync_after: usize,
    /// Resync edges added.
    pub added: usize,
    /// Redundant edges removed.
    pub removed: usize,
}

impl ResyncFigure {
    fn from_report(r: spi_sched::ResyncReport) -> Self {
        ResyncFigure {
            sync_before: r.sync_cost_before,
            sync_after: r.sync_cost_after,
            added: r.edges_added,
            removed: r.edges_removed,
        }
    }
}

impl std::fmt::Display for ResyncFigure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "  sync edges before resynchronization: {}",
            self.sync_before
        )?;
        writeln!(
            f,
            "  sync edges after  resynchronization: {}",
            self.sync_after
        )?;
        writeln!(
            f,
            "  resync edges added: {}, redundant removed: {}",
            self.added, self.removed
        )?;
        write!(
            f,
            "  net synchronization reduction: {}",
            self.sync_before as isize - self.sync_after as isize
        )
    }
}

/// Figure 3: resynchronization of the 3-PE error-stage implementation.
pub fn fig3_resync(n_pes: usize) -> ResyncFigure {
    let app = ErrorStageApp::new(ErrorStageConfig {
        n_pes,
        ..Default::default()
    })
    .expect("valid config");
    let sys = app.system(1).expect("buildable system");
    ResyncFigure::from_report(sys.resync_report().expect("resync enabled by default"))
}

/// Figure 3 as drawings: Graphviz DOT of the synchronization graph
/// `(before, after)` resynchronization.
pub fn fig3_dot(n_pes: usize) -> (String, String) {
    let app = ErrorStageApp::new(ErrorStageConfig {
        n_pes,
        ..Default::default()
    })
    .expect("valid config");
    let sys = app.system(1).expect("buildable system");
    let (b, a) = sys.sync_graph_dot();
    (b.to_string(), a.to_string())
}

/// Figure 5 as drawings: Graphviz DOT `(before, after)`.
pub fn fig5_dot(n_pes: usize) -> (String, String) {
    let app = PrognosisApp::new(PrognosisConfig {
        n_pes,
        ..Default::default()
    })
    .expect("valid config");
    let sys = app.system(1).expect("buildable system");
    let (b, a) = sys.sync_graph_dot();
    (b.to_string(), a.to_string())
}

/// Figure 5: resynchronization of the 2-PE particle-filter
/// implementation.
pub fn fig5_resync(n_pes: usize) -> ResyncFigure {
    let app = PrognosisApp::new(PrognosisConfig {
        n_pes,
        ..Default::default()
    })
    .expect("valid config");
    let sys = app.system(1).expect("buildable system");
    ResyncFigure::from_report(sys.resync_report().expect("resync enabled by default"))
}

/// Figure 6: execution time (µs per frame) of the error-generation stage
/// vs sample size, for each PE count.
pub fn fig6_scaling(sample_sizes: &[usize], pe_counts: &[usize], frames: u64) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for &n in pe_counts {
        for &size in sample_sizes {
            let app = ErrorStageApp::new(ErrorStageConfig {
                n_pes: n,
                frame: size,
                order: 10,
                vary_rates: false,
                seed: 3,
            })
            .expect("valid config");
            let sys = app.system(frames).expect("buildable");
            let report = sys.run().expect("clean run");
            rows.push(ScalingRow {
                n_pes: n,
                x: size,
                time_us: report.period_us(),
            });
        }
    }
    rows
}

/// Figure 7: execution time (µs per filter step) vs particle count, for
/// each PE count.
pub fn fig7_scaling(particle_counts: &[usize], pe_counts: &[usize], steps: u64) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for &n in pe_counts {
        for &particles in particle_counts {
            let app = PrognosisApp::new(PrognosisConfig {
                n_pes: n,
                particles,
                steps: steps as usize,
                ..Default::default()
            })
            .expect("valid config");
            let sys = app.system(steps).expect("buildable");
            let report = sys.run().expect("clean run");
            rows.push(ScalingRow {
                n_pes: n,
                x: particles,
                time_us: report.period_us(),
            });
        }
    }
    rows
}

/// Formats scaling rows as an aligned series table (one column per n).
pub fn format_scaling(rows: &[ScalingRow], x_label: &str) -> String {
    let mut ns: Vec<usize> = rows.iter().map(|r| r.n_pes).collect();
    ns.sort_unstable();
    ns.dedup();
    let mut xs: Vec<usize> = rows.iter().map(|r| r.x).collect();
    xs.sort_unstable();
    xs.dedup();
    let mut out = format!("{x_label:>12}");
    for n in &ns {
        out.push_str(&format!("  n={n:<2} (µs)"));
    }
    out.push('\n');
    for x in xs {
        out.push_str(&format!("{x:>12}"));
        for &n in &ns {
            let t = rows
                .iter()
                .find(|r| r.n_pes == n && r.x == x)
                .map(|r| r.time_us)
                .unwrap_or(f64::NAN);
            out.push_str(&format!("  {t:>9.1}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_text_mentions_key_numbers() {
        let s = fig1_vts();
        assert!(s.contains("b_max"));
        assert!(s.contains("40 B"));
        assert!(s.contains("q[A] = 1"));
    }

    #[test]
    fn fig2_and_fig4_list_all_actors() {
        let f2 = fig2_graph(3);
        assert!(f2.contains("A:read") && f2.contains("D2:error") && f2.contains("E:huffman"));
        let f4 = fig4_graph(2);
        assert!(f4.contains("E/U0") && f4.contains("S-intra1") && f4.contains("obs"));
    }

    #[test]
    fn fig3_resync_reduces_cost() {
        let fig = fig3_resync(3);
        assert!(fig.sync_after < fig.sync_before, "{fig:?}");
    }

    #[test]
    fn fig_dots_are_valid_graphviz() {
        let (before, after) = fig3_dot(2);
        assert!(before.starts_with("digraph") && after.starts_with("digraph"));
        // Resynchronization strictly removes dashed (sync) edges.
        let dashes = |s: &str| s.matches("style=dashed").count();
        assert!(dashes(&after) < dashes(&before));
        let (b5, a5) = fig5_dot(2);
        assert!(dashes(&a5) <= dashes(&b5));
    }

    #[test]
    fn fig5_resync_reduces_cost() {
        let fig = fig5_resync(2);
        assert!(fig.sync_after <= fig.sync_before, "{fig:?}");
    }

    #[test]
    fn fig6_shape_holds() {
        // Time grows with sample size; n=2 beats n=1 at the largest size.
        let rows = fig6_scaling(&[128, 384], &[1, 2], 6);
        let t = |n: usize, x: usize| {
            rows.iter()
                .find(|r| r.n_pes == n && r.x == x)
                .unwrap()
                .time_us
        };
        assert!(t(1, 384) > t(1, 128));
        assert!(t(2, 384) < t(1, 384));
    }

    #[test]
    fn fig7_shape_holds() {
        let rows = fig7_scaling(&[60, 240], &[1, 2], 8);
        let t = |n: usize, x: usize| {
            rows.iter()
                .find(|r| r.n_pes == n && r.x == x)
                .unwrap()
                .time_us
        };
        assert!(t(1, 240) > t(1, 60), "time grows with particles");
        assert!(t(2, 240) < t(1, 240), "2 PEs beat 1 at high load");
        // Sub-linear speedup: resampling communication is serial.
        assert!(t(2, 240) > t(1, 240) / 2.0, "speedup must be < 2×");
    }

    #[test]
    fn format_scaling_aligns_series() {
        let rows = vec![
            ScalingRow {
                n_pes: 1,
                x: 100,
                time_us: 10.0,
            },
            ScalingRow {
                n_pes: 2,
                x: 100,
                time_us: 6.0,
            },
        ];
        let s = format_scaling(&rows, "Sample Size");
        assert!(s.contains("n=1"));
        assert!(s.contains("n=2"));
        assert!(s.contains("100"));
    }
}

//! # spi-bench — regeneration harness for every table and figure
//!
//! One function per experiment of the DATE 2008 SPI paper, plus the
//! ablations called out in `DESIGN.md`. Each `fig*`/`table*` binary in
//! `src/bin/` prints the corresponding rows; the Criterion benches in
//! `benches/` micro-benchmark the underlying machinery.
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Figure 1 | [`fig1_vts`] | `fig1_vts` |
//! | Figure 2 | [`fig2_graph`] | `fig2_app1_graph` |
//! | Figure 3 | [`fig3_resync`] | `fig3_resync_app1` |
//! | Figure 4 | [`fig4_graph`] | `fig4_app2_graph` |
//! | Figure 5 | [`fig5_resync`] | `fig5_resync_app2` |
//! | Figure 6 | [`fig6_scaling`] | `fig6_app1_scaling` |
//! | Figure 7 | [`fig7_scaling`] | `fig7_app2_scaling` |
//! | Table 1 | [`table1_resources`] | `table1_resources` |
//! | Table 2 | [`table2_resources`] | `table2_resources` |
//! | §1 claim | [`ablation_spi_vs_mpi`] | `ablation_spi_vs_mpi` |
//! | §4.1 claim | [`ablation_resync`] | `ablation_resync` |
//! | §4 claim | [`ablation_bbs_vs_ubs`] | `ablation_bbs_vs_ubs` |
//! | §3 claim | [`ablation_header_vs_delimiter`] | `ablation_header_vs_delimiter` |
//! | §3 claim | [`ablation_vts_vs_worst_case`] | `ablation_vts_vs_worst_case` |
//! | §2 claim | [`ablation_selftimed_vs_static`] | `ablation_selftimed_vs_static` |
//! | interconnect | [`ablation_bus_vs_p2p`] | `ablation_bus_vs_p2p` |
//! | §5.2 co-design | [`hwsw_codesign_sweep`] | `ablation_hwsw_codesign` |
//! | fuzzing | — | `stress_random_graphs` |
//! | tracing | — | `gantt_demo` |
//! | buffers | — | `report_buffers` |
//! | Amdahl study | — | `app1_full_pipeline` |
//! | codec R-D | — | `rate_distortion` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod figures;
pub mod tables;

pub use ablations::{
    ablation_bbs_vs_ubs, ablation_bus_vs_p2p, ablation_header_vs_delimiter,
    ablation_ordered_vs_arbitrated, ablation_resync, ablation_selftimed_vs_static,
    ablation_spi_vs_mpi, ablation_vts_vs_worst_case, hwsw_codesign_sweep, AblationRow,
};
pub use figures::{
    fig1_vts, fig2_graph, fig3_dot, fig3_resync, fig4_graph, fig5_dot, fig5_resync, fig6_scaling,
    fig7_scaling, ResyncFigure, ScalingRow,
};
pub use tables::{table1_resources, table2_resources, ResourceTable};

//! Ablation studies quantifying SPI's design choices (DESIGN.md §7).

use spi::{SchedulingMode, SpiSystemBuilder};
use spi_apps::{ErrorStageApp, ErrorStageConfig, PrognosisApp, PrognosisConfig};
use spi_dataflow::LengthSignal;
use spi_platform::{ChannelSpec, Machine, MpiEndpoint, Program};

/// One ablation comparison: a label plus the two measured values.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// What is being compared.
    pub label: String,
    /// Baseline measurement.
    pub baseline: f64,
    /// Optimized/SPI measurement.
    pub optimized: f64,
    /// Unit of the measurements.
    pub unit: &'static str,
}

impl AblationRow {
    /// Baseline ÷ optimized (how much the optimization wins).
    pub fn improvement(&self) -> f64 {
        if self.optimized == 0.0 {
            f64::INFINITY
        } else {
            self.baseline / self.optimized
        }
    }
}

impl std::fmt::Display for AblationRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} baseline {:>10.2} {unit} | optimized {:>10.2} {unit} | {:>5.2}×",
            self.label,
            self.baseline,
            self.optimized,
            self.improvement(),
            unit = self.unit,
        )
    }
}

/// SPI vs a generic MPI layer on an identical producer→consumer stream:
/// same payloads, same channel hardware, different protocol overheads
/// (SPI: 2-byte edge-id header, no matching, no rendezvous; MPI: 24-byte
/// envelope, matching cycles, rendezvous above the eager limit).
pub fn ablation_spi_vs_mpi(payload_bytes: usize, messages: u64) -> AblationRow {
    // ---- MPI side ----------------------------------------------------
    let mut m = Machine::new();
    let data = m.add_channel(ChannelSpec {
        capacity_bytes: 1 << 20,
        ..ChannelSpec::default()
    });
    let ctrl = m.add_channel(ChannelSpec::default());
    let ep = MpiEndpoint::new(data, Some(ctrl));
    let n = payload_bytes;
    m.add_pe(Program::new(
        ep.send_ops(n, move |_| vec![0xA5; n])
            .expect("control channel supplied"),
        messages,
    ));
    m.add_pe(Program::new(
        ep.recv_ops(n, "sink").expect("control channel supplied"),
        messages,
    ));
    let mpi_report = m.run().expect("mpi baseline runs");
    let mpi_us = mpi_report.makespan_us(100.0);

    // ---- SPI side ------------------------------------------------------
    // The same stream expressed as a 2-actor SPI system with a static
    // edge of the same payload size.
    let mut g = spi_dataflow::SdfGraph::new();
    let src = g.add_actor("src", 1);
    let snk = g.add_actor("snk", 1);
    let e = g
        .add_edge(src, snk, 1, 1, 0, payload_bytes as u32)
        .expect("edge");
    let mut b = SpiSystemBuilder::new(g);
    b.actor(src, move |ctx: &mut spi::Firing| {
        ctx.set_output(e, vec![0xA5; n]);
        1
    });
    b.actor(snk, |_: &mut spi::Firing| 1);
    b.iterations(messages);
    let sys = b
        .build(2, |a| spi_sched::ProcId(a.0))
        .expect("spi system builds");
    let spi_us = sys.run().expect("spi runs").makespan_us();

    AblationRow {
        label: format!("{payload_bytes} B × {messages} msgs: MPI vs SPI"),
        baseline: mpi_us,
        optimized: spi_us,
        unit: "µs",
    }
}

/// Resynchronization on vs off: synchronization-edge count on the
/// BBS-protocol error stage, plus — the paper's headline §4.1 effect —
/// acknowledgement *message* elimination when the same system is forced
/// onto SPI_UBS (resynchronization proves every ack redundant against
/// the I/O processor's loop structure and deletes it).
pub fn ablation_resync(n_pes: usize, frames: u64) -> Vec<AblationRow> {
    let run = |resync: bool, force_ubs: bool| {
        let app = ErrorStageApp::new(ErrorStageConfig {
            n_pes,
            ..Default::default()
        })
        .expect("valid config");
        let mut builder = SpiSystemBuilder::new(app.graph.clone());
        app.configure(&mut builder);
        builder.iterations(frames);
        builder.resynchronization(resync);
        builder.force_ubs(force_ubs);
        let sys = app.build_with(builder).expect("buildable");
        let sync_cost = sys.sync_cost() as f64;
        let report = sys.run().expect("clean run");
        (
            report.period_us(),
            report.sim.total_messages() as f64,
            sync_cost,
        )
    };
    let (_, _, sync_off) = run(false, false);
    let (_, _, sync_on) = run(true, false);
    let (t_ubs_off, msgs_ubs_off, _) = run(false, true);
    let (t_ubs_on, msgs_ubs_on, _) = run(true, true);
    vec![
        AblationRow {
            label: format!("{n_pes}-PE error stage: sync edges without/with"),
            baseline: sync_off,
            optimized: sync_on,
            unit: "edges",
        },
        AblationRow {
            label: format!("{n_pes}-PE error stage (UBS): ack+data msgs without/with"),
            baseline: msgs_ubs_off,
            optimized: msgs_ubs_on,
            unit: "msgs",
        },
        AblationRow {
            label: format!("{n_pes}-PE error stage (UBS): period without/with"),
            baseline: t_ubs_off,
            optimized: t_ubs_on,
            unit: "µs",
        },
    ]
}

/// BBS vs forced UBS on the particle-filter app (which has feedback-free
/// sum edges that BBS cannot bound — forcing UBS everywhere shows the
/// ack cost the protocol-selection rule avoids where BBS applies).
pub fn ablation_bbs_vs_ubs(n_pes: usize, steps: u64) -> AblationRow {
    let run = |force_ubs: bool| {
        let app = PrognosisApp::new(PrognosisConfig {
            n_pes,
            steps: steps as usize,
            ..Default::default()
        })
        .expect("valid config");
        let mut builder = SpiSystemBuilder::new(app.graph.clone());
        app.configure(&mut builder, steps).expect("configured");
        builder.iterations(steps);
        builder.force_ubs(force_ubs);
        builder.resynchronization(false); // isolate the protocol effect
        let map = app.actor_processor_map();
        let sys = builder.build(n_pes, move |a| map[&a]).expect("buildable");
        sys.run().expect("clean run").sim.total_messages() as f64
    };
    AblationRow {
        label: format!("{n_pes}-PE particle filter: msgs UBS-forced vs selected"),
        baseline: run(true),
        optimized: run(false),
        unit: "msgs",
    }
}

/// Header vs delimiter length signalling on the dynamic-heavy error
/// stage (the paper's §3 argument for headers on FPGA targets).
pub fn ablation_header_vs_delimiter(n_pes: usize, frames: u64) -> AblationRow {
    let run = |signal: LengthSignal| {
        let app = ErrorStageApp::new(ErrorStageConfig {
            n_pes,
            frame: 512,
            order: 10,
            ..Default::default()
        })
        .expect("valid config");
        let mut builder = SpiSystemBuilder::new(app.graph.clone());
        app.configure(&mut builder);
        builder.iterations(frames);
        builder.length_signal(signal);
        let sys = app.build_with(builder).expect("buildable");
        sys.run().expect("clean run").period_us()
    };
    AblationRow {
        label: format!("{n_pes}-PE error stage: delimiter vs header signalling"),
        baseline: run(LengthSignal::Delimiter),
        optimized: run(LengthSignal::Header),
        unit: "µs",
    }
}

/// Self-timed vs fully-static scheduling under execution-time jitter —
/// the paper's §2 argument for self-timed made measurable. Actors
/// declare a mean estimate but actually take `mean × U(1−j, 1+j)`; the
/// fully-static schedule must budget worst case (slack = jitter), while
/// self-timed absorbs the variation.
pub fn ablation_selftimed_vs_static(jitter_percent: u32, iterations: u64) -> AblationRow {
    let build = |mode: SchedulingMode| {
        let mut g = spi_dataflow::SdfGraph::new();
        let stages = 4usize;
        let mean = 100u64;
        let actors: Vec<_> = (0..stages)
            .map(|i| g.add_actor(format!("s{i}"), mean))
            .collect();
        let mut edges = Vec::new();
        for w in actors.windows(2) {
            edges.push(g.add_edge(w[0], w[1], 1, 1, 0, 4).expect("edge"));
        }
        let mut b = SpiSystemBuilder::new(g);
        for (i, &a) in actors.iter().enumerate() {
            let in_edge = if i > 0 { Some(edges[i - 1]) } else { None };
            let out_edge = edges.get(i).copied();
            b.actor(a, move |ctx: &mut spi::Firing| {
                if let Some(e) = in_edge {
                    let _ = ctx.take_input(e);
                }
                if let Some(e) = out_edge {
                    ctx.set_output(e, vec![0; 4]);
                }
                // Deterministic jitter in [1−j, 1+j] around the mean.
                let h = ctx
                    .iter
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(i as u64)
                    >> 33;
                let frac = (h % 2001) as f64 / 1000.0 - 1.0; // [-1, 1)
                let factor = 1.0 + frac * f64::from(jitter_percent) / 100.0;
                (mean as f64 * factor).round() as u64
            });
        }
        b.iterations(iterations);
        b.scheduling_mode(mode);
        let sys = b
            .build(stages, |x| spi_sched::ProcId(x.0))
            .expect("buildable");
        sys.run().expect("clean run").period_us()
    };
    AblationRow {
        label: format!("4-stage pipeline, ±{jitter_percent}% jitter: static vs self-timed"),
        baseline: build(SchedulingMode::FullyStatic {
            slack_percent: jitter_percent,
        }),
        optimized: build(SchedulingMode::SelfTimed),
        unit: "µs",
    }
}

/// Hardware/software co-design sensitivity: the error stage with its
/// I/O processor at hardware speed vs slowed `sw_factor×` (a soft-core
/// CPU next to custom PEs, the paper's actual deployment). Returns
/// `(n, period_hw_io, period_sw_io)` per PE count — the software I/O
/// side caps the parallel speedup.
pub fn hwsw_codesign_sweep(
    pe_counts: &[usize],
    sw_factor: u64,
    frames: u64,
) -> Vec<(usize, f64, f64)> {
    let run = |n: usize, factor: u64| {
        let app = ErrorStageApp::new(ErrorStageConfig {
            n_pes: n,
            frame: 512,
            order: 10,
            ..Default::default()
        })
        .expect("valid config");
        let mut builder = SpiSystemBuilder::new(app.graph.clone());
        app.configure(&mut builder);
        builder.iterations(frames);
        builder.processor_speed(spi_sched::ProcId(0), factor, 1);
        let sys = app.build_with(builder).expect("buildable");
        sys.run().expect("clean run").period_us()
    };
    pe_counts
        .iter()
        .map(|&n| (n, run(n, 1), run(n, sw_factor)))
        .collect()
}

/// Point-to-point FIFOs vs a shared-bus interconnect on the
/// error-generation stage: SPI assumes dedicated channels (the FPGA
/// fabric provides them); a bus-based MPSoC serializes transfers.
pub fn ablation_bus_vs_p2p(n_pes: usize, frames: u64) -> AblationRow {
    let run = |bus: bool| {
        let app = ErrorStageApp::new(ErrorStageConfig {
            n_pes,
            frame: 512,
            order: 10,
            ..Default::default()
        })
        .expect("valid config");
        let mut builder = SpiSystemBuilder::new(app.graph.clone());
        app.configure(&mut builder);
        builder.iterations(frames);
        if bus {
            builder.shared_bus(spi_platform::BusSpec {
                arbitration_cycles: 4,
            });
        }
        let sys = app.build_with(builder).expect("buildable");
        sys.run().expect("clean run").period_us()
    };
    AblationRow {
        label: format!("{n_pes}-PE error stage: shared bus vs point-to-point"),
        baseline: run(true),
        optimized: run(false),
        unit: "µs",
    }
}

/// Ordered-transactions bus vs an arbitrated shared bus on the error
/// stage: the compile-time grant order removes per-transfer arbitration
/// (Sriram's strategy; the paper's "other scheduling models" future
/// work).
pub fn ablation_ordered_vs_arbitrated(n_pes: usize, frames: u64) -> AblationRow {
    let run = |ordered: bool| {
        let app = ErrorStageApp::new(ErrorStageConfig {
            n_pes,
            frame: 512,
            order: 10,
            ..Default::default()
        })
        .expect("valid config");
        let mut builder = SpiSystemBuilder::new(app.graph.clone());
        app.configure(&mut builder);
        builder.iterations(frames);
        if ordered {
            builder.ordered_transactions(1);
        } else {
            builder.shared_bus(spi_platform::BusSpec {
                arbitration_cycles: 8,
            });
        }
        let sys = app.build_with(builder).expect("buildable");
        sys.run().expect("clean run").period_us()
    };
    AblationRow {
        label: format!("{n_pes}-PE error stage: arbitrated vs ordered bus"),
        baseline: run(false),
        optimized: run(true),
        unit: "µs",
    }
}

/// VTS vs worst-case-static modeling of a dynamic edge: VTS transfers
/// only the actual bytes; a static edge always moves the declared
/// maximum. Measures bytes on the wire for the same workload.
pub fn ablation_vts_vs_worst_case(max_tokens: u32, iterations: u64) -> AblationRow {
    // Workload: actual size = iter % (max+1) tokens of 4 bytes.
    let actual = move |iter: u64| ((iter % (u64::from(max_tokens) + 1)) * 4) as usize;

    // ---- Worst-case static: always max_tokens tokens ------------------
    let bytes_static = {
        let mut g = spi_dataflow::SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b_ = g.add_actor("B", 1);
        let e = g
            .add_edge(a, b_, max_tokens, max_tokens, 0, 4)
            .expect("edge");
        let mut b = SpiSystemBuilder::new(g);
        let payload = (max_tokens * 4) as usize;
        b.actor(a, move |ctx: &mut spi::Firing| {
            let mut buf = vec![0u8; payload];
            let n = actual(ctx.iter);
            buf[..n.min(payload)].fill(0xFF); // real data padded to max
            ctx.set_output(e, buf);
            1
        });
        b.actor(b_, |_: &mut spi::Firing| 1);
        b.iterations(iterations);
        let sys = b.build(2, |x| spi_sched::ProcId(x.0)).expect("buildable");
        sys.run().expect("clean run").sim.total_bytes() as f64
    };

    // ---- VTS dynamic: transfer only the actual bytes -------------------
    let bytes_vts = {
        let mut g = spi_dataflow::SdfGraph::new();
        let a = g.add_actor("A", 1);
        let b_ = g.add_actor("B", 1);
        let e = g
            .add_dynamic_edge(a, b_, max_tokens, max_tokens, 0, 4)
            .expect("edge");
        let mut b = SpiSystemBuilder::new(g);
        b.actor(a, move |ctx: &mut spi::Firing| {
            ctx.set_output(e, vec![0xFF; actual(ctx.iter)]);
            1
        });
        b.actor(b_, |_: &mut spi::Firing| 1);
        b.iterations(iterations);
        let sys = b.build(2, |x| spi_sched::ProcId(x.0)).expect("buildable");
        sys.run().expect("clean run").sim.total_bytes() as f64
    };

    AblationRow {
        label: format!("dynamic edge ≤{max_tokens} tokens: worst-case-static vs VTS"),
        baseline: bytes_static,
        optimized: bytes_vts,
        unit: "bytes",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spi_beats_mpi_on_small_messages() {
        let row = ablation_spi_vs_mpi(32, 50);
        assert!(
            row.improvement() > 1.0,
            "SPI must beat MPI on small messages: {row}"
        );
    }

    #[test]
    fn spi_beats_mpi_on_rendezvous_sized_messages() {
        let row = ablation_spi_vs_mpi(1024, 20);
        assert!(row.improvement() > 1.0, "{row}");
    }

    #[test]
    fn resync_never_hurts_and_removes_acks() {
        let rows = ablation_resync(3, 4);
        for row in &rows {
            assert!(
                row.optimized <= row.baseline * 1.02,
                "resync must not regress: {row}"
            );
        }
        // The forced-UBS message row must show real ack elimination.
        assert!(
            rows[1].baseline > rows[1].optimized,
            "resynchronization must delete acknowledgement messages: {}",
            rows[1]
        );
    }

    #[test]
    fn forced_ubs_sends_more_messages() {
        let row = ablation_bbs_vs_ubs(2, 6);
        assert!(
            row.baseline >= row.optimized,
            "forcing UBS cannot reduce traffic: {row}"
        );
    }

    #[test]
    fn header_beats_delimiter() {
        let row = ablation_header_vs_delimiter(2, 4);
        assert!(
            row.optimized <= row.baseline,
            "headers must not be slower than delimiter scans: {row}"
        );
    }

    #[test]
    fn self_timed_absorbs_jitter_better_than_static() {
        let row = ablation_selftimed_vs_static(30, 40);
        assert!(
            row.improvement() > 1.05,
            "static worst-case budgeting must cost real time: {row}"
        );
    }

    #[test]
    fn software_io_caps_parallel_speedup() {
        let rows = hwsw_codesign_sweep(&[1, 4], 4, 4);
        let (_, hw1, sw1) = rows[0];
        let (_, hw4, sw4) = rows[1];
        let hw_speedup = hw1 / hw4;
        let sw_speedup = sw1 / sw4;
        assert!(
            sw_speedup < hw_speedup,
            "software I/O must cap speedup: hw {hw_speedup:.2} vs sw {sw_speedup:.2}"
        );
    }

    #[test]
    fn ordered_bus_beats_arbitrated_bus() {
        let row = ablation_ordered_vs_arbitrated(3, 4);
        assert!(
            row.optimized <= row.baseline * 1.05,
            "removing arbitration must not cost time: {row}"
        );
    }

    #[test]
    fn shared_bus_is_never_faster() {
        let row = ablation_bus_vs_p2p(4, 4);
        assert!(row.baseline >= row.optimized * 0.999, "{row}");
    }

    #[test]
    fn vts_moves_fewer_bytes() {
        let row = ablation_vts_vs_worst_case(64, 40);
        assert!(row.improvement() > 1.5, "VTS must save real traffic: {row}");
    }
}

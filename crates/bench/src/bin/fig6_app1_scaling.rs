//! Regenerates the paper's figure 6: execution time vs sample size for
//! the error-generation stage, n = 1..4 PEs.

use spi_bench::figures::format_scaling;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let sizes = [64, 128, 192, 256, 320, 384, 448, 512];
    let ns = [1, 2, 3, 4];
    if !csv {
        println!("Figure 6 — execution time of actor D vs sample size (µs/frame)\n");
    }
    let rows = spi_bench::fig6_scaling(&sizes, &ns, 10);
    if csv {
        println!("sample_size,n_pes,time_us");
        for r in &rows {
            println!("{},{},{:.3}", r.x, r.n_pes, r.time_us);
        }
        return;
    }
    println!("{}", format_scaling(&rows, "Sample Size"));
}

//! Prints the buffer-sizing report of both applications: the paper's
//! eqs. (1)–(2) bounded-memory guarantees, edge by edge.

use spi_apps::{ErrorStageApp, ErrorStageConfig, PrognosisApp, PrognosisConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Buffer sizing — eq. (1)/(2) in practice\n");

    let app = ErrorStageApp::new(ErrorStageConfig {
        n_pes: 3,
        ..Default::default()
    })?;
    let sys = app.system(1)?;
    println!("3-PE error stage (application 1 hardware subsystem):");
    for row in sys.buffer_report() {
        println!("  {row}");
    }

    let app = PrognosisApp::new(PrognosisConfig {
        n_pes: 2,
        ..Default::default()
    })?;
    let sys = app.system(1)?;
    println!("\n2-PE particle filter (application 2):");
    for row in sys.buffer_report() {
        println!("  {row}");
    }
    Ok(())
}

//! Ablation: how a software I/O processor (the paper's co-design
//! deployment) caps the hardware error stage's parallel speedup.

fn main() {
    println!("Ablation — hardware/software co-design sensitivity (paper §5.2)\n");
    let rows = spi_bench::hwsw_codesign_sweep(&[1, 2, 3, 4], 4, 8);
    println!(
        "{:>4} {:>14} {:>14} {:>12} {:>12}",
        "n", "hw-I/O (µs)", "sw-I/O (µs)", "speedup hw", "speedup sw"
    );
    let (base_hw, base_sw) = (rows[0].1, rows[0].2);
    for (n, hw, sw) in rows {
        println!(
            "{n:>4} {hw:>14.1} {sw:>14.1} {:>11.2}x {:>11.2}x",
            base_hw / hw,
            base_sw / sw
        );
    }
}

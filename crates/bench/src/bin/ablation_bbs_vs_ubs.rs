//! Ablation: protocol selection (BBS where bounded) vs forcing UBS.

fn main() {
    println!("Ablation — BBS/UBS protocol selection (paper §4)\n");
    for n in [2usize, 4] {
        println!("{}", spi_bench::ablation_bbs_vs_ubs(n, 10));
    }
}

//! Regenerates the paper's figure 2: the application-1 dataflow graph.

fn main() {
    println!("{}", spi_bench::fig2_graph(2));
}

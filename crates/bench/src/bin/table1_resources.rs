//! Regenerates the paper's table 1: FPGA resources of the 4-PE
//! error-stage implementation and the SPI library's share.

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    println!("{}", spi_bench::table1_resources(n));
}

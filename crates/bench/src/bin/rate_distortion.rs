//! Extension study: the application-1 codec's rate–distortion behaviour.
//! Sweeps the residual quantizer depth and reports bits/sample vs
//! reconstruction SNR using the full SPI pipeline + the decoder.

use spi_apps::speech::{synth_frame, SpeechApp, SpeechConfig};
use spi_dsp::huffman::HuffmanCode;
use spi_dsp::lpc::{prediction_error, synthesize, Quantizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Application-1 codec rate–distortion (extension study)\n");

    // Run the pipeline once to obtain residuals + coefficients per frame.
    let cfg = SpeechConfig {
        n_pes: 2,
        max_frame: 256,
        max_order: 8,
        vary_rates: false,
        seed: 12,
    };
    let app = SpeechApp::new(cfg)?;
    let sys = app.system(6)?;
    sys.run()?;
    let frames = app.output.lock().expect("output").clone();

    println!(
        "{:>6} {:>14} {:>12} {:>10}",
        "bits", "bits/sample", "ratio", "SNR (dB)"
    );
    for bits in [3u32, 4, 5, 6, 8, 10] {
        let (mut total_bits, mut total_samples) = (0usize, 0usize);
        let (mut sig, mut err) = (0.0f64, 0.0f64);
        for f in &frames {
            let original = synth_frame(cfg.seed, f.iter, cfg.max_frame);
            // Re-quantize the residual at the swept depth.
            let residual = prediction_error(&original, &f.coeffs);
            let q = Quantizer::new(4.0, bits);
            let symbols: Vec<u16> = residual.iter().map(|&e| q.quantize(e)).collect();
            let code = HuffmanCode::from_symbols(&symbols)?;
            let (_, bitlen) = code.encode(&symbols)?;
            let dequant: Vec<f64> = symbols.iter().map(|&s| q.dequantize(s)).collect();
            let decoded = synthesize(&dequant, &f.coeffs);
            total_bits += bitlen;
            total_samples += original.len();
            sig += original.iter().map(|v| v * v).sum::<f64>();
            err += decoded
                .iter()
                .zip(&original)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        let bps = total_bits as f64 / total_samples as f64;
        let snr = 10.0 * (sig / err.max(1e-15)).log10();
        println!("{bits:>6} {bps:>14.2} {:>11.1}x {snr:>10.1}", 64.0 / bps);
    }
    println!("\n(ratio = vs raw 64-bit samples; SNR of the closed decode loop)");
    Ok(())
}

//! Ablation: shared-bus interconnect vs the dedicated point-to-point
//! FIFOs SPI generates on FPGA fabrics.

fn main() {
    println!("Ablation — shared bus vs point-to-point FIFOs\n");
    for n in [2usize, 3, 4] {
        println!("{}", spi_bench::ablation_bus_vs_p2p(n, 6));
    }
}

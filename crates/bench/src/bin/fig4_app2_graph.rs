//! Regenerates the paper's figure 4: the application-2 dataflow graph.

fn main() {
    println!("{}", spi_bench::fig4_graph(2));
}

//! Ablation: ordered-transactions bus (compile-time grant order) vs an
//! arbitrated shared bus.

fn main() {
    println!("Ablation — ordered transactions vs arbitrated bus\n");
    for n in [2usize, 3, 4] {
        println!("{}", spi_bench::ablation_ordered_vs_arbitrated(n, 6));
    }
}

//! Fuzz-style stress harness: generates random consistent dataflow
//! graphs (mixed static/dynamic edges, delays, multirate), pushes each
//! through the complete SPI flow on a random processor count, and
//! checks the run completes with conserved traffic. Exits nonzero on
//! the first failure, printing the offending seed.
//!
//! Usage: `cargo run -p spi-bench --bin stress_random_graphs [count]`

use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spi::{Firing, SpiSystemBuilder};
use spi_dataflow::SdfGraph;
use spi_sched::ProcId;

fn run_one(seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_actors = rng.gen_range(2..7usize);
    let mut g = SdfGraph::new();
    let actors: Vec<_> = (0..n_actors)
        .map(|i| g.add_actor(format!("v{i}"), rng.gen_range(1..60)))
        .collect();
    // Forward edges only (plus optional delayed feedback): always live.
    let mut edges = Vec::new();
    for i in 1..n_actors {
        let src = actors[rng.gen_range(0..i)];
        let dst = actors[i];
        let dynamic = rng.gen_bool(0.4);
        let token_bytes = rng.gen_range(1..9u32);
        let edge = if dynamic {
            let bound = rng.gen_range(1..20u32);
            g.add_dynamic_edge(src, dst, bound, bound, 0, token_bytes)
        } else {
            let p = rng.gen_range(1..5u32);
            let c = rng.gen_range(1..5u32);
            let delay = rng.gen_range(0..4u64);
            g.add_edge(src, dst, p, c, delay, token_bytes)
        }
        .map_err(|e| format!("graph construction: {e}"))?;
        edges.push(edge);
    }

    let procs = rng.gen_range(1..=n_actors.min(4));
    let iterations = rng.gen_range(1..10u64);
    let mut builder = SpiSystemBuilder::new(g.clone());
    builder.iterations(iterations);
    if rng.gen_bool(0.3) {
        builder.force_ubs(true);
    }
    if rng.gen_bool(0.3) {
        builder.resynchronization(false);
    }
    let fired = Arc::new(Mutex::new(vec![0u64; n_actors]));
    for (i, &a) in actors.iter().enumerate() {
        let out_edges: Vec<_> = g
            .edges()
            .filter(|(_, e)| e.src == a)
            .map(|(id, e)| (id, e.clone()))
            .collect();
        let counter = Arc::clone(&fired);
        builder.actor(a, move |ctx: &mut Firing| {
            counter.lock().expect("counter")[i] += 1;
            for (id, e) in &out_edges {
                let bytes = if e.is_dynamic() {
                    // Any size within the bound.
                    let max = e.produce.bound() as usize * e.token_bytes as usize;
                    vec![0xAB; (ctx.iter as usize * 7) % (max + 1)]
                } else {
                    vec![0xAB; e.produce.bound() as usize * e.token_bytes as usize]
                };
                ctx.set_output(*id, bytes);
            }
            1 + ctx.k % 5
        });
    }
    let sys = builder
        .build(procs, |a| ProcId(a.0 % procs))
        .map_err(|e| format!("build: {e}"))?;
    let report = sys.run().map_err(|e| format!("run: {e}"))?;

    // Zero-false-positive oracle for the static analyzer: a system that
    // just built and simulated correctly must carry no error-severity
    // diagnostics. (The builder aborts on errors, so reaching here with
    // one means the analyzer contradicted a demonstrably working system.)
    let lint = spi_analyze::analyze_graph(&g);
    if lint.has_errors() {
        let msgs: Vec<String> = lint
            .errors()
            .map(|d| format!("{}: {}", d.code, d.message))
            .collect();
        return Err(format!(
            "analyzer false positive on a working graph: {}",
            msgs.join("; ")
        ));
    }

    // Conservation: every actor fired q·iterations times.
    let q = spi_dataflow::VtsConversion::convert(&g)
        .map_err(|e| e.to_string())?
        .graph()
        .repetition_vector()
        .map_err(|e| e.to_string())?;
    let fired = fired.lock().expect("counter");
    for (i, &a) in actors.iter().enumerate() {
        let expect = q[a] * iterations;
        if fired[i] != expect {
            return Err(format!(
                "actor {a} fired {} times, expected {expect}",
                fired[i]
            ));
        }
    }
    let _ = report;
    Ok(())
}

fn main() {
    let count: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let mut failures = 0;
    for seed in 0..count {
        if let Err(msg) = run_one(seed) {
            eprintln!("seed {seed}: FAILED — {msg}");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures}/{count} random systems failed");
        std::process::exit(1);
    }
    println!("{count} random dataflow systems built, ran and conserved tokens");
}

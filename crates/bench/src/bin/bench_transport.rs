//! Message-throughput comparison of the two [`Transport`]
//! implementations, written to `BENCH_transport.json`.
//!
//! Three scenarios, each run under `LockedTransport` (the Mutex+Condvar
//! reference) and `RingTransport` (the lock-free SPSC ring sized by the
//! paper's eq. (2) bounds):
//!
//! * `raw_spsc_8B` — two bare threads streaming 8-byte messages through
//!   a single channel: the transport's intrinsic per-message cost.
//! * `pipeline_3pe` — the 3-PE producer → forwarder → sink pipeline from
//!   the engine-equivalence suite, run on the threaded executor with
//!   zero compute: protocol overhead at the executor level.
//! * `filterbank_app` — the full CSDF filter bank lowered through SPI;
//!   FIR work dominates, so this bounds the end-to-end win on a real
//!   compute-heavy workload.
//!
//! Each measurement is the best of several repeats (min wall time), so
//! scheduler noise inflates neither side.

use std::time::{Duration, Instant};

use spi_apps::{FilterBankApp, FilterBankConfig};
use spi_platform::{
    ChannelId, ChannelSpec, LockedTransport, Op, Program, RingTransport, ThreadedRunner, Transport,
    TransportKind,
};

const REPEATS: usize = 5;
const TIMEOUT: Duration = Duration::from_secs(60);

/// One scenario's results.
struct Row {
    name: &'static str,
    messages: u64,
    locked: f64, // msgs/sec
    ring: f64,   // msgs/sec
}

impl Row {
    fn speedup(&self) -> f64 {
        self.ring / self.locked
    }
}

/// Best-of-`REPEATS` wall time of `run`.
fn best_of(mut run: impl FnMut() -> Duration) -> Duration {
    (0..REPEATS).map(|_| run()).min().expect("non-empty")
}

/// Raw two-thread stream through a bare transport.
fn raw_spsc(messages: u64, transport: &dyn Transport) -> Duration {
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| {
            let payload = [0xA5u8; 8];
            for _ in 0..messages {
                transport.send(&payload, TIMEOUT).expect("send");
            }
        });
        s.spawn(|| {
            for _ in 0..messages {
                transport.recv(TIMEOUT).expect("recv");
            }
        });
    });
    start.elapsed()
}

/// 3-PE pipeline: producer → forwarder → sink, no compute ops, so the
/// measured time is executor + transport per-message cost.
fn pipeline_programs(iterations: u64) -> (Vec<ChannelSpec>, Vec<Program>) {
    let spec = ChannelSpec {
        capacity_bytes: 64 * 8, // 64 messages in flight
        max_message_bytes: 8,
        ..ChannelSpec::default()
    };
    let c1 = ChannelId(0);
    let c2 = ChannelId(1);
    let producer = Program::new(
        vec![Op::Send {
            channel: c1,
            payload: Box::new(|l| l.iter.to_le_bytes().to_vec()),
        }],
        iterations,
    );
    let forwarder = Program::new(
        vec![
            Op::Recv { channel: c1 },
            Op::Send {
                channel: c2,
                payload: Box::new(move |l| l.take_from(c1).expect("input")),
            },
        ],
        iterations,
    );
    let sink = Program::new(
        vec![
            Op::Recv { channel: c2 },
            Op::Compute {
                label: "drain".into(),
                work: Box::new(move |l| {
                    let _ = l.take_from(c2);
                    0
                }),
            },
        ],
        iterations,
    );
    (vec![spec, spec], vec![producer, forwarder, sink])
}

fn pipeline_run(kind: TransportKind, iterations: u64) -> Duration {
    let (specs, programs) = pipeline_programs(iterations);
    let runner = ThreadedRunner::new().transport(kind).timeout(TIMEOUT);
    let start = Instant::now();
    runner.run(&specs, programs).expect("pipeline run");
    start.elapsed()
}

/// Messages a program set will emit: sends per iteration × iterations,
/// plus prologue sends.
fn message_count(programs: &[Program]) -> u64 {
    let sends = |ops: &[Op]| ops.iter().filter(|o| matches!(o, Op::Send { .. })).count() as u64;
    programs
        .iter()
        .map(|p| sends(&p.prologue) + sends(&p.ops) * p.iterations)
        .sum()
}

fn filterbank_run(kind: TransportKind, iterations: u64) -> (u64, Duration) {
    let app = FilterBankApp::new(FilterBankConfig::default()).expect("filter bank");
    let sys = app.system(iterations).expect("lowered system");
    let (specs, programs) = sys.into_parts();
    let messages = message_count(&programs);
    let runner = ThreadedRunner::new().transport(kind).timeout(TIMEOUT);
    let start = Instant::now();
    runner.run(&specs, programs).expect("filter bank run");
    (messages, start.elapsed())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();

    let n = 400_000u64;
    let locked = best_of(|| raw_spsc(n, &LockedTransport::new(64 * 8, 8)));
    let ring = best_of(|| raw_spsc(n, &RingTransport::new(64 * 8, 8)));
    rows.push(Row {
        name: "raw_spsc_8B",
        messages: n,
        locked: n as f64 / locked.as_secs_f64(),
        ring: n as f64 / ring.as_secs_f64(),
    });

    let iters = 200_000u64;
    let msgs = 2 * iters; // two channels
    let locked = best_of(|| pipeline_run(TransportKind::Locked, iters));
    let ring = best_of(|| pipeline_run(TransportKind::Ring, iters));
    rows.push(Row {
        name: "pipeline_3pe",
        messages: msgs,
        locked: msgs as f64 / locked.as_secs_f64(),
        ring: msgs as f64 / ring.as_secs_f64(),
    });

    let fb_iters = 400u64;
    let mut fb_msgs = 0;
    let locked = best_of(|| {
        let (m, t) = filterbank_run(TransportKind::Locked, fb_iters);
        fb_msgs = m;
        t
    });
    let ring = best_of(|| {
        let (m, t) = filterbank_run(TransportKind::Ring, fb_iters);
        fb_msgs = m;
        t
    });
    rows.push(Row {
        name: "filterbank_app",
        messages: fb_msgs,
        locked: fb_msgs as f64 / locked.as_secs_f64(),
        ring: fb_msgs as f64 / ring.as_secs_f64(),
    });

    for r in &rows {
        println!(
            "{:<16} {:>10} msgs   locked {:>12.0} msg/s   ring {:>12.0} msg/s   speedup {:.2}x",
            r.name,
            r.messages,
            r.locked,
            r.ring,
            r.speedup()
        );
    }

    let pipeline = rows
        .iter()
        .find(|r| r.name == "pipeline_3pe")
        .expect("pipeline row");
    let met = pipeline.speedup() >= 2.0;
    println!(
        "acceptance: pipeline_3pe ring/locked = {:.2}x (>= 2.0x required) — {}",
        pipeline.speedup(),
        if met { "MET" } else { "NOT MET" }
    );

    // The serde shim performs no serialization offline, so the report is
    // emitted by hand — the schema is three scenario objects plus the
    // acceptance verdict.
    let mut json = String::from("{\n  \"benchmark\": \"transport\",\n  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"messages\": {}, \
             \"locked_msgs_per_sec\": {:.0}, \"ring_msgs_per_sec\": {:.0}, \
             \"speedup\": {:.3}}}{}\n",
            r.name,
            r.messages,
            r.locked,
            r.ring,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"acceptance\": {{\"criterion\": \"pipeline_3pe speedup >= 2.0\", \
         \"speedup\": {:.3}, \"met\": {}}}\n}}\n",
        pipeline.speedup(),
        met
    ));
    std::fs::write("BENCH_transport.json", &json)?;
    println!("wrote BENCH_transport.json");
    if !met {
        return Err("pipeline_3pe speedup below the 2x acceptance bar".into());
    }
    Ok(())
}

//! Message-throughput comparison of the [`Transport`] implementations,
//! written to `BENCH_transport.json`.
//!
//! Three scenarios, each run under `LockedTransport` (the Mutex+Condvar
//! reference) and `RingTransport` (the lock-free SPSC ring sized by the
//! paper's eq. (2) bounds):
//!
//! * `raw_spsc_8B` — two bare threads streaming 8-byte messages through
//!   a single channel: the transport's intrinsic per-message cost.
//! * `pipeline_3pe` — the 3-PE producer → forwarder → sink pipeline from
//!   the engine-equivalence suite, run on the threaded executor with
//!   zero compute: protocol overhead at the executor level.
//! * `filterbank_app` — the full CSDF filter bank lowered through SPI;
//!   FIR work dominates, so this bounds the end-to-end win on a real
//!   compute-heavy workload.
//!
//! A pointer-exchange scenario (`fir_3pe_frames_2KiB`) compares all
//! *three* transports on a 3-PE in-place-FIR pipeline at frame-sized
//! payloads driven through the token API (`send_in_place` /
//! `recv_token` / `send_token`): `PointerTransport` runs both edges
//! over one shared slab and moves only slot descriptors (§5.2 pointer
//! exchange with forwarding), the copying transports pay a copy-out
//! plus a heap buffer per receive and a copy-in per send. The
//! acceptance bar is pointer ≥ 1.5× ring; the row lands in the
//! `pointer_exchange` section of `BENCH_transport.json`.
//!
//! Each measurement is the best of several repeats (min wall time), so
//! scheduler noise inflates neither side.
//!
//! A fourth measurement prices the **fault-tolerance safety net**: the
//! 3-PE FIR pipeline on the ring transport, bare vs supervised
//! (CRC-checked frames, sequence tracking, deadline-armed ops,
//! iteration checkpoints) with no faults injected. The acceptance bar
//! is 5% throughput overhead; the number lands in the `supervision`
//! section of `BENCH_transport.json`.
//!
//! A distributed-loopback scenario (`fir_3pe_net_loopback`) runs the
//! same 3-PE FIR frame pipeline with both edges carried by the `spi-net`
//! socket transport (credit-windowed, length-framed Unix-domain
//! socketpairs), once per message (unbatched) and once with sender-side
//! record coalescing plus coalesced credit acks (`BatchParams` /
//! `AckPolicy`): up to 32 records per vectored write, cumulative credit
//! grants instead of per-message acks. The acceptance bar is batched ≥
//! 1.5× the unbatched socket path; both rates land in the
//! `net_loopback` section of `BENCH_transport.json` (the gap to the
//! in-process ring stays reported as the price of the process
//! boundary).
//!
//! Two further scenarios measure observability cost and are written to
//! `BENCH_trace.json`: a 3-PE pipeline on the ring transport, once
//! under the disabled `NopTracer` (untraced fast path) and once under a
//! fully capturing `RingTracer`. Acceptance (overhead at or below 5%)
//! is judged on `pipeline_3pe_fir`, where the middle PE runs a 64-tap
//! FIR over 256-sample frames — per-message compute in the
//! microseconds, representative of the paper's signal-processing
//! workloads. The zero-compute forwarder is reported alongside as the
//! worst case: with only ~250 ns of work per message, per-event
//! timestamps and buffer writes are necessarily a visible fraction
//! there, and the number bounds the tracer's perturbation on any
//! workload.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spi_apps::{FilterBankApp, FilterBankConfig};
use spi_net::{loopback, loopback_with, BatchParams};
use spi_platform::{
    ChannelId, ChannelSpec, LockedTransport, NopTracer, Op, PointerTransport, Program,
    RingTransport, SupervisionPolicy, ThreadedRunner, Tracer, Transport, TransportKind,
};
use spi_trace::{ClockKind, RingTracer, TraceMeta};

const REPEATS: usize = 5;
/// The trace scenarios compare two runs of the *same* configuration, so
/// scheduler noise — not throughput difference — dominates short runs;
/// more repeats tighten the min estimate on both sides.
const TRACE_REPEATS: usize = 15;
const TIMEOUT: Duration = Duration::from_secs(60);

/// One scenario's results.
struct Row {
    name: &'static str,
    messages: u64,
    locked: f64, // msgs/sec
    ring: f64,   // msgs/sec
}

impl Row {
    fn speedup(&self) -> f64 {
        self.ring / self.locked
    }
}

/// Best-of-`REPEATS` wall time of `run`.
fn best_of(mut run: impl FnMut() -> Duration) -> Duration {
    (0..REPEATS).map(|_| run()).min().expect("non-empty")
}

/// Raw two-thread stream through a bare transport.
fn raw_spsc(messages: u64, transport: &dyn Transport) -> Duration {
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| {
            let payload = [0xA5u8; 8];
            for _ in 0..messages {
                transport.send(&payload, TIMEOUT).expect("send");
            }
        });
        s.spawn(|| {
            for _ in 0..messages {
                transport.recv(TIMEOUT).expect("recv");
            }
        });
    });
    start.elapsed()
}

/// 3-PE pipeline: producer → forwarder → sink, no compute ops, so the
/// measured time is executor + transport per-message cost.
fn pipeline_programs(iterations: u64) -> (Vec<ChannelSpec>, Vec<Program>) {
    let spec = ChannelSpec {
        capacity_bytes: 64 * 8, // 64 messages in flight
        max_message_bytes: 8,
        ..ChannelSpec::default()
    };
    let c1 = ChannelId(0);
    let c2 = ChannelId(1);
    let producer = Program::new(
        vec![Op::Send {
            channel: c1,
            payload: Box::new(|l| l.iter.to_le_bytes().to_vec()),
        }],
        iterations,
    );
    let forwarder = Program::new(
        vec![
            Op::Recv { channel: c1 },
            Op::Send {
                channel: c2,
                payload: Box::new(move |l| l.take_from(c1).expect("input")),
            },
        ],
        iterations,
    );
    let sink = Program::new(
        vec![
            Op::Recv { channel: c2 },
            Op::Compute {
                label: "drain".into(),
                work: Box::new(move |l| {
                    let _ = l.take_from(c2);
                    0
                }),
            },
        ],
        iterations,
    );
    (vec![spec, spec], vec![producer, forwarder, sink])
}

fn pipeline_run(kind: TransportKind, iterations: u64) -> Duration {
    let (specs, programs) = pipeline_programs(iterations);
    let runner = ThreadedRunner::new().transport(kind).timeout(TIMEOUT);
    let start = Instant::now();
    runner.run(&specs, programs).expect("pipeline run");
    start.elapsed()
}

/// 3-PE DSP pipeline: the producer streams 256-sample i16 frames, the
/// filter PE runs a 64-tap FIR over each frame, the sink drains. The
/// representative workload for tracing overhead — per-message compute
/// sits in the microseconds, as in the paper's applications.
const FRAME_SAMPLES: usize = 256;
const FRAME_BYTES: usize = FRAME_SAMPLES * 2;
const FIR_TAPS: usize = 64;

fn fir_frame(input: &[u8]) -> Vec<u8> {
    let samples: Vec<i64> = input
        .chunks_exact(2)
        .map(|c| i64::from(i16::from_le_bytes([c[0], c[1]])))
        .collect();
    let mut out = Vec::with_capacity(input.len());
    for i in 0..samples.len() {
        let lo = i.saturating_sub(FIR_TAPS - 1);
        let mut acc: i64 = 0;
        // Triangular taps — the values are irrelevant, the MAC loop
        // per output sample is the point.
        for (tap, &s) in samples[lo..=i].iter().rev().enumerate() {
            acc += s * (FIR_TAPS - tap) as i64;
        }
        out.extend_from_slice(&((acc >> 11) as i16).to_le_bytes());
    }
    out
}

fn fir_pipeline_programs(iterations: u64) -> (Vec<ChannelSpec>, Vec<Program>) {
    let spec = ChannelSpec {
        capacity_bytes: 64 * FRAME_BYTES,
        max_message_bytes: FRAME_BYTES,
        ..ChannelSpec::default()
    };
    let c1 = ChannelId(0);
    let c2 = ChannelId(1);
    let producer = Program::new(
        vec![Op::Send {
            channel: c1,
            payload: Box::new(|l| {
                let mut frame = Vec::with_capacity(FRAME_BYTES);
                for s in 0..FRAME_SAMPLES as u64 {
                    frame.extend_from_slice(&(((l.iter + s) & 0x7FFF) as i16).to_le_bytes());
                }
                frame
            }),
        }],
        iterations,
    );
    let filter = Program::new(
        vec![
            Op::Recv { channel: c1 },
            Op::Compute {
                label: "fir".into(),
                work: Box::new(move |l| {
                    let frame = l.take_from(c1).expect("input frame");
                    let filtered = fir_frame(&frame);
                    l.store.insert("fir_out".into(), filtered);
                    0
                }),
            },
            Op::Send {
                channel: c2,
                payload: Box::new(|l| l.store.remove("fir_out").expect("filtered frame")),
            },
        ],
        iterations,
    );
    let sink = Program::new(
        vec![
            Op::Recv { channel: c2 },
            Op::Compute {
                label: "drain".into(),
                work: Box::new(move |l| {
                    let _ = l.take_from(c2);
                    0
                }),
            },
        ],
        iterations,
    );
    (vec![spec, spec], vec![producer, filter, sink])
}

/// A pipeline on the ring transport with an explicit tracer attached;
/// buffer setup and program construction stay outside the timed region.
fn traced_pipeline_run(
    tracer: Arc<dyn Tracer>,
    programs: fn(u64) -> (Vec<ChannelSpec>, Vec<Program>),
    iterations: u64,
) -> Duration {
    let (specs, programs) = programs(iterations);
    let runner = ThreadedRunner::new()
        .transport(TransportKind::Ring)
        .timeout(TIMEOUT)
        .tracer(tracer);
    let start = Instant::now();
    runner.run(&specs, programs).expect("traced pipeline run");
    start.elapsed()
}

/// One trace-overhead scenario: best-of-`REPEATS` under `NopTracer`
/// and under a fully capturing `RingTracer`.
struct TraceRow {
    name: &'static str,
    iterations: u64,
    messages: u64,
    events: usize,
    nop: f64,    // msgs/sec
    traced: f64, // msgs/sec
}

impl TraceRow {
    fn overhead_pct(&self) -> f64 {
        (self.nop / self.traced - 1.0) * 100.0
    }
}

fn trace_scenario(
    name: &'static str,
    programs: fn(u64) -> (Vec<ChannelSpec>, Vec<Program>),
    iterations: u64,
) -> TraceRow {
    // Two channels, one message per iteration each. The capture ring is
    // allocated once and reset between repeats so allocation never
    // lands in the timed region; repeats alternate nop/traced so slow
    // drift (other load on the host) lands on both sides equally
    // instead of biasing whichever ran second.
    let messages = 2 * iterations;
    let ring_tracer = Arc::new(RingTracer::new(3, 1 << 20));
    let mut nop = Duration::MAX;
    let mut traced = Duration::MAX;
    for _ in 0..TRACE_REPEATS {
        nop = nop.min(traced_pipeline_run(
            Arc::new(NopTracer),
            programs,
            iterations,
        ));
        ring_tracer.reset();
        traced = traced.min(traced_pipeline_run(
            ring_tracer.clone(),
            programs,
            iterations,
        ));
    }
    assert_eq!(ring_tracer.dropped(), 0, "capture ring sized for the run");
    let events = ring_tracer
        .finish(TraceMeta::new(ClockKind::Nanos))
        .events
        .len();
    TraceRow {
        name,
        iterations,
        messages,
        events,
        nop: messages as f64 / nop.as_secs_f64(),
        traced: messages as f64 / traced.as_secs_f64(),
    }
}

/// The pointer-exchange scenario (§5.2): a 3-PE FIR pipeline at
/// frame-sized payloads driven through the token API. The producer
/// frames samples directly into a channel slot (`send_in_place`), the
/// filter PE receives a token, runs a first-order FIR **in place over
/// the lease**, and forwards it; the sink receives and folds the
/// borrowed view. Under `PointerTransport` the two edges share one
/// slab (`with_pool`, the slab sized to the chain's summed eq. (2)
/// bounds), so a frame is written once and never copied again — only
/// descriptors move. Under the copying transports the same token API
/// degrades to a copy-out plus a fresh heap buffer on every receive
/// and a copy-in on every send — exactly the traffic the paper's
/// pointer exchange removes. The FIR runs on 8-byte lanes so the
/// filter stage stays at "frame handling" cost; the compute-dominated
/// bound is `filterbank_app`.
const PTR_FRAME_BYTES: usize = 2048;

fn token_fir_frames(
    messages: u64,
    frame: usize,
    t1: &dyn Transport,
    t2: &dyn Transport,
    template: &[u8],
) -> Duration {
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..messages {
                t1.send_in_place(
                    frame,
                    &mut |buf| {
                        buf[..frame].copy_from_slice(template);
                        buf[0] = i as u8; // per-message marker
                        frame
                    },
                    TIMEOUT,
                )
                .expect("send frame");
            }
        });
        s.spawn(|| {
            for _ in 0..messages {
                let mut token = t1.recv_token(TIMEOUT).expect("recv frame");
                // First-order FIR y[n] = (x[n] + x[n-1]) / 2 in place
                // over the lease, on i64 lanes.
                let mut prev = 0i64;
                for chunk in token.chunks_exact_mut(8) {
                    let x = i64::from_le_bytes(chunk.try_into().expect("8-byte lane"));
                    chunk.copy_from_slice(&((x + prev) / 2).to_le_bytes());
                    prev = x;
                }
                t2.send_token(token, TIMEOUT).expect("send filtered");
            }
        });
        s.spawn(|| {
            let mut acc = 0u64;
            for _ in 0..messages {
                let token = t2.recv_token(TIMEOUT).expect("recv filtered");
                // Touch the payload so the read is not optimized away.
                acc = acc
                    .wrapping_add(u64::from(token[0]))
                    .wrapping_add(u64::from(token[frame - 1]));
            }
            std::hint::black_box(acc);
        });
    });
    start.elapsed()
}

fn token_fir_run(kind: TransportKind, messages: u64, frame: usize) -> Duration {
    let spec = ChannelSpec {
        capacity_bytes: 64 * frame,
        max_message_bytes: frame,
        ..ChannelSpec::default()
    };
    let (t1, t2): (Box<dyn Transport>, Box<dyn Transport>) = match kind {
        // The chain's two edges share one slab — §5.2 forwarding.
        TransportKind::Pointer => {
            let t1 = PointerTransport::new(spec.capacity_bytes, frame);
            let t2 = PointerTransport::with_pool(t1.buffer_pool().clone());
            (Box::new(t1), Box::new(t2))
        }
        kind => (kind.instantiate(&spec), kind.instantiate(&spec)),
    };
    let template: Vec<u8> = (0..frame).map(|i| (i % 251) as u8).collect();
    token_fir_frames(messages, frame, t1.as_ref(), t2.as_ref(), &template)
}

/// The socket-transport scenario: the 3-PE FIR frame pipeline with both
/// edges over `spi_net::loopback` socketpairs. The filter stage runs the
/// same first-order FIR as `token_fir_frames`, but on the owned receive
/// buffer — the socket path is copying by construction, so the token API
/// would only re-measure the same copies.
fn net_fir_run(messages: u64, frame: usize, batch: Option<BatchParams>) -> Duration {
    let spec = ChannelSpec {
        capacity_bytes: 64 * frame,
        max_message_bytes: frame,
        ..ChannelSpec::default()
    };
    let pair = |name| match batch {
        Some(b) => loopback_with(&spec, b).expect(name),
        None => loopback(&spec).expect(name),
    };
    let (tx1, rx1) = pair("loopback c1");
    let (tx2, rx2) = pair("loopback c2");
    let template: Vec<u8> = (0..frame).map(|i| (i % 251) as u8).collect();
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut buf = template.clone();
            for i in 0..messages {
                buf[0] = i as u8; // per-message marker
                tx1.send(&buf, TIMEOUT).expect("send frame");
            }
        });
        s.spawn(|| {
            for _ in 0..messages {
                let mut buf = rx1.recv(TIMEOUT).expect("recv frame");
                let mut prev = 0i64;
                for chunk in buf.chunks_exact_mut(8) {
                    let x = i64::from_le_bytes(chunk.try_into().expect("8-byte lane"));
                    chunk.copy_from_slice(&((x + prev) / 2).to_le_bytes());
                    prev = x;
                }
                tx2.send(&buf, TIMEOUT).expect("send filtered");
            }
        });
        s.spawn(|| {
            let mut acc = 0u64;
            for _ in 0..messages {
                let token = rx2.recv(TIMEOUT).expect("recv filtered");
                acc = acc
                    .wrapping_add(u64::from(token[0]))
                    .wrapping_add(u64::from(token[frame - 1]));
            }
            std::hint::black_box(acc);
        });
    });
    start.elapsed()
}

/// The same FIR pipeline on the ring transport, bare vs supervised
/// (CRC-checked framing, sequence tracking, checkpoint bookkeeping,
/// deadline-armed channel ops). No faults are injected — this measures
/// the price of the safety net when nothing goes wrong, the number the
/// fault-tolerance acceptance criterion bounds at 5%.
fn supervisable_pipeline_run(supervised: bool, iterations: u64) -> Duration {
    let (specs, programs) = fir_pipeline_programs(iterations);
    let mut runner = ThreadedRunner::new()
        .transport(TransportKind::Ring)
        .timeout(TIMEOUT);
    if supervised {
        runner = runner.supervise(SupervisionPolicy::retry(3).with_deadline(TIMEOUT));
    }
    let start = Instant::now();
    runner.run(&specs, programs).expect("fir pipeline run");
    start.elapsed()
}

/// Messages a program set will emit: sends per iteration × iterations,
/// plus prologue sends.
fn message_count(programs: &[Program]) -> u64 {
    let sends = |ops: &[Op]| ops.iter().filter(|o| matches!(o, Op::Send { .. })).count() as u64;
    programs
        .iter()
        .map(|p| sends(&p.prologue) + sends(&p.ops) * p.iterations)
        .sum()
}

fn filterbank_run(kind: TransportKind, iterations: u64) -> (u64, Duration) {
    let app = FilterBankApp::new(FilterBankConfig::default()).expect("filter bank");
    let sys = app.system(iterations).expect("lowered system");
    let (specs, programs) = sys.into_parts();
    let messages = message_count(&programs);
    let runner = ThreadedRunner::new().transport(kind).timeout(TIMEOUT);
    let start = Instant::now();
    runner.run(&specs, programs).expect("filter bank run");
    (messages, start.elapsed())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();

    let n = 400_000u64;
    let locked = best_of(|| raw_spsc(n, &LockedTransport::new(64 * 8, 8)));
    let ring = best_of(|| raw_spsc(n, &RingTransport::new(64 * 8, 8)));
    rows.push(Row {
        name: "raw_spsc_8B",
        messages: n,
        locked: n as f64 / locked.as_secs_f64(),
        ring: n as f64 / ring.as_secs_f64(),
    });

    let iters = 200_000u64;
    let msgs = 2 * iters; // two channels
    let locked = best_of(|| pipeline_run(TransportKind::Locked, iters));
    let ring = best_of(|| pipeline_run(TransportKind::Ring, iters));
    rows.push(Row {
        name: "pipeline_3pe",
        messages: msgs,
        locked: msgs as f64 / locked.as_secs_f64(),
        ring: msgs as f64 / ring.as_secs_f64(),
    });

    let fb_iters = 400u64;
    let mut fb_msgs = 0;
    let locked = best_of(|| {
        let (m, t) = filterbank_run(TransportKind::Locked, fb_iters);
        fb_msgs = m;
        t
    });
    let ring = best_of(|| {
        let (m, t) = filterbank_run(TransportKind::Ring, fb_iters);
        fb_msgs = m;
        t
    });
    rows.push(Row {
        name: "filterbank_app",
        messages: fb_msgs,
        locked: fb_msgs as f64 / locked.as_secs_f64(),
        ring: fb_msgs as f64 / ring.as_secs_f64(),
    });

    for r in &rows {
        println!(
            "{:<16} {:>10} msgs   locked {:>12.0} msg/s   ring {:>12.0} msg/s   speedup {:.2}x",
            r.name,
            r.messages,
            r.locked,
            r.ring,
            r.speedup()
        );
    }

    let pipeline = rows
        .iter()
        .find(|r| r.name == "pipeline_3pe")
        .expect("pipeline row");
    let met = pipeline.speedup() >= 2.0;
    println!(
        "acceptance: pipeline_3pe ring/locked = {:.2}x (>= 2.0x required) — {}",
        pipeline.speedup(),
        if met { "MET" } else { "NOT MET" }
    );

    // Pointer exchange vs copying transports: the 3-PE FIR frame
    // pipeline at frame-sized payloads over the token API.
    let ptr_msgs = 50_000u64;
    let ptr_locked = best_of(|| token_fir_run(TransportKind::Locked, ptr_msgs, PTR_FRAME_BYTES));
    let ptr_ring = best_of(|| token_fir_run(TransportKind::Ring, ptr_msgs, PTR_FRAME_BYTES));
    let ptr_ptr = best_of(|| token_fir_run(TransportKind::Pointer, ptr_msgs, PTR_FRAME_BYTES));
    let ptr_locked_rate = ptr_msgs as f64 / ptr_locked.as_secs_f64();
    let ptr_ring_rate = ptr_msgs as f64 / ptr_ring.as_secs_f64();
    let ptr_ptr_rate = ptr_msgs as f64 / ptr_ptr.as_secs_f64();
    let ptr_vs_ring = ptr_ptr_rate / ptr_ring_rate;
    let ptr_met = ptr_vs_ring >= 1.5;
    println!(
        "fir_3pe_frames_2KiB {:>8} msgs   locked {:>10.0} msg/s   ring {:>10.0} msg/s   pointer {:>10.0} msg/s   pointer/ring {:.2}x",
        ptr_msgs, ptr_locked_rate, ptr_ring_rate, ptr_ptr_rate, ptr_vs_ring
    );
    println!(
        "acceptance: fir_3pe_frames_2KiB pointer/ring = {:.2}x (>= 1.5x required) — {}",
        ptr_vs_ring,
        if ptr_met { "MET" } else { "NOT MET" }
    );

    // Socket-transport cost: the same FIR frame pipeline with both
    // edges over spi-net loopback socketpairs — once per-message, once
    // with record coalescing (half the 64-message window per vectored
    // write, a generous Nagle deadline that never fires under load) and
    // the matching coalesced credit acks. The batched/unbatched ratio
    // is the acceptance bar; the gap to the ring stays informational.
    let net_msgs = 20_000u64;
    let net_batch = BatchParams {
        max_msgs: 32,
        flush_after: Duration::from_micros(200),
    };
    let net_unbatched_t = best_of(|| net_fir_run(net_msgs, PTR_FRAME_BYTES, None));
    let net_t = best_of(|| net_fir_run(net_msgs, PTR_FRAME_BYTES, Some(net_batch)));
    let net_unbatched_rate = net_msgs as f64 / net_unbatched_t.as_secs_f64();
    let net_rate = net_msgs as f64 / net_t.as_secs_f64();
    let net_vs_ring = net_rate / ptr_ring_rate;
    let net_batch_gain = net_rate / net_unbatched_rate;
    let net_met = net_batch_gain >= 1.5;
    println!(
        "fir_3pe_net_loopback {:>8} msgs   batched {:>10.0} msg/s   unbatched {:>10.0} msg/s   ring {:>10.0} msg/s   net/ring {:.2}x",
        net_msgs, net_rate, net_unbatched_rate, ptr_ring_rate, net_vs_ring
    );
    println!(
        "acceptance: fir_3pe_net_loopback batched/unbatched = {:.2}x (>= 1.5x required) — {}",
        net_batch_gain,
        if net_met { "MET" } else { "NOT MET" }
    );

    // Fault-free supervision overhead on the 3-PE FIR pipeline; repeats
    // alternate bare/supervised so host drift lands on both sides.
    let sup_iters = 30_000u64;
    let sup_msgs = 2 * sup_iters;
    let mut bare_t = Duration::MAX;
    let mut sup_t = Duration::MAX;
    for _ in 0..TRACE_REPEATS {
        bare_t = bare_t.min(supervisable_pipeline_run(false, sup_iters));
        sup_t = sup_t.min(supervisable_pipeline_run(true, sup_iters));
    }
    let bare_rate = sup_msgs as f64 / bare_t.as_secs_f64();
    let sup_rate = sup_msgs as f64 / sup_t.as_secs_f64();
    let sup_overhead = (bare_rate / sup_rate - 1.0) * 100.0;
    let sup_met = sup_overhead <= 5.0;
    println!(
        "supervision_fir      {:>9} msgs   bare {:>12.0} msg/s   supervised {:>10.0} msg/s   overhead {:.2}%",
        sup_msgs, bare_rate, sup_rate, sup_overhead
    );
    println!(
        "acceptance: fault-free supervision overhead on pipeline_3pe_fir = {:.2}% (<= 5% required) — {}",
        sup_overhead,
        if sup_met { "MET" } else { "NOT MET" }
    );

    // The serde shim performs no serialization offline, so the report is
    // emitted by hand — the schema is three scenario objects plus the
    // acceptance verdict.
    let mut json = String::from("{\n  \"benchmark\": \"transport\",\n  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"messages\": {}, \
             \"locked_msgs_per_sec\": {:.0}, \"ring_msgs_per_sec\": {:.0}, \
             \"speedup\": {:.3}}}{}\n",
            r.name,
            r.messages,
            r.locked,
            r.ring,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"pointer_exchange\": {{\"scenario\": \"fir_3pe_frames_2KiB\", \
         \"frame_bytes\": {PTR_FRAME_BYTES}, \"messages\": {ptr_msgs}, \
         \"locked_msgs_per_sec\": {ptr_locked_rate:.0}, \"ring_msgs_per_sec\": {ptr_ring_rate:.0}, \
         \"pointer_msgs_per_sec\": {ptr_ptr_rate:.0}, \"pointer_vs_ring\": {ptr_vs_ring:.3}, \
         \"criterion\": \"pointer >= 1.5x ring on the 3-PE FIR frame pipeline\", \"met\": {ptr_met}}},\n",
    ));
    json.push_str(&format!(
        "  \"net_loopback\": {{\"scenario\": \"fir_3pe_net_loopback\", \
         \"frame_bytes\": {PTR_FRAME_BYTES}, \"messages\": {net_msgs}, \
         \"batch_max_msgs\": {}, \
         \"net_msgs_per_sec\": {net_rate:.0}, \
         \"net_unbatched_msgs_per_sec\": {net_unbatched_rate:.0}, \
         \"ring_msgs_per_sec\": {ptr_ring_rate:.0}, \
         \"net_vs_ring\": {net_vs_ring:.3}, \"batched_vs_unbatched\": {net_batch_gain:.3}, \
         \"criterion\": \"batched socket path >= 1.5x unbatched at 2 KiB frames\", \
         \"met\": {net_met}}},\n",
        net_batch.max_msgs,
    ));
    json.push_str(&format!(
        "  \"supervision\": {{\"scenario\": \"pipeline_3pe_fir\", \"messages\": {sup_msgs}, \
         \"bare_msgs_per_sec\": {bare_rate:.0}, \"supervised_msgs_per_sec\": {sup_rate:.0}, \
         \"overhead_pct\": {sup_overhead:.3}, \
         \"criterion\": \"fault-free supervision overhead <= 5%\", \"met\": {sup_met}}},\n",
    ));
    json.push_str(&format!(
        "  \"acceptance\": {{\"criterion\": \"pipeline_3pe speedup >= 2.0\", \
         \"speedup\": {:.3}, \"met\": {}}}\n}}\n",
        pipeline.speedup(),
        met
    ));
    std::fs::write("BENCH_transport.json", &json)?;
    println!("wrote BENCH_transport.json");

    // Observability cost: NopTracer (disabled, untraced fast path) vs a
    // RingTracer capturing every send/receive/firing/block event.
    // Acceptance is judged on the FIR pipeline; the zero-compute
    // forwarder bounds the perturbation from above (per-message work
    // there is ~250 ns, smaller than a handful of timestamped events).
    let fir = trace_scenario("pipeline_3pe_fir", fir_pipeline_programs, 30_000);
    let worst = trace_scenario("pipeline_3pe_forward", pipeline_programs, 100_000);
    for r in [&fir, &worst] {
        println!(
            "{:<20} {:>9} msgs   nop {:>12.0} msg/s   traced {:>12.0} msg/s   \
             {} events, overhead {:.2}%",
            r.name,
            r.messages,
            r.nop,
            r.traced,
            r.events,
            r.overhead_pct()
        );
    }
    let trace_met = fir.overhead_pct() <= 5.0;
    println!(
        "acceptance: RingTracer overhead on pipeline_3pe_fir = {:.2}% (<= 5% required) — {}",
        fir.overhead_pct(),
        if trace_met { "MET" } else { "NOT MET" }
    );
    let mut trace_json =
        String::from("{\n  \"benchmark\": \"trace_overhead\",\n  \"scenarios\": [\n");
    for (i, r) in [&fir, &worst].iter().enumerate() {
        trace_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"iterations\": {}, \"messages\": {}, \
             \"events_captured\": {}, \"nop_msgs_per_sec\": {:.0}, \
             \"traced_msgs_per_sec\": {:.0}, \"overhead_pct\": {:.3}}}{}\n",
            r.name,
            r.iterations,
            r.messages,
            r.events,
            r.nop,
            r.traced,
            r.overhead_pct(),
            if i == 0 { "," } else { "" }
        ));
    }
    trace_json.push_str(&format!(
        "  ],\n  \"acceptance\": {{\"criterion\": \
         \"RingTracer overhead <= 5% vs NopTracer on the 3-PE FIR pipeline\", \
         \"overhead_pct\": {:.3}, \"met\": {trace_met}}}\n}}\n",
        fir.overhead_pct(),
    ));
    std::fs::write("BENCH_trace.json", &trace_json)?;
    println!("wrote BENCH_trace.json");

    if !met {
        return Err("pipeline_3pe speedup below the 2x acceptance bar".into());
    }
    if !ptr_met {
        return Err("pointer exchange below the 1.5x acceptance bar vs the ring".into());
    }
    if !net_met {
        return Err("batched socket path below the 1.5x acceptance bar vs unbatched".into());
    }
    if !trace_met {
        return Err("RingTracer overhead above the 5% acceptance bar".into());
    }
    if !sup_met {
        return Err("fault-free supervision overhead above the 5% acceptance bar".into());
    }
    Ok(())
}

//! Regenerates the paper's table 2: FPGA resources of the 2-PE
//! particle-filter implementation and the SPI library's share.

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    println!("{}", spi_bench::table2_resources(n));
}

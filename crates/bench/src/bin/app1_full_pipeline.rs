//! Extension study: the FULL application-1 pipeline (A→B→C→D×n→E) rather
//! than the paper's hardware-only D stage. The serial front-end (FFT, LU,
//! Huffman) bounds the achievable speedup — Amdahl in action, with the
//! analytic Brent bound printed alongside the measurement.

use spi_apps::{SpeechApp, SpeechConfig};
use spi_sched::speedup_bounds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Full application-1 pipeline scaling (extension study)\n");
    println!(
        "{:>4} {:>14} {:>10} {:>16}",
        "n", "µs/frame", "speedup", "Brent bound"
    );
    let mut base = None;
    for n in [1usize, 2, 3, 4, 6] {
        let cfg = SpeechConfig {
            n_pes: n,
            max_frame: 512,
            max_order: 10,
            vary_rates: false,
            seed: 7,
        };
        let app = SpeechApp::new(cfg)?;
        // Analytic bound from the (VTS-converted) graph.
        let converted = spi_repro_convert(&app.graph)?;
        let bound = speedup_bounds(&converted)?;
        let sys = app.system(8)?;
        let t = sys.run()?.period_us();
        let b = *base.get_or_insert(t);
        println!(
            "{n:>4} {t:>14.1} {:>9.2}x {:>15.2}x",
            b / t,
            bound.max_speedup()
        );
    }
    println!("\nThe front-end (read, FFT, LU, Huffman) serializes on P0, so the");
    println!("measured speedup saturates well below n — matching the Brent bound.");
    Ok(())
}

fn spi_repro_convert(
    g: &spi_dataflow::SdfGraph,
) -> Result<spi_dataflow::SdfGraph, spi_dataflow::DataflowError> {
    Ok(spi_dataflow::VtsConversion::convert(g)?.graph().clone())
}

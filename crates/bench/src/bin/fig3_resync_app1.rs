//! Regenerates the paper's figure 3: synchronization graph of the 3-PE
//! error-stage implementation, before and after resynchronization.

fn main() {
    println!("Figure 3 — resynchronization, 3-PE implementation of actor D\n");
    println!("{}", spi_bench::fig3_resync(3));
    let (before, after) = spi_bench::fig3_dot(3);
    println!("\nGraphviz (render with `dot -Tpng`):\n");
    println!("// --- before ---\n{before}");
    println!("// --- after ---\n{after}");
}

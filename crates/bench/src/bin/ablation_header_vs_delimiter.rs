//! Ablation: header vs delimiter length signalling for SPI_dynamic
//! (the paper's §3 implementation argument).

fn main() {
    println!("Ablation — header vs delimiter length signalling (paper §3)\n");
    for n in [1usize, 2, 4] {
        println!("{}", spi_bench::ablation_header_vs_delimiter(n, 8));
    }
}

//! Ablation: SPI vs a generic MPI layer on identical streams — the
//! overhead gap that motivates the paper (§1).

fn main() {
    println!("Ablation — SPI vs generic MPI message layer\n");
    for (bytes, msgs) in [
        (16usize, 200u64),
        (64, 200),
        (256, 100),
        (1024, 50),
        (4096, 20),
    ] {
        println!("{}", spi_bench::ablation_spi_vs_mpi(bytes, msgs));
    }
}

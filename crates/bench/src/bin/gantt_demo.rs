//! Prints a textual Gantt trace of a small 2-PE error-stage run — shows
//! the SPI actors, waits and transfers cycle by cycle.

use spi::SpiSystemBuilder;
use spi_apps::{ErrorStageApp, ErrorStageConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = ErrorStageApp::new(ErrorStageConfig {
        n_pes: 2,
        frame: 64,
        order: 4,
        ..Default::default()
    })?;
    let mut builder = SpiSystemBuilder::new(app.graph.clone());
    app.configure(&mut builder);
    builder.iterations(2);
    builder.trace(true);
    let system = app.build_with(builder)?;
    let report = system.run()?;
    println!("Gantt trace — 2-PE error stage, 2 frames\n");
    println!("{}", report.sim.render_gantt());
    println!("makespan: {} cycles", report.sim.makespan_cycles);
    Ok(())
}

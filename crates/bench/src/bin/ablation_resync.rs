//! Ablation: resynchronization on/off (§4.1) on the error-stage app.

fn main() {
    println!("Ablation — resynchronization (paper §4.1)\n");
    for n in [2usize, 3, 4] {
        for row in spi_bench::ablation_resync(n, 10) {
            println!("{row}");
        }
        println!();
    }
}

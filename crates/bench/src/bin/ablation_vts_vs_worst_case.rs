//! Ablation: VTS variable-size transfers vs worst-case static sizing.

fn main() {
    println!("Ablation — VTS vs worst-case-static modeling (paper §3)\n");
    for max_tokens in [16u32, 64, 256] {
        println!("{}", spi_bench::ablation_vts_vs_worst_case(max_tokens, 50));
    }
}

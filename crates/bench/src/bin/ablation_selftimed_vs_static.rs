//! Ablation: self-timed vs fully-static scheduling under actor
//! execution-time jitter (the paper's §2 robustness argument).

fn main() {
    println!("Ablation — self-timed vs fully-static scheduling (paper §2)\n");
    for jitter in [0u32, 10, 30, 50] {
        println!("{}", spi_bench::ablation_selftimed_vs_static(jitter, 50));
    }
}

//! `spi-lint` — static analysis of DIF dataflow files, and runtime
//! trace conformance.
//!
//! Runs the full `spi-analyze` pipeline over each DIF file and renders
//! the diagnostics. With `--procs N` the graph is additionally pushed
//! through scheduling (round-robin actor assignment, like the stress
//! harness) so the schedule-level passes — protocol lints, sync
//! coverage, resynchronization fixpoint — run too.
//!
//! The `trace-check` subcommand instead replays captured `spi-trace`
//! files (native `# spi-trace v1` format) against the bounds recorded
//! in their metadata — eq. (2) occupancy, eq. (1) message size,
//! per-channel FIFO, token conservation and the predicted makespan —
//! emitting the `SPI080`–`SPI085` runtime diagnostics.
//!
//! The `race-check` subcommand replays the same trace files through the
//! vector-clock happens-before checker in `spi-verify`, emitting the
//! `SPI100`–`SPI106` concurrency diagnostics (unordered accesses,
//! premature receives, unsynchronized buffer-slot reuse).
//!
//! Usage:
//!   spi-lint [--format human|json] [--procs N] [--force-ubs]
//!            [--no-resync] [--delimiter] FILE...
//!   spi-lint trace-check [--format human|json] TRACE...
//!   spi-lint race-check [--format human|json] TRACE...
//!
//! Exit status: 0 clean (warnings allowed), 1 when any error-severity
//! diagnostic fires, 2 on usage or parse problems.

use std::collections::HashMap;
use std::process::ExitCode;

use spi_analyze::{AnalysisInput, Analyzer};
use spi_dataflow::dif::from_dif;
use spi_dataflow::{EdgeId, LengthSignal, PrecedenceGraph, SdfGraph, VtsConversion};
use spi_sched::{
    Assignment, IpcEdgeKind, IpcGraph, ProcId, Protocol, SelfTimedSchedule, SyncGraph,
};

struct Options {
    json: bool,
    procs: Option<usize>,
    force_ubs: bool,
    resync: bool,
    delimiter: bool,
    files: Vec<String>,
}

fn usage() -> &'static str {
    "usage: spi-lint [--format human|json] [--procs N] [--force-ubs] \
     [--no-resync] [--delimiter] FILE..."
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        procs: None,
        force_ubs: false,
        resync: true,
        delimiter: false,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                match it.next().map(String::as_str) {
                    Some("json") => opts.json = true,
                    Some("human") => opts.json = false,
                    Some(other) => {
                        return Err(format!("--format expects human|json, got `{other}`"))
                    }
                    None => return Err("--format expects human|json".into()),
                };
            }
            "--procs" => {
                let n = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--procs expects a positive integer")?;
                opts.procs = Some(n);
            }
            "--force-ubs" => opts.force_ubs = true,
            "--no-resync" => opts.resync = false,
            "--delimiter" => opts.delimiter = true,
            "--help" | "-h" => return Err(usage().to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() {
        return Err(usage().to_string());
    }
    Ok(opts)
}

/// Mirrors the builder's schedule derivation far enough to feed the
/// schedule-level passes: VTS → precedence graph → round-robin actor
/// assignment → IPC graph → protocol selection → sync graph (+ resync).
struct ScheduleArtifacts {
    vts: VtsConversion,
    ipc: IpcGraph,
    sync: SyncGraph,
    resync_cert: Option<spi_sched::ResyncCertificate>,
    protocols: HashMap<EdgeId, Protocol>,
}

fn derive_schedule(
    graph: &SdfGraph,
    procs: usize,
    force_ubs: bool,
    resync: bool,
) -> Result<ScheduleArtifacts, String> {
    let vts = VtsConversion::convert(graph).map_err(|e| e.to_string())?;
    let cg = vts.graph().clone();
    let pg = PrecedenceGraph::expand(&cg).map_err(|e| e.to_string())?;
    let assignment =
        Assignment::by_actor(&pg, procs, |a| ProcId(a.0 % procs)).map_err(|e| e.to_string())?;
    let st = SelfTimedSchedule::from_assignment(&pg, assignment).map_err(|e| e.to_string())?;
    let ipc = IpcGraph::build(&cg, &pg, &st).map_err(|e| e.to_string())?;

    // eq. (2) bound per edge, folded with MAX; one unbounded instance
    // forces UBS (same rule as the system builder).
    let mut bounds: HashMap<EdgeId, Option<u64>> = HashMap::new();
    for e in ipc.ipc_edges() {
        let IpcEdgeKind::Ipc { via } = e.kind else {
            continue;
        };
        let instance = ipc.ipc_buffer_bound_tokens(e);
        bounds
            .entry(via)
            .and_modify(|acc| {
                *acc = match (*acc, instance) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                }
            })
            .or_insert(instance);
    }
    let mut max_delay: HashMap<EdgeId, u64> = HashMap::new();
    for e in ipc.ipc_edges() {
        if let IpcEdgeKind::Ipc { via } = e.kind {
            let d = max_delay.entry(via).or_insert(0);
            *d = (*d).max(e.delay);
        }
    }
    let q = pg.repetitions().clone();
    let protocols: HashMap<EdgeId, Protocol> = bounds
        .iter()
        .map(|(&via, &bound)| {
            let protocol = match bound {
                Some(b) if !force_ubs => Protocol::Bbs {
                    capacity: b.max(max_delay[&via] + 1),
                },
                _ => Protocol::Ubs {
                    ack_window: q[cg.edge(via).src].max(1),
                },
            };
            (via, protocol)
        })
        .collect();

    let protocols_view = protocols.clone();
    let mut sync = SyncGraph::from_ipc(&ipc, |e| {
        let IpcEdgeKind::Ipc { via } = e.kind else {
            unreachable!("protocol_of is only called for IPC edges")
        };
        match protocols_view[&via] {
            Protocol::Ubs { .. } => Protocol::Ubs { ack_window: 1 },
            bbs => bbs,
        }
    })
    .map_err(|e| e.to_string())?;
    let resync_cert = if resync {
        // Certified variant: the SPI061/SPI062 pass re-verifies every
        // removal proof against the final graph during the lint run.
        Some(sync.resynchronize_certified(true, None).1)
    } else {
        None
    };
    Ok(ScheduleArtifacts {
        vts,
        ipc,
        sync,
        resync_cert,
        protocols,
    })
}

fn lint_file(path: &str, opts: &Options) -> Result<spi_analyze::AnalysisReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let graph = from_dif(&text).map_err(|e| format!("{path}: {e}"))?;
    let signal = if opts.delimiter {
        LengthSignal::Delimiter
    } else {
        LengthSignal::Header
    };

    let analyzer = Analyzer::default_pipeline();
    let report = match opts.procs {
        None => analyzer.run(&AnalysisInput::new(&graph).with_signal(signal)),
        Some(procs) => {
            // Graph-level errors make schedule derivation meaningless;
            // report them directly.
            let graph_report = analyzer.run(&AnalysisInput::new(&graph).with_signal(signal));
            if graph_report.has_errors() {
                graph_report
            } else {
                let art = derive_schedule(&graph, procs, opts.force_ubs, opts.resync)
                    .map_err(|e| format!("{path}: scheduling failed: {e}"))?;
                let mut input = AnalysisInput::new(&graph)
                    .with_vts(&art.vts)
                    .with_signal(signal)
                    .with_ipc(&art.ipc)
                    .with_sync(&art.sync)
                    .with_protocols(&art.protocols);
                if let Some(cert) = &art.resync_cert {
                    input = input.with_resync_cert(cert);
                }
                analyzer.run(&input)
            }
        }
    };
    Ok(report)
}

/// `trace-check TRACE...`: replay each captured trace file against its
/// recorded bounds and render the conformance report.
fn trace_check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("human") => json = false,
                _ => {
                    eprintln!("--format expects human|json");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: spi-lint trace-check [--format human|json] TRACE...");
                return ExitCode::from(2);
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: spi-lint trace-check [--format human|json] TRACE...");
        return ExitCode::from(2);
    }

    let mut any_error = false;
    let mut json_files: Vec<String> = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        };
        let trace = match spi_trace::Trace::from_native(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = spi_trace::check(&trace);
        any_error |= report.has_errors();
        if json {
            let diags: Vec<String> = report
                .diagnostics
                .iter()
                .map(spi_analyze::Diagnostic::render_json)
                .collect();
            json_files.push(format!(
                "{{\"file\":{},\"events\":{},\"channels\":{},\"messages\":{},\
                 \"observed_makespan\":{},\"predicted_makespan\":{},\"slack\":{},\
                 \"diagnostics\":[{}]}}",
                json_escape(path),
                trace.events.len(),
                report.channels_checked,
                report.messages_checked,
                report.observed_makespan,
                report
                    .predicted_makespan
                    .map_or_else(|| "null".into(), |v| v.to_string()),
                report
                    .slack
                    .map_or_else(|| "null".into(), |v| v.to_string()),
                diags.join(",")
            ));
        } else {
            println!("{path}:");
            print!("{}", report.render_human());
        }
    }
    if json {
        println!("[{}]", json_files.join(","));
    }
    if any_error {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// `race-check TRACE...`: replay each captured trace through the
/// vector-clock happens-before checker and render the SPI100–SPI106
/// concurrency report.
fn race_check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("human") => json = false,
                _ => {
                    eprintln!("--format expects human|json");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: spi-lint race-check [--format human|json] TRACE...");
                return ExitCode::from(2);
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: spi-lint race-check [--format human|json] TRACE...");
        return ExitCode::from(2);
    }

    let mut any_error = false;
    let mut json_files: Vec<String> = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        };
        let trace = match spi_trace::Trace::from_native(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = spi_verify::race_check(&trace);
        any_error |= report.has_errors();
        if json {
            let diags: Vec<String> = report
                .diagnostics
                .iter()
                .map(spi_analyze::Diagnostic::render_json)
                .collect();
            json_files.push(format!(
                "{{\"file\":{},\"events\":{},\"channels\":{},\"hb_edges\":{},\
                 \"diagnostics\":[{}]}}",
                json_escape(path),
                report.events,
                report.channels,
                report.hb_edges,
                diags.join(",")
            ));
        } else {
            println!("{path}:");
            print!("{}", report.render_human());
        }
    }
    if json {
        println!("[{}]", json_files.join(","));
    }
    if any_error {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace-check") {
        return trace_check(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("race-check") {
        return race_check(&args[1..]);
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut any_error = false;
    let mut json_files: Vec<String> = Vec::new();
    for path in &opts.files {
        match lint_file(path, &opts) {
            Ok(report) => {
                any_error |= report.has_errors();
                if opts.json {
                    json_files.push(format!(
                        "{{\"file\":{},\"report\":{}}}",
                        json_escape(path),
                        report.render_json()
                    ));
                } else {
                    println!("{path}:");
                    print!("{}", report.render_human());
                }
            }
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.json {
        println!("[{}]", json_files.join(","));
    }
    if any_error {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

//! Regenerates the paper's figure 7: execution time vs particle count
//! for the particle filter, n = 1, 2 PEs.

use spi_bench::figures::format_scaling;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let particles = [50, 100, 150, 200, 250, 300];
    let ns = [1, 2];
    if !csv {
        println!("Figure 7 — execution time of application 2 vs particle count (µs/step)\n");
    }
    let rows = spi_bench::fig7_scaling(&particles, &ns, 20);
    if csv {
        println!("particles,n_pes,time_us");
        for r in &rows {
            println!("{},{},{:.3}", r.x, r.n_pes, r.time_us);
        }
        return;
    }
    println!("{}", format_scaling(&rows, "Particles"));
}

//! Regenerates the paper's figure 5: synchronization graph of the 2-PE
//! particle-filter implementation, before and after resynchronization.

fn main() {
    println!("Figure 5 — resynchronization, 2-PE implementation of application 2\n");
    println!("{}", spi_bench::fig5_resync(2));
    let (before, after) = spi_bench::fig5_dot(2);
    println!("\nGraphviz (render with `dot -Tpng`):\n");
    println!("// --- before ---\n{before}");
    println!("// --- after ---\n{after}");
}

//! Regenerates the paper's figure 1: VTS conversion of a dynamic-rate
//! edge (production bound 10, consumption bound 8).

fn main() {
    println!("{}", spi_bench::fig1_vts());
}

//! Scenario tests stressing the applications beyond their defaults.

use spi_apps::{
    ErrorStageApp, ErrorStageConfig, FilterBankApp, FilterBankConfig, PrognosisApp,
    PrognosisConfig, SpeechApp, SpeechConfig,
};

#[test]
fn prognosis_with_non_divisible_particle_count() {
    // 100 particles on 3 PEs: 33 per PE, working total 99.
    let app = PrognosisApp::new(PrognosisConfig {
        n_pes: 3,
        particles: 100,
        steps: 25,
        ..Default::default()
    })
    .expect("valid config");
    let sys = app.system(25).expect("buildable");
    sys.run().expect("clean run");
    assert_eq!(app.estimates.lock().expect("estimates").len(), 25);
    let rmse = app.tracking_rmse(8);
    assert!(
        rmse < 0.5,
        "filter still tracks with truncated count: {rmse}"
    );
}

#[test]
fn prognosis_rmse_improves_with_more_particles() {
    // Monte-Carlo error shrinks as 1/sqrt(N) only in expectation; a
    // single-seed comparison at the measurement-noise floor is noise, so
    // average the RMSE over several seeds before comparing counts.
    let rmse = |particles: usize, seed: u64| {
        let app = PrognosisApp::new(PrognosisConfig {
            n_pes: 2,
            particles,
            steps: 40,
            seed,
            ..Default::default()
        })
        .expect("valid config");
        let sys = app.system(40).expect("buildable");
        sys.run().expect("clean run");
        app.tracking_rmse(10)
    };
    let seeds = [4242, 4243, 4244, 4245];
    let mean = |particles: usize| {
        seeds.iter().map(|&s| rmse(particles, s)).sum::<f64>() / seeds.len() as f64
    };
    let coarse = mean(20);
    let fine = mean(400);
    assert!(
        fine < coarse * 1.2,
        "more particles must not clearly hurt: 20→{coarse:.4}, 400→{fine:.4}"
    );
    assert!(fine < 0.3, "400 particles track well: {fine}");
}

#[test]
fn speech_app_with_single_pe_and_max_order() {
    let app = SpeechApp::new(SpeechConfig {
        n_pes: 1,
        max_frame: 128,
        max_order: 16,
        vary_rates: true,
        seed: 77,
    })
    .expect("valid config");
    let sys = app.system(8).expect("buildable");
    sys.run().expect("clean run");
    let frames = app.output.lock().expect("output");
    assert_eq!(frames.len(), 8);
    // Compression achieved: Huffman bits well under raw 64-bit samples.
    for f in frames.iter() {
        assert!(f.bitlen < f.frame_len * 64);
    }
}

#[test]
fn error_stage_period_monotone_in_order() {
    // Higher LPC order = more MACs per sample = slower frames.
    let period = |order: usize| {
        let app = ErrorStageApp::new(ErrorStageConfig {
            n_pes: 2,
            frame: 256,
            order,
            ..Default::default()
        })
        .expect("valid config");
        app.system(5)
            .expect("buildable")
            .run()
            .expect("clean run")
            .period_us()
    };
    assert!(period(16) > period(4));
}

#[test]
fn filterbank_extreme_decimation() {
    let cfg = FilterBankConfig {
        frame: 64,
        taps: 9,
        low_decimation: 1,
        high_decimation: 64,
        seed: 5,
    };
    let app = FilterBankApp::new(cfg).expect("valid config");
    let sys = app.system(4).expect("buildable");
    sys.run().expect("clean run");
    let out = app.output.lock().expect("output");
    for frame in out.iter() {
        assert_eq!(frame.len(), 64 + 1, "64 low-band + 1 high-band sample");
    }
}

#[test]
fn speech_resource_report_scales_with_pes() {
    let spi_slices = |n: usize| {
        let app = SpeechApp::new(SpeechConfig {
            n_pes: n,
            ..Default::default()
        })
        .expect("valid config");
        let sys = app.system(1).expect("buildable");
        sys.library().spi_library.slices
    };
    // More PEs → more SPI send/receive pairs and FIFOs.
    assert!(spi_slices(4) > spi_slices(2));
}

//! Application 1: LPC-based acoustic data compression (paper §5.2).
//!
//! The paper's figure-2 pipeline: **A** reads a segment of input data,
//! **B** runs an FFT over the samples (used here, as in classic LPC
//! front-ends, to obtain the autocorrelation via the power spectrum),
//! **C** performs LU decomposition to find predictor coefficients,
//! **D** generates the prediction error — the stage parallelized over
//! `n` PEs — and **E** Huffman-codes the quantized error.
//!
//! The frame length and model order are "not known before run-time"
//! (they vary per frame within declared bounds), so every edge feeding
//! the D stage is *dynamic* and exercises `SPI_dynamic`, exactly the
//! situation of §5.2. Processor 0 hosts A/B/C/E (the I/O + front-end
//! side); processors 1..=n each host one error-generation PE.

use std::sync::{Arc, Mutex};

use spi::{Firing, SpiSystem, SpiSystemBuilder};
use spi_dataflow::{ActorId, EdgeId, SdfGraph};
use spi_dsp::fft::{fft, fft_cycles, Complex};
use spi_dsp::huffman::{huffman_cycles, HuffmanCode};
use spi_dsp::lpc::{cost, lu_decompose, lu_solve, prediction_error_range, Quantizer};
use spi_platform::components;
use spi_sched::ProcId;

use crate::error::{AppError, Result};
use crate::util::{f64s_from_bytes, f64s_to_bytes};

/// Configuration of the speech-compression system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeechConfig {
    /// Number of PEs parallelizing actor D.
    pub n_pes: usize,
    /// Nominal (maximum) frame length in samples.
    pub max_frame: usize,
    /// Maximum LPC model order.
    pub max_order: usize,
    /// If `true`, frame length and order vary per iteration (the paper's
    /// dynamic scenario); if `false`, they stay at their maxima.
    pub vary_rates: bool,
    /// RNG seed for the synthetic input signal.
    pub seed: u64,
}

impl Default for SpeechConfig {
    fn default() -> Self {
        SpeechConfig {
            n_pes: 2,
            max_frame: 256,
            max_order: 8,
            vary_rates: true,
            seed: 7,
        }
    }
}

impl SpeechConfig {
    fn frame_len(&self, iter: u64) -> usize {
        if !self.vary_rates {
            return self.max_frame;
        }
        // Deterministic pseudo-variation in [max/2, max], n_pes-aligned.
        let span = self.max_frame / 2;
        let offset = ((iter.wrapping_mul(2654435761) >> 7) as usize) % (span + 1);
        let len = self.max_frame - offset;
        // Keep sections non-empty and history available.
        len.max(self.max_order * 2 + self.n_pes)
    }

    fn order(&self, iter: u64) -> usize {
        if !self.vary_rates {
            return self.max_order;
        }
        2 + ((iter.wrapping_mul(40503) >> 3) as usize) % (self.max_order - 1)
    }
}

/// One compressed frame collected at actor E — everything a decoder
/// needs: the Huffman bitstream plus its code table, the quantizer and
/// the predictor coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedFrame {
    /// Frame index.
    pub iter: u64,
    /// Frame length that was compressed.
    pub frame_len: usize,
    /// Model order used.
    pub order: usize,
    /// Huffman bitstream.
    pub bits: Vec<u8>,
    /// Valid bits in the stream.
    pub bitlen: usize,
    /// Residual energy (for fidelity tracking).
    pub residual_energy: f64,
    /// The canonical Huffman code of this frame's symbols.
    pub code: Option<HuffmanCode>,
    /// Residual quantizer parameters.
    pub quantizer: Quantizer,
    /// Predictor coefficients used by the encoder.
    pub coeffs: Vec<f64>,
}

impl CompressedFrame {
    /// Decodes the frame: Huffman decode → dequantize the residual →
    /// LPC synthesis. Returns `None` when the bitstream is empty (a
    /// degenerate all-silent frame).
    pub fn decompress(&self) -> Option<Vec<f64>> {
        let code = self.code.as_ref()?;
        let symbols = code.decode(&self.bits, self.bitlen, self.frame_len).ok()?;
        let residual: Vec<f64> = symbols
            .iter()
            .map(|&s| self.quantizer.dequantize(s))
            .collect();
        Some(spi_dsp::lpc::synthesize(&residual, &self.coeffs))
    }
}

/// The assembled application: graph, ids, and collected output.
pub struct SpeechApp {
    /// The dataflow graph (paper figure 2, D parallelized `n` ways).
    pub graph: SdfGraph,
    /// Actor A (read).
    pub a_read: ActorId,
    /// Actor B (FFT).
    pub b_fft: ActorId,
    /// Actor C (LU predictor solve).
    pub c_lu: ActorId,
    /// The parallel error-generation actors D0..D(n−1).
    pub d_error: Vec<ActorId>,
    /// Actor E (Huffman).
    pub e_huffman: ActorId,
    /// A→D section edges.
    pub section_edges: Vec<EdgeId>,
    /// C→D coefficient edges.
    pub coeff_edges: Vec<EdgeId>,
    /// C→E coefficient edge (kept with the bitstream for decoding).
    pub coeff_to_coder: EdgeId,
    /// D→E error edges.
    pub error_edges: Vec<EdgeId>,
    config: SpeechConfig,
    /// Frames compressed by E (shared with the running system).
    pub output: Arc<Mutex<Vec<CompressedFrame>>>,
}

impl SpeechApp {
    /// Builds the application graph for `config`.
    ///
    /// # Errors
    ///
    /// [`AppError`] if the configuration is degenerate (zero PEs, frame
    /// shorter than twice the order).
    pub fn new(config: SpeechConfig) -> Result<Self> {
        if config.n_pes == 0 {
            return Err(AppError::Config("n_pes must be positive".into()));
        }
        if config.max_frame < 4 * config.max_order || config.max_order < 2 {
            return Err(AppError::Config(format!(
                "frame {} too short for order {}",
                config.max_frame, config.max_order
            )));
        }
        let n = config.n_pes;
        let bytes_frame = (config.max_frame * 8) as u32;
        let bytes_section = ((config.max_frame / n + config.max_order + 1) * 8) as u32;
        let bytes_coeff = (config.max_order * 8 + 8) as u32;
        let bytes_errors = ((config.max_frame / n + 1) * 8) as u32;

        let mut g = SdfGraph::new();
        let a = g.add_actor("A:read", cost::read_cycles(config.max_frame));
        let b = g.add_actor("B:fft", fft_cycles(config.max_frame.next_power_of_two()));
        let c = g.add_actor("C:lu", cost::lu_cycles(config.max_frame, config.max_order));
        let e = g.add_actor("E:huffman", huffman_cycles(config.max_frame));
        let mut d = Vec::new();
        let mut section_edges = Vec::new();
        let mut coeff_edges = Vec::new();
        let mut error_edges = Vec::new();

        // A → B: the full frame (dynamic: run-time frame length).
        g.add_dynamic_edge(a, b, 1, 1, 0, bytes_frame)?;
        // B → C: autocorrelation lags (dynamic: order varies).
        g.add_dynamic_edge(b, c, 1, 1, 0, bytes_coeff * 2)?;
        // C → E: the coefficients also travel to the coder, which stores
        // them with the bitstream so frames stay decodable.
        let coeff_to_coder = g.add_dynamic_edge(c, e, 1, 1, 0, bytes_coeff)?;
        for i in 0..n {
            let di = g.add_actor(
                format!("D{i}:error"),
                cost::error_cycles(config.max_frame / n, config.max_order),
            );
            section_edges.push(g.add_dynamic_edge(a, di, 1, 1, 0, bytes_section)?);
            coeff_edges.push(g.add_dynamic_edge(c, di, 1, 1, 0, bytes_coeff)?);
            error_edges.push(g.add_dynamic_edge(di, e, 1, 1, 0, bytes_errors)?);
            d.push(di);
        }

        Ok(SpeechApp {
            graph: g,
            a_read: a,
            b_fft: b,
            c_lu: c,
            d_error: d,
            e_huffman: e,
            section_edges,
            coeff_edges,
            coeff_to_coder,
            error_edges,
            config,
            output: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Lowers the application onto `1 + n_pes` processors and returns the
    /// runnable system: P0 = A, B, C, E; P(1+i) = D_i.
    ///
    /// # Errors
    ///
    /// Any SPI build error.
    pub fn system(&self, iterations: u64) -> Result<SpiSystem> {
        let mut builder = SpiSystemBuilder::new(self.graph.clone());
        self.configure(&mut builder);
        builder.iterations(iterations);
        let d_actors = self.d_error.clone();
        let sys = builder.build(1 + self.config.n_pes, move |actor| {
            match d_actors.iter().position(|&d| d == actor) {
                Some(i) => ProcId(1 + i),
                None => ProcId(0),
            }
        })?;
        Ok(sys)
    }

    /// Registers every actor implementation and resource estimate on
    /// `builder` (exposed so benches can tweak builder options first).
    pub fn configure(&self, builder: &mut SpiSystemBuilder) {
        let cfg = self.config;
        let n = cfg.n_pes;

        // ----- Actor A: synthetic speech-like frames ------------------
        let ab = self.graph.out_edges(self.a_read)[0];
        let section_edges = self.section_edges.clone();
        builder.actor(self.a_read, move |ctx: &mut Firing| {
            let frame_len = cfg.frame_len(ctx.iter);
            let order = cfg.order(ctx.iter);
            let frame = synth_frame(cfg.seed, ctx.iter, frame_len);
            // Full frame to the FFT stage.
            ctx.set_output(ab, f64s_to_bytes(&frame));
            // Overlapping sections (with `order` samples of history) to
            // each error PE.
            for (i, &edge) in section_edges.iter().enumerate() {
                let start = i * frame_len / n;
                let end = (i + 1) * frame_len / n;
                let hist_start = start.saturating_sub(order);
                ctx.set_output(edge, f64s_to_bytes(&frame[hist_start..end]));
            }
            cost::read_cycles(frame_len)
        });

        // ----- Actor B: FFT → autocorrelation via power spectrum -------
        let bc = self
            .graph
            .out_edges(self.b_fft)
            .first()
            .copied()
            .expect("B has one out edge");
        builder.actor(self.b_fft, move |ctx: &mut Firing| {
            let frame = f64s_from_bytes(&ctx.take_input(ab));
            let order = cfg.order(ctx.iter);
            let r = autocorr_via_fft(&frame, order);
            let mut payload = Vec::with_capacity(8 * (r.len() + 1));
            payload.extend((order as u64).to_le_bytes());
            payload.extend(f64s_to_bytes(&r));
            ctx.set_output(bc, payload);
            fft_cycles(frame.len().next_power_of_two())
        });

        // ----- Actor C: LU solve for predictor coefficients -----------
        let coeff_edges = self.coeff_edges.clone();
        let coeff_to_coder = self.coeff_to_coder;
        builder.actor(self.c_lu, move |ctx: &mut Firing| {
            let raw = ctx.take_input(bc);
            let order = u64::from_le_bytes(raw[..8].try_into().expect("order header")) as usize;
            let r = f64s_from_bytes(&raw[8..]);
            let coeffs = solve_normal_equations(&r, order);
            let mut payload = Vec::with_capacity(8 + coeffs.len() * 8);
            payload.extend((order as u64).to_le_bytes());
            payload.extend(f64s_to_bytes(&coeffs));
            for &edge in &coeff_edges {
                ctx.set_output(edge, payload.clone());
            }
            ctx.set_output(coeff_to_coder, payload);
            cost::lu_cycles(r.len() * 16, order)
        });

        // ----- Actors D_i: parallel prediction-error generation --------
        for (i, &di) in self.d_error.iter().enumerate() {
            let sec = self.section_edges[i];
            let coe = self.coeff_edges[i];
            let err = self.error_edges[i];
            builder.actor(di, move |ctx: &mut Firing| {
                let section = f64s_from_bytes(&ctx.take_input(sec));
                let raw = ctx.take_input(coe);
                let order = u64::from_le_bytes(raw[..8].try_into().expect("order header")) as usize;
                let coeffs = f64s_from_bytes(&raw[8..]);
                // History samples precede the section's own range.
                let hist = section.len().min(if i == 0 { 0 } else { order });
                let errors = prediction_error_range(&section, &coeffs, hist, section.len());
                ctx.set_output(err, f64s_to_bytes(&errors));
                cost::error_cycles(errors.len(), order)
            });
            builder.actor_resources(di, components::error_generator(cfg.max_order as u64));
        }

        // ----- Actor E: quantize + Huffman-code the residual -----------
        let error_edges = self.error_edges.clone();
        let coder_coeffs = self.coeff_to_coder;
        let output = Arc::clone(&self.output);
        builder.actor(self.e_huffman, move |ctx: &mut Firing| {
            let mut residual = Vec::new();
            for &edge in &error_edges {
                residual.extend(f64s_from_bytes(&ctx.take_input(edge)));
            }
            let raw_coeffs = ctx.take_input(coder_coeffs);
            let coeffs = f64s_from_bytes(&raw_coeffs[8.min(raw_coeffs.len())..]);
            let energy: f64 = residual.iter().map(|e| e * e).sum();
            let q = Quantizer::new(4.0, 8);
            let symbols: Vec<u16> = residual.iter().map(|&e| q.quantize(e)).collect();
            let (code, bits, bitlen) = match HuffmanCode::from_symbols(&symbols) {
                Ok(code) => {
                    let (bits, bitlen) = code.encode(&symbols).unwrap_or((Vec::new(), 0));
                    (Some(code), bits, bitlen)
                }
                Err(_) => (None, Vec::new(), 0),
            };
            output.lock().expect("output lock").push(CompressedFrame {
                iter: ctx.iter,
                frame_len: residual.len(),
                order: cfg.order(ctx.iter),
                bits,
                bitlen,
                residual_energy: energy,
                code,
                quantizer: q,
                coeffs,
            });
            huffman_cycles(symbols.len())
        });

        // ----- Resource estimates for the front-end actors -------------
        builder.actor_resources(self.a_read, components::io_interface());
        builder.actor_resources(
            self.b_fft,
            components::fft_core(cfg.max_frame.next_power_of_two() as u64),
        );
        builder.actor_resources(self.c_lu, components::lu_solver(cfg.max_order as u64));
        builder.actor_resources(self.e_huffman, components::huffman_encoder());
    }

    /// The configuration this app was built with.
    pub fn config(&self) -> SpeechConfig {
        self.config
    }
}

/// Deterministic synthetic "speech": a few sinusoids + AR(1) noise.
pub fn synth_frame(seed: u64, iter: u64, len: usize) -> Vec<f64> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(iter.wrapping_mul(1442695040888963407));
    let mut noise_prev = 0.0;
    (0..len)
        .map(|t| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
            noise_prev = 0.7 * noise_prev + 0.3 * u;
            let ph = t as f64 + (iter % 16) as f64 * 31.0;
            (ph * 0.11).sin() + 0.5 * (ph * 0.037).sin() + 0.25 * noise_prev
        })
        .collect()
}

/// Autocorrelation lags `0..=order` via the FFT power-spectrum method
/// (Wiener–Khinchin), matching what a hardware FFT front-end computes.
pub fn autocorr_via_fft(frame: &[f64], order: usize) -> Vec<f64> {
    let n = (2 * frame.len().max(1)).next_power_of_two();
    let mut data = vec![Complex::default(); n];
    for (i, &x) in frame.iter().enumerate() {
        data[i] = Complex::new(x, 0.0);
    }
    fft(&mut data).expect("power-of-two FFT");
    for z in &mut data {
        let mag = z.re * z.re + z.im * z.im;
        *z = Complex::new(mag, 0.0);
    }
    spi_dsp::fft::ifft(&mut data).expect("power-of-two IFFT");
    (0..=order.min(frame.len().saturating_sub(1)))
        .map(|lag| data[lag].re)
        .collect()
}

/// Solves the order-`order` normal equations from autocorrelation `r`
/// (Toeplitz system via LU, as the paper's actor C does). Falls back to
/// zero coefficients on singular systems (silent frames).
pub fn solve_normal_equations(r: &[f64], order: usize) -> Vec<f64> {
    let m = order.min(r.len().saturating_sub(1));
    if m == 0 {
        return Vec::new();
    }
    let mut matrix = vec![0.0; m * m];
    for i in 0..m {
        for j in 0..m {
            matrix[i * m + j] = r[i.abs_diff(j)];
        }
        matrix[i * m + i] += 1e-9 * (r[0].abs() + 1.0);
    }
    match lu_decompose(&mut matrix, m) {
        Ok(perm) => lu_solve(&matrix, m, &perm, &r[1..=m]),
        Err(_) => vec![0.0; m],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_matches_figure2_topology() {
        let app = SpeechApp::new(SpeechConfig {
            n_pes: 3,
            ..Default::default()
        })
        .unwrap();
        // A, B, C, E + 3 D's.
        assert_eq!(app.graph.actor_count(), 7);
        // A→B, B→C, C→E + 3×(A→D, C→D, D→E).
        assert_eq!(app.graph.edge_count(), 3 + 9);
        assert!(app.graph.dynamic_edges().len() == app.graph.edge_count());
    }

    #[test]
    fn degenerate_configs_rejected() {
        assert!(SpeechApp::new(SpeechConfig {
            n_pes: 0,
            ..Default::default()
        })
        .is_err());
        assert!(SpeechApp::new(SpeechConfig {
            max_frame: 8,
            max_order: 8,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn autocorr_via_fft_matches_direct() {
        let frame: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
        let via_fft = autocorr_via_fft(&frame, 6);
        let direct = spi_dsp::lpc::autocorrelation(&frame, 6);
        for (a, b) in via_fft.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn frame_lengths_vary_within_bounds() {
        let cfg = SpeechConfig::default();
        for iter in 0..100 {
            let len = cfg.frame_len(iter);
            assert!(len <= cfg.max_frame);
            assert!(len >= cfg.max_frame / 2 - 1);
            let m = cfg.order(iter);
            assert!(m >= 2 && m <= cfg.max_order);
        }
    }

    #[test]
    fn end_to_end_two_pes_compresses_frames() {
        let app = SpeechApp::new(SpeechConfig {
            n_pes: 2,
            max_frame: 128,
            max_order: 6,
            ..Default::default()
        })
        .unwrap();
        let sys = app.system(5).unwrap();
        let report = sys.run().unwrap();
        assert!(report.sim.makespan_cycles > 0);
        let frames = app.output.lock().unwrap();
        assert_eq!(frames.len(), 5);
        for f in frames.iter() {
            assert!(f.bitlen > 0, "every frame produces a bitstream");
            assert!(f.residual_energy.is_finite());
        }
    }

    #[test]
    fn frames_decompress_with_reasonable_snr() {
        let cfg = SpeechConfig {
            n_pes: 2,
            max_frame: 192,
            max_order: 8,
            vary_rates: false,
            seed: 3,
        };
        let app = SpeechApp::new(cfg).unwrap();
        let sys = app.system(4).unwrap();
        sys.run().unwrap();
        let frames = app.output.lock().unwrap();
        for f in frames.iter() {
            let decoded = f.decompress().expect("decodable frame");
            let original = synth_frame(cfg.seed, f.iter, cfg.max_frame);
            assert_eq!(decoded.len(), original.len());
            let err: f64 = decoded
                .iter()
                .zip(&original)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            let sig: f64 = original.iter().map(|v| v * v).sum();
            let snr_db = 10.0 * (sig / err.max(1e-12)).log10();
            assert!(snr_db > 15.0, "frame {} SNR {snr_db:.1} dB too low", f.iter);
            // And it genuinely compressed (vs 64-bit raw samples).
            assert!(f.bitlen < f.frame_len * 32);
        }
    }

    #[test]
    fn parallel_output_matches_serial_reference() {
        // The 3-PE pipeline's residual must equal a serial computation of
        // the same frames.
        let cfg = SpeechConfig {
            n_pes: 3,
            max_frame: 96,
            max_order: 4,
            vary_rates: false,
            seed: 11,
        };
        let app = SpeechApp::new(cfg).unwrap();
        let sys = app.system(3).unwrap();
        sys.run().unwrap();
        let frames = app.output.lock().unwrap();
        for f in frames.iter() {
            // Serial reference.
            let frame = synth_frame(cfg.seed, f.iter, cfg.max_frame);
            let r = autocorr_via_fft(&frame, cfg.max_order);
            let coeffs = solve_normal_equations(&r, cfg.max_order);
            let serial: f64 = spi_dsp::lpc::prediction_error(&frame, &coeffs)
                .iter()
                .map(|e| e * e)
                .sum();
            // The parallel version recomputes history-dependent samples
            // within sections, so tiny boundary differences are expected
            // only at section starts where history is truncated — the
            // energies must agree closely.
            let rel = (f.residual_energy - serial).abs() / serial.max(1e-9);
            assert!(
                rel < 0.2,
                "parallel {} vs serial {serial}",
                f.residual_energy
            );
        }
    }
}

//! Byte-level helpers shared by the application actor implementations.

/// Serializes a slice of `f64` samples to little-endian bytes.
pub fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserializes little-endian bytes back to `f64` samples.
///
/// Trailing bytes that do not complete a sample are ignored (they cannot
/// occur on well-formed SPI payloads, whose sizes are whole tokens).
pub fn f64s_from_bytes(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let xs = vec![0.0, -1.5, 3.25e10, f64::MIN_POSITIVE];
        assert_eq!(f64s_from_bytes(&f64s_to_bytes(&xs)), xs);
    }

    #[test]
    fn empty_and_partial() {
        assert!(f64s_from_bytes(&[]).is_empty());
        assert!(f64s_from_bytes(&[1, 2, 3]).is_empty());
    }
}

//! The hardware error-generation subsystem of application 1 — the
//! configuration the paper actually synthesized (§5.2).
//!
//! "The FPGA resources were not enough to fit a multiprocessor version
//! of the whole system. Thus, we explored the parallelization of only
//! the error generation actor (D) in hardware" — with, per figure 3, an
//! I/O interface per PE that *sends the input frame*, *sends the
//! predictor coefficients* and *receives the error values*. Frame length
//! and model order are not known before run time, so all three transfers
//! use `SPI_dynamic`.
//!
//! This module drives figure 3 (resynchronization of the 3-PE sync
//! graph), figure 6 (execution time vs sample size for n = 1..4) and
//! table 1 (FPGA area of the 4-PE implementation).

use std::sync::{Arc, Mutex};

use spi::{Firing, SpiSystem, SpiSystemBuilder};
use spi_dataflow::{ActorId, EdgeId, SdfGraph};
use spi_dsp::lpc::{cost, prediction_error_range};
use spi_platform::components;
use spi_sched::ProcId;

use crate::error::{AppError, Result};
use crate::speech::{autocorr_via_fft, solve_normal_equations, synth_frame};
use crate::util::{f64s_from_bytes, f64s_to_bytes};

/// Configuration of the error-stage subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStageConfig {
    /// Number of error-generation PEs (paper: 1–4).
    pub n_pes: usize,
    /// Frame length ("sample size" of figure 6).
    pub frame: usize,
    /// LPC model order.
    pub order: usize,
    /// Vary frame/order at run time (exercises SPI_dynamic payloads).
    pub vary_rates: bool,
    /// RNG seed for the synthetic input.
    pub seed: u64,
}

impl Default for ErrorStageConfig {
    fn default() -> Self {
        ErrorStageConfig {
            n_pes: 2,
            frame: 256,
            order: 8,
            vary_rates: false,
            seed: 3,
        }
    }
}

/// The assembled subsystem.
pub struct ErrorStageApp {
    /// Dataflow graph: per PE, `io_send_i → D_i → io_recv_i`.
    pub graph: SdfGraph,
    /// Per-PE I/O send actors (processor 0).
    pub io_send: Vec<ActorId>,
    /// Per-PE error generators (processor 1 + i).
    pub d_error: Vec<ActorId>,
    /// Per-PE I/O receive actors (processor 0).
    pub io_recv: Vec<ActorId>,
    /// Section edges io_send_i → D_i.
    pub section_edges: Vec<EdgeId>,
    /// Coefficient edges io_send_i → D_i.
    pub coeff_edges: Vec<EdgeId>,
    /// Error edges D_i → io_recv_i.
    pub error_edges: Vec<EdgeId>,
    config: ErrorStageConfig,
    /// Residual energy per frame, reassembled at the I/O side.
    pub residual_energy: Arc<Mutex<Vec<f64>>>,
}

impl ErrorStageApp {
    /// Builds the subsystem graph.
    ///
    /// # Errors
    ///
    /// [`AppError::Config`] for degenerate configurations.
    pub fn new(config: ErrorStageConfig) -> Result<Self> {
        if config.n_pes == 0 {
            return Err(AppError::Config("n_pes must be positive".into()));
        }
        if config.frame < 4 * config.order.max(1) || config.order < 1 {
            return Err(AppError::Config(format!(
                "frame {} too short for order {}",
                config.frame, config.order
            )));
        }
        let n = config.n_pes;
        let bytes_section = ((config.frame / n + config.order + 1) * 8) as u32;
        let bytes_coeff = (config.order * 8 + 8) as u32;
        let bytes_errors = ((config.frame / n + 1) * 8) as u32;

        let mut g = SdfGraph::new();
        let mut io_send = Vec::new();
        let mut d_error = Vec::new();
        let mut io_recv = Vec::new();
        let mut section_edges = Vec::new();
        let mut coeff_edges = Vec::new();
        let mut error_edges = Vec::new();
        // Creation order matters for the self-timed schedule on the I/O
        // processor: all send interfaces first, then the PEs, then the
        // receive interfaces, so P0 feeds every PE before collecting.
        for i in 0..n {
            io_send.push(g.add_actor(format!("io_send{i}"), cost::read_cycles(config.frame / n)));
        }
        for i in 0..n {
            d_error.push(g.add_actor(
                format!("D{i}"),
                cost::error_cycles(config.frame / n, config.order),
            ));
        }
        for i in 0..n {
            io_recv.push(g.add_actor(format!("io_recv{i}"), cost::read_cycles(config.frame / n)));
        }
        for i in 0..n {
            let (s, d, r) = (io_send[i], d_error[i], io_recv[i]);
            section_edges.push(g.add_dynamic_edge(s, d, 1, 1, 0, bytes_section)?);
            coeff_edges.push(g.add_dynamic_edge(s, d, 1, 1, 0, bytes_coeff)?);
            error_edges.push(g.add_dynamic_edge(d, r, 1, 1, 0, bytes_errors)?);
        }
        Ok(ErrorStageApp {
            graph: g,
            io_send,
            d_error,
            io_recv,
            section_edges,
            coeff_edges,
            error_edges,
            config,
            residual_energy: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Lowers the subsystem onto `1 + n` processors (I/O on P0, one PE
    /// per error generator) and returns the runnable system.
    ///
    /// # Errors
    ///
    /// Any SPI build error.
    pub fn system(&self, iterations: u64) -> Result<SpiSystem> {
        let mut builder = SpiSystemBuilder::new(self.graph.clone());
        self.configure(&mut builder);
        builder.iterations(iterations);
        Ok(self.build_with(builder)?)
    }

    /// Finishes a (possibly customized) builder with this app's
    /// assignment.
    ///
    /// # Errors
    ///
    /// Any SPI build error.
    pub fn build_with(&self, builder: SpiSystemBuilder) -> spi::Result<SpiSystem> {
        let d_actors = self.d_error.clone();
        builder.build(1 + self.config.n_pes, move |actor| {
            match d_actors.iter().position(|&d| d == actor) {
                Some(i) => ProcId(1 + i),
                None => ProcId(0),
            }
        })
    }

    /// Registers actor implementations and resources on `builder`.
    pub fn configure(&self, builder: &mut SpiSystemBuilder) {
        let cfg = self.config;
        let n = cfg.n_pes;

        // Residual reassembly across the n io_recv actors.
        let frame_acc: Arc<Mutex<(u64, f64, usize)>> = Arc::new(Mutex::new((0, 0.0, 0)));

        for i in 0..n {
            let sec = self.section_edges[i];
            let coe = self.coeff_edges[i];
            let err = self.error_edges[i];

            // ----- io_send_i: frame section + coefficients ---------------
            builder.actor(self.io_send[i], move |ctx: &mut Firing| {
                let (frame_len, order) = dims(cfg, ctx.iter);
                let frame = synth_frame(cfg.seed, ctx.iter, frame_len);
                let r = autocorr_via_fft(&frame, order);
                let coeffs = solve_normal_equations(&r, order);
                let start = i * frame_len / n;
                let end = (i + 1) * frame_len / n;
                let hist_start = start.saturating_sub(order);
                ctx.set_output(sec, f64s_to_bytes(&frame[hist_start..end]));
                let mut payload = Vec::with_capacity(8 + coeffs.len() * 8);
                payload.extend((order as u64).to_le_bytes());
                payload.extend(f64s_to_bytes(&coeffs));
                ctx.set_output(coe, payload);
                cost::read_cycles(end - hist_start)
            });
            builder.actor_resources(self.io_send[i], components::io_interface());

            // ----- D_i: the hardware error generator ---------------------
            builder.actor(self.d_error[i], move |ctx: &mut Firing| {
                let section = f64s_from_bytes(&ctx.take_input(sec));
                let raw = ctx.take_input(coe);
                let order = u64::from_le_bytes(raw[..8].try_into().expect("order header")) as usize;
                let coeffs = f64s_from_bytes(&raw[8..]);
                let hist = if i == 0 { 0 } else { order.min(section.len()) };
                let errors = prediction_error_range(&section, &coeffs, hist, section.len());
                ctx.set_output(err, f64s_to_bytes(&errors));
                cost::error_cycles(errors.len(), order)
            });
            builder.actor_resources(
                self.d_error[i],
                components::error_generator(cfg.order as u64),
            );

            // ----- io_recv_i: collect error values -----------------------
            let acc = Arc::clone(&frame_acc);
            let out = Arc::clone(&self.residual_energy);
            builder.actor(self.io_recv[i], move |ctx: &mut Firing| {
                let errors = f64s_from_bytes(&ctx.take_input(err));
                let energy: f64 = errors.iter().map(|e| e * e).sum();
                let mut a = acc.lock().expect("frame accumulator");
                if a.0 != ctx.iter {
                    *a = (ctx.iter, 0.0, 0);
                }
                a.1 += energy;
                a.2 += 1;
                if a.2 == n {
                    out.lock().expect("residuals").push(a.1);
                }
                cost::read_cycles(errors.len())
            });
        }
    }

    /// The configuration this app was built with.
    pub fn config(&self) -> ErrorStageConfig {
        self.config
    }
}

/// Run-time frame length and order for an iteration.
fn dims(cfg: ErrorStageConfig, iter: u64) -> (usize, usize) {
    if !cfg.vary_rates {
        return (cfg.frame, cfg.order);
    }
    let span = cfg.frame / 2;
    let offset = ((iter.wrapping_mul(2654435761) >> 7) as usize) % (span + 1);
    let frame = (cfg.frame - offset).max(cfg.order * 4 + cfg.n_pes);
    let order = 2 + ((iter.wrapping_mul(40503) >> 3) as usize) % cfg.order.max(3).saturating_sub(1);
    (frame, order.min(cfg.order))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_shape_per_figure3() {
        let app = ErrorStageApp::new(ErrorStageConfig {
            n_pes: 3,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(app.graph.actor_count(), 9);
        assert_eq!(app.graph.edge_count(), 9);
        assert!(
            app.graph.dynamic_edges().len() == 9,
            "all transfers are dynamic"
        );
    }

    #[test]
    fn runs_and_collects_residuals() {
        let app = ErrorStageApp::new(ErrorStageConfig {
            n_pes: 2,
            frame: 128,
            order: 6,
            ..Default::default()
        })
        .unwrap();
        let sys = app.system(4).unwrap();
        let report = sys.run().unwrap();
        assert!(report.makespan_us() > 0.0);
        let res = app.residual_energy.lock().unwrap();
        assert_eq!(res.len(), 4);
        assert!(res.iter().all(|e| e.is_finite() && *e >= 0.0));
    }

    #[test]
    fn more_pes_run_faster_at_large_frames() {
        // The figure-6 shape: with computation-dominated frames, n=4
        // beats n=1 clearly.
        let frames = 12;
        let time = |n: usize| {
            let app = ErrorStageApp::new(ErrorStageConfig {
                n_pes: n,
                frame: 512,
                order: 10,
                ..Default::default()
            })
            .unwrap();
            let sys = app.system(frames).unwrap();
            sys.run().unwrap().period_us()
        };
        let t1 = time(1);
        let t4 = time(4);
        assert!(
            t4 < t1 * 0.6,
            "4 PEs must be much faster than 1: t1={t1:.1}µs t4={t4:.1}µs"
        );
    }

    #[test]
    fn residuals_match_across_pe_counts() {
        // Functional invariance: the residual energy per frame must not
        // depend on how many PEs computed it.
        let run = |n: usize| {
            let app = ErrorStageApp::new(ErrorStageConfig {
                n_pes: n,
                frame: 120,
                order: 5,
                seed: 21,
                vary_rates: false,
            })
            .unwrap();
            let sys = app.system(3).unwrap();
            sys.run().unwrap();
            let res = app.residual_energy.lock().unwrap().clone();
            res
        };
        let r1 = run(1);
        let r3 = run(3);
        assert_eq!(r1.len(), r3.len());
        for (a, b) in r1.iter().zip(&r3) {
            // Section boundaries truncate history differently only when
            // hist clamps; energies must still agree tightly.
            let rel = (a - b).abs() / a.max(1e-12);
            assert!(rel < 0.05, "n=1 {a} vs n=3 {b}");
        }
    }

    #[test]
    fn dynamic_rates_flow_through() {
        let app = ErrorStageApp::new(ErrorStageConfig {
            n_pes: 2,
            frame: 256,
            order: 8,
            vary_rates: true,
            ..Default::default()
        })
        .unwrap();
        let sys = app.system(6).unwrap();
        sys.run().unwrap();
        assert_eq!(app.residual_energy.lock().unwrap().len(), 6);
    }
}

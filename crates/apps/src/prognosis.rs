//! Application 2: particle-filter crack-length prognosis (paper §5.3).
//!
//! A particle filter tracks crack-failure length in turbine-engine
//! blades (after Orchard et al., the paper's reference 10). Particles are distributed evenly
//! over `n` PEs; prediction ("E"), update ("U") and local work run fully
//! parallel, and only the resampling step ("S") communicates, split into
//! the paper's three sub-steps:
//!
//! 1. *partial resampling*: each PE computes its partial weight sum and
//!    exchanges it — a fixed-size message, so **SPI_static**;
//! 2. *local resampling*: each PE resamples its proportional share;
//! 3. *intra-resampling*: surplus particles move to deficit PEs — a
//!    run-time-varying payload, so **SPI_dynamic** (figure 5's second
//!    message).
//!
//! Each PE hosts three pipeline stages sharing one particle store; the
//! observation source lives on PE 0.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;

use spi::{Firing, SpiSystem, SpiSystemBuilder};
use spi_dataflow::{ActorId, EdgeId, SdfGraph};
use spi_dsp::particle::{
    allocate_counts, cost, plan_exchanges, remaining_useful_life, rul_summary, systematic_draw,
    CrackModel, ParticleFilter,
};
use spi_platform::components;
use spi_sched::ProcId;

use crate::error::{AppError, Result};
use crate::util::{f64s_from_bytes, f64s_to_bytes};

/// Configuration of the prognosis system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrognosisConfig {
    /// Number of PEs.
    pub n_pes: usize,
    /// Total particle count (paper: 50–300).
    pub particles: usize,
    /// Filter steps to precompute ground truth for.
    pub steps: usize,
    /// Crack-growth model.
    pub model: CrackModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PrognosisConfig {
    fn default() -> Self {
        PrognosisConfig {
            n_pes: 2,
            particles: 100,
            steps: 50,
            model: CrackModel::default(),
            seed: 42,
        }
    }
}

/// Per-PE particle store shared by the three stage actors of that PE.
#[derive(Debug)]
struct PeState {
    filter: ParticleFilter,
    rng: StdRng,
    /// Local resample result awaiting the exchange step.
    kept: Vec<f64>,
    surplus: Vec<f64>,
}

/// The assembled application.
pub struct PrognosisApp {
    /// The dataflow graph (figure 4, distributed over `n` PEs).
    pub graph: SdfGraph,
    /// Observation source actor (PE 0).
    pub obs: ActorId,
    /// Predict+update stage per PE.
    pub stage1: Vec<ActorId>,
    /// Local-resample stage per PE.
    pub stage2: Vec<ActorId>,
    /// Intra-resample (merge) stage per PE.
    pub stage3: Vec<ActorId>,
    /// Static weight-sum edges, keyed `(from_pe, to_pe)`.
    pub sum_edges: HashMap<(usize, usize), EdgeId>,
    /// Dynamic particle-exchange edges, keyed `(from_pe, to_pe)`.
    pub particle_edges: HashMap<(usize, usize), EdgeId>,
    config: PrognosisConfig,
    /// Ground-truth crack lengths.
    pub truth: Vec<f64>,
    /// Noisy observations fed to the filter.
    pub observations: Arc<Vec<f64>>,
    /// Global MMSE estimates per step (filled by PE 0 while running).
    pub estimates: Arc<Mutex<Vec<f64>>>,
    /// Pooled particle set after the most recent resampling step
    /// (collected from every PE's merge stage).
    pub pooled_particles: Arc<Mutex<Vec<Vec<f64>>>>,
}

impl PrognosisApp {
    /// Builds the application graph and precomputes the scenario.
    ///
    /// # Errors
    ///
    /// [`AppError::Config`] on degenerate configurations.
    pub fn new(config: PrognosisConfig) -> Result<Self> {
        if config.n_pes == 0 {
            return Err(AppError::Config("n_pes must be positive".into()));
        }
        if config.particles < config.n_pes {
            return Err(AppError::Config(format!(
                "{} particles cannot cover {} PEs",
                config.particles, config.n_pes
            )));
        }
        let n = config.n_pes;
        let per_pe = config.particles / n;
        let mut g = SdfGraph::new();
        let obs = g.add_actor("obs", 10);
        let mut stage1 = Vec::new();
        let mut stage2 = Vec::new();
        let mut stage3 = Vec::new();
        for i in 0..n {
            stage1.push(g.add_actor(
                format!("E/U{i}"),
                cost::estimate_cycles(per_pe) + cost::update_cycles(per_pe),
            ));
            stage2.push(g.add_actor(format!("S-local{i}"), cost::resample_cycles(per_pe)));
            stage3.push(g.add_actor(format!("S-intra{i}"), cost::resample_cycles(per_pe / 2 + 1)));
        }
        let mut sum_edges = HashMap::new();
        let mut particle_edges = HashMap::new();
        let particle_bound_bytes = (config.particles * 8) as u32;
        for i in 0..n {
            // Observation to every PE's first stage.
            g.add_edge(obs, stage1[i], 1, 1, 0, 8)?;
            // Weight/estimate sums: stage1_i → stage2_j for all j
            // ("exchange local sums: known length, hence SPI_static").
            #[allow(clippy::needless_range_loop)] // (i, j) is the PE pair key
            for j in 0..n {
                let e = g.add_edge(stage1[i], stage2[j], 1, 1, 0, 16)?;
                sum_edges.insert((i, j), e);
            }
            // Particle exchange: stage2_i → stage3_j
            // ("varies at run-time, hence SPI_dynamic").
            for j in 0..n {
                let e = if i == j {
                    // Local hand-off is a static trigger; particles stay
                    // in the shared store.
                    g.add_edge(stage2[i], stage3[i], 1, 1, 0, 8)?
                } else {
                    g.add_dynamic_edge(stage2[i], stage3[j], 1, 1, 0, particle_bound_bytes)?
                };
                particle_edges.insert((i, j), e);
            }
        }

        // Precompute the scenario.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let (truth, observations) = config.model.simulate(1.0, config.steps, &mut rng);

        Ok(PrognosisApp {
            graph: g,
            obs,
            stage1,
            stage2,
            stage3,
            sum_edges,
            particle_edges,
            config,
            truth,
            observations: Arc::new(observations),
            estimates: Arc::new(Mutex::new(Vec::new())),
            pooled_particles: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Lowers the application onto `n_pes` processors (stages of PE `i`
    /// on processor `i`; the observation source on processor 0).
    ///
    /// # Errors
    ///
    /// Any SPI build error; [`AppError::Config`] if `iterations` exceeds
    /// the precomputed scenario length.
    pub fn system(&self, iterations: u64) -> Result<SpiSystem> {
        let mut builder = SpiSystemBuilder::new(self.graph.clone());
        self.configure(&mut builder, iterations)?;
        builder.iterations(iterations);
        let map = self.actor_processor_map();
        Ok(builder.build(self.config.n_pes, move |a| map[&a])?)
    }

    /// The actor→processor map used by [`PrognosisApp::system`].
    pub fn actor_processor_map(&self) -> HashMap<ActorId, ProcId> {
        let mut map = HashMap::new();
        map.insert(self.obs, ProcId(0));
        for i in 0..self.config.n_pes {
            map.insert(self.stage1[i], ProcId(i));
            map.insert(self.stage2[i], ProcId(i));
            map.insert(self.stage3[i], ProcId(i));
        }
        map
    }

    /// Registers every actor implementation and resource estimate.
    ///
    /// # Errors
    ///
    /// [`AppError::Config`] if `iterations` exceeds the precomputed
    /// scenario.
    pub fn configure(&self, builder: &mut SpiSystemBuilder, iterations: u64) -> Result<()> {
        let cfg = self.config;
        let n = cfg.n_pes;
        let per_pe = cfg.particles / n;
        let total = per_pe * n; // divisible working count
        if iterations as usize > self.observations.len() {
            return Err(AppError::Config(format!(
                "{iterations} iterations exceed the {}-step scenario",
                self.observations.len()
            )));
        }

        // Shared per-PE particle stores.
        let states: Vec<Arc<Mutex<PeState>>> = (0..n)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x9E37 + i as u64));
                let filter = ParticleFilter::new(cfg.model, per_pe, 0.5, 1.5, &mut rng);
                Arc::new(Mutex::new(PeState {
                    filter,
                    rng,
                    kept: Vec::new(),
                    surplus: Vec::new(),
                }))
            })
            .collect();

        // ----- Observation source --------------------------------------
        let observations = Arc::clone(&self.observations);
        let obs_edges: Vec<EdgeId> = self.graph.out_edges(self.obs);
        builder.actor(self.obs, move |ctx: &mut Firing| {
            let y = observations[ctx.iter as usize];
            for &e in &obs_edges {
                ctx.set_output(e, y.to_le_bytes().to_vec());
            }
            10
        });
        builder.actor_resources(self.obs, components::io_interface());

        for i in 0..n {
            let obs_edge = self.graph.out_edges(self.obs)[i];

            // ----- Stage 1: predict + update + partial sums -------------
            let state = Arc::clone(&states[i]);
            let my_sum_edges: Vec<EdgeId> = (0..n).map(|j| self.sum_edges[&(i, j)]).collect();
            builder.actor(self.stage1[i], move |ctx: &mut Firing| {
                let y =
                    f64::from_le_bytes(ctx.input(obs_edge).try_into().expect("8-byte observation"));
                let mut st = state.lock().expect("pe state");
                st.rng = StdRng::seed_from_u64(
                    cfg.seed ^ ctx.iter.wrapping_mul(0x5851F42D) ^ (i as u64),
                );
                let mut rng = st.rng.clone();
                st.filter.predict(&mut rng);
                st.filter.update_unnormalized(y);
                let sum_w: f64 = st.filter.weights.iter().sum();
                let sum_wx: f64 = st
                    .filter
                    .particles
                    .iter()
                    .zip(&st.filter.weights)
                    .map(|(p, w)| p * w)
                    .sum();
                st.rng = rng;
                let payload = f64s_to_bytes(&[sum_w, sum_wx]);
                for &e in &my_sum_edges {
                    ctx.set_output(e, payload.clone());
                }
                cost::estimate_cycles(per_pe) + cost::update_cycles(per_pe)
            });
            builder.actor_resources(
                self.stage1[i],
                components::particle_filter_pe(per_pe as u64) + components::noise_generator(),
            );

            // ----- Stage 2: local resampling + exchange planning --------
            let state = Arc::clone(&states[i]);
            let in_sum_edges: Vec<EdgeId> = (0..n).map(|j| self.sum_edges[&(j, i)]).collect();
            let out_particle_edges: Vec<EdgeId> =
                (0..n).map(|j| self.particle_edges[&(i, j)]).collect();
            let estimates = Arc::clone(&self.estimates);
            builder.actor(self.stage2[i], move |ctx: &mut Firing| {
                // Gather all partial sums (same values on every PE).
                let mut sums_w = vec![0.0; n];
                let mut total_wx = 0.0;
                for (j, &e) in in_sum_edges.iter().enumerate() {
                    let v = f64s_from_bytes(ctx.input(e));
                    sums_w[j] = v[0];
                    total_wx += v[1];
                }
                let total_w: f64 = sums_w.iter().sum();
                if i == 0 {
                    estimates.lock().expect("estimates").push(if total_w > 0.0 {
                        total_wx / total_w
                    } else {
                        0.0
                    });
                }
                // Proportional allocation + local systematic resample.
                let alloc = allocate_counts(&sums_w, total);
                let mut st = state.lock().expect("pe state");
                let mut rng = st.rng.clone();
                let drawn =
                    systematic_draw(&st.filter.particles, &st.filter.weights, alloc[i], &mut rng);
                st.rng = rng;
                let target = per_pe;
                let keep = target.min(drawn.len());
                st.kept = drawn[..keep].to_vec();
                st.surplus = drawn[keep..].to_vec();
                // Ship surplus per the (identically computed) plan.
                let plan = plan_exchanges(&alloc, target);
                let mut cursor = 0usize;
                for x in plan.iter().filter(|x| x.from == i) {
                    let chunk = &st.surplus[cursor..cursor + x.count];
                    ctx.set_output(out_particle_edges[x.to], f64s_to_bytes(chunk));
                    cursor += x.count;
                }
                // Local trigger + any unsent edges get empty payloads.
                for (j, &e) in out_particle_edges.iter().enumerate() {
                    if ctx.output(e).is_none() {
                        if j == i {
                            ctx.set_output(e, (st.kept.len() as u64).to_le_bytes().to_vec());
                        } else {
                            ctx.set_output(e, Vec::new());
                        }
                    }
                }
                cost::resample_cycles(per_pe)
            });

            // ----- Stage 3: merge incoming particles --------------------
            let state = Arc::clone(&states[i]);
            let in_particle_edges: Vec<(usize, EdgeId)> =
                (0..n).map(|j| (j, self.particle_edges[&(j, i)])).collect();
            let pooled = Arc::clone(&self.pooled_particles);
            builder.actor(self.stage3[i], move |ctx: &mut Firing| {
                let mut st = state.lock().expect("pe state");
                let mut merged = std::mem::take(&mut st.kept);
                for &(j, e) in &in_particle_edges {
                    if j == i {
                        continue; // trigger only
                    }
                    merged.extend(f64s_from_bytes(ctx.input(e)));
                }
                let received = merged.len();
                debug_assert_eq!(received, per_pe, "every PE ends balanced");
                // Contribute to the pooled global view of this step.
                {
                    let mut pool = pooled.lock().expect("pooled particles");
                    let step = ctx.iter as usize;
                    if pool.len() <= step {
                        pool.resize(step + 1, Vec::new());
                    }
                    pool[step].extend_from_slice(&merged);
                }
                st.filter.particles = merged;
                st.filter.weights = vec![1.0 / received.max(1) as f64; received];
                st.surplus.clear();
                cost::resample_cycles(received / 2 + 1)
            });
        }
        Ok(())
    }

    /// The configuration this app was built with.
    pub fn config(&self) -> PrognosisConfig {
        self.config
    }

    /// Remaining-useful-life prognosis from the final pooled particle
    /// set: `(mean, p10, p90)` steps until the crack crosses
    /// `threshold`, censored at `horizon`. `None` before any resampling
    /// step has completed.
    pub fn remaining_useful_life(
        &self,
        threshold: f64,
        horizon: usize,
    ) -> Option<(f64, usize, usize)> {
        let pool = self.pooled_particles.lock().expect("pooled particles");
        let last = pool.last()?.clone();
        drop(pool);
        if last.is_empty() {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x52554C);
        Some(rul_summary(remaining_useful_life(
            &self.config.model,
            &last,
            threshold,
            horizon,
            &mut rng,
        )))
    }

    /// RMS tracking error of the collected estimates against ground
    /// truth, skipping a `burn_in` prefix.
    pub fn tracking_rmse(&self, burn_in: usize) -> f64 {
        let est = self.estimates.lock().expect("estimates");
        let pairs: Vec<(f64, f64)> = est
            .iter()
            .zip(&self.truth)
            .skip(burn_in)
            .map(|(&e, &t)| (e, t))
            .collect();
        if pairs.is_empty() {
            return f64::INFINITY;
        }
        let mse: f64 =
            pairs.iter().map(|(e, t)| (e - t) * (e - t)).sum::<f64>() / pairs.len() as f64;
        mse.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_matches_figure4_distribution() {
        let app = PrognosisApp::new(PrognosisConfig {
            n_pes: 2,
            ..Default::default()
        })
        .unwrap();
        // obs + 3 stages × 2 PEs.
        assert_eq!(app.graph.actor_count(), 7);
        // 2 obs edges + 4 sum edges + 4 particle edges.
        assert_eq!(app.graph.edge_count(), 10);
        // Cross-PE particle edges are dynamic; sums are static.
        assert_eq!(app.graph.dynamic_edges().len(), 2);
    }

    #[test]
    fn config_validation() {
        assert!(PrognosisApp::new(PrognosisConfig {
            n_pes: 0,
            ..Default::default()
        })
        .is_err());
        assert!(PrognosisApp::new(PrognosisConfig {
            n_pes: 8,
            particles: 4,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn single_pe_filter_tracks_truth() {
        let app = PrognosisApp::new(PrognosisConfig {
            n_pes: 1,
            particles: 200,
            steps: 40,
            ..Default::default()
        })
        .unwrap();
        let sys = app.system(40).unwrap();
        sys.run().unwrap();
        let rmse = app.tracking_rmse(10);
        assert!(
            rmse < 2.0 * app.config().model.measurement_noise,
            "single-PE filter should track: rmse {rmse}"
        );
        assert_eq!(app.estimates.lock().unwrap().len(), 40);
    }

    #[test]
    fn two_pe_filter_tracks_truth() {
        let app = PrognosisApp::new(PrognosisConfig {
            n_pes: 2,
            particles: 200,
            steps: 40,
            ..Default::default()
        })
        .unwrap();
        let sys = app.system(40).unwrap();
        let report = sys.run().unwrap();
        let rmse = app.tracking_rmse(10);
        assert!(
            rmse < 2.0 * app.config().model.measurement_noise,
            "rmse {rmse}"
        );
        // Cross-PE traffic existed: sums + particle exchanges.
        assert!(report.sim.total_messages() > 0);
    }

    #[test]
    fn sum_edges_use_spi_static_particle_edges_dynamic() {
        let app = PrognosisApp::new(PrognosisConfig {
            n_pes: 2,
            particles: 64,
            steps: 10,
            ..Default::default()
        })
        .unwrap();
        let sys = app.system(5).unwrap();
        let plans = sys.edge_plans();
        let cross_sum = app.sum_edges[&(0, 1)];
        let cross_part = app.particle_edges[&(0, 1)];
        assert_eq!(plans[&cross_sum].phase, spi::SpiPhase::Static);
        assert_eq!(plans[&cross_part].phase, spi::SpiPhase::Dynamic);
        sys.run().unwrap();
    }

    #[test]
    fn rul_prognosis_shrinks_as_the_crack_grows() {
        // Run two scenarios from the same model: one stopped early (small
        // crack), one run long (bigger crack). RUL must shrink.
        let rul_after = |steps: u64| {
            let app = PrognosisApp::new(PrognosisConfig {
                n_pes: 2,
                particles: 200,
                steps: 120,
                ..Default::default()
            })
            .expect("valid config");
            let sys = app.system(steps).expect("buildable");
            sys.run().expect("clean run");
            app.remaining_useful_life(3.0, 100_000)
                .expect("pooled particles")
        };
        let (early_mean, ..) = rul_after(5);
        let (late_mean, p10, p90) = rul_after(110);
        assert!(
            late_mean < early_mean,
            "RUL must shrink as the crack grows: early {early_mean:.0} vs late {late_mean:.0}"
        );
        assert!(p10 <= p90);
    }

    #[test]
    fn iterations_beyond_scenario_rejected() {
        let app = PrognosisApp::new(PrognosisConfig {
            steps: 5,
            ..Default::default()
        })
        .unwrap();
        assert!(app.system(10).is_err());
    }
}

//! # spi-apps — the DATE 2008 SPI evaluation applications
//!
//! The two signal-processing systems the paper demonstrates SPI on,
//! assembled end to end over the `spi` library:
//!
//! * [`SpeechApp`] — application 1 (§5.2): LPC acoustic data compression
//!   with the prediction-error stage parallelized over `n` PEs through
//!   `SPI_dynamic` edges;
//! * [`PrognosisApp`] — application 2 (§5.3): particle-filter
//!   crack-length prognosis with the paper's three-step distributed
//!   resampling, mixing `SPI_static` (weight sums) and `SPI_dynamic`
//!   (particle exchange) edges.
//!
//! Both run functionally (outputs validated against serial references in
//! the test suite) and cycle-timed (driving figures 6–7 and tables 1–2
//! through the `spi-bench` harness). Two extra subsystems round out the
//! suite: [`ErrorStageApp`], the hardware configuration the paper
//! actually synthesized (figures 3/6, table 1), and [`FilterBankApp`],
//! a cyclo-static multirate filter bank exercising the CSDF path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod error_stage;
pub mod filterbank;
pub mod prognosis;
pub mod speech;
pub mod util;

pub use error::{AppError, Result};
pub use error_stage::{ErrorStageApp, ErrorStageConfig};
pub use filterbank::{FilterBankApp, FilterBankConfig};
pub use prognosis::{PrognosisApp, PrognosisConfig};
pub use speech::{CompressedFrame, SpeechApp, SpeechConfig};

//! Error type for the evaluation applications.

use std::fmt;

/// Errors from assembling or running an evaluation application.
#[derive(Debug)]
#[non_exhaustive]
pub enum AppError {
    /// Invalid configuration.
    Config(String),
    /// The SPI layer failed.
    Spi(spi::SpiError),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Config(msg) => write!(f, "invalid application configuration: {msg}"),
            AppError::Spi(e) => write!(f, "spi failure: {e}"),
        }
    }
}

impl std::error::Error for AppError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AppError::Spi(e) => Some(e),
            AppError::Config(_) => None,
        }
    }
}

impl From<spi::SpiError> for AppError {
    fn from(e: spi::SpiError) -> Self {
        AppError::Spi(e)
    }
}

impl From<spi_dataflow::DataflowError> for AppError {
    fn from(e: spi_dataflow::DataflowError) -> Self {
        AppError::Spi(spi::SpiError::Dataflow(e))
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, AppError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_sources() {
        use std::error::Error;
        let e = AppError::Config("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let e: AppError = spi_dataflow::DataflowError::EmptyGraph.into();
        assert!(e.source().is_some());
    }
}

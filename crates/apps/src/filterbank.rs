//! A two-channel multirate filter bank — the CSDF showcase workload.
//!
//! Beyond the paper's two evaluation applications, this subsystem
//! demonstrates the full cyclo-static path through SPI: a distributor
//! alternates frames between two analysis branches (a CSDF actor with
//! phase rates `[1,0]` / `[0,1]`), each branch low-pass/decimates at a
//! different rate, and a combiner interleaves the results. The CSDF
//! graph is reduced to SDF ([`spi_dataflow::CsdfGraph::to_sdf`]) and
//! lowered through the ordinary SPI flow onto `3` processors.

use std::sync::{Arc, Mutex};

use spi::{Firing, SpiSystem, SpiSystemBuilder};
use spi_dataflow::{ActorId, CsdfGraph, EdgeId, PhaseRates, SdfGraph};
use spi_dsp::fir::{decimate, fir_cycles, Fir};
use spi_platform::components;
use spi_sched::ProcId;

use crate::error::{AppError, Result};
use crate::util::{f64s_from_bytes, f64s_to_bytes};

/// Configuration of the filter bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterBankConfig {
    /// Samples per frame.
    pub frame: usize,
    /// FIR taps per branch filter.
    pub taps: usize,
    /// Decimation factor of the low band.
    pub low_decimation: usize,
    /// Decimation factor of the high band.
    pub high_decimation: usize,
    /// RNG seed for the synthetic input.
    pub seed: u64,
}

impl Default for FilterBankConfig {
    fn default() -> Self {
        FilterBankConfig {
            frame: 128,
            taps: 15,
            low_decimation: 2,
            high_decimation: 4,
            seed: 17,
        }
    }
}

/// The assembled filter bank.
pub struct FilterBankApp {
    /// The CSDF model (kept for inspection; the lowered system uses its
    /// SDF reduction).
    pub csdf: CsdfGraph,
    /// The reduced SDF graph actually lowered.
    pub graph: SdfGraph,
    /// Source/distributor actor.
    pub source: ActorId,
    /// Low-band branch actor.
    pub low: ActorId,
    /// High-band branch actor.
    pub high: ActorId,
    /// Combiner actor.
    pub sink: ActorId,
    /// Edges source→low, source→high, low→sink, high→sink.
    pub edges: [EdgeId; 4],
    config: FilterBankConfig,
    /// Interleaved band outputs per iteration pair.
    pub output: Arc<Mutex<Vec<Vec<f64>>>>,
}

impl FilterBankApp {
    /// Builds the CSDF model and its SDF reduction.
    ///
    /// # Errors
    ///
    /// [`AppError::Config`] on degenerate configurations.
    pub fn new(config: FilterBankConfig) -> Result<Self> {
        if config.frame < 8 || config.taps == 0 {
            return Err(AppError::Config(format!(
                "frame {} / taps {} too small",
                config.frame, config.taps
            )));
        }
        // The CSDF view: the distributor alternates full frames.
        let mut csdf = CsdfGraph::new();
        let c_src = csdf.add_actor("distribute", 20);
        let c_low = csdf.add_actor("low-band", fir_cycles(config.frame, config.taps));
        let c_high = csdf.add_actor("high-band", fir_cycles(config.frame, config.taps));
        let c_sink = csdf.add_actor("combine", 30);
        let one = || PhaseRates::constant(1).expect("positive");
        csdf.add_edge(
            c_src,
            c_low,
            PhaseRates::new(vec![1, 0]).expect("valid"),
            one(),
            0,
            8,
        )?;
        csdf.add_edge(
            c_src,
            c_high,
            PhaseRates::new(vec![0, 1]).expect("valid"),
            one(),
            0,
            8,
        )?;
        csdf.add_edge(c_low, c_sink, one(), one(), 0, 8)?;
        csdf.add_edge(c_high, c_sink, one(), one(), 0, 8)?;
        let reduction = csdf.to_sdf()?;

        // For the lowered system we re-express the reduction with
        // byte-accurate dynamic edges (decimated frames vary in size).
        let mut g = SdfGraph::new();
        let source = g.add_actor("distribute", 20 * 2);
        let low = g.add_actor("low-band", fir_cycles(config.frame, config.taps));
        let high = g.add_actor("high-band", fir_cycles(config.frame, config.taps));
        let sink = g.add_actor("combine", 30);
        let frame_bytes = (config.frame * 8) as u32;
        let e_sl = g.add_dynamic_edge(source, low, 1, 1, 0, frame_bytes)?;
        let e_sh = g.add_dynamic_edge(source, high, 1, 1, 0, frame_bytes)?;
        let e_ls = g.add_dynamic_edge(low, sink, 1, 1, 0, frame_bytes)?;
        let e_hs = g.add_dynamic_edge(high, sink, 1, 1, 0, frame_bytes)?;
        debug_assert!(reduction.graph().is_consistent());

        Ok(FilterBankApp {
            csdf,
            graph: g,
            source,
            low,
            high,
            sink,
            edges: [e_sl, e_sh, e_ls, e_hs],
            config,
            output: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Lowers onto three processors: distributor+combiner on P0, one
    /// branch per remaining processor.
    ///
    /// # Errors
    ///
    /// Any SPI build error.
    pub fn system(&self, iterations: u64) -> Result<SpiSystem> {
        self.system_with(iterations, |_| {})
    }

    /// As [`FilterBankApp::system`], with a hook to customize the
    /// builder before lowering — attach a tracer, swap the channel
    /// template, toggle resynchronization — while keeping the canonical
    /// three-processor assignment.
    ///
    /// # Errors
    ///
    /// Any SPI build error.
    pub fn system_with(
        &self,
        iterations: u64,
        customize: impl FnOnce(&mut SpiSystemBuilder),
    ) -> Result<SpiSystem> {
        let mut builder = SpiSystemBuilder::new(self.graph.clone());
        self.configure(&mut builder);
        builder.iterations(iterations);
        customize(&mut builder);
        let (low, high) = (self.low, self.high);
        Ok(builder.build(3, move |a| {
            if a == low {
                ProcId(1)
            } else if a == high {
                ProcId(2)
            } else {
                ProcId(0)
            }
        })?)
    }

    /// Registers implementations and resources.
    pub fn configure(&self, builder: &mut SpiSystemBuilder) {
        let cfg = self.config;
        let [e_sl, e_sh, e_ls, e_hs] = self.edges;

        // Distributor: one SDF firing = one full CSDF phase cycle, so it
        // emits a frame on EACH branch per firing (even frame to low,
        // odd frame to high).
        builder.actor(self.source, move |ctx: &mut Firing| {
            let even = synth(cfg.seed, 2 * ctx.iter, cfg.frame);
            let odd = synth(cfg.seed, 2 * ctx.iter + 1, cfg.frame);
            ctx.set_output(e_sl, f64s_to_bytes(&even));
            ctx.set_output(e_sh, f64s_to_bytes(&odd));
            40
        });

        let mut low_fir = Fir::lowpass(cfg.taps, 0.2);
        builder.actor(self.low, move |ctx: &mut Firing| {
            let frame = f64s_from_bytes(&ctx.take_input(e_sl));
            let filtered = low_fir.process(&frame);
            let out = decimate(&filtered, cfg.low_decimation);
            ctx.set_output(e_ls, f64s_to_bytes(&out));
            // The MAC pipeline runs over every input sample.
            fir_cycles(frame.len().max(1), cfg.taps)
        });

        let mut high_fir = Fir::lowpass(cfg.taps, 0.05);
        builder.actor(self.high, move |ctx: &mut Firing| {
            let frame = f64s_from_bytes(&ctx.take_input(e_sh));
            let filtered = high_fir.process(&frame);
            let out = decimate(&filtered, cfg.high_decimation);
            ctx.set_output(e_hs, f64s_to_bytes(&out));
            fir_cycles(frame.len().max(1), cfg.taps)
        });

        let output = Arc::clone(&self.output);
        builder.actor(self.sink, move |ctx: &mut Firing| {
            let mut merged = f64s_from_bytes(&ctx.take_input(e_ls));
            merged.extend(f64s_from_bytes(&ctx.take_input(e_hs)));
            let n = merged.len();
            output.lock().expect("output").push(merged);
            30 + n as u64
        });

        builder.actor_resources(self.source, components::io_interface());
        builder.actor_resources(self.low, components::fft_core(64)); // FIR datapath proxy
        builder.actor_resources(self.high, components::fft_core(64));
        builder.actor_resources(self.sink, components::io_interface());
    }

    /// The configuration used.
    pub fn config(&self) -> FilterBankConfig {
        self.config
    }
}

/// Deterministic synthetic input: mixed low + high tones.
fn synth(seed: u64, frame_idx: u64, len: usize) -> Vec<f64> {
    (0..len)
        .map(|t| {
            let ph = (frame_idx as f64 * len as f64 + t as f64) + (seed % 97) as f64;
            (ph * 0.05).sin() + 0.5 * (ph * 2.4).sin()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csdf_model_is_reducible_and_consistent() {
        let app = FilterBankApp::new(FilterBankConfig::default()).unwrap();
        let reduction = app.csdf.to_sdf().unwrap();
        let q = reduction.graph().repetition_vector().unwrap();
        assert_eq!(q.total_firings(), 4);
        assert_eq!(
            reduction.phases_of(ActorId(0)),
            2,
            "distributor has 2 phases"
        );
        // The phase-accurate schedule exists.
        assert_eq!(app.csdf.phase_schedule().unwrap().len(), 5);
    }

    #[test]
    fn bank_runs_and_decimates() {
        let cfg = FilterBankConfig::default();
        let app = FilterBankApp::new(cfg).unwrap();
        let sys = app.system(6).unwrap();
        let report = sys.run().unwrap();
        assert!(report.makespan_us() > 0.0);
        let out = app.output.lock().unwrap();
        assert_eq!(out.len(), 6);
        let expect = cfg.frame / cfg.low_decimation + cfg.frame / cfg.high_decimation;
        for frame in out.iter() {
            assert_eq!(frame.len(), expect);
        }
    }

    #[test]
    fn branches_run_in_parallel() {
        // 3-proc period must beat single-proc clearly at large frames.
        let cfg = FilterBankConfig {
            frame: 512,
            taps: 31,
            ..Default::default()
        };
        let app = FilterBankApp::new(cfg).unwrap();
        let par = app.system(6).unwrap().run().unwrap().period_us();

        let app1 = FilterBankApp::new(cfg).unwrap();
        let mut builder = SpiSystemBuilder::new(app1.graph.clone());
        app1.configure(&mut builder);
        builder.iterations(6);
        let ser = builder
            .build(1, |_| ProcId(0))
            .unwrap()
            .run()
            .unwrap()
            .period_us();
        assert!(par < ser * 0.8, "parallel {par} vs serial {ser}");
    }

    #[test]
    fn degenerate_config_rejected() {
        assert!(FilterBankApp::new(FilterBankConfig {
            frame: 2,
            ..Default::default()
        })
        .is_err());
        assert!(FilterBankApp::new(FilterBankConfig {
            taps: 0,
            ..Default::default()
        })
        .is_err());
    }
}

//! Discrete-event simulation of a multi-PE system with hardware FIFOs.
//!
//! This is the reproduction's stand-in for the paper's Virtex-4 FPGA
//! testbed. Each processing element (PE) executes a *program* — a looped
//! sequence of compute / send / receive operations — under self-timed
//! semantics: operations run as soon as their data is available, sends
//! block on full FIFOs, receives block on empty ones. Payloads are real
//! bytes, so a simulation is simultaneously a functional execution (the
//! DSP kernels actually run inside compute closures) and a timed one
//! (every operation advances a cycle-accurate clock).
//!
//! Costs are intentionally explicit: channel word width, per-word wire
//! latency, per-message sender/receiver occupancy. Protocol layers (SPI,
//! the MPI baseline) lower to these primitives, so their overhead
//! differences are measured, not assumed.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use crate::error::{BlockKind, BlockedOp, PlatformError, Result};
use crate::pool::Token;
use crate::trace::{payload_digest, ProbeKind, Tracer};

/// Identifier of a processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeId(pub usize);

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

/// Identifier of a point-to-point FIFO channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub usize);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Static parameters of a FIFO channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Buffer capacity in bytes (a full FIFO blocks the sender).
    pub capacity_bytes: usize,
    /// Channel word width in bytes (a 32-bit FPGA FIFO moves 4 B/cycle).
    pub word_bytes: u32,
    /// Cycles for one word to traverse the channel.
    pub cycles_per_word: u64,
    /// Fixed cycles of sender-side occupancy per message (handshake,
    /// header emission).
    pub send_overhead_cycles: u64,
    /// Fixed cycles of receiver-side occupancy per message (header
    /// parse, pointer update).
    pub recv_overhead_cycles: u64,
    /// Largest single message the channel carries, in bytes — the packed
    /// token size `c(e) = c_sdf(e) · b_max(e)` plus header when derived
    /// from the paper's eq. (1). `0` means "not declared": transports
    /// fall back to word granularity and the analyzer skips
    /// capacity-vs-bound checks.
    pub max_message_bytes: usize,
}

impl Default for ChannelSpec {
    fn default() -> Self {
        // A 32-bit FIFO moving one word per cycle with 2-cycle framing at
        // each end — typical of the System-Generator-era FIFO cores.
        ChannelSpec {
            capacity_bytes: 4096,
            word_bytes: 4,
            cycles_per_word: 1,
            send_overhead_cycles: 2,
            recv_overhead_cycles: 2,
            max_message_bytes: 0,
        }
    }
}

impl ChannelSpec {
    /// Cycles to push `bytes` of payload through the channel wire.
    pub fn wire_cycles(&self, bytes: usize) -> u64 {
        let words = (bytes as u64).div_ceil(u64::from(self.word_bytes.max(1)));
        words * self.cycles_per_word
    }
}

/// Mutable per-PE state visible to program closures.
///
/// `store` is the PE's local memory (keyed scratch space shared by all
/// ops of the PE); `inbox` receives payloads in arrival order, tagged by
/// channel.
#[derive(Debug, Default)]
pub struct PeLocal {
    /// Current iteration index (0-based).
    pub iter: u64,
    /// Payloads received and not yet consumed by compute closures.
    /// Pointer transports deliver pooled [`Token`] leases here — the
    /// received bytes are still the sender's slot, not a copy.
    pub inbox: VecDeque<(ChannelId, Token)>,
    /// Keyed local memory.
    pub store: HashMap<String, Vec<u8>>,
}

impl PeLocal {
    /// Pops the oldest pending payload from `channel` as an owned
    /// buffer (copying if it was a pooled lease; the lease's slot is
    /// released on return).
    ///
    /// Compute closures use this to consume data received by earlier
    /// `Recv` ops of the same program.
    pub fn take_from(&mut self, channel: ChannelId) -> Option<Vec<u8>> {
        self.take_token_from(channel).map(Token::into_vec)
    }

    /// Pops the oldest pending payload from `channel` as a [`Token`],
    /// preserving a pooled lease for zero-copy consumption (read via
    /// `&token[..]`, slot released when the token drops).
    pub fn take_token_from(&mut self, channel: ChannelId) -> Option<Token> {
        let idx = self.inbox.iter().position(|(c, _)| *c == channel)?;
        self.inbox.remove(idx).map(|(_, d)| d)
    }
}

/// Closure computing a data-dependent cycle cost and performing the
/// actual (functional) work of an operation.
pub type ComputeFn = Box<dyn FnMut(&mut PeLocal) -> u64 + Send>;
/// Closure producing the payload for a send.
pub type PayloadFn = Box<dyn FnMut(&mut PeLocal) -> Vec<u8> + Send>;
/// Closure computing an absolute target cycle for a timed wait.
pub type WaitFn = Box<dyn FnMut(u64) -> u64 + Send>;

/// One operation in a PE program.
pub enum Op {
    /// Run `work`, advancing the PE clock by the returned cycle count.
    Compute {
        /// Label for traces and profiling.
        label: String,
        /// The functional work + cost model.
        work: ComputeFn,
    },
    /// Produce a payload and push it into `channel` (blocking while the
    /// FIFO lacks space).
    Send {
        /// Destination channel.
        channel: ChannelId,
        /// Payload generator.
        payload: PayloadFn,
    },
    /// Block until one message is available on `channel`, then deliver it
    /// to the PE's inbox.
    Recv {
        /// Source channel.
        channel: ChannelId,
    },
    /// Stall until the absolute cycle returned by `target(iter)` —
    /// the primitive behind *fully-static* schedules, where a global
    /// clock (not data arrival) releases each firing.
    WaitUntil {
        /// Computes the release cycle for the current iteration.
        target: WaitFn,
    },
}

impl fmt::Debug for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Compute { label, .. } => write!(f, "Compute({label})"),
            Op::Send { channel, .. } => write!(f, "Send({channel})"),
            Op::Recv { channel } => write!(f, "Recv({channel})"),
            Op::WaitUntil { .. } => write!(f, "WaitUntil"),
        }
    }
}

/// A PE program: `prologue` executed once, then `ops` executed
/// `iterations` times.
#[derive(Debug, Default)]
pub struct Program {
    /// The looped operation sequence.
    pub ops: Vec<Op>,
    /// Number of loop iterations to run.
    pub iterations: u64,
    /// One-shot ops run before the loop (pipeline fills, credit grants,
    /// delay-token priming).
    pub prologue: Vec<Op>,
    /// Compute-time scaling as a rational `num/den`: a software PE at a
    /// third of the hardware clock uses `(3, 1)`; a double-speed
    /// hardware block uses `(1, 2)`. Communication costs are unaffected
    /// (the wires run at fabric speed). Zero components are treated as 1.
    pub speed: (u64, u64),
}

impl Program {
    /// Creates a program running `ops` for `iterations` iterations with
    /// an empty prologue at nominal speed.
    pub fn new(ops: Vec<Op>, iterations: u64) -> Self {
        Program {
            ops,
            iterations,
            prologue: Vec::new(),
            speed: (1, 1),
        }
    }

    /// Scales every compute op's duration by `num/den` (heterogeneous
    /// hardware/software platforms).
    pub fn with_speed(mut self, num: u64, den: u64) -> Self {
        self.speed = (num.max(1), den.max(1));
        self
    }
}

/// Per-channel traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// High-water mark of buffer occupancy in bytes (committed +
    /// in-flight), the number an RTL FIFO would be sized to.
    pub peak_bytes: u64,
}

/// Per-PE blocking statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeStats {
    /// Cycles spent blocked waiting to send.
    pub send_stall_cycles: u64,
    /// Cycles spent blocked waiting to receive.
    pub recv_stall_cycles: u64,
    /// Cycles spent in compute ops.
    pub busy_cycles: u64,
    /// Cycles spent stalled on `WaitUntil` releases (fully-static mode).
    pub wait_cycles: u64,
    /// Cycle at which the PE finished its program.
    pub finish_cycle: u64,
}

/// One recorded simulation event (tracing must be enabled via
/// [`Machine::enable_trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle.
    pub cycle: u64,
    /// PE the event belongs to.
    pub pe: PeId,
    /// What happened.
    pub kind: TraceKind,
}

/// Kinds of trace events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A compute op started; carries its label and duration.
    Compute {
        /// The op's label.
        label: String,
        /// Cycles it will occupy.
        cycles: u64,
    },
    /// A message entered a channel.
    Send {
        /// Destination channel.
        channel: ChannelId,
        /// Payload bytes.
        bytes: usize,
    },
    /// A message was taken from a channel.
    Recv {
        /// Source channel.
        channel: ChannelId,
        /// Payload bytes.
        bytes: usize,
    },
}

/// Result of a completed simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Cycle at which the last PE finished (makespan).
    pub makespan_cycles: u64,
    /// Per-PE statistics, indexed by `PeId`.
    pub pe: Vec<PeStats>,
    /// Per-channel statistics, indexed by `ChannelId`.
    pub channels: Vec<ChannelStats>,
    /// Final local state of each PE (for functional checks).
    pub locals: Vec<PeLocalSnapshot>,
    /// Recorded events, empty unless tracing was enabled.
    pub trace: Vec<TraceEvent>,
}

impl SimReport {
    /// Renders the trace as a per-PE activity listing — a textual Gantt
    /// chart. Empty string when tracing was off.
    pub fn render_gantt(&self) -> String {
        let mut out = String::new();
        for (i, _) in self.pe.iter().enumerate() {
            let events: Vec<&TraceEvent> = self.trace.iter().filter(|e| e.pe.0 == i).collect();
            if events.is_empty() {
                continue;
            }
            out.push_str(&format!("pe{i}:\n"));
            for e in events {
                match &e.kind {
                    TraceKind::Compute { label, cycles } => out.push_str(&format!(
                        "  [{:>8}..{:>8}] {}\n",
                        e.cycle,
                        e.cycle + cycles,
                        label
                    )),
                    TraceKind::Send { channel, bytes } => {
                        out.push_str(&format!("  [{:>8}] send {bytes} B -> {channel}\n", e.cycle))
                    }
                    TraceKind::Recv { channel, bytes } => {
                        out.push_str(&format!("  [{:>8}] recv {bytes} B <- {channel}\n", e.cycle))
                    }
                }
            }
        }
        out
    }
}

/// Snapshot of a PE's local memory after simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeLocalSnapshot {
    /// The PE's keyed store.
    pub store: HashMap<String, Vec<u8>>,
    /// Unconsumed inbox payloads.
    pub leftover_inbox: usize,
}

impl SimReport {
    /// Converts the makespan to microseconds at `clock_mhz`.
    pub fn makespan_us(&self, clock_mhz: f64) -> f64 {
        self.makespan_cycles as f64 / clock_mhz
    }

    /// Total messages over all channels.
    pub fn total_messages(&self) -> u64 {
        self.channels.iter().map(|c| c.messages).sum()
    }

    /// Total payload bytes over all channels.
    pub fn total_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.bytes).sum()
    }
}

/// Builder/owner of one simulated platform instance.
///
/// # Examples
///
/// A producer PE streams two words to a consumer PE:
///
/// ```
/// use spi_platform::{Machine, ChannelSpec, Op, Program};
///
/// let mut m = Machine::new();
/// let ch = m.add_channel(ChannelSpec::default());
/// let producer = m.add_pe(Program::new(vec![
///     Op::Send { channel: ch, payload: Box::new(|_| vec![1, 2, 3, 4]) },
/// ], 2));
/// let _consumer = m.add_pe(Program::new(vec![
///     Op::Recv { channel: ch },
/// ], 2));
/// let report = m.run()?;
/// assert_eq!(report.channels[ch.0].messages, 2);
/// assert!(report.makespan_cycles > 0);
/// # let _ = producer;
/// # Ok::<(), spi_platform::PlatformError>(())
/// ```
pub struct Machine {
    channels: Vec<ChannelSpec>,
    programs: Vec<Program>,
    budget_cycles: u64,
    trace: bool,
    tracer: Option<Arc<dyn Tracer>>,
    bus: Option<BusSpec>,
    ordered_bus: Option<OrderedBusSpec>,
}

/// A shared interconnect: every channel transfer serializes through one
/// bus. Models bus-based MPSoC fabrics for the point-to-point-vs-bus
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusSpec {
    /// Arbitration cycles charged per transfer.
    pub arbitration_cycles: u64,
}

/// An *ordered-transactions* interconnect (Sriram): bus grants follow a
/// compile-time cyclic order of channels, so no run-time arbitration is
/// needed — a transfer whose channel is next in the order proceeds with
/// only `slot_overhead_cycles`; one out of turn waits for its slot.
/// Channels absent from the order (and sends issued from a PE's
/// prologue) bypass the ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedBusSpec {
    /// The cyclic grant order, one entry per steady-state send per
    /// iteration (a channel may appear multiple times).
    pub order: Vec<ChannelId>,
    /// Cycles per granted slot (address strobe etc.), typically smaller
    /// than an arbitrated bus's `arbitration_cycles`.
    pub slot_overhead_cycles: u64,
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

impl Machine {
    /// Creates an empty machine with a generous default cycle budget.
    pub fn new() -> Self {
        Machine {
            channels: Vec::new(),
            programs: Vec::new(),
            budget_cycles: u64::MAX / 4,
            trace: false,
            tracer: None,
            bus: None,
            ordered_bus: None,
        }
    }

    /// Records a [`TraceEvent`] log during the run (off by default —
    /// traces of long simulations are large).
    pub fn enable_trace(&mut self) {
        self.trace = true;
    }

    /// Attaches a [`Tracer`] probe sink: the engine emits firing
    /// begin/end, send/receive (with payload digest and occupancy), and
    /// block/unblock events through it, timestamped in **simulation
    /// cycles**. Independent of [`Machine::enable_trace`]'s in-report
    /// event log. A tracer whose [`Tracer::enabled`] is `false` costs
    /// nothing.
    pub fn set_tracer(&mut self, tracer: Arc<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Routes every transfer through a shared bus with the given
    /// arbitration cost instead of dedicated point-to-point wires.
    pub fn set_shared_bus(&mut self, bus: BusSpec) {
        self.bus = Some(bus);
        self.ordered_bus = None;
    }

    /// Routes transfers through an ordered-transactions bus: grants
    /// follow the compile-time `spec.order` cyclically, eliminating
    /// arbitration.
    pub fn set_ordered_bus(&mut self, spec: OrderedBusSpec) {
        self.ordered_bus = Some(spec);
        self.bus = None;
    }

    /// Adds a channel; returns its id.
    pub fn add_channel(&mut self, spec: ChannelSpec) -> ChannelId {
        self.channels.push(spec);
        ChannelId(self.channels.len() - 1)
    }

    /// Adds a PE running `program`; returns its id.
    pub fn add_pe(&mut self, program: Program) -> PeId {
        self.programs.push(program);
        PeId(self.programs.len() - 1)
    }

    /// Caps simulated time; exceeding it aborts with
    /// [`PlatformError::BudgetExceeded`].
    pub fn set_budget_cycles(&mut self, budget: u64) {
        self.budget_cycles = budget;
    }

    /// Decomposes the machine into its channel specs and PE programs —
    /// the inputs [`crate::run_threaded`] needs to execute the same
    /// system on OS threads.
    pub fn into_parts(self) -> (Vec<ChannelSpec>, Vec<Program>) {
        (self.channels, self.programs)
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::ZeroCapacity`] for an unusable channel;
    /// * [`PlatformError::MessageExceedsCapacity`] if a payload can never
    ///   fit its channel;
    /// * [`PlatformError::Deadlock`] if PEs block each other forever;
    /// * [`PlatformError::BudgetExceeded`] if the cycle budget runs out.
    pub fn run(self) -> Result<SimReport> {
        Engine::new(self)?.run()
    }
}

// ---------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeState {
    Ready,
    BlockedSend(ChannelId),
    BlockedRecv(ChannelId),
    /// Waiting for the ordered bus to reach this channel's slot.
    BlockedBus(ChannelId),
    Done,
}

struct ChannelState {
    spec: ChannelSpec,
    /// Bytes committed (sent or in flight) and not yet consumed.
    used_bytes: usize,
    /// Messages in flight: (arrival_cycle, payload).
    in_flight: VecDeque<(u64, Vec<u8>)>,
    /// Messages arrived and waiting for a receiver.
    available: VecDeque<Vec<u8>>,
    stats: ChannelStats,
}

struct PeRuntime {
    program: Program,
    pc: usize,
    in_prologue: bool,
    iter: u64,
    state: PeState,
    local: PeLocal,
    stats: PeStats,
    /// Cycle at which the current blocking started (for stall stats).
    blocked_since: u64,
    /// Pending payload for a blocked send.
    pending_send: Option<Vec<u8>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    PeReady(PeId),
    Arrival(ChannelId),
}

struct Engine {
    now: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    // Parallel array decoding events: (time, seq) → event payload.
    payloads: HashMap<(u64, u64), Event>,
    pes: Vec<PeRuntime>,
    channels: Vec<ChannelState>,
    budget: u64,
    /// Fatal condition detected inside the event loop.
    fault: Option<PlatformError>,
    trace_on: bool,
    trace: Vec<TraceEvent>,
    /// Probe sink, `None` when absent or disabled so the hot loop pays
    /// one pointer test per emission site.
    probe: Option<Arc<dyn Tracer>>,
    bus: Option<BusSpec>,
    ordered_bus: Option<OrderedBusSpec>,
    /// Position in the ordered-bus grant sequence.
    grant_idx: usize,
    /// Cycle at which the shared bus frees up (bus modes only).
    bus_free: u64,
}

impl Engine {
    fn new(m: Machine) -> Result<Self> {
        for (i, c) in m.channels.iter().enumerate() {
            if c.capacity_bytes == 0 {
                return Err(PlatformError::ZeroCapacity {
                    channel: ChannelId(i),
                });
            }
        }
        let channels = m
            .channels
            .into_iter()
            .map(|spec| ChannelState {
                spec,
                used_bytes: 0,
                in_flight: VecDeque::new(),
                available: VecDeque::new(),
                stats: ChannelStats::default(),
            })
            .collect();
        let pes = m
            .programs
            .into_iter()
            .map(|program| PeRuntime {
                in_prologue: !program.prologue.is_empty(),
                program,
                pc: 0,
                iter: 0,
                state: PeState::Ready,
                local: PeLocal::default(),
                stats: PeStats::default(),
                blocked_since: 0,
                pending_send: None,
            })
            .collect();
        Ok(Engine {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            payloads: HashMap::new(),
            pes,
            channels,
            budget: m.budget_cycles,
            fault: None,
            trace_on: m.trace,
            trace: Vec::new(),
            probe: m.tracer.filter(|t| t.enabled()),
            bus: m.bus,
            ordered_bus: m.ordered_bus,
            grant_idx: 0,
            bus_free: 0,
        })
    }

    fn schedule(&mut self, time: u64, ev: Event) {
        let key = (time, self.seq);
        self.queue.push(Reverse((time, self.seq, 0)));
        self.payloads.insert(key, ev);
        self.seq += 1;
    }

    fn run(mut self) -> Result<SimReport> {
        for i in 0..self.pes.len() {
            self.schedule(0, Event::PeReady(PeId(i)));
        }
        while let Some(Reverse((time, seq, _))) = self.queue.pop() {
            if time > self.budget {
                return Err(PlatformError::BudgetExceeded {
                    budget_cycles: self.budget,
                });
            }
            self.now = time;
            let ev = self.payloads.remove(&(time, seq)).expect("event payload");
            match ev {
                Event::PeReady(p) => self.step_pe(p),
                Event::Arrival(ch) => self.handle_arrival(ch),
            }
            if let Some(fault) = self.fault.take() {
                return Err(fault);
            }
        }

        let blocked: Vec<PeId> = self
            .pes
            .iter()
            .enumerate()
            .filter(|(_, pe)| pe.state != PeState::Done)
            .map(|(i, _)| PeId(i))
            .collect();
        if !blocked.is_empty() {
            let detail = self
                .pes
                .iter()
                .enumerate()
                .filter_map(|(i, pe)| {
                    let (ch, kind) = match pe.state {
                        PeState::BlockedSend(c) | PeState::BlockedBus(c) => (c, BlockKind::Send),
                        PeState::BlockedRecv(c) => (c, BlockKind::Recv),
                        _ => return None,
                    };
                    let cs = &self.channels[ch.0];
                    Some(BlockedOp {
                        pe: PeId(i),
                        channel: ch,
                        kind,
                        occupied_bytes: cs.used_bytes,
                        occupied_messages: cs.in_flight.len() + cs.available.len(),
                        capacity_bytes: cs.spec.capacity_bytes,
                        // The DES declares deadlock analytically (event
                        // queue drained), not by waiting out a timeout.
                        idle: None,
                    })
                })
                .collect();
            return Err(PlatformError::Deadlock { blocked, detail });
        }

        Ok(SimReport {
            makespan_cycles: self
                .pes
                .iter()
                .map(|p| p.stats.finish_cycle)
                .max()
                .unwrap_or(0),
            pe: self.pes.iter().map(|p| p.stats).collect(),
            channels: self.channels.iter().map(|c| c.stats).collect(),
            locals: self
                .pes
                .into_iter()
                .map(|p| PeLocalSnapshot {
                    store: p.local.store,
                    leftover_inbox: p.local.inbox.len(),
                })
                .collect(),
            trace: self.trace,
        })
    }

    fn handle_arrival(&mut self, ch: ChannelId) {
        let c = &mut self.channels[ch.0];
        while let Some(&(arrival, _)) = c.in_flight.front() {
            if arrival <= self.now {
                let (_, data) = c.in_flight.pop_front().expect("front exists");
                c.stats.messages += 1;
                c.stats.bytes += data.len() as u64;
                c.available.push_back(data);
            } else {
                break;
            }
        }
        // Wake any PE blocked receiving on this channel.
        let waiters: Vec<usize> = self
            .pes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.state == PeState::BlockedRecv(ch))
            .map(|(i, _)| i)
            .collect();
        for i in waiters {
            self.pes[i].state = PeState::Ready;
            self.pes[i].stats.recv_stall_cycles += self.now - self.pes[i].blocked_since;
            if let Some(t) = &self.probe {
                t.record(PeId(i), self.now, ProbeKind::UnblockRecv { channel: ch });
            }
            self.step_pe(PeId(i));
        }
    }

    /// Advances one PE until it blocks, finishes, or schedules a timed
    /// resume.
    fn step_pe(&mut self, id: PeId) {
        loop {
            let pe = &mut self.pes[id.0];
            if !pe.in_prologue && (pe.iter >= pe.program.iterations || pe.program.ops.is_empty()) {
                pe.state = PeState::Done;
                pe.stats.finish_cycle = pe.stats.finish_cycle.max(self.now);
                return;
            }
            let pc = pe.pc;
            let op = if pe.in_prologue {
                &mut pe.program.prologue[pc]
            } else {
                &mut pe.program.ops[pc]
            };
            match op {
                Op::Compute { label, work } => {
                    pe.local.iter = pe.iter;
                    let speed = pe.program.speed;
                    let raw = work(&mut pe.local);
                    let cycles = (raw * speed.0.max(1)).div_ceil(speed.1.max(1));
                    pe.stats.busy_cycles += cycles;
                    pe.state = PeState::Ready;
                    if self.trace_on {
                        let label = label.clone();
                        self.trace.push(TraceEvent {
                            cycle: self.now,
                            pe: id,
                            kind: TraceKind::Compute { label, cycles },
                        });
                    }
                    if let Some(t) = &self.probe {
                        // The DES knows the firing's duration up front,
                        // so both endpoints are stamped here; the PE
                        // resumes exactly at the end cycle, keeping the
                        // per-PE stream ordered.
                        let lbl = t.intern(label);
                        t.record(id, self.now, ProbeKind::FiringBegin { label: lbl });
                        t.record(id, self.now + cycles, ProbeKind::FiringEnd { label: lbl });
                    }
                    self.advance_pc(id.0);
                    if cycles > 0 {
                        let resume = self.now + cycles;
                        self.pes[id.0].stats.finish_cycle = resume;
                        self.schedule(resume, Event::PeReady(id));
                        return;
                    }
                }
                Op::Send { channel, payload } => {
                    let ch = *channel;
                    // Produce the payload once, retry delivery as needed.
                    if pe.pending_send.is_none() {
                        pe.local.iter = pe.iter;
                        pe.pending_send = Some(payload(&mut pe.local));
                    }
                    let data_len = pe.pending_send.as_ref().expect("just set").len();
                    let in_prologue = pe.in_prologue;
                    let spec = self.channels[ch.0].spec;
                    if data_len > spec.capacity_bytes {
                        // Payload sizes are dynamic, so this can only be
                        // checked at send time. Abort the whole run.
                        pe.state = PeState::BlockedSend(ch);
                        pe.blocked_since = self.now;
                        self.fault = Some(PlatformError::MessageExceedsCapacity {
                            channel: ch,
                            bytes: data_len,
                            capacity: spec.capacity_bytes,
                        });
                        return;
                    }
                    // Ordered-transactions bus: out-of-turn steady-state
                    // sends wait for their slot (prologue sends and
                    // channels outside the order bypass).
                    if let Some(ob) = &self.ordered_bus {
                        let gated = !in_prologue && !ob.order.is_empty() && ob.order.contains(&ch);
                        if gated && ob.order[self.grant_idx % ob.order.len()] != ch {
                            let pe = &mut self.pes[id.0];
                            pe.state = PeState::BlockedBus(ch);
                            pe.blocked_since = self.now;
                            if let Some(t) = &self.probe {
                                // A bus-slot wait stalls the send side.
                                t.record(id, self.now, ProbeKind::BlockSend { channel: ch });
                            }
                            return;
                        }
                    }
                    if self.channels[ch.0].used_bytes + data_len <= spec.capacity_bytes {
                        let data = self.pes[id.0].pending_send.take().expect("pending");
                        let send_busy = spec.send_overhead_cycles;
                        let wire = spec.wire_cycles(data.len());
                        let mut advanced_order = false;
                        let arrival = match (&self.bus, &self.ordered_bus) {
                            (None, None) => self.now + send_busy + wire,
                            (Some(bus), _) => {
                                // Shared bus: the transfer occupies the
                                // single interconnect after arbitration.
                                let grant = self.bus_free.max(self.now + send_busy)
                                    + bus.arbitration_cycles;
                                self.bus_free = grant + wire;
                                self.bus_free
                            }
                            (None, Some(ob)) => {
                                let gated =
                                    !in_prologue && !ob.order.is_empty() && ob.order.contains(&ch);
                                let slot = ob.slot_overhead_cycles;
                                if gated {
                                    advanced_order = true;
                                    let grant = self.bus_free.max(self.now + send_busy) + slot;
                                    self.bus_free = grant + wire;
                                    self.bus_free
                                } else {
                                    self.now + send_busy + wire
                                }
                            }
                        };
                        if advanced_order {
                            self.grant_idx += 1;
                        }
                        if self.trace_on {
                            self.trace.push(TraceEvent {
                                cycle: self.now,
                                pe: id,
                                kind: TraceKind::Send {
                                    channel: ch,
                                    bytes: data.len(),
                                },
                            });
                        }
                        let c = &mut self.channels[ch.0];
                        c.used_bytes += data.len();
                        c.stats.peak_bytes = c.stats.peak_bytes.max(c.used_bytes as u64);
                        if let Some(t) = &self.probe {
                            t.record(
                                id,
                                self.now,
                                ProbeKind::Send {
                                    channel: ch,
                                    bytes: data.len() as u32,
                                    digest: payload_digest(&data),
                                    occ_bytes: c.used_bytes as u32,
                                    occ_msgs: (c.in_flight.len() + c.available.len() + 1) as u32,
                                },
                            );
                        }
                        c.in_flight.push_back((arrival, data));
                        self.schedule(arrival, Event::Arrival(ch));
                        self.advance_pc(id.0);
                        let pe = &mut self.pes[id.0];
                        pe.state = PeState::Ready;
                        if advanced_order {
                            self.wake_bus_waiters();
                        }
                        if send_busy > 0 {
                            let resume = self.now + send_busy;
                            self.pes[id.0].stats.finish_cycle = resume;
                            self.schedule(resume, Event::PeReady(id));
                            return;
                        }
                    } else {
                        pe.state = PeState::BlockedSend(ch);
                        pe.blocked_since = self.now;
                        if let Some(t) = &self.probe {
                            t.record(id, self.now, ProbeKind::BlockSend { channel: ch });
                        }
                        return;
                    }
                }
                Op::WaitUntil { target } => {
                    let release = target(pe.iter);
                    self.advance_pc(id.0);
                    if release > self.now {
                        let pe = &mut self.pes[id.0];
                        pe.stats.wait_cycles += release - self.now;
                        pe.state = PeState::Ready;
                        pe.stats.finish_cycle = pe.stats.finish_cycle.max(release);
                        self.schedule(release, Event::PeReady(id));
                        return;
                    }
                }
                Op::Recv { channel } => {
                    let ch = *channel;
                    if let Some(data) = self.channels[ch.0].available.pop_front() {
                        let spec = self.channels[ch.0].spec;
                        self.channels[ch.0].used_bytes -= data.len();
                        if self.trace_on {
                            self.trace.push(TraceEvent {
                                cycle: self.now,
                                pe: id,
                                kind: TraceKind::Recv {
                                    channel: ch,
                                    bytes: data.len(),
                                },
                            });
                        }
                        if let Some(t) = &self.probe {
                            let c = &self.channels[ch.0];
                            t.record(
                                id,
                                self.now,
                                ProbeKind::Recv {
                                    channel: ch,
                                    bytes: data.len() as u32,
                                    digest: payload_digest(&data),
                                    occ_bytes: c.used_bytes as u32,
                                    occ_msgs: (c.in_flight.len() + c.available.len()) as u32,
                                },
                            );
                        }
                        let pe = &mut self.pes[id.0];
                        pe.local.inbox.push_back((ch, Token::Owned(data)));
                        pe.state = PeState::Ready;
                        self.advance_pc(id.0);
                        // Freed space: wake blocked senders on this channel.
                        self.wake_senders(ch);
                        let recv_busy = spec.recv_overhead_cycles;
                        if recv_busy > 0 {
                            let resume = self.now + recv_busy;
                            self.pes[id.0].stats.finish_cycle = resume;
                            self.schedule(resume, Event::PeReady(id));
                            return;
                        }
                    } else {
                        pe.state = PeState::BlockedRecv(ch);
                        pe.blocked_since = self.now;
                        if let Some(t) = &self.probe {
                            t.record(id, self.now, ProbeKind::BlockRecv { channel: ch });
                        }
                        return;
                    }
                }
            }
        }
    }

    fn advance_pc(&mut self, i: usize) {
        let pe = &mut self.pes[i];
        pe.pc += 1;
        if pe.in_prologue {
            if pe.pc >= pe.program.prologue.len() {
                pe.in_prologue = false;
                pe.pc = 0;
            }
        } else if pe.pc >= pe.program.ops.len() {
            pe.pc = 0;
            pe.iter += 1;
        }
    }

    /// Re-steps PEs waiting for their ordered-bus slot; the one whose
    /// channel matches the new grant position proceeds.
    fn wake_bus_waiters(&mut self) {
        let waiters: Vec<usize> = self
            .pes
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.state, PeState::BlockedBus(_)))
            .map(|(i, _)| i)
            .collect();
        for i in waiters {
            let ch = match self.pes[i].state {
                PeState::BlockedBus(c) => c,
                _ => unreachable!("filtered to BlockedBus"),
            };
            self.pes[i].state = PeState::Ready;
            self.pes[i].stats.send_stall_cycles += self.now - self.pes[i].blocked_since;
            if let Some(t) = &self.probe {
                t.record(PeId(i), self.now, ProbeKind::UnblockSend { channel: ch });
            }
            self.step_pe(PeId(i));
        }
    }

    fn wake_senders(&mut self, ch: ChannelId) {
        let waiters: Vec<usize> = self
            .pes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.state == PeState::BlockedSend(ch))
            .map(|(i, _)| i)
            .collect();
        for i in waiters {
            self.pes[i].state = PeState::Ready;
            self.pes[i].stats.send_stall_cycles += self.now - self.pes[i].blocked_since;
            if let Some(t) = &self.probe {
                t.record(PeId(i), self.now, ProbeKind::UnblockSend { channel: ch });
            }
            self.step_pe(PeId(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_channel() -> ChannelSpec {
        ChannelSpec {
            capacity_bytes: 8,
            word_bytes: 4,
            cycles_per_word: 1,
            send_overhead_cycles: 1,
            recv_overhead_cycles: 1,
            max_message_bytes: 0,
        }
    }

    #[test]
    fn single_pe_compute_accumulates_time() {
        let mut m = Machine::new();
        m.add_pe(Program::new(
            vec![Op::Compute {
                label: "work".into(),
                work: Box::new(|_| 25),
            }],
            4,
        ));
        let report = m.run().unwrap();
        assert_eq!(report.makespan_cycles, 100);
        assert_eq!(report.pe[0].busy_cycles, 100);
    }

    #[test]
    fn producer_consumer_delivers_payloads() {
        let mut m = Machine::new();
        let ch = m.add_channel(ChannelSpec::default());
        m.add_pe(Program::new(
            vec![Op::Send {
                channel: ch,
                payload: Box::new(|l| vec![l.iter as u8; 4]),
            }],
            3,
        ));
        m.add_pe(Program::new(
            vec![
                Op::Recv { channel: ch },
                Op::Compute {
                    label: "check".into(),
                    work: Box::new(move |l| {
                        let data = l.take_from(ChannelId(0)).expect("payload");
                        let key = format!("got{}", l.iter);
                        l.store.insert(key, data);
                        1
                    }),
                },
            ],
            3,
        ));
        let report = m.run().unwrap();
        assert_eq!(report.channels[0].messages, 3);
        assert_eq!(report.channels[0].bytes, 12);
        let store = &report.locals[1].store;
        assert_eq!(store["got0"], vec![0, 0, 0, 0]);
        assert_eq!(store["got2"], vec![2, 2, 2, 2]);
        assert_eq!(report.locals[1].leftover_inbox, 0);
    }

    #[test]
    fn full_fifo_blocks_sender() {
        let mut m = Machine::new();
        let ch = m.add_channel(tight_channel()); // 8 B capacity
                                                 // Sender pushes 8 B messages back-to-back; receiver consumes
                                                 // slowly (100-cycle compute between receives).
        m.add_pe(Program::new(
            vec![Op::Send {
                channel: ch,
                payload: Box::new(|_| vec![0u8; 8]),
            }],
            4,
        ));
        m.add_pe(Program::new(
            vec![
                Op::Recv { channel: ch },
                Op::Compute {
                    label: "slow".into(),
                    work: Box::new(|_| 100),
                },
            ],
            4,
        ));
        let report = m.run().unwrap();
        assert!(
            report.pe[0].send_stall_cycles > 0,
            "sender must have stalled"
        );
        assert_eq!(report.channels[0].messages, 4);
    }

    #[test]
    fn empty_fifo_blocks_receiver() {
        let mut m = Machine::new();
        let ch = m.add_channel(ChannelSpec::default());
        m.add_pe(Program::new(
            vec![
                Op::Compute {
                    label: "slow-src".into(),
                    work: Box::new(|_| 500),
                },
                Op::Send {
                    channel: ch,
                    payload: Box::new(|_| vec![1, 2, 3, 4]),
                },
            ],
            1,
        ));
        m.add_pe(Program::new(vec![Op::Recv { channel: ch }], 1));
        let report = m.run().unwrap();
        assert!(report.pe[1].recv_stall_cycles >= 500);
    }

    #[test]
    fn deadlock_detected() {
        // Two PEs each receive before sending → classic deadlock.
        let mut m = Machine::new();
        let ab = m.add_channel(ChannelSpec::default());
        let ba = m.add_channel(ChannelSpec::default());
        m.add_pe(Program::new(
            vec![
                Op::Recv { channel: ba },
                Op::Send {
                    channel: ab,
                    payload: Box::new(|_| vec![0; 4]),
                },
            ],
            1,
        ));
        m.add_pe(Program::new(
            vec![
                Op::Recv { channel: ab },
                Op::Send {
                    channel: ba,
                    payload: Box::new(|_| vec![0; 4]),
                },
            ],
            1,
        ));
        match m.run() {
            Err(PlatformError::Deadlock { blocked, detail }) => {
                assert_eq!(blocked.len(), 2);
                // Both PEs are named with the channel they starve on.
                assert_eq!(detail.len(), 2);
                let msg = PlatformError::Deadlock { blocked, detail }.to_string();
                assert!(msg.contains("ch0") && msg.contains("ch1"), "{msg}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn zero_capacity_rejected() {
        let mut m = Machine::new();
        let bad = ChannelSpec {
            capacity_bytes: 0,
            ..ChannelSpec::default()
        };
        m.add_channel(bad);
        assert!(matches!(m.run(), Err(PlatformError::ZeroCapacity { .. })));
    }

    #[test]
    fn wire_latency_scales_with_message_size() {
        let spec = ChannelSpec::default(); // 4 B words, 1 cycle/word
        assert_eq!(spec.wire_cycles(4), 1);
        assert_eq!(spec.wire_cycles(5), 2);
        assert_eq!(spec.wire_cycles(400), 100);
        assert_eq!(spec.wire_cycles(0), 0);
    }

    #[test]
    fn makespan_in_microseconds() {
        let mut m = Machine::new();
        m.add_pe(Program::new(
            vec![Op::Compute {
                label: "w".into(),
                work: Box::new(|_| 100),
            }],
            1,
        ));
        let report = m.run().unwrap();
        let us = report.makespan_us(100.0); // 100 MHz → 1 µs per 100 cycles
        assert!((us - 1.0).abs() < 1e-9);
    }

    #[test]
    fn budget_exceeded_detected() {
        let mut m = Machine::new();
        m.add_pe(Program::new(
            vec![Op::Compute {
                label: "w".into(),
                work: Box::new(|_| 1000),
            }],
            10,
        ));
        m.set_budget_cycles(500);
        assert!(matches!(m.run(), Err(PlatformError::BudgetExceeded { .. })));
    }

    #[test]
    fn two_hop_pipeline_composes() {
        let mut m = Machine::new();
        let c1 = m.add_channel(ChannelSpec::default());
        let c2 = m.add_channel(ChannelSpec::default());
        m.add_pe(Program::new(
            vec![Op::Send {
                channel: c1,
                payload: Box::new(|l| vec![l.iter as u8]),
            }],
            5,
        ));
        m.add_pe(Program::new(
            vec![
                Op::Recv { channel: c1 },
                Op::Compute {
                    label: "double".into(),
                    work: Box::new(move |l| {
                        let v = l.take_from(ChannelId(0)).expect("data");
                        l.store.insert("fwd".into(), vec![v[0] * 2]);
                        5
                    }),
                },
                Op::Send {
                    channel: c2,
                    payload: Box::new(|l| l.store.get("fwd").cloned().expect("set")),
                },
            ],
            5,
        ));
        m.add_pe(Program::new(
            vec![
                Op::Recv { channel: c2 },
                Op::Compute {
                    label: "sink".into(),
                    work: Box::new(move |l| {
                        let v = l.take_from(ChannelId(1)).expect("data");
                        let mut acc = l.store.remove("acc").unwrap_or_default();
                        acc.push(v[0]);
                        l.store.insert("acc".into(), acc);
                        1
                    }),
                },
            ],
            5,
        ));
        let report = m.run().unwrap();
        assert_eq!(report.locals[2].store["acc"], vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn speed_scaling_slows_software_pes() {
        let mut m = Machine::new();
        m.add_pe(Program::new(
            vec![Op::Compute {
                label: "hw".into(),
                work: Box::new(|_| 100),
            }],
            4,
        ));
        m.add_pe(
            Program::new(
                vec![Op::Compute {
                    label: "sw".into(),
                    work: Box::new(|_| 100),
                }],
                4,
            )
            .with_speed(3, 1),
        );
        let report = m.run().unwrap();
        assert_eq!(report.pe[0].busy_cycles, 400);
        assert_eq!(report.pe[1].busy_cycles, 1200, "software PE runs 3× slower");
        assert_eq!(report.makespan_cycles, 1200);
    }

    #[test]
    fn speed_scaling_can_also_accelerate() {
        let mut m = Machine::new();
        m.add_pe(
            Program::new(
                vec![Op::Compute {
                    label: "fast".into(),
                    work: Box::new(|_| 99),
                }],
                1,
            )
            .with_speed(1, 2),
        );
        let report = m.run().unwrap();
        assert_eq!(report.pe[0].busy_cycles, 50, "ceil(99/2)");
    }

    #[test]
    fn engine_is_deterministic() {
        let build = || {
            let mut m = Machine::new();
            let c1 = m.add_channel(ChannelSpec::default());
            let c2 = m.add_channel(tight_channel());
            m.add_pe(Program::new(
                vec![
                    Op::Compute {
                        label: "w".into(),
                        work: Box::new(|l| 3 + l.iter % 7),
                    },
                    Op::Send {
                        channel: c1,
                        payload: Box::new(|l| vec![l.iter as u8; 8]),
                    },
                ],
                20,
            ));
            m.add_pe(Program::new(
                vec![
                    Op::Recv { channel: c1 },
                    Op::Send {
                        channel: c2,
                        payload: Box::new(|_| vec![9; 4]),
                    },
                ],
                20,
            ));
            m.add_pe(Program::new(vec![Op::Recv { channel: c2 }], 20));
            m
        };
        let a = build().run().unwrap();
        let b = build().run().unwrap();
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.pe, b.pe);
        assert_eq!(a.channels, b.channels);
    }

    #[test]
    fn trace_records_compute_send_recv() {
        let mut m = Machine::new();
        m.enable_trace();
        let ch = m.add_channel(ChannelSpec::default());
        m.add_pe(Program::new(
            vec![
                Op::Compute {
                    label: "produce".into(),
                    work: Box::new(|_| 5),
                },
                Op::Send {
                    channel: ch,
                    payload: Box::new(|_| vec![0; 8]),
                },
            ],
            2,
        ));
        m.add_pe(Program::new(vec![Op::Recv { channel: ch }], 2));
        let report = m.run().unwrap();
        let computes = report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Compute { .. }))
            .count();
        let sends = report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Send { .. }))
            .count();
        let recvs = report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Recv { .. }))
            .count();
        assert_eq!((computes, sends, recvs), (2, 2, 2));
        let gantt = report.render_gantt();
        assert!(gantt.contains("pe0:"));
        assert!(gantt.contains("produce"));
        assert!(gantt.contains("send 8 B"));
    }

    #[test]
    fn trace_off_by_default() {
        let mut m = Machine::new();
        m.add_pe(Program::new(
            vec![Op::Compute {
                label: "w".into(),
                work: Box::new(|_| 1),
            }],
            3,
        ));
        let report = m.run().unwrap();
        assert!(report.trace.is_empty());
        assert!(report.render_gantt().is_empty());
    }

    #[test]
    fn peak_bytes_tracks_high_water_mark() {
        let mut m = Machine::new();
        let ch = m.add_channel(ChannelSpec::default());
        // Producer bursts 3 × 16 B before the consumer wakes up.
        m.add_pe(Program::new(
            vec![Op::Send {
                channel: ch,
                payload: Box::new(|_| vec![0; 16]),
            }],
            3,
        ));
        m.add_pe(Program::new(
            vec![
                Op::Compute {
                    label: "late".into(),
                    work: Box::new(|_| 1000),
                },
                Op::Recv { channel: ch },
            ],
            3,
        ));
        let report = m.run().unwrap();
        assert_eq!(report.channels[0].peak_bytes, 48);
    }

    #[test]
    fn shared_bus_serializes_transfers() {
        // Two disjoint producer→consumer pairs: point-to-point they run
        // fully parallel; on a shared bus the wire times serialize.
        let run = |bus: Option<BusSpec>| {
            let mut m = Machine::new();
            if let Some(b) = bus {
                m.set_shared_bus(b);
            }
            for _ in 0..2 {
                let ch = m.add_channel(ChannelSpec::default());
                m.add_pe(Program::new(
                    vec![Op::Send {
                        channel: ch,
                        payload: Box::new(|_| vec![0; 4000]),
                    }],
                    4,
                ));
                m.add_pe(Program::new(vec![Op::Recv { channel: ch }], 4));
            }
            m.run().unwrap().makespan_cycles
        };
        let p2p = run(None);
        let bus = run(Some(BusSpec {
            arbitration_cycles: 4,
        }));
        assert!(
            bus > p2p + 500,
            "bus contention must slow disjoint streams: p2p={p2p} bus={bus}"
        );
    }

    #[test]
    fn ordered_bus_enforces_grant_order() {
        // Two producers; the order says ch1 goes first each round. PE0
        // (ch0) is ready immediately but must wait for PE1's send.
        let mut m = Machine::new();
        let ch0 = m.add_channel(ChannelSpec::default());
        let ch1 = m.add_channel(ChannelSpec::default());
        m.set_ordered_bus(OrderedBusSpec {
            order: vec![ch1, ch0],
            slot_overhead_cycles: 1,
        });
        m.add_pe(Program::new(
            vec![Op::Send {
                channel: ch0,
                payload: Box::new(|_| vec![0; 4]),
            }],
            3,
        ));
        m.add_pe(Program::new(
            vec![
                Op::Compute {
                    label: "slow".into(),
                    work: Box::new(|_| 200),
                },
                Op::Send {
                    channel: ch1,
                    payload: Box::new(|_| vec![0; 4]),
                },
            ],
            3,
        ));
        m.add_pe(Program::new(vec![Op::Recv { channel: ch0 }], 3));
        m.add_pe(Program::new(vec![Op::Recv { channel: ch1 }], 3));
        let report = m.run().unwrap();
        // PE0 stalls waiting for its slots behind PE1's slow compute.
        assert!(report.pe[0].send_stall_cycles >= 200);
        assert_eq!(report.channels[0].messages, 3);
        assert_eq!(report.channels[1].messages, 3);
    }

    #[test]
    fn ordered_bus_bypasses_unlisted_channels() {
        let mut m = Machine::new();
        let listed = m.add_channel(ChannelSpec::default());
        let unlisted = m.add_channel(ChannelSpec::default());
        m.set_ordered_bus(OrderedBusSpec {
            order: vec![listed],
            slot_overhead_cycles: 1,
        });
        m.add_pe(Program::new(
            vec![
                Op::Send {
                    channel: unlisted,
                    payload: Box::new(|_| vec![0; 4]),
                },
                Op::Send {
                    channel: listed,
                    payload: Box::new(|_| vec![0; 4]),
                },
            ],
            2,
        ));
        m.add_pe(Program::new(
            vec![Op::Recv { channel: unlisted }, Op::Recv { channel: listed }],
            2,
        ));
        let report = m.run().unwrap();
        assert_eq!(report.total_messages(), 4);
    }

    #[test]
    fn stats_account_busy_and_stall_separately() {
        let mut m = Machine::new();
        let ch = m.add_channel(ChannelSpec::default());
        m.add_pe(Program::new(
            vec![
                Op::Compute {
                    label: "w".into(),
                    work: Box::new(|_| 10),
                },
                Op::Send {
                    channel: ch,
                    payload: Box::new(|_| vec![0; 4]),
                },
            ],
            2,
        ));
        m.add_pe(Program::new(vec![Op::Recv { channel: ch }], 2));
        let report = m.run().unwrap();
        assert_eq!(report.pe[0].busy_cycles, 20);
        assert!(report.pe[1].recv_stall_cycles >= 10);
    }
}

//! Supervised execution: framed channels, bounded retry, degradation
//! and checkpoint/restart for the OS-thread runner.
//!
//! The DATE 2008 resynchronization result assumes IPC messages arrive
//! intact and on time. This module is what the threaded runner adds on
//! top of the PRUNE-style discipline of *declared and bounded*
//! deviations so that assumption can be dropped without giving up the
//! static guarantees:
//!
//! * **Framing** — every supervised message is wrapped in an 8-byte
//!   header (`[seq: u32 LE][crc32: u32 LE]`) so the receiver can detect
//!   corruption (CRC mismatch), loss and reordering (sequence gap) and
//!   duplication (stale sequence). The channel's eq. (1)/(2) numbers
//!   are inflated by exactly one header per packed-token slot
//!   ([`framed_spec`]), and all probe events report *logical* payload
//!   sizes and occupancies, so the traced invariants stay the ones the
//!   analyzer derived.
//! * **Retry** — transient failures (injected faults, per-op deadline
//!   misses) are retried up to [`SupervisionPolicy::max_retries`] times
//!   with exponential backoff. A dropped or corrupted frame is simply
//!   retransmitted under the *same* sequence number; the receiver
//!   discards CRC-failed frames and stale duplicates, which makes the
//!   retransmission protocol idempotent without a reverse channel.
//! * **Degradation** — when a token cannot be recovered inside the
//!   retry budget, [`DegradePolicy`] picks the UBS-style fallback:
//!   substitute a neutral (zero) token of the last observed size, skip
//!   it, or fail the run with an error naming the edge.
//! * **Checkpoint / restart** — each PE snapshots its functional state
//!   (store + inbox) at every iteration boundary. A panicking compute
//!   closure rolls the iteration back and replays it: receives are
//!   replayed from a local log (the transport is not touched again) and
//!   already-transmitted sends are not re-sent, so a restart can never
//!   push channel occupancy past the eq. (2) bound. Replay assumes
//!   compute and payload closures are deterministic functions of
//!   [`PeLocal`].
//!
//! Every fault-handling decision is emitted through the [`Tracer`] as a
//! `FaultRetry` / `FaultCorrupt` / `FaultDegraded` / `FaultRestart`
//! probe event; the `spi-trace` conformance checker holds those events
//! against the declared budgets (diagnostics SPI090–SPI095).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::error::{BlockKind, PlatformError, Result};
use crate::pool::Token;
use crate::runner::{intern_labels, ThreadedPeResult};
use crate::sim::{ChannelId, ChannelSpec, Op, PeId, PeLocal, Program};
use crate::trace::{payload_digest, ProbeKind, Tracer};
use crate::transport::{Transport, TransportError};

/// Bytes of supervision header prepended to every framed message:
/// `[seq: u32 LE][crc32: u32 LE]`.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Longest single exponential-backoff sleep between retries.
const MAX_BACKOFF: Duration = Duration::from_millis(100);

/// What a supervised receiver does with a token it cannot recover
/// within the retry budget (and with the hole left by a lost token).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Abort the run with an error naming the faulted edge. The
    /// strictest policy — used when byte-identical output is required.
    #[default]
    Fail,
    /// Skip the missing token (UBS skip semantics): the receive
    /// delivers the next token that actually arrived, or an empty
    /// payload when the stream ran dry.
    Skip,
    /// Substitute a neutral token: zero-filled, sized like the last
    /// token seen on the channel (tokens have a fixed packed size
    /// c(e), so the substitute is shape-correct).
    Substitute,
}

/// Bounded-recovery configuration for [`crate::ThreadedRunner`].
///
/// All bounds are *declared*: the trace-conformance checker verifies
/// the observed fault handling stayed inside them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionPolicy {
    /// Deadline for one blocking channel-operation attempt. Derive it
    /// from the predicted makespan (`sched::predicted`) when one is
    /// available: no single token should take longer than the whole
    /// schedule was predicted to.
    pub op_deadline: Duration,
    /// Retries after the first failed attempt before degrading.
    pub max_retries: u32,
    /// Base of the exponential backoff between retries
    /// (`base · 2^(attempt−1)`, capped at 100 ms). Deadline-miss
    /// retries skip the backoff — the deadline already waited.
    pub backoff_base: Duration,
    /// What to do with a token the retry budget could not recover.
    pub degrade: DegradePolicy,
    /// Checkpoint restarts allowed per PE before a panic is fatal.
    pub max_restarts: u32,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        SupervisionPolicy {
            op_deadline: Duration::from_secs(2),
            max_retries: 3,
            backoff_base: Duration::from_micros(500),
            degrade: DegradePolicy::Fail,
            max_restarts: 1,
        }
    }
}

impl SupervisionPolicy {
    /// The "retry" policy: `retries` attempts beyond the first, strict
    /// [`DegradePolicy::Fail`] degradation — recover exactly or stop.
    pub fn retry(retries: u32) -> Self {
        SupervisionPolicy {
            max_retries: retries,
            ..SupervisionPolicy::default()
        }
    }

    /// Overrides the per-attempt deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.op_deadline = deadline;
        self
    }

    /// Overrides the degradation policy.
    #[must_use]
    pub fn with_degrade(mut self, degrade: DegradePolicy) -> Self {
        self.degrade = degrade;
        self
    }

    /// Overrides the restart budget.
    #[must_use]
    pub fn with_restarts(mut self, restarts: u32) -> Self {
        self.max_restarts = restarts;
        self
    }
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// Slice-by-16 lookup tables: `t[k][b]` is the CRC contribution of
/// byte `b` positioned `k` bytes from the end of a 16-byte block.
fn crc_tables() -> &'static [[u32; 256]; 16] {
    static TABLES: std::sync::OnceLock<Box<[[u32; 256]; 16]>> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 16]);
        for i in 0..256 {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            t[0][i] = c;
        }
        for i in 0..256 {
            let mut c = t[0][i];
            for k in 1..16 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

/// The supervision-frame checksum.
///
/// Fault-free supervision overhead is capped at 5%, and for the
/// 512-byte frames of a typical audio pipeline a naive byte-at-a-time
/// CRC (serial ~5-cycle-per-byte dependency chain) puts the checksum —
/// not the signal processing — on the critical path. Two fast paths
/// keep it off:
///
/// * x86-64 with SSE4.2: the hardware `crc32` instruction (CRC-32C,
///   Castagnoli polynomial) at ~0.07 ns/byte with **no** lookup-table
///   cache footprint next to the application's working set;
/// * elsewhere: slice-by-16 software CRC-32 (IEEE 802.3, reflected) at
///   ~0.5 ns/byte.
///
/// The polynomial choice is invisible outside the process: frames are
/// produced and verified by PEs of the same run, never persisted or
/// exchanged across machines, so both ends always use the same path.
pub fn crc32(bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::is_x86_feature_detected!("sse4.2") {
        // SAFETY: gated on runtime SSE4.2 detection.
        #[allow(unsafe_code)]
        return unsafe { crc32c_hw(bytes) };
    }
    crc32_sw(bytes)
}

/// Hardware CRC-32C: 8 bytes per 3-cycle `crc32` instruction.
///
/// Safety: callers must ensure SSE4.2 is available (runtime-detected
/// in [`crc32`]); the body itself touches only the `bytes` slice.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
#[allow(unsafe_code)]
unsafe fn crc32c_hw(bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut c: u64 = 0xFFFF_FFFF;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        c = _mm_crc32_u64(c, u64::from_le_bytes(ch.try_into().expect("8 bytes")));
    }
    let mut c = c as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    !c
}

/// Software CRC-32 (IEEE 802.3 polynomial, reflected), slice-by-16.
fn crc32_sw(bytes: &[u8]) -> u32 {
    let t = crc_tables();
    let mut c = !0u32;
    let mut blocks = bytes.chunks_exact(16);
    for b in &mut blocks {
        let w0 = u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")) ^ c;
        let w1 = u32::from_le_bytes(b[4..8].try_into().expect("4 bytes"));
        let w2 = u32::from_le_bytes(b[8..12].try_into().expect("4 bytes"));
        let w3 = u32::from_le_bytes(b[12..16].try_into().expect("4 bytes"));
        c = t[15][(w0 & 0xFF) as usize]
            ^ t[14][((w0 >> 8) & 0xFF) as usize]
            ^ t[13][((w0 >> 16) & 0xFF) as usize]
            ^ t[12][(w0 >> 24) as usize]
            ^ t[11][(w1 & 0xFF) as usize]
            ^ t[10][((w1 >> 8) & 0xFF) as usize]
            ^ t[9][((w1 >> 16) & 0xFF) as usize]
            ^ t[8][(w1 >> 24) as usize]
            ^ t[7][(w2 & 0xFF) as usize]
            ^ t[6][((w2 >> 8) & 0xFF) as usize]
            ^ t[5][((w2 >> 16) & 0xFF) as usize]
            ^ t[4][(w2 >> 24) as usize]
            ^ t[3][(w3 & 0xFF) as usize]
            ^ t[2][((w3 >> 8) & 0xFF) as usize]
            ^ t[1][((w3 >> 16) & 0xFF) as usize]
            ^ t[0][(w3 >> 24) as usize];
    }
    for &b in blocks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Why a received frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the 8-byte header.
    Truncated,
    /// Payload CRC did not match the header.
    BadCrc,
}

/// Wraps `payload` in a supervision frame.
#[cfg(test)]
pub(crate) fn encode_frame(seq: u32, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::new();
    encode_frame_into(&mut frame, seq, payload);
    frame
}

/// [`encode_frame`] into a reused buffer: the hot send path frames one
/// message per iteration per channel, so after the first message the
/// per-channel scratch buffer makes framing allocation-free.
pub fn encode_frame_into(frame: &mut Vec<u8>, seq: u32, payload: &[u8]) {
    frame.clear();
    frame.reserve(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
}

/// Splits and verifies a supervision frame, returning `(seq, payload)`.
pub fn decode_frame(frame: &[u8]) -> std::result::Result<(u32, &[u8]), FrameError> {
    if frame.len() < FRAME_HEADER_BYTES {
        return Err(FrameError::Truncated);
    }
    let seq = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
    let payload = &frame[FRAME_HEADER_BYTES..];
    if crc32(payload) != crc {
        return Err(FrameError::BadCrc);
    }
    Ok((seq, payload))
}

/// The physical channel spec backing a supervised logical spec: one
/// frame header per packed-token slot is added to both the per-message
/// bound and the capacity, so the slot *count* — the eq. (2) token
/// bound `Γ + delay(e)` — is unchanged and a supervised run can never
/// hold more tokens in flight than the unsupervised bound allows.
///
/// Public because external endpoint builders — `spi-net` sizing a
/// socket channel's credit window for a supervised distributed run —
/// must apply the same inflation before handing endpoints to
/// [`crate::ThreadedRunner::run_with_endpoints`].
pub fn framed_spec(spec: &ChannelSpec) -> ChannelSpec {
    let mut s = *spec;
    if let Some(slots) = spec.capacity_bytes.checked_div(spec.max_message_bytes) {
        let slots = slots.max(1);
        s.max_message_bytes = spec.max_message_bytes + FRAME_HEADER_BYTES;
        s.capacity_bytes = spec.capacity_bytes + slots * FRAME_HEADER_BYTES;
    } else {
        // No declared per-message bound: treat the whole channel as one
        // message (the ring serializes to a single slot; the locked
        // queue keeps byte-accurate admission).
        s.max_message_bytes = spec.capacity_bytes + FRAME_HEADER_BYTES;
        s.capacity_bytes = spec.capacity_bytes + FRAME_HEADER_BYTES;
    }
    s
}

/// `(occ_bytes, occ_msgs)` of a framed endpoint with the header bytes
/// stripped — the logical numbers probe events carry.
fn logical_snapshot(ep: &dyn Transport) -> (u32, u32) {
    let (b, m) = ep.snapshot();
    (b.saturating_sub(m * FRAME_HEADER_BYTES) as u32, m as u32)
}

// ---------------------------------------------------------------------
// Supervised executor
// ---------------------------------------------------------------------

/// Receiver/sender-side sequencing state for one channel, owned by the
/// single PE thread that uses that side (edges are SPSC).
#[derive(Default, Clone)]
struct ChanState {
    /// Next sequence number to transmit.
    send_seq: u32,
    /// Next sequence number expected by the receiver.
    recv_seq: u32,
    /// An out-of-order frame held back for the next receive.
    pending: Option<(u32, Vec<u8>)>,
    /// Payload size of the last delivered token (substitute sizing).
    last_len: usize,
    /// When the channel last completed an operation for this PE.
    last_ok: Option<Instant>,
    /// Reused send-side framing buffer (capacity persists per channel).
    frame_buf: Vec<u8>,
}

/// Per-PE supervision context (one per thread).
struct PeCtx<'a> {
    pe: PeId,
    policy: SupervisionPolicy,
    specs: &'a [ChannelSpec],
    endpoints: &'a [Box<dyn Transport>],
    probe: Option<&'a dyn Tracer>,
    fault: &'a Mutex<Option<PlatformError>>,
    started: Instant,
    chans: Vec<ChanState>,
    restarts: u32,
}

impl PeCtx<'_> {
    fn record(&self, err: PlatformError) {
        let mut slot = self.fault.lock().expect("fault lock");
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    fn emit(&self, kind: ProbeKind) {
        if let Some(t) = self.probe {
            t.record(self.pe, t.now(), kind);
        }
    }

    fn idle_since(&self, ch: usize) -> Duration {
        let anchor = self.chans[ch].last_ok.unwrap_or(self.started);
        crate::shim::now().duration_since(anchor)
    }

    fn backoff(&self, attempt: u32) {
        let base = self.policy.backoff_base;
        if base.is_zero() {
            return;
        }
        let exp = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        crate::shim::sleep(exp.min(MAX_BACKOFF));
    }

    /// Transmits one logical token; returns `false` when the PE must
    /// abort (a terminal fault was recorded).
    fn sup_send(&mut self, ch: ChannelId, data: &[u8]) -> bool {
        let seq = self.chans[ch.0].send_seq;
        let mut frame = std::mem::take(&mut self.chans[ch.0].frame_buf);
        encode_frame_into(&mut frame, seq, data);
        let ok = self.send_framed(ch, seq, &frame, data);
        self.chans[ch.0].frame_buf = frame;
        ok
    }

    /// The retry loop behind [`Self::sup_send`], over an already-framed
    /// message.
    fn send_framed(&mut self, ch: ChannelId, seq: u32, frame: &[u8], data: &[u8]) -> bool {
        let ep = &self.endpoints[ch.0];
        let mut attempt: u32 = 0;
        loop {
            match ep.send(frame, self.policy.op_deadline) {
                Ok(()) => {
                    let c = &mut self.chans[ch.0];
                    c.send_seq = seq.wrapping_add(1);
                    c.last_ok = Some(crate::shim::now());
                    if self.probe.is_some() {
                        let (occ_b, occ_m) = logical_snapshot(ep.as_ref());
                        self.emit(ProbeKind::Send {
                            channel: ch,
                            bytes: data.len() as u32,
                            digest: payload_digest(data),
                            occ_bytes: occ_b,
                            occ_msgs: occ_m,
                        });
                    }
                    return true;
                }
                // Declared injections and deadline misses are
                // transient: the frame is retransmitted under the same
                // sequence number (receivers deduplicate), so recovery
                // is idempotent.
                Err(e @ (TransportError::Injected { .. } | TransportError::Timeout { .. })) => {
                    attempt += 1;
                    if attempt > self.policy.max_retries {
                        match self.policy.degrade {
                            DegradePolicy::Fail => {
                                self.record(PlatformError::RetryBudgetExhausted {
                                    pe: self.pe,
                                    channel: ch,
                                    attempts: attempt,
                                    kind: BlockKind::Send,
                                    idle: self.idle_since(ch.0),
                                });
                                return false;
                            }
                            // Skip the token on the sender side: the
                            // receiver sees the sequence gap and
                            // degrades under its own policy.
                            DegradePolicy::Skip | DegradePolicy::Substitute => {
                                self.chans[ch.0].send_seq = seq.wrapping_add(1);
                                return true;
                            }
                        }
                    }
                    self.emit(ProbeKind::FaultRetry {
                        channel: ch,
                        attempt,
                    });
                    // A deadline miss already waited out the op
                    // deadline; only immediate failures back off.
                    if matches!(e, TransportError::Injected { .. }) {
                        self.backoff(attempt);
                    }
                }
                Err(e) => {
                    self.record(map_terminal(ch, data.len(), &e, self.specs));
                    return false;
                }
            }
        }
    }

    /// Receives one logical token, or `None` when the PE must abort.
    /// Pooled leases flow through unchanged: the CRC check reads the
    /// frame in place over the pool slot, and the verified header is
    /// stripped by a pointer bump, not a copy.
    fn sup_recv(&mut self, ch: ChannelId) -> Option<Token> {
        // An out-of-order frame buffered by an earlier gap is consumed
        // before the transport is touched again.
        if let Some((seq, payload)) = self.chans[ch.0].pending.take() {
            let expected = self.chans[ch.0].recv_seq;
            if seq == expected {
                return Some(self.deliver(ch, Token::Owned(payload)));
            }
            if seq > expected {
                return self.handle_gap(ch, seq, Token::Owned(payload));
            }
            // Stale duplicate: drop it and read the transport.
        }
        let mut attempt: u32 = 0;
        loop {
            let got = self.endpoints[ch.0].recv_token(self.policy.op_deadline);
            match got {
                Ok(mut frame) => match decode_frame(&frame).map(|(seq, _)| seq) {
                    Ok(seq) => {
                        let expected = self.chans[ch.0].recv_seq;
                        if seq < expected {
                            // Duplicate of an already-delivered token
                            // (injected duplication or a replayed
                            // retransmission): discard, no attempt
                            // consumed.
                            continue;
                        }
                        // Strip the verified header in place — a
                        // pointer bump on pooled leases, a front drain
                        // on owned frames; never a second allocation.
                        frame.trim_front(FRAME_HEADER_BYTES);
                        if seq == expected {
                            return Some(self.deliver(ch, frame));
                        }
                        return self.handle_gap(ch, seq, frame);
                    }
                    Err(_) => {
                        // CRC failure: a declared corruption. The
                        // sender was told (typed error) and
                        // retransmits; wait for the clean copy.
                        self.emit(ProbeKind::FaultCorrupt { channel: ch });
                        attempt += 1;
                        if attempt > self.policy.max_retries {
                            return self.degrade_missing(ch, attempt);
                        }
                    }
                },
                Err(TransportError::Timeout { .. }) => {
                    attempt += 1;
                    if attempt > self.policy.max_retries {
                        return self.degrade_missing(ch, attempt);
                    }
                    self.emit(ProbeKind::FaultRetry {
                        channel: ch,
                        attempt,
                    });
                }
                Err(e) => {
                    self.record(map_terminal(ch, 0, &e, self.specs));
                    return None;
                }
            }
        }
    }

    fn deliver(&mut self, ch: ChannelId, payload: Token) -> Token {
        let c = &mut self.chans[ch.0];
        c.recv_seq = c.recv_seq.wrapping_add(1);
        c.last_len = payload.len();
        c.last_ok = Some(crate::shim::now());
        if self.probe.is_some() {
            let (occ_b, occ_m) = logical_snapshot(self.endpoints[ch.0].as_ref());
            self.emit(ProbeKind::Recv {
                channel: ch,
                bytes: payload.len() as u32,
                digest: payload_digest(&payload),
                occ_bytes: occ_b,
                occ_msgs: occ_m,
            });
        }
        payload
    }

    /// A frame from the future arrived: tokens in `recv_seq..seq` are
    /// lost (dropped upstream past its retry budget). Degrade per
    /// policy; the arrived frame is either delivered now (skip) or
    /// parked for the next receive (substitute).
    fn handle_gap(&mut self, ch: ChannelId, seq: u32, payload: Token) -> Option<Token> {
        let expected = self.chans[ch.0].recv_seq;
        let missing = seq.wrapping_sub(expected);
        match self.policy.degrade {
            DegradePolicy::Fail => {
                self.record(PlatformError::TokensLost {
                    pe: self.pe,
                    channel: ch,
                    missing,
                });
                None
            }
            DegradePolicy::Skip => {
                for _ in 0..missing {
                    self.emit(ProbeKind::FaultDegraded {
                        channel: ch,
                        substituted: false,
                    });
                }
                self.chans[ch.0].recv_seq = seq;
                Some(self.deliver(ch, payload))
            }
            DegradePolicy::Substitute => {
                // One substitution per receive op keeps the one-token-
                // per-op contract; the real frame waits in `pending`
                // (and later gaps re-derive from it).
                self.emit(ProbeKind::FaultDegraded {
                    channel: ch,
                    substituted: true,
                });
                // Parking the frame releases its pool slot (cold path:
                // tokens were already lost on this channel).
                let payload = payload.into_vec();
                let c = &mut self.chans[ch.0];
                c.recv_seq = c.recv_seq.wrapping_add(1);
                c.pending = Some((seq, payload));
                Some(Token::Owned(vec![0u8; c.last_len]))
            }
        }
    }

    /// The retry budget ran dry with nothing delivered.
    fn degrade_missing(&mut self, ch: ChannelId, attempts: u32) -> Option<Token> {
        match self.policy.degrade {
            DegradePolicy::Fail => {
                self.record(PlatformError::RetryBudgetExhausted {
                    pe: self.pe,
                    channel: ch,
                    attempts,
                    kind: BlockKind::Recv,
                    idle: self.idle_since(ch.0),
                });
                None
            }
            DegradePolicy::Skip => {
                self.emit(ProbeKind::FaultDegraded {
                    channel: ch,
                    substituted: false,
                });
                self.chans[ch.0].recv_seq = self.chans[ch.0].recv_seq.wrapping_add(1);
                Some(Token::Owned(Vec::new()))
            }
            DegradePolicy::Substitute => {
                self.emit(ProbeKind::FaultDegraded {
                    channel: ch,
                    substituted: true,
                });
                let c = &mut self.chans[ch.0];
                c.recv_seq = c.recv_seq.wrapping_add(1);
                Some(Token::Owned(vec![0u8; c.last_len]))
            }
        }
    }
}

/// Maps a non-transient transport failure to the platform error space
/// using the *logical* channel numbers.
fn map_terminal(
    ch: ChannelId,
    logical_bytes: usize,
    err: &TransportError,
    specs: &[ChannelSpec],
) -> PlatformError {
    match err {
        TransportError::TooLarge { bytes, .. } => PlatformError::MessageExceedsCapacity {
            channel: ch,
            bytes: bytes.saturating_sub(FRAME_HEADER_BYTES).max(logical_bytes),
            capacity: specs[ch.0].capacity_bytes,
        },
        other => PlatformError::ChannelFault {
            channel: ch,
            detail: other.to_string(),
        },
    }
}

/// Executes `programs` under supervision over already-instantiated
/// (framed, possibly fault-decorated) `endpoints`.
pub(crate) fn run_supervised(
    policy: SupervisionPolicy,
    specs: &[ChannelSpec],
    endpoints: &[Box<dyn Transport>],
    programs: Vec<Program>,
    probe: Option<&dyn Tracer>,
) -> Result<Vec<ThreadedPeResult>> {
    let fault: Mutex<Option<PlatformError>> = Mutex::new(None);
    let results: Mutex<Vec<Option<ThreadedPeResult>>> =
        Mutex::new((0..programs.len()).map(|_| None).collect());
    let n_chans = specs.len();

    crate::shim::scope(|scope| {
        for (idx, mut program) in programs.into_iter().enumerate() {
            let fault = &fault;
            let results = &results;
            let labels = intern_labels(probe, &program);
            let mut ctx = PeCtx {
                pe: PeId(idx),
                policy,
                specs,
                endpoints,
                probe,
                fault,
                started: crate::shim::now(),
                chans: vec![ChanState::default(); n_chans],
                restarts: 0,
            };
            scope.spawn_named(format!("pe{idx}"), move || {
                ctx.started = crate::shim::now();
                let mut local = PeLocal::default();
                let mut prologue = std::mem::take(&mut program.prologue);
                let mut aborted = false;
                // Prologue ops are supervised but outside the
                // checkpoint/restart loop: a panic here is fatal.
                for (i, op) in prologue.iter_mut().enumerate() {
                    let label = labels.prologue.get(i).copied().unwrap_or(0);
                    match sup_op(&mut ctx, op, label, &mut local) {
                        OpOutcome::Ok => {}
                        OpOutcome::Abort => {
                            aborted = true;
                            break;
                        }
                        OpOutcome::Panicked => {
                            // No checkpoint exists before the first
                            // iteration boundary, so a prologue panic
                            // cannot be replayed.
                            ctx.record(PlatformError::RestartBudgetExhausted {
                                pe: ctx.pe,
                                restarts: 0,
                                iter: 0,
                            });
                            aborted = true;
                            break;
                        }
                    }
                }
                if !aborted {
                    // Checkpoint and replay buffers live outside the
                    // iteration loop so `clone_from`/`clear` reuse
                    // their allocations on the fault-free hot path.
                    let mut ckpt_store = local.store.clone();
                    let mut ckpt_inbox = local.inbox.clone();
                    // Replay entries are deep copies (`Token::clone`),
                    // so a pooled lease delivered to the inbox never
                    // has its slot pinned by the log.
                    let mut replay: Vec<(ChannelId, Token)> = Vec::new();
                    'iters: for iter in 0..program.iterations {
                        local.iter = iter;
                        // Iteration-boundary checkpoint: the functional
                        // state a restart rolls back to.
                        ckpt_store.clone_from(&local.store);
                        ckpt_inbox.clone_from(&local.inbox);
                        replay.clear();
                        let mut sends_done: usize = 0;
                        'attempt: loop {
                            let mut send_skip = sends_done;
                            let mut replay_cursor = 0usize;
                            for (i, op) in program.ops.iter_mut().enumerate() {
                                let label = labels.ops.get(i).copied().unwrap_or(0);
                                let outcome = match op {
                                    Op::Send { channel, payload } => {
                                        let ch = *channel;
                                        let data = payload(&mut local);
                                        if send_skip > 0 {
                                            // Already transmitted before
                                            // the rollback; the payload
                                            // closure re-ran (determinism)
                                            // but nothing is re-sent, so
                                            // occupancy stays bounded.
                                            send_skip -= 1;
                                            OpOutcome::Ok
                                        } else if ctx.sup_send(ch, &data) {
                                            sends_done += 1;
                                            OpOutcome::Ok
                                        } else {
                                            OpOutcome::Abort
                                        }
                                    }
                                    Op::Recv { channel } => {
                                        let ch = *channel;
                                        if replay_cursor < replay.len() {
                                            let (rch, data) = replay[replay_cursor].clone();
                                            replay_cursor += 1;
                                            local.inbox.push_back((rch, data));
                                            OpOutcome::Ok
                                        } else {
                                            match ctx.sup_recv(ch) {
                                                Some(data) => {
                                                    replay.push((ch, data.clone()));
                                                    replay_cursor += 1;
                                                    local.inbox.push_back((ch, data));
                                                    OpOutcome::Ok
                                                }
                                                None => OpOutcome::Abort,
                                            }
                                        }
                                    }
                                    _ => sup_op(&mut ctx, op, label, &mut local),
                                };
                                match outcome {
                                    OpOutcome::Ok => {}
                                    OpOutcome::Abort => break 'iters,
                                    OpOutcome::Panicked => {
                                        if ctx.restarts < ctx.policy.max_restarts {
                                            ctx.restarts += 1;
                                            ctx.emit(ProbeKind::FaultRestart { iter });
                                            local.store.clone_from(&ckpt_store);
                                            local.inbox.clone_from(&ckpt_inbox);
                                            continue 'attempt;
                                        }
                                        ctx.record(PlatformError::RestartBudgetExhausted {
                                            pe: ctx.pe,
                                            restarts: ctx.restarts,
                                            iter,
                                        });
                                        break 'iters;
                                    }
                                }
                            }
                            break 'attempt;
                        }
                    }
                }
                results.lock().expect("results lock")[idx] = Some(ThreadedPeResult {
                    store: std::mem::take(&mut local.store),
                    leftover_inbox: local.inbox.len(),
                });
            });
        }
    });

    if let Some(err) = fault.into_inner().expect("fault lock") {
        return Err(err);
    }
    Ok(results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("every PE thread stores a result"))
        .collect())
}

/// Outcome of one supervised op.
enum OpOutcome {
    Ok,
    /// A terminal fault was recorded; the PE stops.
    Abort,
    /// A compute closure panicked; the caller decides restart vs fail.
    Panicked,
}

/// Executes compute/wait ops (and prologue sends/receives) with panic
/// capture. Channel ops inside the iteration loop are handled inline by
/// the caller, which owns the replay bookkeeping.
fn sup_op(ctx: &mut PeCtx<'_>, op: &mut Op, label: u32, local: &mut PeLocal) -> OpOutcome {
    match op {
        Op::Compute { work, .. } => {
            ctx.emit(ProbeKind::FiringBegin { label });
            let result = catch_unwind(AssertUnwindSafe(|| work(local)));
            match result {
                Ok(_cycles) => {
                    ctx.emit(ProbeKind::FiringEnd { label });
                    OpOutcome::Ok
                }
                Err(_) => OpOutcome::Panicked,
            }
        }
        Op::Send { channel, payload } => {
            let ch = *channel;
            let data = payload(local);
            if ctx.sup_send(ch, &data) {
                OpOutcome::Ok
            } else {
                OpOutcome::Abort
            }
        }
        Op::Recv { channel } => match ctx.sup_recv(*channel) {
            Some(data) => {
                local.inbox.push_back((*channel, data));
                OpOutcome::Ok
            }
            None => OpOutcome::Abort,
        },
        Op::WaitUntil { .. } => OpOutcome::Ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_software_matches_ieee_vectors() {
        // Standard IEEE CRC-32 check values for the portable path.
        assert_eq!(crc32_sw(b""), 0);
        assert_eq!(crc32_sw(b"123456789"), 0xCBF4_3926);
        // The 9-byte vector exercises only the bytewise tail; check a
        // long input against a independently computed reference too.
        let buf: Vec<u8> = (0..512u32).map(|i| (i * 31 + 7) as u8).collect();
        let mut want = !0u32;
        for &b in &buf {
            want ^= u32::from(b);
            for _ in 0..8 {
                want = if want & 1 != 0 {
                    0xEDB8_8320 ^ (want >> 1)
                } else {
                    want >> 1
                };
            }
        }
        assert_eq!(crc32_sw(&buf), !want);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn crc32_hardware_matches_crc32c_vectors() {
        if !std::is_x86_feature_detected!("sse4.2") {
            return;
        }
        // Standard CRC-32C (Castagnoli) check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn frame_roundtrip_and_corruption_detection() {
        let frame = encode_frame(7, b"payload");
        assert_eq!(frame.len(), FRAME_HEADER_BYTES + 7);
        let (seq, payload) = decode_frame(&frame).unwrap();
        assert_eq!((seq, payload), (7, b"payload".as_slice()));

        let mut bad = frame.clone();
        *bad.last_mut().unwrap() ^= 0x5A;
        assert_eq!(decode_frame(&bad), Err(FrameError::BadCrc));

        assert_eq!(decode_frame(&frame[..4]), Err(FrameError::Truncated));

        // Zero-length payloads frame cleanly.
        let empty = encode_frame(0, b"");
        assert_eq!(decode_frame(&empty).unwrap(), (0, b"".as_slice()));
    }

    #[test]
    fn framed_spec_preserves_slot_count() {
        let spec = ChannelSpec {
            capacity_bytes: 64,
            max_message_bytes: 16,
            ..ChannelSpec::default()
        };
        let framed = framed_spec(&spec);
        assert_eq!(framed.max_message_bytes, 24);
        assert_eq!(framed.capacity_bytes, 64 + 4 * 8);
        assert_eq!(
            framed.capacity_bytes / framed.max_message_bytes,
            spec.capacity_bytes / spec.max_message_bytes,
            "token bound Γ + delay(e) must be unchanged"
        );

        // Undeclared bound: whole channel treated as one message.
        let raw = ChannelSpec {
            capacity_bytes: 32,
            ..ChannelSpec::default()
        };
        let framed = framed_spec(&raw);
        assert_eq!(framed.capacity_bytes, 40);
        assert_eq!(framed.max_message_bytes, 40);
    }

    #[test]
    fn policy_defaults_are_strict() {
        let p = SupervisionPolicy::default();
        assert_eq!(p.degrade, DegradePolicy::Fail);
        assert_eq!(p.max_retries, 3);
        let p = SupervisionPolicy::retry(5)
            .with_deadline(Duration::from_millis(50))
            .with_degrade(DegradePolicy::Substitute)
            .with_restarts(2);
        assert_eq!(p.max_retries, 5);
        assert_eq!(p.op_deadline, Duration::from_millis(50));
        assert_eq!(p.degrade, DegradePolicy::Substitute);
        assert_eq!(p.max_restarts, 2);
    }
}

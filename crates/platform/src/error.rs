//! Error types for the platform simulator.

use std::fmt;

use crate::sim::{ChannelId, PeId};

/// Errors from building or running a platform simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A channel id referenced a channel that does not exist.
    UnknownChannel(ChannelId),
    /// A PE id referenced a processing element that does not exist.
    UnknownPe(PeId),
    /// A send was attempted with a payload larger than the channel's
    /// total capacity — it could never be delivered.
    MessageExceedsCapacity {
        /// The channel.
        channel: ChannelId,
        /// Payload size in bytes.
        bytes: usize,
        /// Channel capacity in bytes.
        capacity: usize,
    },
    /// The simulation stopped advancing before every PE finished: PEs are
    /// mutually blocked on sends/receives (protocol deadlock).
    Deadlock {
        /// PEs still blocked when the event queue drained.
        blocked: Vec<PeId>,
    },
    /// The simulation exceeded its configured cycle budget.
    BudgetExceeded {
        /// The budget that was exceeded.
        budget_cycles: u64,
    },
    /// A zero-capacity channel was declared (nothing could ever be sent).
    ZeroCapacity {
        /// The channel.
        channel: ChannelId,
    },
    /// A rendezvous transfer was requested on an endpoint built without
    /// the reverse control channel the clear-to-send message needs.
    MissingControlChannel {
        /// The endpoint's data channel.
        data: ChannelId,
        /// The payload bound that pushed the transfer past the eager
        /// limit into the rendezvous protocol.
        payload_bound: usize,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            PlatformError::UnknownPe(p) => write!(f, "unknown processing element {p}"),
            PlatformError::MessageExceedsCapacity {
                channel,
                bytes,
                capacity,
            } => write!(
                f,
                "message of {bytes} bytes exceeds channel {channel} capacity of {capacity} bytes"
            ),
            PlatformError::Deadlock { blocked } => {
                write!(
                    f,
                    "simulation deadlocked with {} blocked PE(s)",
                    blocked.len()
                )
            }
            PlatformError::BudgetExceeded { budget_cycles } => {
                write!(
                    f,
                    "simulation exceeded its budget of {budget_cycles} cycles"
                )
            }
            PlatformError::ZeroCapacity { channel } => {
                write!(f, "channel {channel} has zero capacity")
            }
            PlatformError::MissingControlChannel {
                data,
                payload_bound,
            } => write!(
                f,
                "rendezvous transfer of up to {payload_bound} bytes on channel {data} \
                 requires a control channel, but the endpoint has none"
            ),
        }
    }
}

impl std::error::Error for PlatformError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, PlatformError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = PlatformError::MessageExceedsCapacity {
            channel: ChannelId(1),
            bytes: 100,
            capacity: 64,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("64"));
    }
}

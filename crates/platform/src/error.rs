//! Error types for the platform simulator.

use std::fmt;
use std::time::Duration;

use crate::sim::{ChannelId, PeId};

/// Errors from building or running a platform simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A channel id referenced a channel that does not exist.
    UnknownChannel(ChannelId),
    /// A PE id referenced a processing element that does not exist.
    UnknownPe(PeId),
    /// A send was attempted with a payload larger than the channel's
    /// total capacity — it could never be delivered.
    MessageExceedsCapacity {
        /// The channel.
        channel: ChannelId,
        /// Payload size in bytes.
        bytes: usize,
        /// Channel capacity in bytes.
        capacity: usize,
    },
    /// The simulation stopped advancing before every PE finished: PEs are
    /// mutually blocked on sends/receives (protocol deadlock).
    Deadlock {
        /// PEs still blocked when the event queue drained.
        blocked: Vec<PeId>,
        /// Per-PE description of what each blocked PE was waiting on,
        /// including the channel's observed fill — the difference
        /// between "something timed out" and an actionable report.
        detail: Vec<BlockedOp>,
    },
    /// The simulation exceeded its configured cycle budget.
    BudgetExceeded {
        /// The budget that was exceeded.
        budget_cycles: u64,
    },
    /// A zero-capacity channel was declared (nothing could ever be sent).
    ZeroCapacity {
        /// The channel.
        channel: ChannelId,
    },
    /// A rendezvous transfer was requested on an endpoint built without
    /// the reverse control channel the clear-to-send message needs.
    MissingControlChannel {
        /// The endpoint's data channel.
        data: ChannelId,
        /// The payload bound that pushed the transfer past the eager
        /// limit into the rendezvous protocol.
        payload_bound: usize,
    },
    /// A supervised channel operation exhausted its retry budget
    /// without completing; the fault on the named edge is not
    /// transient at the configured deadline and retry count.
    RetryBudgetExhausted {
        /// The supervised PE.
        pe: PeId,
        /// The faulted channel.
        channel: ChannelId,
        /// Attempts made (first try plus retries).
        attempts: u32,
        /// Send- or receive-side operation.
        kind: BlockKind,
        /// Time since the channel last completed an operation for this
        /// PE when the budget ran out — recent activity points at a
        /// stalled-but-alive link, a full-budget idle at a dead one.
        idle: Duration,
    },
    /// Sequence-checked frames revealed tokens that were lost on the
    /// named edge and the degradation policy forbids substituting them.
    TokensLost {
        /// The receiving PE.
        pe: PeId,
        /// The faulted channel.
        channel: ChannelId,
        /// Tokens missing from the sequence.
        missing: u32,
    },
    /// A supervised PE panicked more times than its restart budget
    /// allows.
    RestartBudgetExhausted {
        /// The failing PE.
        pe: PeId,
        /// Restarts already performed when the fatal panic hit.
        restarts: u32,
        /// Iteration the PE was executing.
        iter: u64,
    },
    /// An injected transport fault surfaced on an unsupervised run —
    /// nothing retried it, so the run cannot be trusted.
    ChannelFault {
        /// The faulted channel.
        channel: ChannelId,
        /// Description of the injected fault.
        detail: String,
    },
}

/// Which direction a PE was blocked in when a deadlock was declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Waiting for space to send into a channel.
    Send,
    /// Waiting for a message to arrive on a channel.
    Recv,
}

/// One blocked PE in a [`PlatformError::Deadlock`] report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedOp {
    /// The blocked PE.
    pub pe: PeId,
    /// The channel it was blocked on.
    pub channel: ChannelId,
    /// Send- or receive-side block.
    pub kind: BlockKind,
    /// Payload bytes occupying the channel when the deadlock was
    /// declared.
    pub occupied_bytes: usize,
    /// Messages occupying the channel.
    pub occupied_messages: usize,
    /// The channel's total capacity in bytes.
    pub capacity_bytes: usize,
    /// How long the peer side of the channel had shown no progress
    /// when the block was declared (from the transport's deadline
    /// error). `None` when the engine has no such observation (the
    /// DES declares deadlocks analytically, without waiting).
    pub idle: Option<Duration>,
}

impl fmt::Display for BlockedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verb = match self.kind {
            BlockKind::Send => "send on",
            BlockKind::Recv => "recv from",
        };
        write!(
            f,
            "{} blocked to {} {} ({}/{} B, {} msg)",
            self.pe,
            verb,
            self.channel,
            self.occupied_bytes,
            self.capacity_bytes,
            self.occupied_messages
        )?;
        if let Some(idle) = self.idle {
            write!(f, " [peer idle {idle:?}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            PlatformError::UnknownPe(p) => write!(f, "unknown processing element {p}"),
            PlatformError::MessageExceedsCapacity {
                channel,
                bytes,
                capacity,
            } => write!(
                f,
                "message of {bytes} bytes exceeds channel {channel} capacity of {capacity} bytes"
            ),
            PlatformError::Deadlock { blocked, detail } => {
                write!(
                    f,
                    "simulation deadlocked with {} blocked PE(s)",
                    blocked.len()
                )?;
                for (i, b) in detail.iter().enumerate() {
                    write!(f, "{} {b}", if i == 0 { ":" } else { ";" })?;
                }
                Ok(())
            }
            PlatformError::BudgetExceeded { budget_cycles } => {
                write!(
                    f,
                    "simulation exceeded its budget of {budget_cycles} cycles"
                )
            }
            PlatformError::ZeroCapacity { channel } => {
                write!(f, "channel {channel} has zero capacity")
            }
            PlatformError::MissingControlChannel {
                data,
                payload_bound,
            } => write!(
                f,
                "rendezvous transfer of up to {payload_bound} bytes on channel {data} \
                 requires a control channel, but the endpoint has none"
            ),
            PlatformError::RetryBudgetExhausted {
                pe,
                channel,
                attempts,
                kind,
                idle,
            } => {
                let verb = match kind {
                    BlockKind::Send => "send on",
                    BlockKind::Recv => "recv from",
                };
                write!(
                    f,
                    "supervised {pe} exhausted its retry budget ({attempts} attempts) \
                     trying to {verb} {channel} (channel idle {idle:?})"
                )
            }
            PlatformError::TokensLost {
                pe,
                channel,
                missing,
            } => write!(
                f,
                "{missing} token(s) lost on {channel} before {pe}; \
                 the degradation policy forbids substitution"
            ),
            PlatformError::RestartBudgetExhausted { pe, restarts, iter } => write!(
                f,
                "supervised {pe} failed at iteration {iter} after {restarts} restart(s); \
                 restart budget exhausted"
            ),
            PlatformError::ChannelFault { channel, detail } => {
                write!(f, "unrecovered fault on {channel}: {detail}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, PlatformError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = PlatformError::MessageExceedsCapacity {
            channel: ChannelId(1),
            bytes: 100,
            capacity: 64,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("64"));
    }

    #[test]
    fn deadlock_report_names_channels_and_fill() {
        let e = PlatformError::Deadlock {
            blocked: vec![PeId(0), PeId(1)],
            detail: vec![
                BlockedOp {
                    pe: PeId(0),
                    channel: ChannelId(3),
                    kind: BlockKind::Send,
                    occupied_bytes: 16,
                    occupied_messages: 2,
                    capacity_bytes: 16,
                    idle: Some(Duration::from_millis(250)),
                },
                BlockedOp {
                    pe: PeId(1),
                    channel: ChannelId(0),
                    kind: BlockKind::Recv,
                    occupied_bytes: 0,
                    occupied_messages: 0,
                    capacity_bytes: 64,
                    idle: None,
                },
            ],
        };
        let s = e.to_string();
        assert!(s.contains("ch3") && s.contains("ch0"), "{s}");
        assert!(s.contains("16/16 B") && s.contains("0/64 B"), "{s}");
        assert!(s.contains("send on") && s.contains("recv from"), "{s}");
        assert!(s.contains("peer idle 250ms"), "{s}");
    }

    #[test]
    fn supervision_errors_name_the_faulted_edge() {
        let e = PlatformError::RetryBudgetExhausted {
            pe: PeId(2),
            channel: ChannelId(1),
            attempts: 4,
            kind: BlockKind::Recv,
            idle: Duration::from_millis(200),
        };
        let s = e.to_string();
        assert!(s.contains("ch1") && s.contains("4 attempts"), "{s}");
        assert!(s.contains("recv from"), "{s}");

        let e = PlatformError::TokensLost {
            pe: PeId(1),
            channel: ChannelId(3),
            missing: 2,
        };
        let s = e.to_string();
        assert!(s.contains("ch3") && s.contains("2 token(s)"), "{s}");

        let e = PlatformError::RestartBudgetExhausted {
            pe: PeId(0),
            restarts: 1,
            iter: 7,
        };
        let s = e.to_string();
        assert!(s.contains("iteration 7") && s.contains("1 restart"), "{s}");

        let e = PlatformError::ChannelFault {
            channel: ChannelId(5),
            detail: "message dropped".into(),
        };
        assert!(e.to_string().contains("ch5"), "{e}");
    }
}

//! A generic MPI-style message layer — the baseline SPI is measured
//! against.
//!
//! The paper's motivation (§1) is that MPI, being general-purpose, pays
//! overheads a dataflow-specialized interface avoids: full message
//! envelopes (source, destination, tag, datatype, length), receive-side
//! envelope matching, and a rendezvous handshake for flow control. This
//! module reproduces that baseline faithfully enough to measure the gap:
//! an `MpiEndpoint` lowers each logical transfer to the same platform
//! primitives SPI uses, but with the envelope bytes, matching cycles and
//! handshake round-trip included.
//!
//! The numbers come from the eager/rendezvous split used by real MPI
//! implementations (including TMD-MPI, the FPGA MPI the paper cites):
//! small messages go eagerly with an envelope; large ones negotiate a
//! request/clear-to-send exchange first.
//!
//! Because the lowering targets plain [`Op`] sequences, MPI transfers
//! are observable through the [`crate::Tracer`] probe machinery with no
//! extra instrumentation: the `mpi:marshal` / `mpi:match` computes
//! appear as firings and the envelope/control/payload messages as
//! ordinary send/receive events on whichever engine executes them.

use crate::error::{PlatformError, Result};
use crate::sim::{ChannelId, Op, PeLocal};

/// Size of a full MPI envelope in bytes:
/// source (4) + dest (4) + tag (4) + datatype (4) + length (4) + comm (4).
pub const ENVELOPE_BYTES: usize = 24;

/// Cycles the receiver spends matching an incoming envelope against its
/// posted-receive queue (hash + compare, conservative small constant).
pub const MATCH_CYCLES: u64 = 12;

/// Cycles for the sender to marshal the envelope.
pub const MARSHAL_CYCLES: u64 = 6;

/// Messages at or below this payload size are sent eagerly; larger ones
/// use the rendezvous protocol (request-to-send / clear-to-send).
pub const EAGER_LIMIT_BYTES: usize = 256;

/// Size of a rendezvous control message (RTS or CTS).
pub const CONTROL_BYTES: usize = 8;

/// Configuration of the MPI baseline's cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpiConfig {
    /// Envelope bytes prepended to every message.
    pub envelope_bytes: usize,
    /// Receive-side matching cost per message.
    pub match_cycles: u64,
    /// Send-side marshaling cost per message.
    pub marshal_cycles: u64,
    /// Eager/rendezvous threshold.
    pub eager_limit_bytes: usize,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            envelope_bytes: ENVELOPE_BYTES,
            match_cycles: MATCH_CYCLES,
            marshal_cycles: MARSHAL_CYCLES,
            eager_limit_bytes: EAGER_LIMIT_BYTES,
        }
    }
}

/// Builder of MPI-style operation sequences for one logical channel pair.
///
/// For rendezvous transfers the caller must supply a *reverse* control
/// channel (receiver→sender) used for the clear-to-send message.
#[derive(Debug, Clone, Copy)]
pub struct MpiEndpoint {
    /// Data channel (sender→receiver).
    pub data: ChannelId,
    /// Control channel (receiver→sender), required for rendezvous.
    pub control: Option<ChannelId>,
    /// Cost model.
    pub config: MpiConfig,
}

impl MpiEndpoint {
    /// Creates an endpoint with the default cost model.
    pub fn new(data: ChannelId, control: Option<ChannelId>) -> Self {
        MpiEndpoint {
            data,
            control,
            config: MpiConfig::default(),
        }
    }

    /// Channel used for clear-to-send, or the typed construction error
    /// when the endpoint has none.
    fn control_for_rendezvous(&self, payload_bound: usize) -> Result<ChannelId> {
        self.control.ok_or(PlatformError::MissingControlChannel {
            data: self.data,
            payload_bound,
        })
    }

    /// Lowers `MPI_Send` of a payload produced by `payload` into platform
    /// ops. Rendezvous is chosen when the payload *bound* exceeds the
    /// eager limit (the protocol must be fixed at compile time since the
    /// program structure is static).
    ///
    /// # Errors
    ///
    /// [`PlatformError::MissingControlChannel`] if rendezvous is required
    /// but no control channel was supplied — a construction error caught
    /// at lowering time, not a run-time condition.
    pub fn send_ops(
        &self,
        payload_bound: usize,
        mut payload: impl FnMut(&mut PeLocal) -> Vec<u8> + Send + 'static,
    ) -> Result<Vec<Op>> {
        let cfg = self.config;
        let mut ops = Vec::new();
        // Marshal the envelope.
        ops.push(Op::Compute {
            label: "mpi:marshal".into(),
            work: Box::new(move |_| cfg.marshal_cycles),
        });
        if payload_bound > cfg.eager_limit_bytes {
            let control = self.control_for_rendezvous(payload_bound)?;
            // Request-to-send carrying the envelope.
            let env = cfg.envelope_bytes;
            ops.push(Op::Send {
                channel: self.data,
                payload: Box::new(move |_| vec![0u8; env]),
            });
            // Wait for clear-to-send.
            ops.push(Op::Recv { channel: control });
            ops.push(Op::Compute {
                label: "mpi:cts".into(),
                work: Box::new(move |l| {
                    let _ = l.take_from(control);
                    1
                }),
            });
            // Payload (envelope already delivered with the RTS).
            ops.push(Op::Send {
                channel: self.data,
                payload: Box::new(payload),
            });
        } else {
            // Eager: envelope + payload in one message.
            let env = cfg.envelope_bytes;
            ops.push(Op::Send {
                channel: self.data,
                payload: Box::new(move |l| {
                    let mut msg = vec![0u8; env];
                    msg.extend(payload(l));
                    msg
                }),
            });
        }
        Ok(ops)
    }

    /// Lowers `MPI_Recv` into platform ops; the received payload (with
    /// the envelope stripped) is pushed to the PE store under `store_key`.
    ///
    /// # Errors
    ///
    /// As [`MpiEndpoint::send_ops`].
    pub fn recv_ops(&self, payload_bound: usize, store_key: &str) -> Result<Vec<Op>> {
        let cfg = self.config;
        let key = store_key.to_string();
        let data = self.data;
        let mut ops = Vec::new();
        if payload_bound > cfg.eager_limit_bytes {
            let control = self.control_for_rendezvous(payload_bound)?;
            // Receive the RTS, match it, send CTS, then the payload.
            ops.push(Op::Recv { channel: data });
            ops.push(Op::Compute {
                label: "mpi:match".into(),
                work: Box::new(move |l| {
                    let _ = l.take_from(data);
                    cfg.match_cycles
                }),
            });
            ops.push(Op::Send {
                channel: control,
                payload: Box::new(|_| vec![0u8; CONTROL_BYTES]),
            });
            ops.push(Op::Recv { channel: data });
            ops.push(Op::Compute {
                label: "mpi:deliver".into(),
                work: Box::new(move |l| {
                    let msg = l.take_from(data).expect("payload follows CTS");
                    l.store.insert(key.clone(), msg);
                    1
                }),
            });
        } else {
            ops.push(Op::Recv { channel: data });
            ops.push(Op::Compute {
                label: "mpi:match+deliver".into(),
                work: Box::new(move |l| {
                    let msg = l.take_from(data).expect("eager message");
                    let payload = msg[cfg.envelope_bytes.min(msg.len())..].to_vec();
                    l.store.insert(key.clone(), payload);
                    cfg.match_cycles
                }),
            });
        }
        Ok(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ChannelSpec, Machine, Program};

    #[test]
    fn eager_transfer_carries_envelope_overhead() {
        let mut m = Machine::new();
        let ch = m.add_channel(ChannelSpec::default());
        let ep = MpiEndpoint::new(ch, None);
        let mut sender = ep.send_ops(64, |_| vec![7u8; 64]).unwrap();
        let mut s_ops = Vec::new();
        s_ops.append(&mut sender);
        m.add_pe(Program::new(s_ops, 1));
        m.add_pe(Program::new(ep.recv_ops(64, "msg").unwrap(), 1));
        let report = m.run().unwrap();
        // Bytes on the wire = payload + envelope.
        assert_eq!(report.channels[0].bytes, 64 + ENVELOPE_BYTES as u64);
        assert_eq!(report.locals[1].store["msg"], vec![7u8; 64]);
    }

    #[test]
    fn rendezvous_used_above_eager_limit() {
        let mut m = Machine::new();
        let data = m.add_channel(ChannelSpec {
            capacity_bytes: 8192,
            ..ChannelSpec::default()
        });
        let ctrl = m.add_channel(ChannelSpec::default());
        let ep = MpiEndpoint::new(data, Some(ctrl));
        let n = EAGER_LIMIT_BYTES + 100;
        m.add_pe(Program::new(
            ep.send_ops(n, move |_| vec![3u8; n]).unwrap(),
            1,
        ));
        m.add_pe(Program::new(ep.recv_ops(n, "big").unwrap(), 1));
        let report = m.run().unwrap();
        // Three messages: RTS, CTS, payload.
        assert_eq!(report.total_messages(), 3);
        assert_eq!(report.locals[1].store["big"].len(), n);
    }

    #[test]
    fn rendezvous_without_control_channel_is_a_typed_error() {
        let ep = MpiEndpoint::new(ChannelId(3), None);
        let err = ep.send_ops(100_000, |_| Vec::new()).unwrap_err();
        assert!(matches!(
            err,
            PlatformError::MissingControlChannel {
                data: ChannelId(3),
                payload_bound: 100_000,
            }
        ));
        assert!(err.to_string().contains("control channel"));
        let err = ep.recv_ops(100_000, "sink").unwrap_err();
        assert!(matches!(err, PlatformError::MissingControlChannel { .. }));
        // Eager-sized transfers never need the control channel.
        assert!(ep.send_ops(EAGER_LIMIT_BYTES, |_| Vec::new()).is_ok());
        assert!(ep.recv_ops(EAGER_LIMIT_BYTES, "sink").is_ok());
    }

    #[test]
    fn repeated_eager_messages_in_order() {
        let mut m = Machine::new();
        let ch = m.add_channel(ChannelSpec::default());
        let ep = MpiEndpoint::new(ch, None);
        m.add_pe(Program::new(
            ep.send_ops(4, |l| vec![l.iter as u8; 4]).unwrap(),
            5,
        ));
        let mut recv = ep.recv_ops(4, "last").unwrap();
        recv.push(Op::Compute {
            label: "accumulate".into(),
            work: Box::new(|l| {
                let v = l.store.get("last").cloned().unwrap_or_default();
                let mut acc = l.store.remove("acc").unwrap_or_default();
                acc.push(v[0]);
                l.store.insert("acc".into(), acc);
                1
            }),
        });
        m.add_pe(Program::new(recv, 5));
        let report = m.run().unwrap();
        assert_eq!(report.locals[1].store["acc"], vec![0, 1, 2, 3, 4]);
    }
}

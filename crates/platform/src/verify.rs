//! Bounded model checking runtime for the transport layer.
//!
//! This module is the execution engine behind the `spi-verify` crate:
//! a loom-style *stateless* model checker that runs a small scenario
//! (a handful of threads hammering one [`RingTransport`]
//! (crate::RingTransport)) over and over, forcing a different thread
//! interleaving each run, until every schedule that is distinguishable
//! under the happens-before dependency relation has been visited.
//!
//! ## How an exploration works
//!
//! * The scenario's threads are real OS threads, but they only execute
//!   one at a time: every visible operation (shim atomic access, lock
//!   acquire/release, park, unpark — see [`crate::shim`]) first parks
//!   the thread at a *schedule point* where it declares the operation
//!   it is about to perform and waits for the controller to grant it.
//! * The controller (the thread that called [`explore`]) therefore
//!   always knows the complete frontier: which threads are runnable
//!   and exactly what each would do next. Whenever two or more threads
//!   are runnable it records a *decision point*; depth-first search
//!   over decision points enumerates schedules, replaying the common
//!   prefix from the recorded decision stack on each run.
//! * *Sleep sets* (Godefroid) prune interleavings that only reorder
//!   independent operations: after a subtree rooted at choice `t` is
//!   exhausted, `t` is put to sleep for the sibling choices and only
//!   woken by an operation dependent with the one `t` was about to
//!   perform. Sleep-set pruning is sound for safety properties and
//!   deadlock detection — every Mazurkiewicz trace keeps at least one
//!   representative — so the search remains exhaustive at the bound.
//!
//! ## What counts as a failure
//!
//! * **Deadlock** — no thread is runnable but some have not finished.
//!   The session clock is frozen (see [`crate::shim::now`]) so park
//!   timeouts never fire inside the model: a lost wakeup that the real
//!   runtime would mask within one 50 ms park slice is a hard deadlock
//!   here. This is exactly how the PR 3 wake-all/dequeue regression is
//!   rediscovered.
//! * **Panic** — any scenario thread panicking (e.g. an in-thread
//!   oracle assertion, or an index/overflow bug surfaced by an odd
//!   interleaving).
//! * **Step limit** — a run exceeding the per-run step budget, which
//!   in a frozen-clock model indicates a livelock.
//!
//! On failure the explorer greedily *minimizes* the schedule by
//! replaying variants that defer context switches, and reports the
//! shortest reproducing interleaving it found as a [`Failure`].
//!
//! The memory model explored is sequential consistency — one thread
//! runs at a time and every effect is globally visible before the next
//! grant. Weak-memory bugs (store buffering that a missing SeqCst
//! fence would expose on real hardware) are out of scope; DESIGN.md
//! §12 discusses the consequences.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};
use std::time::Instant;

/// Number of live exploration sessions, process-wide. The shim fast
/// path loads this with relaxed ordering and skips all model logic
/// when it is zero.
static ACTIVE_SESSIONS: StdAtomicUsize = StdAtomicUsize::new(0);

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

#[derive(Clone)]
struct Ctx {
    sess: Arc<Session>,
    role: Role,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Role {
    /// The exploring thread itself: allocates object ids during
    /// scenario construction but never hits schedule points.
    Controller,
    /// A scenario thread with its model thread index.
    Worker(usize),
}

/// Sentinel panic payload used to unwind scenario threads when a run
/// is abandoned (prune or failure). Swallowed by the panic hook.
struct ModelAbort;

/// Whether a caught panic payload is the abort sentinel (shared with
/// [`crate::simrt`], which swallows it in its thread wrapper).
pub(crate) fn is_model_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<ModelAbort>()
}

pub(crate) fn install_abort_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ModelAbort>() {
                return;
            }
            prev(info);
        }));
    });
}

// ---------------------------------------------------------------------------
// Operations and the dependency relation
// ---------------------------------------------------------------------------

/// A visible operation a model thread is about to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// Thread startup marker (independent of everything).
    Start,
    /// Atomic load of object `.0`.
    Load(usize),
    /// Atomic store to object `.0`.
    Store(usize),
    /// Atomic read-modify-write (CAS) on object `.0`.
    Rmw(usize),
    /// Mutex acquire of object `.0`.
    Lock(usize),
    /// Mutex release of object `.0`.
    Unlock(usize),
    /// Consume a park token (blocks until one is available).
    Park,
    /// Make a park token available to model thread `.0`.
    Unpark(usize),
}

impl Op {
    fn obj(self) -> Option<usize> {
        match self {
            Op::Load(o) | Op::Store(o) | Op::Rmw(o) | Op::Lock(o) | Op::Unlock(o) => Some(o),
            _ => None,
        }
    }

    fn is_write(self) -> bool {
        matches!(
            self,
            Op::Store(_) | Op::Rmw(_) | Op::Lock(_) | Op::Unlock(_)
        )
    }
}

/// Conservative dependency relation between two operations performed
/// by two *different* threads. Sleep-set wakeups and the soundness of
/// pruning rest on this being a superset of true dependence.
fn dependent(a_tid: usize, a: Op, _b_tid: usize, b: Op) -> bool {
    match (a, b) {
        (Op::Start, _) | (_, Op::Start) => false,
        (Op::Park, Op::Unpark(t)) => t == a_tid,
        (Op::Unpark(t), Op::Park) => t == _b_tid,
        (Op::Unpark(x), Op::Unpark(y)) => x == y,
        (Op::Park, _) | (_, Op::Park) => false,
        (Op::Unpark(_), _) | (_, Op::Unpark(_)) => false,
        _ => match (a.obj(), b.obj()) {
            (Some(x), Some(y)) => x == y && (a.is_write() || b.is_write()),
            _ => false,
        },
    }
}

// ---------------------------------------------------------------------------
// Session (one run)
// ---------------------------------------------------------------------------

struct St {
    /// Declared-but-not-yet-granted operation per thread.
    pending: Vec<Option<Op>>,
    /// Park token per thread (std semantics: at most one).
    token: Vec<bool>,
    finished: Vec<bool>,
    panicked: Option<(usize, String)>,
    /// Thread currently granted (running between schedule points).
    current: Option<usize>,
    /// Mutex object id -> owning model thread.
    lock_owner: HashMap<usize, usize>,
    abort: bool,
    labels: HashMap<usize, &'static str>,
}

struct Session {
    st: Mutex<St>,
    /// One condvar per worker plus one for the controller, all paired
    /// with `st`. Wakeups are *targeted*: each handshake wakes exactly
    /// the one thread that can make progress. This matters doubly on
    /// small machines (CI runners are often single-core): a broadcast
    /// condvar stampedes every parked worker through the scheduler on
    /// each of the ~10⁵–10⁶ steps of an exploration, and busy-wait
    /// spinning is even worse — with one core the spinner burns the
    /// very timeslice the granted thread needs.
    worker_cv: Vec<Condvar>,
    ctrl_cv: Condvar,
    epoch: Instant,
    next_obj: StdAtomicUsize,
}

impl Session {
    fn new(n_threads: usize) -> Arc<Self> {
        Arc::new(Session {
            st: Mutex::new(St {
                pending: vec![None; n_threads],
                token: vec![false; n_threads],
                finished: vec![false; n_threads],
                panicked: None,
                current: None,
                lock_owner: HashMap::new(),
                abort: false,
                labels: HashMap::new(),
            }),
            worker_cv: (0..n_threads).map(|_| Condvar::new()).collect(),
            ctrl_cv: Condvar::new(),
            epoch: Instant::now(),
            next_obj: StdAtomicUsize::new(1),
        })
    }

    /// Blocks the calling worker until the controller grants `op`.
    /// When the run is being abandoned the call unwinds via
    /// `ModelAbort` (unless the thread is already panicking, in which
    /// case it simply returns so the original panic propagates).
    fn schedule_point(&self, tid: usize, op: Op) {
        let mut st = self.st.lock().expect("session state");
        if st.abort {
            drop(st);
            abort_unwind();
            return;
        }
        st.pending[tid] = Some(op);
        st.current = None;
        self.ctrl_cv.notify_one();
        loop {
            if st.abort {
                drop(st);
                abort_unwind();
                return;
            }
            if st.current == Some(tid) {
                return;
            }
            st = self.worker_cv[tid].wait(st).expect("session state");
        }
    }

    fn thread_done(&self, tid: usize, result: Result<(), Box<dyn std::any::Any + Send>>) {
        let mut st = self.st.lock().expect("session state");
        st.finished[tid] = true;
        if let Err(payload) = result {
            if !payload.is::<ModelAbort>() && st.panicked.is_none() {
                st.panicked = Some((tid, panic_message(payload.as_ref())));
            }
        }
        if st.current == Some(tid) {
            st.current = None;
        }
        self.ctrl_cv.notify_one();
    }
}

/// One long-lived OS thread per scenario thread, reused across every
/// run of an exploration. Spawning and joining real threads costs
/// ~1 ms per run — two orders of magnitude more than the run's actual
/// schedule — so the pool is what makes exhaustive exploration (tens
/// of thousands of runs) tractable.
struct WorkerPool {
    slots: Vec<Arc<Slot>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

enum SlotState {
    /// No job; the worker sleeps on the slot condvar.
    Idle,
    /// A job posted by `run_once`, not yet picked up.
    Run(Box<dyn FnOnce() + Send>),
    /// The worker is executing the job.
    Busy,
    /// Pool teardown.
    Exit,
}

impl WorkerPool {
    fn new(n: usize) -> Self {
        let slots: Vec<Arc<Slot>> = (0..n)
            .map(|_| {
                Arc::new(Slot {
                    state: Mutex::new(SlotState::Idle),
                    cv: Condvar::new(),
                })
            })
            .collect();
        let handles = slots
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                let slot = Arc::clone(slot);
                std::thread::Builder::new()
                    .name(format!("spi-verify-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let mut s = slot.state.lock().expect("pool slot");
                            loop {
                                match std::mem::replace(&mut *s, SlotState::Busy) {
                                    SlotState::Run(f) => break Some(f),
                                    SlotState::Exit => break None,
                                    keep => {
                                        *s = keep;
                                        s = slot.cv.wait(s).expect("pool slot");
                                    }
                                }
                            }
                        };
                        let Some(f) = job else { break };
                        f();
                        *slot.state.lock().expect("pool slot") = SlotState::Idle;
                        slot.cv.notify_all();
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { slots, handles }
    }

    /// Blocks until worker `i` finished its previous job, then hands
    /// it the next one.
    fn post(&self, i: usize, job: Box<dyn FnOnce() + Send>) {
        let slot = &self.slots[i];
        let mut s = self.wait_idle_locked(i);
        *s = SlotState::Run(job);
        drop(s);
        slot.cv.notify_all();
    }

    fn wait_idle(&self, i: usize) {
        drop(self.wait_idle_locked(i));
    }

    fn wait_idle_locked(&self, i: usize) -> MutexGuard<'_, SlotState> {
        let slot = &self.slots[i];
        let mut s = slot.state.lock().expect("pool slot");
        while !matches!(*s, SlotState::Idle) {
            s = slot.cv.wait(s).expect("pool slot");
        }
        s
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for (i, slot) in self.slots.iter().enumerate() {
            let mut s = self.wait_idle_locked(i);
            *s = SlotState::Exit;
            drop(s);
            slot.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

pub(crate) fn abort_unwind() {
    if !std::thread::panicking() {
        panic::panic_any(ModelAbort);
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Shim entry points (called from crate::shim)
// ---------------------------------------------------------------------------

fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> Option<R> {
    if ACTIVE_SESSIONS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CTX.with(|c| c.borrow().as_ref().map(f))
}

/// Allocates a deterministic per-run object id (creation order is
/// fixed by the scenario), or 0 outside any session.
pub(crate) fn next_object_id(label: &'static str) -> usize {
    with_ctx(|ctx| {
        let id = ctx.sess.next_obj.fetch_add(1, Ordering::Relaxed);
        ctx.sess
            .st
            .lock()
            .expect("session state")
            .labels
            .insert(id, label);
        id
    })
    .unwrap_or(0)
}

fn worker_point(op: Op) {
    if ACTIVE_SESSIONS.load(Ordering::Relaxed) == 0 {
        return;
    }
    let ctx = CTX.with(|c| c.borrow().clone());
    if let Some(Ctx {
        sess,
        role: Role::Worker(tid),
    }) = ctx
    {
        sess.schedule_point(tid, op);
    }
}

pub(crate) fn op_load(obj: usize) {
    worker_point(Op::Load(obj));
}

pub(crate) fn op_store(obj: usize) {
    worker_point(Op::Store(obj));
}

pub(crate) fn op_rmw(obj: usize) {
    worker_point(Op::Rmw(obj));
}

pub(crate) fn op_lock(obj: usize) {
    worker_point(Op::Lock(obj));
}

pub(crate) fn op_unlock(obj: usize) {
    worker_point(Op::Unlock(obj));
}

/// Returns `true` when the park was handled by the model (the caller
/// must then skip the real park).
pub(crate) fn op_park() -> bool {
    if ACTIVE_SESSIONS.load(Ordering::Relaxed) == 0 {
        return false;
    }
    let ctx = CTX.with(|c| c.borrow().clone());
    if let Some(Ctx {
        sess,
        role: Role::Worker(tid),
    }) = ctx
    {
        // The controller only grants a Park when a token is available
        // and consumes it at the grant, so returning here *is* the
        // token hand-off.
        sess.schedule_point(tid, Op::Park);
        true
    } else {
        false
    }
}

/// Returns `true` when the unpark was handled by the model.
pub(crate) fn op_unpark(target_tid: usize) -> bool {
    if ACTIVE_SESSIONS.load(Ordering::Relaxed) == 0 {
        return false;
    }
    let ctx = CTX.with(|c| c.borrow().clone());
    if let Some(Ctx {
        sess,
        role: Role::Worker(tid),
    }) = ctx
    {
        sess.schedule_point(tid, Op::Unpark(target_tid));
        true
    } else {
        false
    }
}

/// Model thread index of the calling thread, if it is a scenario
/// worker of an active session.
pub(crate) fn worker_tid() -> Option<usize> {
    with_ctx(|ctx| match ctx.role {
        Role::Worker(t) => Some(t),
        Role::Controller => None,
    })
    .flatten()
}

/// The frozen session clock, if the calling thread is in a session.
pub(crate) fn frozen_now() -> Option<Instant> {
    with_ctx(|ctx| ctx.sess.epoch)
}

/// Whether the calling thread belongs to an active session.
pub(crate) fn in_session() -> bool {
    with_ctx(|_| ()).is_some()
}

// ---------------------------------------------------------------------------
// Public exploration API
// ---------------------------------------------------------------------------

/// Tunables for a bounded exploration.
#[derive(Debug, Clone)]
pub struct ModelOptions {
    /// Stop (reporting `capped = true`) after this many runs.
    pub max_schedules: u64,
    /// Per-run step budget; exceeding it is reported as a livelock.
    pub max_steps_per_run: usize,
    /// Greedily minimize the failing schedule before reporting it.
    pub minimize: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            max_schedules: 1_000_000,
            max_steps_per_run: 20_000,
            minimize: true,
        }
    }
}

/// Collects the threads of one scenario run.
#[derive(Default)]
pub struct Scenario {
    threads: Vec<(String, Box<dyn FnOnce() + Send>)>,
}

impl Scenario {
    /// Registers a named scenario thread. Thread registration order
    /// fixes model thread indices (and so must be deterministic, which
    /// it is for any straight-line builder closure).
    pub fn thread(&mut self, name: &str, f: impl FnOnce() + Send + 'static) {
        self.threads.push((name.to_string(), Box::new(f)));
    }
}

/// One step of a (minimized) failing interleaving.
#[derive(Debug, Clone)]
pub struct Step {
    /// Scenario thread name.
    pub thread: String,
    /// Human-readable operation (`"store seq#4"`, `"park"`, ...).
    pub op: String,
}

/// Why a schedule failed.
#[derive(Debug, Clone)]
pub enum FailureKind {
    /// No thread runnable, not all finished: a lost wakeup or circular
    /// wait. `blocked` describes each stuck thread.
    Deadlock {
        /// One description per unfinished thread.
        blocked: Vec<String>,
    },
    /// A scenario thread panicked.
    Panic {
        /// Scenario thread name.
        thread: String,
        /// Panic payload rendered as text.
        message: String,
    },
    /// The per-run step budget was exceeded (livelock under a frozen
    /// clock).
    StepLimit,
}

/// A failing schedule, minimized when [`ModelOptions::minimize`] is
/// set.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// The reported (post-minimization) interleaving.
    pub trace: Vec<Step>,
    /// Steps in the originally discovered failing schedule.
    pub raw_steps: usize,
    /// Context switches in the reported interleaving.
    pub context_switches: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FailureKind::Deadlock { blocked } => {
                writeln!(f, "deadlock: no runnable thread")?;
                for b in blocked {
                    writeln!(f, "  blocked: {b}")?;
                }
            }
            FailureKind::Panic { thread, message } => {
                writeln!(f, "panic in thread `{thread}`: {message}")?;
            }
            FailureKind::StepLimit => writeln!(f, "step budget exceeded (livelock?)")?,
        }
        writeln!(
            f,
            "interleaving ({} steps, {} context switches; discovered at {} steps):",
            self.trace.len(),
            self.context_switches,
            self.raw_steps
        )?;
        let mut prev: Option<&str> = None;
        for s in &self.trace {
            let marker = if prev.is_some() && prev != Some(s.thread.as_str()) {
                "->"
            } else {
                "  "
            };
            writeln!(f, "  {marker} [{}] {}", s.thread, s.op)?;
            prev = Some(s.thread.as_str());
        }
        Ok(())
    }
}

/// Result of a bounded exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Complete schedules executed (including the failing one).
    pub schedules: u64,
    /// Prefixes abandoned by sleep-set pruning.
    pub pruned: u64,
    /// Whether `max_schedules` stopped the search before exhaustion.
    pub capped: bool,
    /// First failure found, if any.
    pub failure: Option<Failure>,
}

/// A decision point in the DFS stack.
struct Node {
    enabled: Vec<usize>,
    sleep: Vec<(usize, Op)>,
    chosen: usize,
    chosen_op: Op,
}

enum RunOutcome {
    Complete,
    SleepBlocked,
    Failed(FailureKind),
    /// Forced replay diverged (schedule not reproducible).
    NonRepro,
}

struct RunResult {
    outcome: RunOutcome,
    granted: Vec<(usize, Op)>,
    labels: HashMap<usize, &'static str>,
}

enum Mode<'a> {
    Dfs(&'a mut Vec<Node>),
    Forced(&'a [usize]),
}

/// Exhaustively explores the interleavings of `scenario` (up to
/// happens-before equivalence) at the configured bounds. The scenario
/// closure is re-invoked for every run and must build a fresh world
/// each time: shared state is created inside the closure, moved into
/// [`Scenario::thread`] closures, and discarded when the run ends.
pub fn explore(opts: &ModelOptions, scenario: impl Fn(&mut Scenario)) -> Exploration {
    install_abort_hook();
    let mut stack: Vec<Node> = Vec::new();
    let mut schedules = 0u64;
    let mut pruned = 0u64;
    let mut capped = false;
    let mut pool = None;

    loop {
        if schedules + pruned >= opts.max_schedules {
            capped = true;
            break;
        }
        let mut res = run_once(opts, &scenario, Mode::Dfs(&mut stack), &mut pool);
        match std::mem::replace(&mut res.outcome, RunOutcome::Complete) {
            RunOutcome::SleepBlocked => pruned += 1,
            RunOutcome::Complete => schedules += 1,
            RunOutcome::Failed(kind) => {
                schedules += 1;
                let failure = report_failure(opts, &scenario, kind, res, &mut pool);
                return Exploration {
                    schedules,
                    pruned,
                    capped,
                    failure: Some(failure),
                };
            }
            RunOutcome::NonRepro => unreachable!("DFS runs cannot diverge"),
        }
        // Backtrack: exhaust siblings right-to-left, extending each
        // node's sleep set with the subtree just completed.
        let mut advanced = false;
        while let Some(mut node) = stack.pop() {
            node.sleep.push((node.chosen, node.chosen_op));
            if let Some(&next) = node
                .enabled
                .iter()
                .find(|t| !node.sleep.iter().any(|(s, _)| s == *t))
            {
                node.chosen = next;
                // `chosen_op` is refreshed during the replay that
                // revisits this node (the pending op of `next` there).
                stack.push(node);
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }

    Exploration {
        schedules,
        pruned,
        capped,
        failure: None,
    }
}

/// Executes one run, scheduling per `mode`. See module docs for the
/// controller protocol.
fn run_once(
    opts: &ModelOptions,
    scenario: &impl Fn(&mut Scenario),
    mode: Mode<'_>,
    pool: &mut Option<WorkerPool>,
) -> RunResult {
    let mut sc = Scenario::default();
    // Build under a controller context so shim objects receive
    // deterministic per-run ids.
    let n;
    let sess;
    {
        // Pre-count threads by building first with a provisional
        // session: object creation happens inside `scenario`, which
        // also registers the threads.
        let provisional = Session::new(0);
        ACTIVE_SESSIONS.fetch_add(1, Ordering::Relaxed);
        CTX.with(|c| {
            *c.borrow_mut() = Some(Ctx {
                sess: Arc::clone(&provisional),
                role: Role::Controller,
            })
        });
        scenario(&mut sc);
        CTX.with(|c| *c.borrow_mut() = None);
        ACTIVE_SESSIONS.fetch_sub(1, Ordering::Relaxed);
        n = sc.threads.len();
        // Re-home the run on a session sized for `n`, preserving the
        // object labels registered during construction.
        sess = Session::new(n);
        let labels = std::mem::take(&mut provisional.st.lock().expect("session state").labels);
        sess.st.lock().expect("session state").labels = labels;
        sess.next_obj.store(
            provisional.next_obj.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }
    assert!(n > 0, "scenario registered no threads");

    ACTIVE_SESSIONS.fetch_add(1, Ordering::Relaxed);
    let names: Vec<String> = sc.threads.iter().map(|(n, _)| n.clone()).collect();
    let pool = pool.get_or_insert_with(|| WorkerPool::new(n));
    assert_eq!(
        pool.slots.len(),
        n,
        "non-deterministic scenario: thread count changed between runs"
    );
    for (tid, (_, f)) in sc.threads.into_iter().enumerate() {
        let sess = Arc::clone(&sess);
        pool.post(
            tid,
            Box::new(move || {
                CTX.with(|c| {
                    *c.borrow_mut() = Some(Ctx {
                        sess: Arc::clone(&sess),
                        role: Role::Worker(tid),
                    })
                });
                let r = panic::catch_unwind(AssertUnwindSafe(|| {
                    sess.schedule_point(tid, Op::Start);
                    f();
                }));
                CTX.with(|c| *c.borrow_mut() = None);
                sess.thread_done(tid, r);
            }),
        );
    }

    let result = drive(opts, &sess, &names, mode);

    // The pool equivalent of joining: every worker back to idle (an
    // abandoned run's parked threads unwind via `ModelAbort` first).
    for tid in 0..n {
        pool.wait_idle(tid);
    }
    ACTIVE_SESSIONS.fetch_sub(1, Ordering::Relaxed);
    result
}

/// The controller loop for one run.
fn drive(
    opts: &ModelOptions,
    sess: &Arc<Session>,
    names: &[String],
    mut mode: Mode<'_>,
) -> RunResult {
    let n = names.len();
    let mut granted: Vec<(usize, Op)> = Vec::new();
    let mut cur_sleep: Vec<(usize, Op)> = Vec::new();
    let mut depth = 0usize; // decision points passed this run
    let mut last: Option<usize> = None;

    let mut st = sess.st.lock().expect("session state");
    let outcome = loop {
        // Quiescence: no thread running, every live thread declared.
        while !(st.current.is_none() && (0..n).all(|t| st.finished[t] || st.pending[t].is_some())) {
            st = sess.ctrl_cv.wait(st).expect("session state");
        }
        if let Some((tid, msg)) = st.panicked.clone() {
            break RunOutcome::Failed(FailureKind::Panic {
                thread: names[tid].clone(),
                message: msg,
            });
        }
        if (0..n).all(|t| st.finished[t]) {
            break RunOutcome::Complete;
        }
        if granted.len() >= opts.max_steps_per_run {
            break RunOutcome::Failed(FailureKind::StepLimit);
        }
        let enabled: Vec<usize> = (0..n)
            .filter(|&t| {
                !st.finished[t]
                    && match st.pending[t] {
                        Some(Op::Park) => st.token[t],
                        Some(Op::Lock(m)) => !st.lock_owner.contains_key(&m),
                        Some(_) => true,
                        None => false,
                    }
            })
            .collect();
        if enabled.is_empty() {
            let blocked = (0..n)
                .filter(|&t| !st.finished[t])
                .map(|t| {
                    format!(
                        "{}: {}",
                        names[t],
                        describe_blocked(st.pending[t], &st.labels)
                    )
                })
                .collect();
            break RunOutcome::Failed(FailureKind::Deadlock { blocked });
        }

        // Pick the next thread.
        let choice = match &mut mode {
            Mode::Forced(sched) => {
                let i = granted.len();
                if i < sched.len() {
                    let t = sched[i];
                    if !enabled.contains(&t) {
                        break RunOutcome::NonRepro;
                    }
                    t
                } else {
                    prefer(last, &enabled, &[])
                }
            }
            Mode::Dfs(stack) => {
                if enabled.len() >= 2 {
                    let c = if depth < stack.len() {
                        let node = &mut stack[depth];
                        assert_eq!(
                            node.enabled, enabled,
                            "non-deterministic scenario: replay diverged"
                        );
                        cur_sleep = node.sleep.clone();
                        node.chosen_op =
                            st.pending[node.chosen].expect("chosen thread has pending op");
                        node.chosen
                    } else {
                        let c = prefer(last, &enabled, &cur_sleep);
                        if cur_sleep.iter().any(|(s, _)| *s == c) {
                            // Every enabled thread is asleep: this
                            // prefix only reorders independent ops of
                            // an already-explored trace.
                            break RunOutcome::SleepBlocked;
                        }
                        stack.push(Node {
                            enabled: enabled.clone(),
                            sleep: cur_sleep.clone(),
                            chosen: c,
                            chosen_op: st.pending[c].expect("chosen thread has pending op"),
                        });
                        c
                    };
                    depth += 1;
                    c
                } else {
                    let c = enabled[0];
                    if cur_sleep.iter().any(|(s, _)| *s == c) {
                        break RunOutcome::SleepBlocked;
                    }
                    c
                }
            }
        };

        let op = st.pending[choice].take().expect("granted thread pending");
        // Wake sleepers whose next op depends on the one about to run.
        cur_sleep.retain(|&(s, s_op)| s != choice && !dependent(s, s_op, choice, op));
        match op {
            Op::Park => st.token[choice] = false,
            Op::Unpark(t) if t < n => st.token[t] = true,
            Op::Lock(m) => {
                st.lock_owner.insert(m, choice);
            }
            Op::Unlock(m) => {
                st.lock_owner.remove(&m);
            }
            _ => {}
        }
        granted.push((choice, op));
        last = Some(choice);
        st.current = Some(choice);
        sess.worker_cv[choice].notify_one();
    };

    // Abandon the run: parked workers observe `abort`, unwind via
    // `ModelAbort`, and drain back to the pool before the next run
    // posts jobs.
    st.abort = true;
    st.current = None;
    let labels = st.labels.clone();
    drop(st);
    for cv in &sess.worker_cv {
        cv.notify_one();
    }

    RunResult {
        outcome,
        granted,
        labels,
    }
}

/// Default scheduling policy: stay on the previously-running thread
/// when possible (keeps discovered schedules low-preemption), else
/// lowest awake thread id.
pub(crate) fn prefer(last: Option<usize>, enabled: &[usize], sleep: &[(usize, Op)]) -> usize {
    let asleep = |t: usize| sleep.iter().any(|(s, _)| *s == t);
    if let Some(l) = last {
        if enabled.contains(&l) && !asleep(l) {
            return l;
        }
    }
    *enabled.iter().find(|&&t| !asleep(t)).unwrap_or(&enabled[0])
}

fn describe_blocked(op: Option<Op>, labels: &HashMap<usize, &'static str>) -> String {
    match op {
        Some(Op::Park) => "parked with no pending unpark (lost wakeup)".to_string(),
        Some(Op::Lock(m)) => format!("waiting for lock {}", obj_name(m, labels)),
        Some(other) => format!("blocked before {}", op_name(other, labels)),
        None => "not yet started".to_string(),
    }
}

fn obj_name(id: usize, labels: &HashMap<usize, &'static str>) -> String {
    match labels.get(&id) {
        Some(l) => format!("{l}#{id}"),
        None => format!("obj#{id}"),
    }
}

fn op_name(op: Op, labels: &HashMap<usize, &'static str>) -> String {
    match op {
        Op::Start => "start".to_string(),
        Op::Load(o) => format!("load {}", obj_name(o, labels)),
        Op::Store(o) => format!("store {}", obj_name(o, labels)),
        Op::Rmw(o) => format!("cas {}", obj_name(o, labels)),
        Op::Lock(o) => format!("lock {}", obj_name(o, labels)),
        Op::Unlock(o) => format!("unlock {}", obj_name(o, labels)),
        Op::Park => "park".to_string(),
        Op::Unpark(t) => format!("unpark thread {t}"),
    }
}

fn count_switches(granted: &[(usize, Op)]) -> usize {
    granted.windows(2).filter(|w| w[0].0 != w[1].0).count()
}

/// Context switches in a schedule given as thread ids per step.
pub(crate) fn count_switches_ids(schedule: &[usize]) -> usize {
    schedule.windows(2).filter(|w| w[0] != w[1]).count()
}

/// Greedy context-switch deferral, shared by the model checker's
/// witness minimizer and the simulator's schedule shrinker
/// ([`crate::simrt::shrink`]): repeatedly try to defer each context
/// switch by one step — force the schedule prefix plus one more step of
/// the previous thread, let the replayer complete the run — and adopt
/// any reproduction with strictly fewer switches. `replay` returns the
/// full granted schedule when the forced prefix still reproduces the
/// original failure, `None` otherwise. `budget` caps replay attempts.
pub(crate) fn greedy_defer(
    mut best: Vec<usize>,
    mut budget: usize,
    mut replay: impl FnMut(&[usize]) -> Option<Vec<usize>>,
) -> Vec<usize> {
    let mut improved = true;
    while improved && budget > 0 {
        improved = false;
        let mut i = 1;
        while i < best.len() && budget > 0 {
            if best[i] != best[i - 1] {
                budget -= 1;
                let mut forced: Vec<usize> = best[..i].to_vec();
                forced.push(best[i - 1]);
                if let Some(cand) = replay(&forced) {
                    if count_switches_ids(&cand) < count_switches_ids(&best) {
                        best = cand;
                        improved = true;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    best
}

/// Greedy schedule minimization: repeatedly try to defer each context
/// switch by one step (forcing the previous thread to continue, then
/// completing with the stay-on-thread default policy) and keep any
/// variant that still reproduces the same failure kind with fewer
/// switches.
fn report_failure(
    opts: &ModelOptions,
    scenario: &impl Fn(&mut Scenario),
    kind: FailureKind,
    res: RunResult,
    pool: &mut Option<WorkerPool>,
) -> Failure {
    let raw_steps = res.granted.len();
    let mut best_granted = res.granted;
    let mut best_kind = kind;
    let labels = res.labels;

    if opts.minimize {
        let ids: Vec<usize> = best_granted.iter().map(|&(t, _)| t).collect();
        let want = best_kind.clone();
        let best = greedy_defer(ids, 200, |forced| {
            let r = run_once(opts, scenario, Mode::Forced(forced), pool);
            match r.outcome {
                RunOutcome::Failed(ref k) if same_kind(k, &want) => {
                    Some(r.granted.iter().map(|&(t, _)| t).collect())
                }
                _ => None,
            }
        });
        // One last forced replay of the winner recovers its granted ops
        // for the reported trace (greedy_defer only tracks thread ids).
        let r = run_once(opts, scenario, Mode::Forced(&best), pool);
        if let RunOutcome::Failed(k) = r.outcome {
            if same_kind(&k, &best_kind) {
                best_granted = r.granted;
                best_kind = k;
            }
        }
    }

    // Recover thread names for the trace via one more forced replay's
    // metadata-free view: we already have (tid, op) pairs.
    let names = scenario_names(scenario);
    let trace = best_granted
        .iter()
        .filter(|(_, op)| !matches!(op, Op::Start))
        .map(|&(t, op)| Step {
            thread: names.get(t).cloned().unwrap_or_else(|| format!("t{t}")),
            op: op_name(op, &labels),
        })
        .collect::<Vec<_>>();
    let context_switches = count_switches(&best_granted);
    Failure {
        kind: best_kind,
        trace,
        raw_steps,
        context_switches,
    }
}

fn scenario_names(scenario: &impl Fn(&mut Scenario)) -> Vec<String> {
    let mut sc = Scenario::default();
    scenario(&mut sc);
    sc.threads.into_iter().map(|(n, _)| n).collect()
}

pub(crate) fn same_kind(a: &FailureKind, b: &FailureKind) -> bool {
    matches!(
        (a, b),
        (FailureKind::Deadlock { .. }, FailureKind::Deadlock { .. })
            | (FailureKind::Panic { .. }, FailureKind::Panic { .. })
            | (FailureKind::StepLimit, FailureKind::StepLimit)
    )
}

//! Runtime probe points and the [`Tracer`] sink they feed.
//!
//! The paper's pitch is that SPI's *static* analysis — packed-token
//! capacity `c(e)` (eq. 1), the IPC buffer bound `B(e)` (eq. 2), the
//! self-timed schedule's predicted period — makes dynamic-rate execution
//! predictable. This module is the runtime half of checking that claim:
//! both execution engines (the DES in [`crate::sim`] and the OS-thread
//! runner in [`crate::runner`]) emit a common event vocabulary through a
//! [`Tracer`] chosen at build time, and the `spi-trace` crate turns the
//! captured stream into metrics and conformance diagnostics.
//!
//! Only the *interface* lives here (the platform crate must stay at the
//! bottom of the dependency stack); the lock-free capture buffer, the
//! exporters and the checker live in `spi-trace`. The default sink is
//! [`NopTracer`], whose [`Tracer::enabled`] returns `false` — emitters
//! cache that flag in a local before their hot loops, so a disabled
//! tracer costs one branch per run, not per event.
//!
//! Timestamps are a bare `u64` whose unit depends on the engine: the
//! DES stamps events with its **simulation cycle**, the threaded runner
//! with **monotonic nanoseconds** since the tracer's epoch
//! ([`Tracer::now`]). Trace consumers learn which from the trace
//! metadata.

use crate::sim::{ChannelId, PeId};

/// What a probe observed. Every variant is `Copy` and fixed-size so a
/// capture buffer can be a flat preallocated array — no allocation on
/// the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProbeKind {
    /// An actor firing (compute op) started. `label` is an id interned
    /// via [`Tracer::intern`] (firing labels are static per program, so
    /// emitters intern once, outside the iteration loop).
    FiringBegin {
        /// Interned compute label.
        label: u32,
    },
    /// The firing that began with the same `label` on this PE ended.
    FiringEnd {
        /// Interned compute label.
        label: u32,
    },
    /// A message was committed into a channel.
    Send {
        /// Destination channel.
        channel: ChannelId,
        /// Payload bytes.
        bytes: u32,
        /// FNV-1a hash of the payload — lets consumers check per-edge
        /// FIFO order and cross-engine agreement without storing bytes.
        digest: u64,
        /// Channel occupancy in bytes observed just after the send
        /// (exact in the DES; a racy-but-conservative snapshot from
        /// [`crate::Transport::len_bytes`] in the threaded runner).
        occ_bytes: u32,
        /// Channel occupancy in messages observed just after the send.
        occ_msgs: u32,
    },
    /// A message was taken out of a channel.
    Recv {
        /// Source channel.
        channel: ChannelId,
        /// Payload bytes.
        bytes: u32,
        /// FNV-1a hash of the payload.
        digest: u64,
        /// Channel occupancy in bytes just after the receive.
        occ_bytes: u32,
        /// Channel occupancy in messages just after the receive.
        occ_msgs: u32,
    },
    /// A send found the channel full and the PE started blocking.
    BlockSend {
        /// The full channel.
        channel: ChannelId,
    },
    /// A receive found the channel empty and the PE started blocking.
    BlockRecv {
        /// The empty channel.
        channel: ChannelId,
    },
    /// A PE blocked on a send resumed.
    UnblockSend {
        /// The channel it was blocked on.
        channel: ChannelId,
    },
    /// A PE blocked on a receive resumed.
    UnblockRecv {
        /// The channel it was blocked on.
        channel: ChannelId,
    },
    /// A supervised channel operation failed transiently (injected
    /// fault, deadline miss) and is being retried.
    FaultRetry {
        /// The faulted channel.
        channel: ChannelId,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// A CRC-checked frame failed verification and was discarded; the
    /// supervisor expects a retransmission.
    FaultCorrupt {
        /// The channel the corrupt frame arrived on.
        channel: ChannelId,
    },
    /// A token the supervisor gave up waiting for was degraded per the
    /// configured policy — substituted with a neutral token (UBS
    /// substitute semantics) or skipped outright.
    FaultDegraded {
        /// The channel missing the token.
        channel: ChannelId,
        /// `true` when a neutral token was substituted, `false` when
        /// the token was skipped.
        substituted: bool,
    },
    /// A supervised PE restored its iteration-boundary checkpoint and
    /// restarted the iteration after a panic.
    FaultRestart {
        /// The iteration that was rolled back and replayed.
        iter: u64,
    },
    /// A batched network sender flushed its pending records in one
    /// vectored write. `msgs`/`bytes` size the flush; `reason` records
    /// which adaptive-flush trigger fired, so trace consumers can audit
    /// the Nagle policy against the schedule's batching budget.
    BatchFlush {
        /// The channel the batch was written to.
        channel: ChannelId,
        /// Records coalesced into this flush.
        msgs: u32,
        /// Total payload bytes across the flushed records.
        bytes: u32,
        /// Which flush trigger fired.
        reason: FlushReason,
    },
}

/// Why a batched sender flushed its pending records. Carried by
/// [`ProbeKind::BatchFlush`]; the numeric codes are the trace wire
/// encoding and must stay stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlushReason {
    /// The batch reached its configured `batch_max` records.
    Full,
    /// The credit window could not cover another message — unsent
    /// records can never earn credits back, so the sender drains before
    /// blocking.
    Window,
    /// The Nagle deadline elapsed with the batch still partial.
    Deadline,
    /// The peer reported itself blocked in `recv` (a HUNGRY ack), so
    /// latency beats amortization.
    Hungry,
    /// Endpoint teardown drained the remaining records.
    Final,
}

impl FlushReason {
    /// Stable numeric code used by the native trace format.
    pub fn code(self) -> u32 {
        match self {
            FlushReason::Full => 0,
            FlushReason::Window => 1,
            FlushReason::Deadline => 2,
            FlushReason::Hungry => 3,
            FlushReason::Final => 4,
        }
    }

    /// Inverse of [`FlushReason::code`]; `None` for unknown codes.
    pub fn from_code(code: u32) -> Option<FlushReason> {
        Some(match code {
            0 => FlushReason::Full,
            1 => FlushReason::Window,
            2 => FlushReason::Deadline,
            3 => FlushReason::Hungry,
            4 => FlushReason::Final,
            _ => return None,
        })
    }
}

/// One captured probe record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeEvent {
    /// Engine timestamp: DES cycle or monotonic nanoseconds (see the
    /// module docs).
    pub ts: u64,
    /// PE the event belongs to.
    pub pe: PeId,
    /// What happened.
    pub kind: ProbeKind,
}

/// A sink for runtime probe events.
///
/// Implementations must be cheap and callable from multiple PE threads
/// concurrently ([`Tracer::record`] is invoked from each runner thread
/// with that thread's own `pe` id). The contract emitters rely on:
///
/// * [`Tracer::enabled`] is constant for the lifetime of a run —
///   engines read it once and skip all probe work when `false`;
/// * [`Tracer::intern`] may lock (it is only called outside hot loops);
/// * [`Tracer::record`] must not lock or allocate in a real capture
///   implementation — the `spi-trace` ring uses per-PE single-writer
///   buffers.
pub trait Tracer: Send + Sync {
    /// Whether this tracer captures anything at all. `false` lets
    /// emitters skip payload digests, occupancy reads and timestamping
    /// entirely.
    fn enabled(&self) -> bool;

    /// Interns a label string, returning the id carried by
    /// [`ProbeKind::FiringBegin`] / [`ProbeKind::FiringEnd`].
    fn intern(&self, label: &str) -> u32;

    /// Records one event. `ts` follows the emitting engine's clock.
    fn record(&self, pe: PeId, ts: u64, kind: ProbeKind);

    /// Monotonic nanoseconds since the tracer's epoch — the timestamp
    /// source for engines without a simulated clock.
    fn now(&self) -> u64;
}

/// The zero-overhead default: captures nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopTracer;

impl Tracer for NopTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn intern(&self, _label: &str) -> u32 {
        0
    }

    fn record(&self, _pe: PeId, _ts: u64, _kind: ProbeKind) {}

    fn now(&self) -> u64 {
        0
    }
}

/// FNV-1a 64-bit hash — the payload digest carried by send/receive
/// probe events. Stable across engines and platforms, so two traces of
/// the same system can be compared digest-by-digest.
///
/// Payloads up to 64 bytes are hashed in full. Longer payloads hash
/// their length plus the first and last 32 bytes, bounding the
/// per-event cost on frame-sized messages: the digest exists to pin
/// down message *identity* across engines (FIFO order, truncation,
/// cross-engine divergence), not to checksum every byte, and both
/// engines apply the same rule so traces stay comparable.
pub fn payload_digest(bytes: &[u8]) -> u64 {
    const FULL: usize = 64;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |chunk: &[u8]| {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    if bytes.len() <= FULL {
        mix(bytes);
    } else {
        mix(&(bytes.len() as u64).to_le_bytes());
        mix(&bytes[..FULL / 2]);
        mix(&bytes[bytes.len() - FULL / 2..]);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_tracer_is_disabled_and_inert() {
        let t = NopTracer;
        assert!(!t.enabled());
        assert_eq!(t.intern("fire:x#0"), 0);
        assert_eq!(t.now(), 0);
        t.record(PeId(0), 0, ProbeKind::FiringBegin { label: 0 });
    }

    #[test]
    fn digest_distinguishes_payloads_and_is_stable() {
        assert_eq!(payload_digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(payload_digest(b"a"), payload_digest(b"b"));
        assert_eq!(payload_digest(b"spi"), payload_digest(b"spi"));
    }

    #[test]
    fn digest_bounds_work_on_long_payloads() {
        let frame = vec![0x5Au8; 512];
        assert_eq!(payload_digest(&frame), payload_digest(&frame));

        // Identity-bearing differences are visible: length, head, tail.
        let longer = vec![0x5Au8; 513];
        assert_ne!(payload_digest(&frame), payload_digest(&longer));
        let mut head = frame.clone();
        head[0] = 0;
        assert_ne!(payload_digest(&frame), payload_digest(&head));
        let mut tail = frame.clone();
        *tail.last_mut().unwrap() = 0;
        assert_ne!(payload_digest(&frame), payload_digest(&tail));

        // Middle bytes are outside the sampled window by design.
        let mut mid = frame.clone();
        mid[256] = 0;
        assert_eq!(payload_digest(&frame), payload_digest(&mid));
    }
}

//! Threaded functional runner — a concurrency cross-check for the DES.
//!
//! The discrete-event engine in [`crate::sim`] is deterministic; this
//! runner executes the *same* PE programs on real OS threads connected by
//! bounded in-process channels. It carries no notion of simulated time —
//! its purpose is to validate that protocol logic (blocking sends and
//! receives, message ordering per channel) is correct under genuine
//! parallel, racy execution, not just under the event queue's
//! serialization. Integration tests run both engines on the same programs
//! and compare the functional outputs.
//!
//! Capacity semantics differ slightly from the DES: the runner bounds
//! channels by *message count*, not bytes, at `max(1, capacity_bytes /
//! word_bytes)` messages — enough to exercise back-pressure without
//! byte-exact fidelity.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::error::{PlatformError, Result};
use crate::sim::{ChannelSpec, Op, PeId, PeLocal, Program};

/// A bounded MPMC FIFO with timed blocking send/recv, built on
/// `Mutex` + `Condvar` (std's mpsc offers no `send_timeout`, and the
/// deadlock check below needs a timeout on both directions).
struct BoundedChannel {
    queue: Mutex<VecDeque<Vec<u8>>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl BoundedChannel {
    fn new(capacity: usize) -> Self {
        BoundedChannel {
            queue: Mutex::new(VecDeque::new()),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks until a slot frees up, or gives up after `timeout`.
    fn send_timeout(&self, data: Vec<u8>, timeout: Duration) -> std::result::Result<(), ()> {
        let deadline = Instant::now() + timeout;
        let mut q = self.queue.lock().expect("channel lock");
        while q.len() >= self.capacity {
            let now = Instant::now();
            if now >= deadline {
                return Err(());
            }
            let (guard, _) = self
                .not_full
                .wait_timeout(q, deadline - now)
                .expect("channel lock");
            q = guard;
        }
        q.push_back(data);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until a message arrives, or gives up after `timeout`.
    fn recv_timeout(&self, timeout: Duration) -> Option<Vec<u8>> {
        let deadline = Instant::now() + timeout;
        let mut q = self.queue.lock().expect("channel lock");
        loop {
            if let Some(data) = q.pop_front() {
                self.not_full.notify_one();
                return Some(data);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(q, deadline - now)
                .expect("channel lock");
            q = guard;
        }
    }
}

/// Functional result of one PE's threaded execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadedPeResult {
    /// Final keyed store of the PE.
    pub store: HashMap<String, Vec<u8>>,
    /// Messages left unconsumed in the PE's inbox.
    pub leftover_inbox: usize,
}

/// Executes programs on OS threads; see the module docs for semantics.
///
/// `timeout` bounds every blocking channel operation; a deadlocked
/// program surfaces as [`PlatformError::Deadlock`] once any thread times
/// out.
///
/// # Errors
///
/// [`PlatformError::Deadlock`] on timeout;
/// [`PlatformError::ZeroCapacity`] for unusable channels.
pub fn run_threaded(
    channels: &[ChannelSpec],
    programs: Vec<Program>,
    timeout: Duration,
) -> Result<Vec<ThreadedPeResult>> {
    for (i, c) in channels.iter().enumerate() {
        if c.capacity_bytes == 0 {
            return Err(PlatformError::ZeroCapacity {
                channel: crate::sim::ChannelId(i),
            });
        }
    }
    let endpoints: Vec<BoundedChannel> = channels
        .iter()
        .map(|c| {
            BoundedChannel::new(usize::max(
                1,
                c.capacity_bytes / c.word_bytes.max(1) as usize,
            ))
        })
        .collect();

    let timed_out: Mutex<Vec<PeId>> = Mutex::new(Vec::new());
    let results: Mutex<Vec<Option<ThreadedPeResult>>> =
        Mutex::new((0..programs.len()).map(|_| None).collect());

    thread::scope(|scope| {
        for (idx, mut program) in programs.into_iter().enumerate() {
            let endpoints = &endpoints;
            let timed_out = &timed_out;
            let results = &results;
            scope.spawn(move || {
                let mut local = PeLocal::default();
                let mut prologue = std::mem::take(&mut program.prologue);
                let mut aborted = false;
                for op in &mut prologue {
                    match op {
                        Op::Compute { work, .. } => {
                            let _ = work(&mut local);
                        }
                        Op::Send { channel, payload } => {
                            let data = payload(&mut local);
                            if endpoints[channel.0].send_timeout(data, timeout).is_err() {
                                timed_out.lock().expect("timed_out lock").push(PeId(idx));
                                aborted = true;
                                break;
                            }
                        }
                        Op::Recv { channel } => match endpoints[channel.0].recv_timeout(timeout) {
                            Some(data) => local.inbox.push_back((*channel, data)),
                            None => {
                                timed_out.lock().expect("timed_out lock").push(PeId(idx));
                                aborted = true;
                                break;
                            }
                        },
                        // The functional runner has no simulated clock.
                        Op::WaitUntil { .. } => {}
                    }
                }
                if aborted {
                    results.lock().expect("results lock")[idx] = Some(ThreadedPeResult {
                        store: std::mem::take(&mut local.store),
                        leftover_inbox: local.inbox.len(),
                    });
                    return;
                }
                'outer: for iter in 0..program.iterations {
                    local.iter = iter;
                    for op in &mut program.ops {
                        match op {
                            Op::Compute { work, .. } => {
                                let _cycles = work(&mut local);
                            }
                            Op::Send { channel, payload } => {
                                let data = payload(&mut local);
                                let tx = &endpoints[channel.0];
                                if tx.send_timeout(data, timeout).is_err() {
                                    timed_out.lock().expect("timed_out lock").push(PeId(idx));
                                    break 'outer;
                                }
                            }
                            Op::Recv { channel } => {
                                let rx = &endpoints[channel.0];
                                match rx.recv_timeout(timeout) {
                                    Some(data) => local.inbox.push_back((*channel, data)),
                                    None => {
                                        timed_out.lock().expect("timed_out lock").push(PeId(idx));
                                        break 'outer;
                                    }
                                }
                            }
                            // No simulated clock in the threaded runner.
                            Op::WaitUntil { .. } => {}
                        }
                    }
                }
                results.lock().expect("results lock")[idx] = Some(ThreadedPeResult {
                    store: std::mem::take(&mut local.store),
                    leftover_inbox: local.inbox.len(),
                });
            });
        }
    });

    let blocked = timed_out.into_inner().expect("timed_out lock");
    if !blocked.is_empty() {
        return Err(PlatformError::Deadlock { blocked });
    }
    Ok(results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("every PE thread stores a result"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ChannelId, ChannelSpec};

    #[test]
    fn threaded_pipeline_matches_expectations() {
        let channels = vec![ChannelSpec::default()];
        let producer = Program::new(
            vec![Op::Send {
                channel: ChannelId(0),
                payload: Box::new(|l| vec![l.iter as u8 * 3]),
            }],
            4,
        );
        let consumer = Program::new(
            vec![
                Op::Recv {
                    channel: ChannelId(0),
                },
                Op::Compute {
                    label: "fold".into(),
                    work: Box::new(|l| {
                        let v = l.take_from(ChannelId(0)).expect("data");
                        let mut acc = l.store.remove("acc").unwrap_or_default();
                        acc.push(v[0]);
                        l.store.insert("acc".into(), acc);
                        0
                    }),
                },
            ],
            4,
        );
        let results =
            run_threaded(&channels, vec![producer, consumer], Duration::from_secs(5)).unwrap();
        assert_eq!(results[1].store["acc"], vec![0, 3, 6, 9]);
        assert_eq!(results[1].leftover_inbox, 0);
    }

    #[test]
    fn threaded_deadlock_times_out() {
        let channels = vec![ChannelSpec::default(), ChannelSpec::default()];
        let a = Program::new(
            vec![
                Op::Recv {
                    channel: ChannelId(1),
                },
                Op::Send {
                    channel: ChannelId(0),
                    payload: Box::new(|_| vec![0]),
                },
            ],
            1,
        );
        let b = Program::new(
            vec![
                Op::Recv {
                    channel: ChannelId(0),
                },
                Op::Send {
                    channel: ChannelId(1),
                    payload: Box::new(|_| vec![0]),
                },
            ],
            1,
        );
        let err = run_threaded(&channels, vec![a, b], Duration::from_millis(100));
        assert!(matches!(err, Err(PlatformError::Deadlock { .. })));
    }

    #[test]
    fn zero_capacity_rejected_up_front() {
        let channels = vec![ChannelSpec {
            capacity_bytes: 0,
            ..ChannelSpec::default()
        }];
        let err = run_threaded(&channels, vec![], Duration::from_secs(1));
        assert!(matches!(err, Err(PlatformError::ZeroCapacity { .. })));
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        // One-slot channel: producer cannot run more than one message
        // ahead; with a slow consumer the run still completes.
        let channels = vec![ChannelSpec {
            capacity_bytes: 4,
            word_bytes: 4,
            ..ChannelSpec::default()
        }];
        let producer = Program::new(
            vec![Op::Send {
                channel: ChannelId(0),
                payload: Box::new(|_| vec![1, 2, 3, 4]),
            }],
            16,
        );
        let consumer = Program::new(
            vec![
                Op::Recv {
                    channel: ChannelId(0),
                },
                Op::Compute {
                    label: "drop".into(),
                    work: Box::new(|l| {
                        let _ = l.take_from(ChannelId(0));
                        std::thread::sleep(Duration::from_millis(1));
                        0
                    }),
                },
            ],
            16,
        );
        let results =
            run_threaded(&channels, vec![producer, consumer], Duration::from_secs(10)).unwrap();
        assert_eq!(results[1].leftover_inbox, 0);
    }

    #[test]
    fn bounded_channel_send_times_out_when_full() {
        let ch = BoundedChannel::new(1);
        ch.send_timeout(vec![1], Duration::from_millis(10)).unwrap();
        assert!(ch.send_timeout(vec![2], Duration::from_millis(10)).is_err());
        assert_eq!(ch.recv_timeout(Duration::from_millis(10)), Some(vec![1]));
        assert_eq!(ch.recv_timeout(Duration::from_millis(10)), None);
    }
}

//! Threaded functional runner — a concurrency cross-check for the DES.
//!
//! The discrete-event engine in [`crate::sim`] is deterministic; this
//! runner executes the *same* PE programs on real OS threads connected by
//! pluggable [`Transport`] channels. It carries no notion of simulated
//! time — its purpose is to validate that protocol logic (blocking sends
//! and receives, message ordering per channel) is correct under genuine
//! parallel, racy execution, not just under the event queue's
//! serialization. Integration tests run both engines on the same
//! programs and compare the functional outputs.
//!
//! Channel capacity is accounted in **bytes**, matching the DES and the
//! paper's eq. (2) buffer bounds. The transport implementation is chosen
//! per run via [`ThreadedRunner::transport`]: the `Mutex`+`Condvar`
//! reference queue, or the lock-free ring sized to the static bound.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::error::{BlockKind, BlockedOp, PlatformError, Result};
use crate::sim::{ChannelId, ChannelSpec, Op, PeId, PeLocal, Program};
use crate::supervise::{framed_spec, run_supervised, SupervisionPolicy};
use crate::trace::{payload_digest, ProbeKind, Tracer};
use crate::transport::{Transport, TransportError, TransportKind};

/// A hook wrapping each channel's [`Transport`] after instantiation —
/// the seam fault injectors (`spi-fault`) and other instrumenting
/// decorators plug into. Called once per channel with the channel id
/// and the transport the runner built (the framed transport when
/// supervision is on, so injected corruption hits real frame bytes).
pub type TransportDecorator =
    dyn Fn(ChannelId, Box<dyn Transport>) -> Box<dyn Transport> + Send + Sync;

/// Default bound on every blocking channel operation before the runner
/// declares a deadlock. Generous: real systems block for microseconds,
/// so half a minute of no progress is unambiguous even on a loaded CI
/// machine.
pub const DEFAULT_DEADLOCK_TIMEOUT: Duration = Duration::from_secs(30);

/// Shared log of blocking channel ops that hit their deadline:
/// `(pe, channel, direction, idle time since last progress)`.
type TimedOutLog = Mutex<Vec<(PeId, ChannelId, BlockKind, Option<Duration>)>>;

/// Functional result of one PE's threaded execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadedPeResult {
    /// Final keyed store of the PE.
    pub store: HashMap<String, Vec<u8>>,
    /// Messages left unconsumed in the PE's inbox.
    pub leftover_inbox: usize,
}

/// Builder-style configuration for threaded execution.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use spi_platform::{ChannelSpec, ChannelId, Op, Program, ThreadedRunner, TransportKind};
///
/// let channels = vec![ChannelSpec::default()];
/// let producer = Program::new(vec![Op::Send {
///     channel: ChannelId(0),
///     payload: Box::new(|_| vec![42u8; 4]),
/// }], 3);
/// let consumer = Program::new(vec![Op::Recv { channel: ChannelId(0) }], 3);
/// let results = ThreadedRunner::new()
///     .transport(TransportKind::Ring)
///     .timeout(Duration::from_secs(5))
///     .run(&channels, vec![producer, consumer])?;
/// assert_eq!(results[1].leftover_inbox, 3);
/// # Ok::<(), spi_platform::PlatformError>(())
/// ```
#[derive(Clone)]
pub struct ThreadedRunner {
    kind: TransportKind,
    timeout: Duration,
    tracer: Option<Arc<dyn Tracer>>,
    supervision: Option<SupervisionPolicy>,
    decorator: Option<Arc<TransportDecorator>>,
}

impl fmt::Debug for ThreadedRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadedRunner")
            .field("kind", &self.kind)
            .field("timeout", &self.timeout)
            .field("tracer", &self.tracer.is_some())
            .field("supervision", &self.supervision)
            .field("decorator", &self.decorator.is_some())
            .finish()
    }
}

impl Default for ThreadedRunner {
    fn default() -> Self {
        ThreadedRunner {
            kind: TransportKind::default(),
            timeout: DEFAULT_DEADLOCK_TIMEOUT,
            tracer: None,
            supervision: None,
            decorator: None,
        }
    }
}

impl ThreadedRunner {
    /// A runner with the default transport ([`TransportKind::Locked`])
    /// and deadlock timeout ([`DEFAULT_DEADLOCK_TIMEOUT`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the transport implementation used for every channel.
    #[must_use]
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.kind = kind;
        self
    }

    /// Overrides the deadlock timeout bounding each blocking channel
    /// operation.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Attaches a [`Tracer`] probe sink: every PE thread emits firing
    /// begin/end, send/receive (with payload digest and post-op channel
    /// occupancy) and block/unblock events through it, timestamped with
    /// [`Tracer::now`] (monotonic nanoseconds). Blocking detection works
    /// by attempting the non-blocking variant first, so a tracer whose
    /// [`Tracer::enabled`] is `false` keeps the untraced fast path.
    #[must_use]
    pub fn tracer(mut self, tracer: Arc<dyn Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Enables supervised execution: every message travels in a
    /// CRC-checked, sequence-numbered frame; transient channel failures
    /// (injected faults, per-op deadline misses) are retried with
    /// exponential backoff inside the policy's budgets; unrecoverable
    /// tokens are degraded per [`crate::DegradePolicy`]; and a compute
    /// closure that panics rolls its PE back to the iteration-boundary
    /// checkpoint and replays (receives from a local log, transmitted
    /// sends not re-sent), up to the restart budget. All fault handling
    /// is emitted through the attached [`Tracer`] as `Fault*` events.
    ///
    /// Under supervision, the policy's `op_deadline` replaces the
    /// runner [`ThreadedRunner::timeout`] for channel operations, and
    /// block/unblock probe events are not emitted (retry events take
    /// their place).
    #[must_use]
    pub fn supervise(mut self, policy: SupervisionPolicy) -> Self {
        self.supervision = Some(policy);
        self
    }

    /// Installs a [`TransportDecorator`] wrapping each channel's
    /// transport after instantiation — the hook `spi-fault` uses to
    /// inject deterministic faults on selected edges.
    #[must_use]
    pub fn decorate_transports(mut self, decorator: Arc<TransportDecorator>) -> Self {
        self.decorator = Some(decorator);
        self
    }

    /// The configured transport kind.
    pub fn transport_kind(&self) -> TransportKind {
        self.kind
    }

    /// The configured deadlock timeout.
    pub fn deadlock_timeout(&self) -> Duration {
        self.timeout
    }

    /// Executes `programs` on OS threads over `channels`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Deadlock`] once any thread's blocking operation
    /// times out; [`PlatformError::MessageExceedsCapacity`] when a
    /// payload exceeds the channel's per-message bound;
    /// [`PlatformError::ZeroCapacity`] for unusable channels.
    pub fn run(
        &self,
        channels: &[ChannelSpec],
        programs: Vec<Program>,
    ) -> Result<Vec<ThreadedPeResult>> {
        for (i, c) in channels.iter().enumerate() {
            if c.capacity_bytes == 0 {
                return Err(PlatformError::ZeroCapacity {
                    channel: ChannelId(i),
                });
            }
        }
        let endpoints: Vec<Box<dyn Transport>> = channels
            .iter()
            .enumerate()
            .map(|(i, c)| {
                // Supervision inflates the physical spec by one frame
                // header per slot; the decorator wraps the result so
                // injected corruption hits real frame bytes.
                let transport = match self.supervision {
                    Some(_) => self.kind.instantiate(&framed_spec(c)),
                    None => self.kind.instantiate(c),
                };
                match &self.decorator {
                    Some(d) => d(ChannelId(i), transport),
                    None => transport,
                }
            })
            .collect();
        self.run_with_endpoints(channels, endpoints, programs)
    }

    /// As [`ThreadedRunner::run`], over **pre-built** channel endpoints
    /// instead of transports instantiated from the configured
    /// [`TransportKind`] — the seam a distributed deployment (`spi-net`)
    /// uses to mix in-memory rings for intra-node channels with socket
    /// endpoints for cross-node channels. `endpoints[i]` serves
    /// `ChannelId(i)`; `channels` still describes the logical specs (for
    /// supervision bookkeeping and the zero-capacity guard). Under
    /// supervision the caller must size each endpoint with
    /// [`crate::framed_spec`]; the configured transport decorator is
    /// *not* applied here — callers wrap endpoints themselves.
    ///
    /// # Errors
    ///
    /// As [`ThreadedRunner::run`].
    pub fn run_with_endpoints(
        &self,
        channels: &[ChannelSpec],
        endpoints: Vec<Box<dyn Transport>>,
        programs: Vec<Program>,
    ) -> Result<Vec<ThreadedPeResult>> {
        for (i, c) in channels.iter().enumerate() {
            if c.capacity_bytes == 0 {
                return Err(PlatformError::ZeroCapacity {
                    channel: ChannelId(i),
                });
            }
        }
        assert_eq!(
            channels.len(),
            endpoints.len(),
            "one endpoint per channel spec"
        );
        let timeout = self.timeout;
        // Resolve the tracer once: a disabled tracer takes the untraced
        // code path everywhere (emitters check a plain Option).
        let probe: Option<&dyn Tracer> = self.tracer.as_deref().filter(|t| t.enabled());

        if let Some(policy) = self.supervision {
            return run_supervised(policy, channels, &endpoints, programs, probe);
        }

        let timed_out: TimedOutLog = Mutex::new(Vec::new());
        let fault: Mutex<Option<PlatformError>> = Mutex::new(None);
        let results: Mutex<Vec<Option<ThreadedPeResult>>> =
            Mutex::new((0..programs.len()).map(|_| None).collect());

        crate::shim::scope(|scope| {
            for (idx, mut program) in programs.into_iter().enumerate() {
                let endpoints = &endpoints;
                let timed_out = &timed_out;
                let fault = &fault;
                let results = &results;
                // Firing labels are static across iterations; intern
                // them up front so the hot loop never touches the
                // tracer's (locking) intern table.
                let labels = intern_labels(probe, &program);
                scope.spawn_named(format!("pe{idx}"), move || {
                    let mut local = PeLocal::default();
                    let mut prologue = std::mem::take(&mut program.prologue);
                    let mut aborted = false;
                    for (i, op) in prologue.iter_mut().enumerate() {
                        let label = labels.prologue.get(i).copied().unwrap_or(0);
                        if !step(
                            op, label, &mut local, endpoints, timeout, idx, probe, timed_out, fault,
                        ) {
                            aborted = true;
                            break;
                        }
                    }
                    if !aborted {
                        'outer: for iter in 0..program.iterations {
                            local.iter = iter;
                            for (i, op) in program.ops.iter_mut().enumerate() {
                                let label = labels.ops.get(i).copied().unwrap_or(0);
                                if !step(
                                    op, label, &mut local, endpoints, timeout, idx, probe,
                                    timed_out, fault,
                                ) {
                                    break 'outer;
                                }
                            }
                        }
                    }
                    results.lock().expect("results lock")[idx] = Some(ThreadedPeResult {
                        store: std::mem::take(&mut local.store),
                        leftover_inbox: local.inbox.len(),
                    });
                });
            }
        });

        if let Some(err) = fault.into_inner().expect("fault lock") {
            return Err(err);
        }
        let timed = timed_out.into_inner().expect("timed_out lock");
        if !timed.is_empty() {
            let blocked: Vec<PeId> = timed.iter().map(|&(pe, _, _, _)| pe).collect();
            let detail = timed
                .into_iter()
                .map(|(pe, channel, kind, idle)| BlockedOp {
                    pe,
                    channel,
                    kind,
                    occupied_bytes: endpoints[channel.0].len_bytes(),
                    occupied_messages: endpoints[channel.0].occupancy(),
                    capacity_bytes: endpoints[channel.0].capacity_bytes(),
                    idle,
                })
                .collect();
            return Err(PlatformError::Deadlock { blocked, detail });
        }
        Ok(results
            .into_inner()
            .expect("results lock")
            .into_iter()
            .map(|r| r.expect("every PE thread stores a result"))
            .collect())
    }
}

/// Interned firing-label ids for a program's prologue and loop ops,
/// parallel to the op lists (non-compute ops hold id 0).
pub(crate) struct ProgramLabels {
    pub(crate) prologue: Vec<u32>,
    pub(crate) ops: Vec<u32>,
}

pub(crate) fn intern_labels(probe: Option<&dyn Tracer>, program: &Program) -> ProgramLabels {
    let intern_list = |ops: &[Op]| -> Vec<u32> {
        match probe {
            Some(t) => ops
                .iter()
                .map(|op| match op {
                    Op::Compute { label, .. } => t.intern(label),
                    _ => 0,
                })
                .collect(),
            None => Vec::new(),
        }
    };
    ProgramLabels {
        prologue: intern_list(&program.prologue),
        ops: intern_list(&program.ops),
    }
}

/// Shortest wait worth recording as a Block/Unblock event pair, in
/// nanoseconds. A failed non-blocking attempt that the blocking retry
/// resolves within this window is a claim race, not a stall — recording
/// every such blip on a fast pipeline doubles the event volume (and its
/// cost) without telling the trace reader anything. Genuine
/// backpressure parks the thread for multiple microseconds and is
/// always captured.
const STALL_RECORD_NS: u64 = 1_000;

/// Executes one op; returns `false` when the PE must abort (timeout or
/// transport fault), recording the cause.
///
/// With a probe attached, blocking channel ops attempt the non-blocking
/// variant first: a `Full`/`Empty` result marks the block edge, and the
/// Block/Unblock pair is emitted retroactively once the blocking call
/// resolves — but only when the wait exceeded [`STALL_RECORD_NS`].
/// Without a probe the original single blocking call is used, so
/// tracing costs nothing when disabled.
#[allow(clippy::too_many_arguments)]
fn step(
    op: &mut Op,
    label: u32,
    local: &mut PeLocal,
    endpoints: &[Box<dyn Transport>],
    timeout: Duration,
    idx: usize,
    probe: Option<&dyn Tracer>,
    timed_out: &TimedOutLog,
    fault: &Mutex<Option<PlatformError>>,
) -> bool {
    let pe = PeId(idx);
    match op {
        Op::Compute { work, .. } => {
            if let Some(t) = probe {
                t.record(pe, t.now(), ProbeKind::FiringBegin { label });
                let _cycles = work(local);
                t.record(pe, t.now(), ProbeKind::FiringEnd { label });
            } else {
                let _cycles = work(local);
            }
            true
        }
        Op::Send { channel, payload } => {
            let ch = *channel;
            let data = payload(local);
            let ep = &endpoints[ch.0];
            let sent = match probe {
                Some(t) => match ep.try_send(&data) {
                    Ok(()) => Ok(()),
                    Err(TransportError::Full) => {
                        let blocked_at = t.now();
                        let res = ep.send(&data, timeout);
                        if res.is_ok() {
                            let resumed_at = t.now();
                            if resumed_at.saturating_sub(blocked_at) >= STALL_RECORD_NS {
                                t.record(pe, blocked_at, ProbeKind::BlockSend { channel: ch });
                                t.record(pe, resumed_at, ProbeKind::UnblockSend { channel: ch });
                            }
                        } else {
                            // Never resumed: keep the block edge so the
                            // trace shows where the PE was stuck.
                            t.record(pe, blocked_at, ProbeKind::BlockSend { channel: ch });
                        }
                        res
                    }
                    Err(e) => Err(e),
                },
                None => ep.send(&data, timeout),
            };
            match sent {
                Ok(()) => {
                    if let Some(t) = probe {
                        let (occ_b, occ_m) = ep.snapshot();
                        t.record(
                            pe,
                            t.now(),
                            ProbeKind::Send {
                                channel: ch,
                                bytes: data.len() as u32,
                                digest: payload_digest(&data),
                                occ_bytes: occ_b as u32,
                                occ_msgs: occ_m as u32,
                            },
                        );
                    }
                    true
                }
                Err(TransportError::Timeout { idle, .. }) => {
                    timed_out.lock().expect("timed_out lock").push((
                        pe,
                        ch,
                        BlockKind::Send,
                        Some(idle),
                    ));
                    false
                }
                Err(e) => {
                    record_fault(fault, ch, &data, &e, endpoints);
                    false
                }
            }
        }
        Op::Recv { channel } => {
            let ch = *channel;
            let ep = &endpoints[ch.0];
            let got = match probe {
                Some(t) => match ep.try_recv_token() {
                    Ok(d) => Ok(d),
                    Err(TransportError::Empty) => {
                        let blocked_at = t.now();
                        let res = ep.recv_token(timeout);
                        if res.is_ok() {
                            let resumed_at = t.now();
                            if resumed_at.saturating_sub(blocked_at) >= STALL_RECORD_NS {
                                t.record(pe, blocked_at, ProbeKind::BlockRecv { channel: ch });
                                t.record(pe, resumed_at, ProbeKind::UnblockRecv { channel: ch });
                            }
                        } else {
                            t.record(pe, blocked_at, ProbeKind::BlockRecv { channel: ch });
                        }
                        res
                    }
                    Err(e) => Err(e),
                },
                None => ep.recv_token(timeout),
            };
            match got {
                Ok(data) => {
                    if let Some(t) = probe {
                        let (occ_b, occ_m) = ep.snapshot();
                        t.record(
                            pe,
                            t.now(),
                            ProbeKind::Recv {
                                channel: ch,
                                bytes: data.len() as u32,
                                digest: payload_digest(&data),
                                occ_bytes: occ_b as u32,
                                occ_msgs: occ_m as u32,
                            },
                        );
                    }
                    local.inbox.push_back((ch, data));
                    true
                }
                Err(TransportError::Timeout { idle, .. }) => {
                    timed_out.lock().expect("timed_out lock").push((
                        pe,
                        ch,
                        BlockKind::Recv,
                        Some(idle),
                    ));
                    false
                }
                Err(e) => {
                    record_fault(fault, ch, &[], &e, endpoints);
                    false
                }
            }
        }
        // The functional runner has no simulated clock.
        Op::WaitUntil { .. } => true,
    }
}

/// Maps a non-timeout transport failure to the platform error space.
fn record_fault(
    fault: &Mutex<Option<PlatformError>>,
    channel: ChannelId,
    data: &[u8],
    err: &TransportError,
    endpoints: &[Box<dyn Transport>],
) {
    // Blocking ops fail with Timeout (handled by the caller), TooLarge,
    // or — under a fault-injecting decorator — a declared injection.
    // Without supervision nothing retries an injected fault, so it
    // surfaces as an unrecovered channel fault naming the edge.
    let mapped = match err {
        TransportError::Injected { fault } => PlatformError::ChannelFault {
            channel,
            detail: fault.to_string(),
        },
        TransportError::TooLarge { bytes, .. } => PlatformError::MessageExceedsCapacity {
            channel,
            bytes: *bytes,
            capacity: endpoints[channel.0].capacity_bytes(),
        },
        _ => PlatformError::MessageExceedsCapacity {
            channel,
            bytes: data.len(),
            capacity: endpoints[channel.0].capacity_bytes(),
        },
    };
    let mut slot = fault.lock().expect("fault lock");
    if slot.is_none() {
        *slot = Some(mapped);
    }
}

/// Executes programs with the default (locked) transport; see
/// [`ThreadedRunner`] for transport selection and the module docs for
/// semantics.
///
/// `timeout` bounds every blocking channel operation; a deadlocked
/// program surfaces as [`PlatformError::Deadlock`] once any thread times
/// out.
///
/// # Errors
///
/// As [`ThreadedRunner::run`].
pub fn run_threaded(
    channels: &[ChannelSpec],
    programs: Vec<Program>,
    timeout: Duration,
) -> Result<Vec<ThreadedPeResult>> {
    ThreadedRunner::new()
        .timeout(timeout)
        .run(channels, programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ChannelId, ChannelSpec};

    /// Every runner test runs under all three transports — the executor
    /// must be implementation-agnostic.
    fn kinds() -> [TransportKind; 3] {
        [
            TransportKind::Locked,
            TransportKind::Ring,
            TransportKind::Pointer,
        ]
    }

    #[test]
    fn threaded_pipeline_matches_expectations() {
        for kind in kinds() {
            let channels = vec![ChannelSpec::default()];
            let producer = Program::new(
                vec![Op::Send {
                    channel: ChannelId(0),
                    payload: Box::new(|l| vec![l.iter as u8 * 3]),
                }],
                4,
            );
            let consumer = Program::new(
                vec![
                    Op::Recv {
                        channel: ChannelId(0),
                    },
                    Op::Compute {
                        label: "fold".into(),
                        work: Box::new(|l| {
                            let v = l.take_from(ChannelId(0)).expect("data");
                            let mut acc = l.store.remove("acc").unwrap_or_default();
                            acc.push(v[0]);
                            l.store.insert("acc".into(), acc);
                            0
                        }),
                    },
                ],
                4,
            );
            let results = ThreadedRunner::new()
                .transport(kind)
                .timeout(Duration::from_secs(5))
                .run(&channels, vec![producer, consumer])
                .unwrap();
            assert_eq!(results[1].store["acc"], vec![0, 3, 6, 9], "{kind:?}");
            assert_eq!(results[1].leftover_inbox, 0);
        }
    }

    #[test]
    fn threaded_deadlock_times_out() {
        for kind in kinds() {
            let channels = vec![ChannelSpec::default(), ChannelSpec::default()];
            let a = Program::new(
                vec![
                    Op::Recv {
                        channel: ChannelId(1),
                    },
                    Op::Send {
                        channel: ChannelId(0),
                        payload: Box::new(|_| vec![0]),
                    },
                ],
                1,
            );
            let b = Program::new(
                vec![
                    Op::Recv {
                        channel: ChannelId(0),
                    },
                    Op::Send {
                        channel: ChannelId(1),
                        payload: Box::new(|_| vec![0]),
                    },
                ],
                1,
            );
            let err = ThreadedRunner::new()
                .transport(kind)
                .timeout(Duration::from_millis(100))
                .run(&channels, vec![a, b]);
            match err {
                Err(e @ PlatformError::Deadlock { .. }) => {
                    // The report must name the starved channels and
                    // their observed fill, not just count PEs.
                    let msg = e.to_string();
                    assert!(
                        msg.contains("ch0") && msg.contains("ch1"),
                        "{kind:?}: {msg}"
                    );
                    assert!(msg.contains("recv from"), "{kind:?}: {msg}");
                    assert!(
                        msg.contains("0/"),
                        "empty-channel fill shown: {kind:?}: {msg}"
                    );
                }
                other => panic!("expected deadlock under {kind:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn deadlock_detail_reports_send_side_occupancy() {
        // Producer fills a 1-slot channel nobody drains: the report
        // must show the channel as full on the send side.
        let channels = vec![ChannelSpec {
            capacity_bytes: 4,
            max_message_bytes: 4,
            ..ChannelSpec::default()
        }];
        for kind in kinds() {
            let producer = Program::new(
                vec![Op::Send {
                    channel: ChannelId(0),
                    payload: Box::new(|_| vec![7; 4]),
                }],
                3,
            );
            let err = ThreadedRunner::new()
                .transport(kind)
                .timeout(Duration::from_millis(100))
                .run(&channels, vec![Program::new(vec![], 0), producer]);
            match err {
                Err(PlatformError::Deadlock { blocked, detail }) => {
                    assert_eq!(blocked, vec![PeId(1)]);
                    assert_eq!(detail.len(), 1);
                    assert_eq!(detail[0].channel, ChannelId(0));
                    assert_eq!(detail[0].kind, BlockKind::Send);
                    assert_eq!(detail[0].occupied_bytes, 4, "{kind:?}");
                    assert_eq!(detail[0].occupied_messages, 1);
                    assert_eq!(detail[0].capacity_bytes, 4);
                }
                other => panic!("expected deadlock under {kind:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn zero_capacity_rejected_up_front() {
        let channels = vec![ChannelSpec {
            capacity_bytes: 0,
            ..ChannelSpec::default()
        }];
        let err = run_threaded(&channels, vec![], Duration::from_secs(1));
        assert!(matches!(err, Err(PlatformError::ZeroCapacity { .. })));
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        // One-slot channel: producer cannot run more than one message
        // ahead; with a slow consumer the run still completes.
        for kind in kinds() {
            let channels = vec![ChannelSpec {
                capacity_bytes: 4,
                word_bytes: 4,
                ..ChannelSpec::default()
            }];
            let producer = Program::new(
                vec![Op::Send {
                    channel: ChannelId(0),
                    payload: Box::new(|_| vec![1, 2, 3, 4]),
                }],
                16,
            );
            let consumer = Program::new(
                vec![
                    Op::Recv {
                        channel: ChannelId(0),
                    },
                    Op::Compute {
                        label: "drop".into(),
                        work: Box::new(|l| {
                            let _ = l.take_from(ChannelId(0));
                            std::thread::sleep(Duration::from_millis(1));
                            0
                        }),
                    },
                ],
                16,
            );
            let results = ThreadedRunner::new()
                .transport(kind)
                .timeout(Duration::from_secs(10))
                .run(&channels, vec![producer, consumer])
                .unwrap();
            assert_eq!(results[1].leftover_inbox, 0, "{kind:?}");
        }
    }

    #[test]
    fn oversized_message_surfaces_as_capacity_error() {
        // Ring slots are the declared max message size; a payload larger
        // than the slot is a programming error, not a deadlock.
        let channels = vec![ChannelSpec {
            capacity_bytes: 16,
            max_message_bytes: 4,
            ..ChannelSpec::default()
        }];
        let producer = Program::new(
            vec![Op::Send {
                channel: ChannelId(0),
                payload: Box::new(|_| vec![0u8; 9]),
            }],
            1,
        );
        let consumer = Program::new(
            vec![Op::Recv {
                channel: ChannelId(0),
            }],
            1,
        );
        let err = ThreadedRunner::new()
            .transport(TransportKind::Ring)
            .timeout(Duration::from_millis(200))
            .run(&channels, vec![producer, consumer]);
        assert!(matches!(
            err,
            Err(PlatformError::MessageExceedsCapacity { bytes: 9, .. })
        ));
    }

    #[test]
    fn default_runner_uses_locked_transport_and_default_timeout() {
        let r = ThreadedRunner::new();
        assert_eq!(r.transport_kind(), TransportKind::Locked);
        assert_eq!(r.deadlock_timeout(), DEFAULT_DEADLOCK_TIMEOUT);
    }
}
